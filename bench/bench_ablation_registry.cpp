// Ablation (DESIGN.md decision 1): registry-attribute classification vs
// name-string matching. The registry path is both faster and immune to
// naming irregularities (e.g. "DES" as a substring of "3DES_EDE").
#include <benchmark/benchmark.h>

#include <string_view>

#include "tlscore/cipher_suites.hpp"

namespace {

using tls::core::all_cipher_suites;
using tls::core::CipherClass;

/// The naive alternative: classify by substring-matching the IANA name.
CipherClass classify_by_name(std::string_view name) {
  const auto contains = [&](std::string_view token) {
    return name.find(token) != std::string_view::npos;
  };
  if (contains("_GCM_") || contains("_CCM") || contains("CHACHA20")) {
    return CipherClass::kAead;
  }
  if (contains("_CBC_")) return CipherClass::kCbc;
  if (contains("_RC4_")) return CipherClass::kRc4;
  if (contains("_NULL_")) return CipherClass::kNullCipher;
  return CipherClass::kOther;
}

void BM_ClassifyByRegistry(benchmark::State& state) {
  const auto suites = all_cipher_suites();
  for (auto _ : state) {
    int counts[5] = {};
    for (const auto& s : suites) {
      ++counts[static_cast<int>(tls::core::cipher_class(s.id))];
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suites.size()));
}
BENCHMARK(BM_ClassifyByRegistry);

void BM_ClassifyByName(benchmark::State& state) {
  const auto suites = all_cipher_suites();
  for (auto _ : state) {
    int counts[5] = {};
    for (const auto& s : suites) {
      ++counts[static_cast<int>(classify_by_name(s.name))];
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suites.size()));
}
BENCHMARK(BM_ClassifyByName);

/// Correctness side of the ablation, on the harder property: forward
/// secrecy. The obvious name heuristic ("DHE appears in the name") gets
/// TLS 1.3 suites (no kex in the name) and anonymous ephemeral DH wrong —
/// attribute-derived classification doesn't.
void BM_FsClassifierDisagreements(benchmark::State& state) {
  const auto suites = all_cipher_suites();
  const auto fs_by_name = [](std::string_view name) {
    return name.find("DHE") != std::string_view::npos;
  };
  std::int64_t disagreements = 0;
  for (auto _ : state) {
    disagreements = 0;
    for (const auto& s : suites) {
      if (s.scsv) continue;
      if (tls::core::is_forward_secret(s) != fs_by_name(s.name)) {
        ++disagreements;
      }
    }
    benchmark::DoNotOptimize(disagreements);
  }
  state.counters["fs_disagreements"] = static_cast<double>(disagreements);
}
BENCHMARK(BM_FsClassifierDisagreements);

}  // namespace

BENCHMARK_MAIN();
