// Ablation (DESIGN.md decision 4): seed sweep. Every figure must be a
// property of the population model, not of one RNG stream — so the key
// series are recomputed under several seeds and the maximum cross-seed
// deviation is reported. Deviations shrink as TLS_STUDY_CPM grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto base = bench::default_options();
  base.connections_per_month = std::min<std::size_t>(
      base.connections_per_month, 3000);  // keep the sweep quick
  base.full_catalog = false;

  struct Probe {
    const char* name;
    Month month;
    std::vector<double> values;
  };
  std::vector<Probe> probes = {
      {"RC4 negotiated 2013-08", Month(2013, 8), {}},
      {"AEAD negotiated 2016-06", Month(2016, 6), {}},
      {"TLS1.2 negotiated 2015-01", Month(2015, 1), {}},
      {"ECDHE negotiated 2017-01", Month(2017, 1), {}},
  };

  const std::uint64_t seeds[] = {1, 42, 1337, 0xdeadbeef, 987654321};
  for (const auto seed : seeds) {
    auto opts = base;
    opts.seed = seed;
    tls::study::LongitudinalStudy study(opts);
    const auto fig2 = study.figure2_negotiated_classes();
    const auto fig1 = study.figure1_versions();
    const auto fig8 = study.figure8_key_exchange();
    probes[0].values.push_back(bench::series_at(fig2, 2, probes[0].month));
    probes[1].values.push_back(bench::series_at(fig2, 0, probes[1].month));
    probes[2].values.push_back(bench::series_at(fig1, 3, probes[2].month));
    probes[3].values.push_back(bench::series_at(fig8, 1, probes[3].month));
  }

  std::printf("seed-sweep stability (%zu seeds, %zu conns/month):\n",
              std::size(seeds), base.connections_per_month);
  bool stable = true;
  for (const auto& p : probes) {
    const auto [lo, hi] = std::minmax_element(p.values.begin(), p.values.end());
    const double spread = *hi - *lo;
    stable = stable && spread < 5.0;  // percentage points
    std::printf("  %-28s min %5.1f%%  max %5.1f%%  spread %4.1fpp\n", p.name,
                *lo, *hi, spread);
  }
  std::printf("shape stability: %s (spreads < 5pp)\n",
              stable ? "OK" : "UNSTABLE");
  return stable ? 0 : 1;
}
