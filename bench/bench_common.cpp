#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

namespace bench {

tls::study::StudyOptions default_options() {
  tls::study::StudyOptions opts;
  opts.connections_per_month = 6000;
  if (const char* cpm = std::getenv("TLS_STUDY_CPM")) {
    opts.connections_per_month =
        static_cast<std::size_t>(std::strtoull(cpm, nullptr, 10));
  }
  if (const char* seed = std::getenv("TLS_STUDY_SEED")) {
    opts.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* core = std::getenv("TLS_STUDY_CORE")) {
    opts.full_catalog = std::string(core) != "1";
  }
  return opts;
}

double timed_seconds(const std::function<void()>& fn) {
  const tls::telemetry::Stopwatch sw;
  fn();
  return sw.elapsed_seconds();
}

tls::study::LongitudinalStudy& shared_study() {
  static auto* study = new tls::study::LongitudinalStudy(default_options());
  return *study;
}

void print_chart(const tls::analysis::MonthlyChart& chart, bool csv) {
  std::fputs(tls::analysis::render_chart(chart).c_str(), stdout);
  if (csv) {
    std::fputs("\nCSV:\n", stdout);
    std::fputs(tls::analysis::to_csv(chart).c_str(), stdout);
  }
  std::fputs("\n", stdout);
}

void print_anchors(const std::string& experiment,
                   const std::vector<Anchor>& anchors) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"anchor", "paper", "measured"});
  for (const auto& a : anchors) rows.push_back({a.metric, a.paper, a.measured});
  std::printf("== %s: paper vs measured ==\n", experiment.c_str());
  std::fputs(tls::analysis::render_table(rows).c_str(), stdout);
  std::fputs("\n", stdout);
}

double series_at(const tls::analysis::MonthlyChart& chart,
                 std::size_t series_index, tls::core::Month m) {
  if (series_index >= chart.series.size() || !chart.range.contains(m)) {
    return 0.0;
  }
  return chart.series[series_index]
      .values[static_cast<std::size_t>(m - chart.range.begin_month)];
}

std::string fmt_pct(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
  return buf;
}

}  // namespace bench
