// Shared helpers for the per-figure/per-table bench binaries. Each binary
// regenerates one paper artifact and prints paper-reported anchor values
// next to the measured ones, so EXPERIMENTS.md can be refreshed by running
// `for b in build/bench/*; do $b; done`.
//
// Environment knobs:
//   TLS_STUDY_CPM   connections per month (default 6000)
//   TLS_STUDY_SEED  simulation seed (default 42)
//   TLS_STUDY_CORE  "1" -> core-only catalog (faster, fewer fingerprints)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "telemetry/stopwatch.hpp"

namespace bench {

tls::study::StudyOptions default_options();

/// Wall time of one call, in seconds — the shared timing idiom for every
/// bench binary (tls::telemetry::Stopwatch underneath; no hand-rolled
/// chrono arithmetic).
double timed_seconds(const std::function<void()>& fn);

/// One study per process, built lazily with default_options().
tls::study::LongitudinalStudy& shared_study();

/// Prints an ASCII chart plus its CSV block.
void print_chart(const tls::analysis::MonthlyChart& chart, bool csv = false);

struct Anchor {
  std::string metric;
  std::string paper;
  std::string measured;
};

/// Prints the paper-vs-measured anchor table for one experiment.
void print_anchors(const std::string& experiment,
                   const std::vector<Anchor>& anchors);

/// Value of `series` at month m within `range`; 0 when out of range.
double series_at(const tls::analysis::MonthlyChart& chart,
                 std::size_t series_index, tls::core::Month m);

std::string fmt_pct(double value_0_to_100, int decimals = 1);

}  // namespace bench
