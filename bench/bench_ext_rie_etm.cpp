// §9 extension-deployment tracking, the analyses the paper says its dataset
// supports but space precluded: the renegotiation-info extension (RIE) as
// the response to the 2009 renegotiation attack (near-universal in our
// window), the very limited uptake of Encrypt-then-MAC as the Lucky 13
// response, and extended-master-secret deployment for contrast.
#include <cstdio>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();

  const auto offered = [&](std::uint64_t tls::notary::MonthlyStats::*field) {
    return [field](const tls::notary::MonthlyStats& s) {
      return s.pct(s.*field);
    };
  };

  tls::analysis::MonthlyChart chart;
  chart.title =
      "Extension deployment: RIE / Encrypt-then-MAC / EMS (% of monthly "
      "connections offering)";
  chart.range = study.options().window;
  chart.series.push_back(study.monthly_series(
      "renegotiation_info",
      offered(&tls::notary::MonthlyStats::reneg_info_offered)));
  chart.series.push_back(study.monthly_series(
      "encrypt_then_mac", offered(&tls::notary::MonthlyStats::etm_offered)));
  chart.series.push_back(study.monthly_series(
      "extended_master_secret",
      offered(&tls::notary::MonthlyStats::ems_offered)));
  bench::print_chart(chart);

  auto& mon = study.monitor();
  const auto at = [&](Month m) { return mon.month(m); };
  const auto pct = [](const tls::notary::MonthlyStats* s, std::uint64_t v) {
    return s == nullptr || s->total == 0
               ? 0.0
               : 100.0 * static_cast<double>(v) / static_cast<double>(s->total);
  };
  const auto* early = at(Month(2012, 6));
  const auto* late = at(Month(2018, 3));

  bench::print_anchors(
      "Section 9 extension tracking",
      {
          {"RIE offered, 2012", "already widespread post-2009 attack",
           early == nullptr ? "-" : bench::fmt_pct(pct(early, early->reneg_info_offered))},
          {"RIE offered, 2018", "near universal",
           late == nullptr ? "-" : bench::fmt_pct(pct(late, late->reneg_info_offered))},
          {"EtM offered, 2018", "very limited take-up",
           late == nullptr ? "-" : bench::fmt_pct(pct(late, late->etm_offered))},
          {"EtM negotiated, 2018",
           "rarer still (CBC-only per RFC 7366, AEAD dominates)",
           late == nullptr ? "-" : bench::fmt_pct(pct(late, late->etm_negotiated), 2)},
          {"EMS offered, 2018", "mainstream (browsers since ~2015)",
           late == nullptr ? "-" : bench::fmt_pct(pct(late, late->ems_offered))},
          {"session-id resumption, 2018 (library feature; no paper anchor)",
           "-", late == nullptr ? "-" : bench::fmt_pct(pct(late, late->resumed))},
      });
  return 0;
}
