// Figure 10: % of connections advertising AES-GCM / ChaCha20-Poly1305 /
// AES-CCM. Paper anchors: GCM advertising rises with TLS 1.2 clients from
// late 2013; many clients offer ChaCha by 2017-18; AES-CCM offered in just
// 0.3% of connections across the dataset.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure10_aead_advertised();
  bench::print_chart(chart);

  // Dataset-wide CCM advertising share.
  auto& mon = study.monitor();
  std::uint64_t ccm = 0, total = 0;
  for (const auto& [m, s] : mon.months()) {
    ccm += s.adv_ccm;
    total += s.total;
  }
  const double ccm_pct =
      total == 0 ? 0 : 100.0 * static_cast<double>(ccm) / static_cast<double>(total);

  // Series order: AES128-GCM, AES256-GCM, ChaCha20, AES-CCM.
  bench::print_anchors(
      "Figure 10",
      {
          {"AES128-GCM advertised 2014-08", "majority of connections",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2014, 8)))},
          {"AES128-GCM advertised 2018-03", "~95-100%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
          {"ChaCha advertised 2018-03", "large share of clients",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2018, 3)))},
          {"AES-CCM advertised (dataset)", "0.3%", bench::fmt_pct(ccm_pct, 2)},
      });
  return 0;
}
