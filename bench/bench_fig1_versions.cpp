// Figure 1: negotiated SSL/TLS versions over time, with attack markers.
// Paper anchors: ~90% TLS 1.0 in early 2012; TLS 1.1 bump mid-2012..late
// 2013; TLS 1.2 at ~90% by 2018; TLS 1.0 down to 2.8% in Feb 2018; SSL3
// negligible after mid-2014.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure1_versions();
  bench::print_chart(chart);

  // Series order: SSLv3, TLSv1.0, TLSv1.1, TLSv1.2.
  bench::print_anchors(
      "Figure 1",
      {
          {"TLS1.0 share 2012-02", "~90-100%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2012, 2)))},
          {"TLS1.2 share 2014-08", "~50%",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2014, 8)))},
          {"TLS1.2 share 2018-02", "~90%",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2018, 2)))},
          {"TLS1.0 share 2018-02", "2.8%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2018, 2)))},
          {"TLS1.1 peak mid-2013", "noticeable bump (~5-20%)",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2013, 6)))},
          {"SSL3 share 2014-08", "<1%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2014, 8)), 2)},
      });
  return 0;
}
