// Figure 2: negotiated RC4 / CBC / AEAD cipher classes.
// Paper anchors: RC4 ~60% in Aug 2013 -> ~0 in Mar 2018; CBC popular until
// Aug 2015 then declining to ~10% by 2018; AEAD rising from late 2013 to
// ~90% of traffic.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure2_negotiated_classes();
  bench::print_chart(chart);

  // Series order: AEAD, CBC, RC4.
  bench::print_anchors(
      "Figure 2",
      {
          {"RC4 negotiated 2013-08", "~60%",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2013, 8)))},
          {"RC4 negotiated 2018-03", "~0%",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2018, 3)), 2)},
          {"CBC negotiated 2015-08", "still popular (~40-55%)",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2015, 8)))},
          {"CBC negotiated 2018-03", "~10%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2018, 3)))},
          {"AEAD negotiated 2018-03", "~85-90%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
      });
  return 0;
}
