// Figure 3: connections whose client advertises RC4 / DES / 3DES / AEAD.
// Paper anchors: CBC always >99%; near-universal 3DES advertising until
// late 2016, still >69% in 2018; RC4 advertising drops at the start of 2015
// (browser removals); AEAD advertised in most connections by 2015.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure3_advertised_classes();
  bench::print_chart(chart);

  // Series order: AEAD, RC4, DES, 3DES.
  auto& mon = study.monitor();
  double cbc2018 = 0;
  if (const auto* s = mon.month(Month(2018, 3))) cbc2018 = s->pct(s->adv_cbc);

  bench::print_anchors(
      "Figure 3",
      {
          {"3DES advertised 2016-08", "nearly all clients (>90%)",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2016, 8)))},
          {"3DES advertised 2018-03", ">69%",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2018, 3)))},
          {"RC4 advertised 2014-12", "high (~80-95%)",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2014, 12)))},
          {"RC4 advertised 2016-06", "reduced sharply",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2016, 6)))},
          {"AEAD advertised 2018-03", "~95-100%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
          {"CBC advertised 2018-03", ">99%", bench::fmt_pct(cbc2018)},
      });
  return 0;
}
