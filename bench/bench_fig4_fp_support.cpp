// Figure 4: % of distinct monthly fingerprints supporting RC4/DES/3DES/AEAD.
// Paper anchors: CBC support near-universal; RC4 removal by fingerprint
// count is much slower than by connection count — 39.9% of fingerprints
// still support RC4 in Mar 2018; >70% still offer 3DES in 2018.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure4_fingerprint_support();
  bench::print_chart(chart);

  // Series order: AEAD, RC4, DES, 3DES.
  bench::print_anchors(
      "Figure 4",
      {
          {"FPs supporting RC4 2018-03", "39.9%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2018, 3)))},
          {"FPs supporting 3DES 2018-03", ">70%",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2018, 3)))},
          {"FPs supporting AEAD 2018-03", "majority",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
          {"FPs supporting RC4 2015-01", "high (~70-90%)",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2015, 1)))},
      });
  return 0;
}
