// Figure 5: average relative position of the first AEAD/CBC/RC4/DES/3DES
// suite in client cipher lists. Paper anchors: AEAD and CBC near the top of
// lists with little movement; RC4 mid-list; DES/3DES near the bottom.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure5_relative_positions();
  bench::print_chart(chart);

  // Series order: AEAD, CBC, RC4, DES, 3DES.
  const Month probe(2016, 6);
  bench::print_anchors(
      "Figure 5",
      {
          {"AEAD avg position 2016-06", "near top (~10-20%)",
           bench::fmt_pct(bench::series_at(chart, 0, probe))},
          {"CBC avg position 2016-06", "near top (~20-30%)",
           bench::fmt_pct(bench::series_at(chart, 1, probe))},
          {"RC4 avg position 2016-06", "mid-list (~40-60%)",
           bench::fmt_pct(bench::series_at(chart, 2, probe))},
          {"3DES avg position 2016-06", "bottom (~70-90%)",
           bench::fmt_pct(bench::series_at(chart, 4, probe))},
          {"CBC position drift 2014->2018", "little change",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2018, 3)) -
                          bench::series_at(chart, 1, Month(2014, 10)))},
      });
  return 0;
}
