// Figure 6: % of connections whose client advertises RC4, with browser
// drop dates. Paper anchors: big drop at the beginning of 2015 (Chrome,
// Firefox, IE/Edge removals); residual advertising afterwards from
// non-updating users; 1.03%-level residue never fully disappears.
#include "bench_common.hpp"

#include "clients/catalog.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  auto chart = study.figure6_rc4_advertised();

  // Browser RC4-removal markers (Table 4 dates).
  chart.markers.emplace_back(Month(2015, 5), 'C');  // Chrome 43 & IE/Edge
  chart.markers.emplace_back(Month(2016, 1), 'F');  // Firefox 44
  chart.markers.emplace_back(Month(2015, 6), 'O');  // Opera 30
  chart.markers.emplace_back(Month(2016, 9), 'S');  // Safari 10
  bench::print_chart(chart);

  const double d2014 = bench::series_at(chart, 0, Month(2014, 12));
  const double d2016 = bench::series_at(chart, 0, Month(2016, 6));
  bench::print_anchors(
      "Figure 6",
      {
          {"RC4 advertised 2014-12", "high (~80-95%)", bench::fmt_pct(d2014)},
          {"RC4 advertised 2016-06", "sharply reduced",
           bench::fmt_pct(d2016)},
          {"drop across 2015", ">30pp", bench::fmt_pct(d2014 - d2016)},
          {"RC4 advertised 2018-03", "small residue (slow updaters)",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
      });
  return 0;
}
