// Figure 7: % of monthly connections advertising Export, Anonymous, or
// NULL cipher suites. Paper anchors: export advertised in 28.19% of 2012
// connections -> 1.03% in 2018; anonymous spike from 5.8% to 12.9% in
// mid-2015 (correlated with a NULL spike); NULL offered by ~8% of
// fingerprints / 0.46% of connections in 2018.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure7_weak_advertised();
  bench::print_chart(chart);

  // Series order: Export, Anonymous, Null.
  bench::print_anchors(
      "Figure 7",
      {
          {"Export advertised 2012", "28.19%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2012, 6)))},
          {"Export advertised 2018", "1.03%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)), 2)},
          {"Anon advertised 2015-05 (pre-spike)", "5.8%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2015, 5)))},
          {"Anon advertised 2015-07 (spike)", "12.9%",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2015, 7)))},
          {"NULL advertised 2018", "0.46% of connections",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2018, 3)), 2)},
      });
  return 0;
}
