// Figure 8: negotiated RSA vs DHE vs ECDHE key exchange, Snowden marker.
// Paper anchors: RSA dominant in 2012 (>60% non-FS); strong shift to FS
// starting immediately after 2013-06; ECDHE the vast majority by 2017-18;
// DHE "never found much use".
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure8_key_exchange();
  bench::print_chart(chart);

  // Series order: DHE, ECDHE, RSA.
  const double rsa_2012 = bench::series_at(chart, 2, Month(2012, 6));
  const double rsa_2013_05 = bench::series_at(chart, 2, Month(2013, 5));
  const double rsa_2014_06 = bench::series_at(chart, 2, Month(2014, 6));
  bench::print_anchors(
      "Figure 8",
      {
          {"non-FS (RSA) 2012", ">60%", bench::fmt_pct(rsa_2012)},
          {"RSA drop 2013-05 -> 2014-06 (post-Snowden)", "tremendous shift",
           bench::fmt_pct(rsa_2013_05 - rsa_2014_06) + " drop"},
          {"ECDHE 2017-06", "vast majority (~70-90%)",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2017, 6)))},
          {"DHE peak", "never much use (<~15%)",
           bench::fmt_pct(*std::max_element(chart.series[0].values.begin(),
                                            chart.series[0].values.end()))},
          {"RSA 2018-03", "small minority",
           bench::fmt_pct(bench::series_at(chart, 2, Month(2018, 3)))},
      });
  return 0;
}
