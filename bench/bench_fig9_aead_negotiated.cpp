// Figure 9: negotiated AEAD breakdown (AES-GCM 128/256, ChaCha20-Poly1305,
// AEAD total). Paper anchors: sharp AEAD uptick from late 2013; AES128-GCM
// dominates AES256-GCM; ChaCha20-Poly1305 used in 1.7% of connections in
// Mar 2018.
#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto chart = study.figure9_aead_negotiated();
  bench::print_chart(chart);

  // Series order: AEAD Total, AES128-GCM, AES256-GCM, ChaCha20.
  bench::print_anchors(
      "Figure 9",
      {
          {"AEAD total 2013-06 (pre-uptick)", "near 0%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2013, 6)))},
          {"AEAD total 2018-03", "~85-90%",
           bench::fmt_pct(bench::series_at(chart, 0, Month(2018, 3)))},
          {"AES128-GCM > AES256-GCM 2018-03", "128 dominates",
           bench::fmt_pct(bench::series_at(chart, 1, Month(2018, 3))) + " vs " +
               bench::fmt_pct(bench::series_at(chart, 2, Month(2018, 3)))},
          {"ChaCha20 negotiated 2018-03", "1.7%",
           bench::fmt_pct(bench::series_at(chart, 3, Month(2018, 3)))},
      });
  return 0;
}
