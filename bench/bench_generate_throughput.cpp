// Generate-path throughput: runs the TrafficGenerator over the study
// window with the GenCache off and on, reports connections/sec + template
// hit rate, and fails if the two event streams differ in a single byte.
// The timing lanes use a minimal counting sink (so the number measures
// generation, not observation); a second untimed pass over identical
// generator streams folds every event — serialized hello record, full
// negotiation result, flags — into per-month digests and replays both
// streams through a PassiveMonitor, gating on
//   (1) event-stream digest equality off vs on,
//   (2) monitor export digest equality off vs on, and
//   (3) every GenCache-shipped `client_record` being byte-identical to a
//       from-scratch serialize_record() of the same hello.
//
// Usage: bench_generate_throughput [--gen-cache <on|off>]
//   The flag selects which lane's digests TLS_BENCH_DIGEST_OUT captures
//   (default: the cache-on lane), so CI can `cmp` the files from an
//   on-run and an off-run across processes. Both lanes always execute —
//   the in-process gates above hold for every invocation.
//
// Environment knobs:
//   TLS_STUDY_CPM         connections per month (default 6000)
//   TLS_STUDY_SEED        generator seed (default 42)
//   TLS_STUDY_CORE        "1" -> core-only catalog
//   TLS_BENCH_REPEATS     timing repeats per lane, best kept (default 3)
//   TLS_BENCH_JSON        output path (default BENCH_generate.json)
//   TLS_BENCH_DIGEST_OUT  write the selected lane's digests to this path
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "notary/observe_cache.hpp"

namespace {

using tls::core::Month;
using tls::population::ConnectionEvent;
using tls::population::TrafficGenerator;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
}

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold(std::uint64_t& acc, std::uint64_t v) {
  acc = (acc ^ v) * kFnvPrime;
}

void fold_bytes(std::uint64_t& acc, const std::vector<std::uint8_t>& bytes) {
  fold(acc, tls::notary::ObserveCache::fnv1a64(bytes));
  fold(acc, bytes.size());
}

// Exhaustive text digest of a monitor's exported state (the established
// byte-identity gate shape from bench_observe_throughput).
std::string monitor_digest(const tls::notary::PassiveMonitor& mon) {
  std::ostringstream out;
  for (const auto& [m, s] : mon.months()) {
    out << m.to_string() << ' ' << s.total << ' ' << s.successful << ' '
        << s.failures << ' ' << s.quarantined << ' ' << s.fallbacks << ' '
        << s.spec_violations << ' ' << s.resumed << ' ' << s.adv_aead << ' '
        << s.adv_rc4 << ' ' << s.adv_fs << ' ' << s.heartbeat_negotiated
        << ' ' << s.negotiated_tls13 << '\n';
    for (const auto& [v, n] : s.negotiated_version()) {
      out << "v " << v << ' ' << n << '\n';
    }
    for (const auto& [c, n] : s.negotiated_class()) {
      out << "c " << static_cast<int>(c) << ' ' << n << '\n';
    }
    for (const auto& [g, n] : s.negotiated_group()) {
      out << "g " << g << ' ' << n << '\n';
    }
    for (const auto& [hash, flags] : std::map<std::string, std::uint8_t>(
             s.fingerprints.begin(), s.fingerprints.end())) {
      out << "f " << hash << ' ' << static_cast<int>(flags) << '\n';
    }
  }
  return out.str();
}

struct LaneResult {
  double cps = 0;
  std::uint64_t events = 0;
  std::string stream_digest;   // per-month event-stream digest text
  std::string export_digest;   // monitor export digest
  std::uint64_t wire_mismatches = 0;
  tls::population::GenCache::Stats stats;
};

// Timed lanes: identical generator streams, counting sink only.
double timed_lane(const tls::population::MarketModel& market,
                  const tls::servers::ServerPopulation& servers,
                  const tls::study::StudyOptions& opts, bool cache_on,
                  std::size_t repeats, std::uint64_t* events_out) {
  double best = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    TrafficGenerator gen(market, servers, opts.seed);
    gen.set_gen_cache(cache_on);
    std::uint64_t events = 0;
    std::uint64_t sink = 0;  // defeats dead-code elimination
    const double wall = bench::timed_seconds([&] {
      for (Month m = opts.window.begin_month; m <= opts.window.end_month;
           ++m) {
        gen.generate_month_batched(
            m, opts.connections_per_month, 256,
            [&](std::span<const ConnectionEvent> span) {
              events += span.size();
              for (const auto& ev : span) {
                sink += ev.result.negotiated_cipher + ev.day.day();
              }
            });
      }
    });
    if (sink == 0xdeadbeef) std::printf("~");  // keep `sink` observable
    *events_out = events;
    if (wall > 0) best = std::max(best, static_cast<double>(events) / wall);
  }
  return best;
}

// Untimed digest pass over the same deterministic stream.
LaneResult digest_lane(const tls::population::MarketModel& market,
                       const tls::servers::ServerPopulation& servers,
                       const tls::fp::FingerprintDatabase& database,
                       const tls::study::StudyOptions& opts, bool cache_on) {
  LaneResult lane;
  TrafficGenerator gen(market, servers, opts.seed);
  gen.set_gen_cache(cache_on);
  tls::notary::PassiveMonitor mon(&database);
  std::ostringstream digest;
  std::vector<std::uint8_t> scratch;
  for (Month m = opts.window.begin_month; m <= opts.window.end_month; ++m) {
    std::uint64_t acc = 14695981039346656037ULL;
    gen.generate_month_batched(
        m, opts.connections_per_month, 256,
        [&](std::span<const ConnectionEvent> span) {
          for (const auto& ev : span) {
            ++lane.events;
            mon.observe(ev);
            fold(acc, static_cast<std::uint64_t>(ev.day.day()));
            fold(acc, ev.sslv2 ? 1 : 0);
            if (ev.sslv2) continue;
            ev.hello.serialize_record_into(scratch);
            if (!ev.client_record.empty() && ev.client_record != scratch) {
              ++lane.wire_mismatches;
            }
            fold_bytes(acc, scratch);
            const auto& r = ev.result;
            fold(acc, (r.success ? 1u : 0u) |
                          (static_cast<std::uint64_t>(r.failure) << 1) |
                          (r.resumed ? 0x100u : 0u) |
                          (r.spec_violation ? 0x200u : 0u) |
                          (r.heartbeat_negotiated ? 0x400u : 0u) |
                          (ev.used_fallback ? 0x800u : 0u));
            fold(acc, (static_cast<std::uint64_t>(r.negotiated_version)
                       << 32) |
                          (static_cast<std::uint64_t>(r.negotiated_cipher)
                           << 16) |
                          r.negotiated_group);
            if (r.server_hello.has_value()) {
              r.server_hello->serialize_record_into(scratch);
              fold_bytes(acc, scratch);
            }
          }
        });
    char line[64];
    std::snprintf(line, sizeof(line), "%s %016llx\n",
                  m.to_string().c_str(),
                  static_cast<unsigned long long>(acc));
    digest << line;
  }
  lane.stream_digest = digest.str();
  lane.export_digest = monitor_digest(mon);
  lane.stats = gen.gen_cache_stats();
  return lane;
}

}  // namespace

int main(int argc, char** argv) {
  bool digest_lane_on = true;  // which lane TLS_BENCH_DIGEST_OUT captures
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gen-cache") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      if (std::strcmp(v, "on") == 0) {
        digest_lane_on = true;
      } else if (std::strcmp(v, "off") == 0) {
        digest_lane_on = false;
      } else {
        std::fprintf(stderr, "unknown --gen-cache '%s' (want on|off)\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_generate_throughput [--gen-cache <on|off>]\n");
      return 2;
    }
  }

  const auto opts = bench::default_options();
  const std::size_t repeats =
      std::max<std::size_t>(1, env_size("TLS_BENCH_REPEATS", 3));
  const char* json_path_env = std::getenv("TLS_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_generate.json";

  const auto catalog = opts.full_catalog ? tls::clients::Catalog::standard()
                                         : tls::clients::Catalog::core_only();
  const auto database = tls::study::LongitudinalStudy::build_database(catalog);
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  const std::size_t months = static_cast<std::size_t>(
      opts.window.end_month.index() - opts.window.begin_month.index() + 1);

  std::printf("== bench_generate_throughput ==\n");
  std::printf("%zu months x %zu conn/month, seed %llu\n\n", months,
              opts.connections_per_month,
              static_cast<unsigned long long>(opts.seed));

  std::uint64_t off_events = 0, on_events = 0;
  const double off_cps =
      timed_lane(market, servers, opts, false, repeats, &off_events);
  const double on_cps =
      timed_lane(market, servers, opts, true, repeats, &on_events);

  const LaneResult off = digest_lane(market, servers, database, opts, false);
  const LaneResult on = digest_lane(market, servers, database, opts, true);

  const bool stream_identical = off.stream_digest == on.stream_digest;
  const bool export_identical = off.export_digest == on.export_digest;
  const bool identical =
      stream_identical && export_identical && on.wire_mismatches == 0;
  const double speedup = off_cps > 0 ? on_cps / off_cps : 0.0;
  const std::uint64_t fills = on.stats.template_hits + on.stats.bypasses;
  const double hit_rate =
      fills > 0 ? static_cast<double>(on.stats.template_hits) /
                      static_cast<double>(fills)
                : 0.0;
  const std::uint64_t plans = on.stats.plan_hits + on.stats.plan_misses;
  const double plan_hit_rate =
      plans > 0 ? static_cast<double>(on.stats.plan_hits) /
                      static_cast<double>(plans)
                : 0.0;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"config", "conn/s", "hit rate", "stream"});
  char off_s[32], on_s[32], hit_s[32];
  std::snprintf(off_s, sizeof(off_s), "%.0f", off_cps);
  std::snprintf(on_s, sizeof(on_s), "%.0f", on_cps);
  std::snprintf(hit_s, sizeof(hit_s), "%.3f", hit_rate);
  rows.push_back({"gen-cache off", off_s, "-", "baseline"});
  rows.push_back({"gen-cache on", on_s, hit_s,
                  identical ? "bit-identical" : "MISMATCH"});
  std::fputs(tls::analysis::render_table(rows).c_str(), stdout);
  std::printf("\nspeedup: %.2fx (target >= 2x on the generate phase)\n",
              speedup);
  std::printf(
      "templates: %llu compiled (%llu wire bytes), plan memo %.3f hit "
      "rate (%llu plans)\n",
      static_cast<unsigned long long>(on.stats.template_misses),
      static_cast<unsigned long long>(on.stats.template_bytes),
      plan_hit_rate,
      static_cast<unsigned long long>(on.stats.plan_misses));

  // CI cross-process gate: an on-run and an off-run must write identical
  // digest files (the stream digest is computed from the serialized
  // structs, so it is lane-independent when the fast path is correct).
  if (const char* digest_path = std::getenv("TLS_BENCH_DIGEST_OUT")) {
    const LaneResult& pick = digest_lane_on ? on : off;
    std::ofstream out(digest_path);
    out << "== event stream ==\n"
        << pick.stream_digest << "== exports ==\n"
        << pick.export_digest;
    std::printf("wrote %s\n", digest_path);
  }

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"connections\": " << on.events << ",\n"
       << "  \"months\": " << months << ",\n"
       << "  \"cache_off_cps\": " << static_cast<std::uint64_t>(off_cps)
       << ",\n"
       << "  \"cache_on_cps\": " << static_cast<std::uint64_t>(on_cps)
       << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"template_hit_rate\": " << hit_rate << ",\n"
       << "  \"plan_hit_rate\": " << plan_hit_rate << ",\n"
       << "  \"templates_compiled\": " << on.stats.template_misses << ",\n"
       << "  \"template_bytes\": " << on.stats.template_bytes << ",\n"
       << "  \"bypass_events\": " << on.stats.bypasses << ",\n"
       << "  \"wire_mismatches\": " << on.wire_mismatches << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (!stream_identical) {
    std::fprintf(stderr, "FAIL: gen-cache event stream diverged\n");
    return 1;
  }
  if (!export_identical) {
    std::fprintf(stderr, "FAIL: gen-cache monitor exports diverged\n");
    return 1;
  }
  if (on.wire_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu template records != from-scratch serialization\n",
                 static_cast<unsigned long long>(on.wire_mismatches));
    return 1;
  }
  return 0;
}
