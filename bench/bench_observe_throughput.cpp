// Observe-path throughput: replays a fixed pool of pre-serialized captures
// through PassiveMonitor::observe_wire with the ObserveCache off and on,
// reports connections/sec + cache hit rate, and fails if the two monitors
// disagree on a single exported counter. A third run attaches a telemetry
// registry to the cache-on monitor and reports the overhead of the enabled
// counter hooks (the disabled path is the no-op sink: the off/on runs have
// null handles, one branch per event). The pool models the paper's
// heavy-hitter skew (319.3B connections onto ~70k fingerprints): a few
// hundred distinct records observed over and over.
//
// A fourth section replays a low-locality pool (distinct records several
// times the cache capacity, so a cyclic replay evicts every entry before
// it is seen again) and reports the degraded hit rate and residual
// overhead: the cache must fail soft, never wrong.
//
// Cache-off rows replay per-record through observe_wire (the scalar-MD5
// reference path); cache-on rows replay through observe_wire_batch in
// generation-sized chunks, exercising the SIMD multi-lane miss path. The
// digest gates therefore also prove batched-SIMD == per-record-scalar.
//
// Environment knobs:
//   TLS_BENCH_POOL        distinct captures in the pool (default 400)
//   TLS_BENCH_POOL_COLD   distinct captures in the low-locality pool
//                         (default 16384 — many times the cache capacity)
//   TLS_BENCH_REPLAY      total observations per run (default 200000)
//   TLS_BENCH_REPEATS     timing repeats per row; each repeat replays into
//                         a fresh monitor and the row reports the best
//                         (default 3 — the repeats are deterministic
//                         replicas, so max-throughput filters scheduler
//                         noise without changing any digest)
//   TLS_BENCH_JSON        output path (default BENCH_observe.json)
//   TLS_BENCH_DIGEST_OUT  also write the exported-state digests to this
//                         path (CI compares runs under TLS_MD5_FORCE)
//   TLS_STUDY_SEED        pool-sampling seed (default 42)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>
#include <span>

#include "bench_common.hpp"
#include "fingerprint/md5_multilane.hpp"
#include "telemetry/metrics.hpp"
#include "wire/server_key_exchange.hpp"

namespace {

using tls::core::Month;

struct Capture {
  std::vector<std::uint8_t> client;
  std::vector<std::uint8_t> server;
  std::vector<std::uint8_t> ske;
  std::vector<std::uint8_t> alert;
  bool success = false;
  bool used_fallback = false;
};

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
}

// Serializes one generated event exactly the way PassiveMonitor::observe
// does, so the replay stream is indistinguishable from live capture.
Capture to_capture(const tls::population::ConnectionEvent& ev) {
  Capture c;
  c.client = ev.hello.serialize_record();
  c.success = ev.result.success;
  c.used_fallback = ev.used_fallback;
  if (ev.result.server_hello.has_value()) {
    const auto& sh = *ev.result.server_hello;
    c.server = sh.serialize_record();
    if (ev.result.negotiated_group != 0 &&
        !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
      c.ske = tls::wire::EcdheServerKeyExchange::stub(ev.result.negotiated_group)
                  .serialize_record(sh.legacy_version);
    }
  }
  if (!ev.result.success &&
      ev.result.failure != tls::handshake::FailureReason::kNone) {
    c.alert =
        tls::handshake::alert_for(ev.result.failure).serialize_record(0x0301);
  }
  return c;
}

// Exhaustive text digest of a monitor's exported state; byte equality of
// two digests is the cache-on/off correctness gate.
std::string digest(const tls::notary::PassiveMonitor& mon) {
  std::ostringstream out;
  for (const auto& [m, s] : mon.months()) {
    out << m.to_string() << ' ' << s.total << ' ' << s.successful << ' '
        << s.failures << ' ' << s.quarantined << ' ' << s.fallbacks << ' '
        << s.spec_violations << ' ' << s.resumed << ' ' << s.adv_aead << ' '
        << s.adv_rc4 << ' ' << s.adv_fs << ' ' << s.heartbeat_negotiated
        << ' ' << s.negotiated_tls13 << '\n';
    for (const auto& [v, n] : s.negotiated_version()) {
      out << "v " << v << ' ' << n << '\n';
    }
    for (const auto& [c, n] : s.negotiated_class()) {
      out << "c " << static_cast<int>(c) << ' ' << n << '\n';
    }
    for (const auto& [k, n] : s.negotiated_kex()) {
      out << "k " << static_cast<int>(k) << ' ' << n << '\n';
    }
    for (const auto& [a, n] : s.negotiated_aead()) {
      out << "a " << static_cast<int>(a) << ' ' << n << '\n';
    }
    for (const auto& [g, n] : s.negotiated_group()) {
      out << "g " << g << ' ' << n << '\n';
    }
    for (const auto& [d, n] : s.alerts()) {
      out << "al " << static_cast<int>(d) << ' ' << n << '\n';
    }
    for (const auto& [e, n] : s.parse_errors()) {
      out << "e " << static_cast<int>(e) << ' ' << n << '\n';
    }
    for (const auto& [hash, flags] : std::map<std::string, std::uint8_t>(
             s.fingerprints.begin(), s.fingerprints.end())) {
      out << "f " << hash << ' ' << static_cast<int>(flags) << '\n';
    }
  }
  return out.str();
}

// Samples `pool_size` non-SSLv2 captures from a fresh generator stream.
std::vector<Capture> build_pool(const tls::population::MarketModel& market,
                                const tls::servers::ServerPopulation& servers,
                                Month m, std::size_t pool_size,
                                std::uint64_t seed) {
  std::vector<Capture> pool;
  pool.reserve(pool_size);
  tls::population::TrafficGenerator gen(market, servers, seed);
  while (pool.size() < pool_size) {
    gen.generate_month(m, 1,
                       [&](const tls::population::ConnectionEvent& ev) {
                         if (!ev.sslv2 && pool.size() < pool_size) {
                           pool.push_back(to_capture(ev));
                         }
                       });
  }
  return pool;
}

double replay(tls::notary::PassiveMonitor& mon, Month m,
              const std::vector<Capture>& pool, std::size_t total) {
  const tls::core::Date day(m.year(), m.month(), 15);
  const double wall = bench::timed_seconds([&] {
    for (std::size_t i = 0; i < total; ++i) {
      const Capture& c = pool[i % pool.size()];
      mon.observe_wire(m, day, c.client, c.server, c.ske, c.success,
                       c.used_fallback, c.alert);
    }
  });
  return wall > 0 ? static_cast<double>(total) / wall : 0.0;
}

// One-time pool conversion for the batched entry point (outside timing).
std::vector<tls::notary::PassiveMonitor::WireCapture> to_wire_pool(
    const std::vector<Capture>& pool, Month m) {
  const tls::core::Date day(m.year(), m.month(), 15);
  std::vector<tls::notary::PassiveMonitor::WireCapture> wire;
  wire.reserve(pool.size());
  for (const Capture& c : pool) {
    tls::notary::PassiveMonitor::WireCapture w;
    w.month = m;
    w.day = day;
    w.client = c.client;
    w.server = c.server;
    w.ske = c.ske;
    w.alert = c.alert;
    w.success = c.success;
    w.used_fallback = c.used_fallback;
    wire.push_back(std::move(w));
  }
  return wire;
}

// Batched replay: the study runner's generation size (256) per
// observe_wire_batch call, cycling the pool in contiguous windows.
double replay_batched(
    tls::notary::PassiveMonitor& mon,
    const std::vector<tls::notary::PassiveMonitor::WireCapture>& pool,
    std::size_t total) {
  constexpr std::size_t kBatch = 256;
  const double wall = bench::timed_seconds([&] {
    std::size_t pos = 0;
    for (std::size_t left = total; left > 0;) {
      const std::size_t n = std::min({kBatch, pool.size() - pos, left});
      mon.observe_wire_batch(
          std::span<const tls::notary::PassiveMonitor::WireCapture>(
              pool.data() + pos, n));
      left -= n;
      pos = (pos + n) % pool.size();
    }
  });
  return wall > 0 ? static_cast<double>(total) / wall : 0.0;
}

}  // namespace

int main() {
  const std::size_t pool_size = env_size("TLS_BENCH_POOL", 400);
  const std::size_t total = env_size("TLS_BENCH_REPLAY", 200000);
  const std::size_t repeats = std::max<std::size_t>(
      1, env_size("TLS_BENCH_REPEATS", 3));
  const char* json_path_env = std::getenv("TLS_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_observe.json";
  const std::uint64_t seed = env_size("TLS_STUDY_SEED", 42);

  // Default catalog mix at a fingerprint-era month.
  const auto catalog = tls::clients::Catalog::standard();
  const auto database = tls::study::LongitudinalStudy::build_database(catalog);
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);
  const Month m(2017, 1);

  const std::vector<Capture> pool =
      build_pool(market, servers, m, pool_size, seed);

  std::printf("== bench_observe_throughput ==\n");
  std::printf("pool=%zu distinct captures, replay=%zu observations\n\n",
              pool.size(), total);

  std::printf("md5 backend: %s\n\n",
              tls::fp::to_string(tls::fp::md5_active_backend()));

  // Every repeat replays the identical deterministic stream into a fresh
  // monitor, so taking the fastest repeat filters scheduler/thermal noise
  // while the surviving monitor's state (used for digests and hit rates)
  // is the same whichever repeat ran fastest. All rows are interleaved
  // inside one repeat loop (below) so that slow drift — a box that heats
  // up or gains a neighbor halfway through — hits every config equally
  // instead of skewing the later rows' ratios.
  const auto wire_pool = to_wire_pool(pool, m);

  // Low-locality pool: distinct records several times the cache capacity.
  // A cyclic replay over an LRU this much smaller than the pool evicts
  // every entry before its next use, so the hit rate collapses and every
  // observation pays the full miss path (hash + probe + insert + evict).
  // The row quantifies that worst-case overhead; the hard gate is
  // correctness only — exported bytes must stay identical.
  const std::size_t cold_pool_size = env_size("TLS_BENCH_POOL_COLD", 16384);
  const std::vector<Capture> cold_pool =
      build_pool(market, servers, m, cold_pool_size, seed + 1);
  const auto cold_wire_pool = to_wire_pool(cold_pool, m);

  tls::telemetry::MetricsRegistry registry;
  std::optional<tls::notary::PassiveMonitor> cold, warm, telem, lowloc_off,
      lowloc_on;
  double off_cps = 0, on_cps = 0, telem_cps = 0;
  double lowloc_off_cps = 0, lowloc_on_cps = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    cold.emplace(&database);
    cold->set_observe_cache_capacity(0);
    off_cps = std::max(off_cps, replay(*cold, m, pool, total));

    warm.emplace(&database);
    warm->set_observe_cache_capacity(
        tls::notary::ObserveCache::kDefaultCapacity);
    on_cps = std::max(on_cps, replay_batched(*warm, wire_pool, total));

    // Telemetry-attached run: same cache-on config with live counter
    // handles. The delta vs `on_cps` is the enabled-hook overhead; the
    // off/on runs above measure the disabled (null-handle) path.
    telem.emplace(&database);
    telem->set_observe_cache_capacity(
        tls::notary::ObserveCache::kDefaultCapacity);
    telem->set_telemetry(&registry);
    telem_cps = std::max(telem_cps, replay_batched(*telem, wire_pool, total));
    telem->set_telemetry(nullptr);

    lowloc_off.emplace(&database);
    lowloc_off->set_observe_cache_capacity(0);
    lowloc_off_cps =
        std::max(lowloc_off_cps, replay(*lowloc_off, m, cold_pool, total));

    lowloc_on.emplace(&database);
    lowloc_on->set_observe_cache_capacity(
        tls::notary::ObserveCache::kDefaultCapacity);
    lowloc_on_cps = std::max(lowloc_on_cps,
                             replay_batched(*lowloc_on, cold_wire_pool, total));
  }
  const auto& lcs = lowloc_on->observe_cache_stats();
  const bool lowloc_identical = digest(*lowloc_off) == digest(*lowloc_on);
  const double lowloc_speedup =
      lowloc_off_cps > 0 ? lowloc_on_cps / lowloc_off_cps : 0.0;

  const auto& cs = warm->observe_cache_stats();
  const double speedup = off_cps > 0 ? on_cps / off_cps : 0.0;
  const double telem_overhead_pct =
      on_cps > 0 ? 100.0 * (on_cps - telem_cps) / on_cps : 0.0;
  const bool identical = digest(*cold) == digest(*warm);
  const bool telem_identical = digest(*cold) == digest(*telem);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"config", "conn/s", "hit rate", "figures"});
  char off_s[32], on_s[32], tel_s[32], hit_s[32];
  std::snprintf(off_s, sizeof(off_s), "%.0f", off_cps);
  std::snprintf(on_s, sizeof(on_s), "%.0f", on_cps);
  std::snprintf(tel_s, sizeof(tel_s), "%.0f", telem_cps);
  std::snprintf(hit_s, sizeof(hit_s), "%.3f", cs.client.hit_rate());
  rows.push_back({"cache off", off_s, "-", "baseline"});
  rows.push_back(
      {"cache on", on_s, hit_s, identical ? "bit-identical" : "MISMATCH"});
  rows.push_back({"cache on + telemetry", tel_s, hit_s,
                  telem_identical ? "bit-identical" : "MISMATCH"});
  char loff_s[32], lon_s[32], lhit_s[32];
  std::snprintf(loff_s, sizeof(loff_s), "%.0f", lowloc_off_cps);
  std::snprintf(lon_s, sizeof(lon_s), "%.0f", lowloc_on_cps);
  std::snprintf(lhit_s, sizeof(lhit_s), "%.3f", lcs.client.hit_rate());
  rows.push_back({"cache off, low-locality", loff_s, "-", "baseline"});
  rows.push_back({"cache on, low-locality", lon_s, lhit_s,
                  lowloc_identical ? "bit-identical" : "MISMATCH"});
  std::fputs(tls::analysis::render_table(rows).c_str(), stdout);
  std::printf("\nspeedup: %.2fx (target >= 3x)\n", speedup);
  std::printf("telemetry overhead: %+.1f%% (enabled hooks vs cache-on)\n",
              telem_overhead_pct);
  std::printf(
      "low-locality (%zu distinct vs %zu-entry cache): %.2fx, "
      "hit rate %.3f\n",
      cold_pool.size(), tls::notary::ObserveCache::kDefaultCapacity,
      lowloc_speedup, lcs.client.hit_rate());

  // CI cross-run gate: the digests written here must be byte-identical
  // between a default (SIMD) run and a TLS_MD5_FORCE=scalar run.
  if (const char* digest_path = std::getenv("TLS_BENCH_DIGEST_OUT")) {
    std::ofstream out(digest_path);
    out << "== cache off ==\n" << digest(*cold)
        << "== cache on ==\n" << digest(*warm)
        << "== low-locality off ==\n" << digest(*lowloc_off)
        << "== low-locality on ==\n" << digest(*lowloc_on);
    std::printf("wrote %s\n", digest_path);
  }

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"md5_backend\": \""
       << tls::fp::to_string(tls::fp::md5_active_backend()) << "\",\n"
       << "  \"connections\": " << total << ",\n"
       << "  \"distinct_records\": " << pool.size() << ",\n"
       << "  \"cache_off_cps\": " << static_cast<std::uint64_t>(off_cps)
       << ",\n"
       << "  \"cache_on_cps\": " << static_cast<std::uint64_t>(on_cps)
       << ",\n"
       << "  \"telemetry_on_cps\": " << static_cast<std::uint64_t>(telem_cps)
       << ",\n"
       << "  \"telemetry_overhead_pct\": " << telem_overhead_pct << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"client_hit_rate\": " << cs.client.hit_rate() << ",\n"
       << "  \"client_hits\": " << cs.client.hits << ",\n"
       << "  \"client_misses\": " << cs.client.misses << ",\n"
       << "  \"server_hit_rate\": " << cs.server.hit_rate() << ",\n"
       << "  \"evictions\": " << cs.client.evictions + cs.server.evictions
       << ",\n"
       << "  \"low_locality_distinct\": " << cold_pool.size() << ",\n"
       << "  \"low_locality_off_cps\": "
       << static_cast<std::uint64_t>(lowloc_off_cps) << ",\n"
       << "  \"low_locality_on_cps\": "
       << static_cast<std::uint64_t>(lowloc_on_cps) << ",\n"
       << "  \"low_locality_speedup\": " << lowloc_speedup << ",\n"
       << "  \"low_locality_hit_rate\": " << lcs.client.hit_rate() << ",\n"
       << "  \"identical\": "
       << (identical && telem_identical && lowloc_identical ? "true" : "false")
       << "\n"
       << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: cache-on monitor diverged from cache-off\n");
    return 1;
  }
  if (!telem_identical) {
    std::fprintf(stderr,
                 "FAIL: telemetry-attached monitor diverged from cache-off\n");
    return 1;
  }
  if (!lowloc_identical) {
    std::fprintf(stderr,
                 "FAIL: low-locality cache-on monitor diverged from "
                 "cache-off\n");
    return 1;
  }
  return 0;
}
