// Fingerprinting microbenchmarks: extraction (GREASE stripping), canonical
// string building and MD5 hashing.
#include <benchmark/benchmark.h>

#include "clients/catalog.hpp"
#include "fingerprint/fingerprint.hpp"
#include "fingerprint/md5.hpp"

namespace {

tls::wire::ClientHello sample_hello() {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto* cfg =
      catalog.find("Chrome")->config_at(tls::core::Date(2017, 6, 1));
  tls::core::Rng rng(3);
  return tls::clients::make_client_hello(*cfg, rng, "bench.example");
}

void BM_ExtractFingerprint(benchmark::State& state) {
  const auto hello = sample_hello();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::fp::extract_fingerprint(hello));
  }
}
BENCHMARK(BM_ExtractFingerprint);

void BM_FingerprintHash(benchmark::State& state) {
  const auto fp = tls::fp::extract_fingerprint(sample_hello());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp.hash());
  }
}
BENCHMARK(BM_FingerprintHash);

void BM_Md5Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::fp::Md5::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(64)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
