// Negotiation-engine microbenchmarks: server-preference vs client-
// preference selection, TLS 1.3 path, and end-to-end connection generation.
#include <benchmark/benchmark.h>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "handshake/negotiate.hpp"
#include "population/traffic.hpp"
#include "servers/population.hpp"

namespace {

struct Fixture {
  tls::clients::Catalog catalog = tls::clients::Catalog::core_only();
  tls::servers::ServerPopulation servers =
      tls::servers::ServerPopulation::standard();
  tls::core::Rng rng{11};
  tls::wire::ClientHello hello = [this] {
    const auto* cfg =
        catalog.find("Chrome")->config_at(tls::core::Date(2018, 4, 1));
    return tls::clients::make_client_hello(*cfg, rng, "bench.example");
  }();
};

void BM_NegotiateServerPreference(benchmark::State& state) {
  Fixture f;
  const auto& server = f.servers.find("web-modern-ecdhe")->config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::handshake::negotiate(f.hello, server, f.rng));
  }
}
BENCHMARK(BM_NegotiateServerPreference);

void BM_NegotiateClientPreference(benchmark::State& state) {
  Fixture f;
  const auto& server = f.servers.find("web-mobile-clientorder")->config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::handshake::negotiate(f.hello, server, f.rng));
  }
}
BENCHMARK(BM_NegotiateClientPreference);

void BM_NegotiateTls13(benchmark::State& state) {
  Fixture f;
  const auto& server = f.servers.find("web-tls13-exp")->config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::handshake::negotiate(f.hello, server, f.rng));
  }
}
BENCHMARK(BM_NegotiateTls13);

void BM_GenerateConnections(benchmark::State& state) {
  Fixture f;
  const auto market = tls::population::MarketModel::standard(f.catalog);
  tls::population::TrafficGenerator gen(market, f.servers, 5);
  std::size_t n = 0;
  for (auto _ : state) {
    gen.generate_month(tls::core::Month(2016, 6), 100,
                       [&n](const tls::population::ConnectionEvent&) { ++n; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenerateConnections);

}  // namespace

BENCHMARK_MAIN();
