// Serial-vs-parallel wall time for the sharded study runner. Runs the
// full passive pipeline (and the active sweep via export paths is covered
// elsewhere) at each thread count, checks the figures stay bit-identical
// to the serial run, and reports the speedup.
//
// Environment knobs (shared with the figure benches):
//   TLS_STUDY_CPM      connections per month (default 20000 here)
//   TLS_STUDY_SEED     simulation seed
//   TLS_STUDY_THREADS  comma list of thread counts (default "0,2,4,8")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_once(tls::study::StudyOptions opts, unsigned threads,
                std::string* fingerprint_csv) {
  opts.threads = threads;
  tls::study::LongitudinalStudy study(opts);
  const auto start = Clock::now();
  study.run();
  const auto wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  // A cheap whole-pipeline digest: the Fig. 2 CSV covers negotiated
  // counters and the month partition; byte equality across thread counts
  // is the determinism contract.
  *fingerprint_csv = tls::analysis::to_csv(study.figure2_negotiated_classes());
  return wall;
}

}  // namespace

int main() {
  tls::study::StudyOptions opts = bench::default_options();
  if (std::getenv("TLS_STUDY_CPM") == nullptr) {
    opts.connections_per_month = 20000;
  }
  opts.full_catalog = false;

  std::vector<unsigned> thread_counts{0, 2, 4, 8};
  if (const char* env = std::getenv("TLS_STUDY_THREADS")) {
    thread_counts.clear();
    const std::string s(env);
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      thread_counts.push_back(static_cast<unsigned>(
          std::strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  std::printf("== bench_perf_study: sharded runner wall time ==\n");
  std::printf("connections_per_month=%zu window=%d months shards=%zu\n\n",
              opts.connections_per_month, opts.window.size(),
              opts.shards_per_month);

  std::string serial_csv;
  double serial_wall = 0;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"threads", "wall (s)", "speedup", "figures"});
  for (const unsigned threads : thread_counts) {
    std::string csv;
    const double wall = run_once(opts, threads, &csv);
    if (threads == thread_counts.front()) {
      serial_csv = csv;
      serial_wall = wall;
    }
    char wall_s[32], speed_s[32];
    std::snprintf(wall_s, sizeof(wall_s), "%.3f", wall);
    std::snprintf(speed_s, sizeof(speed_s), "%.2fx",
                  wall > 0 ? serial_wall / wall : 0.0);
    rows.push_back({std::to_string(threads), wall_s, speed_s,
                    csv == serial_csv ? "bit-identical" : "MISMATCH"});
  }
  std::fputs(tls::analysis::render_table(rows).c_str(), stdout);

  for (const auto& row : rows) {
    if (row.back() == "MISMATCH") {
      std::fprintf(stderr,
                   "FAIL: thread count %s produced different figures\n",
                   row.front().c_str());
      return 1;
    }
  }
  return 0;
}
