// Serial-vs-parallel wall time for the sharded study runner. Runs the
// full passive pipeline (and the active sweep via export paths is covered
// elsewhere) at each thread count, checks the figures stay bit-identical
// to the serial run, and reports the speedup. A second section measures
// the checkpoint journal: cold journaled run (checkpoint write overhead)
// vs resumed run (every shard replayed from disk instead of recomputed).
//
// A third section runs once with telemetry enabled and prints the phase
// attribution (generate vs observe vs absorb vs checkpoint share of summed
// task time) from the study's own metrics registry.
//
// A fourth section compares the two journal modes: the legacy per-frame
// store (one durable file + fsync pair per frame) against the group-commit
// segmented journal (one fsync per group). Both runs must stay
// bit-identical to the serial figures, and the grouped run must issue
// strictly fewer fsyncs than it commits frames — that structural gate is
// machine-independent; the measured checkpoint-share drop is logged
// against the <15% target rather than hard-asserted.
//
// Environment knobs (shared with the figure benches):
//   TLS_STUDY_CPM      connections per month (default 20000 here)
//   TLS_STUDY_SEED     simulation seed
//   TLS_STUDY_THREADS  comma list of thread counts (default "0,2,4,8")
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/export.hpp"

namespace {

double run_once(tls::study::StudyOptions opts, unsigned threads,
                std::string* fingerprint_csv) {
  opts.threads = threads;
  tls::study::LongitudinalStudy study(opts);
  const double wall = bench::timed_seconds([&] { study.run(); });
  // A cheap whole-pipeline digest: the Fig. 2 CSV covers negotiated
  // counters and the month partition; byte equality across thread counts
  // is the determinism contract.
  *fingerprint_csv = tls::analysis::to_csv(study.figure2_negotiated_classes());
  return wall;
}

/// Histogram sum (µs) for a registry metric, 0 when absent.
std::uint64_t hist_sum_us(const tls::telemetry::MetricsRegistry& reg,
                          const char* name) {
  const auto* m = reg.find(name);
  return m == nullptr ? 0 : m->histogram.sum;
}

}  // namespace

int main() {
  tls::study::StudyOptions opts = bench::default_options();
  if (std::getenv("TLS_STUDY_CPM") == nullptr) {
    opts.connections_per_month = 20000;
  }
  opts.full_catalog = false;

  std::vector<unsigned> thread_counts{0, 2, 4, 8};
  if (const char* env = std::getenv("TLS_STUDY_THREADS")) {
    thread_counts.clear();
    const std::string s(env);
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      thread_counts.push_back(static_cast<unsigned>(
          std::strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  std::printf("== bench_perf_study: sharded runner wall time ==\n");
  std::printf("connections_per_month=%zu window=%d months shards=%zu\n\n",
              opts.connections_per_month, opts.window.size(),
              opts.shards_per_month);

  std::string serial_csv;
  double serial_wall = 0;
  double plain_wall_last = 0;  // un-journaled wall at the last thread count
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"threads", "wall (s)", "speedup", "figures"});
  for (const unsigned threads : thread_counts) {
    std::string csv;
    const double wall = run_once(opts, threads, &csv);
    if (threads == thread_counts.front()) {
      serial_csv = csv;
      serial_wall = wall;
    }
    plain_wall_last = wall;
    char wall_s[32], speed_s[32];
    std::snprintf(wall_s, sizeof(wall_s), "%.3f", wall);
    std::snprintf(speed_s, sizeof(speed_s), "%.2fx",
                  wall > 0 ? serial_wall / wall : 0.0);
    rows.push_back({std::to_string(threads), wall_s, speed_s,
                    csv == serial_csv ? "bit-identical" : "MISMATCH"});
  }
  std::fputs(tls::analysis::render_table(rows).c_str(), stdout);

  for (const auto& row : rows) {
    if (row.back() == "MISMATCH") {
      std::fprintf(stderr,
                   "FAIL: thread count %s produced different figures\n",
                   row.front().c_str());
      return 1;
    }
  }

  // ---- checkpoint journal: write overhead and resume speedup ----
  std::printf("\n== checkpoint journal: cold vs resumed ==\n");
  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "tls_bench_ckpt";
  std::filesystem::remove_all(ckpt_dir);
  auto jopts = opts;
  jopts.threads = thread_counts.back();
  jopts.checkpoint_dir = ckpt_dir.string();

  std::string cold_csv, resumed_csv;
  double cold_wall = 0, resumed_wall = 0;
  {
    tls::study::LongitudinalStudy study(jopts);
    cold_wall = bench::timed_seconds([&] { study.run(); });
    cold_csv = tls::analysis::to_csv(study.figure2_negotiated_classes());
  }
  jopts.resume = true;
  {
    tls::study::LongitudinalStudy study(jopts);
    resumed_wall = bench::timed_seconds([&] { study.run(); });
    resumed_csv = tls::analysis::to_csv(study.figure2_negotiated_classes());
    const auto report = study.recovery();
    std::printf("replayed %llu frames, skipped %llu tasks, recomputed %llu\n",
                static_cast<unsigned long long>(report.frames_replayed),
                static_cast<unsigned long long>(report.tasks_skipped),
                static_cast<unsigned long long>(report.tasks_recomputed));
  }
  std::filesystem::remove_all(ckpt_dir);

  char cold_s[32], resumed_s[32], over_s[32], speed_s[32];
  std::snprintf(cold_s, sizeof(cold_s), "%.3f", cold_wall);
  std::snprintf(resumed_s, sizeof(resumed_s), "%.3f", resumed_wall);
  std::snprintf(over_s, sizeof(over_s), "%+.1f%%",
                plain_wall_last > 0
                    ? 100.0 * (cold_wall - plain_wall_last) / plain_wall_last
                    : 0.0);
  std::snprintf(speed_s, sizeof(speed_s), "%.2fx",
                resumed_wall > 0 ? cold_wall / resumed_wall : 0.0);
  std::vector<std::vector<std::string>> jrows;
  jrows.push_back({"run", "wall (s)", "vs plain", "figures"});
  jrows.push_back({"cold + journal", cold_s, over_s,
                   cold_csv == serial_csv ? "bit-identical" : "MISMATCH"});
  jrows.push_back({"resumed", resumed_s, std::string(speed_s) + " faster",
                   resumed_csv == serial_csv ? "bit-identical" : "MISMATCH"});
  std::fputs(tls::analysis::render_table(jrows).c_str(), stdout);

  if (cold_csv != serial_csv || resumed_csv != serial_csv) {
    std::fprintf(stderr, "FAIL: checkpointed run changed exported bytes\n");
    return 1;
  }

  // ---- phase attribution: where does a journaled run spend its time? ----
  // One telemetry-enabled run; the study's own registry provides the
  // generate / observe / absorb / checkpoint split (summed task time, so
  // shares are thread-count independent up to scheduling noise).
  std::printf("\n== phase attribution (telemetry-enabled run) ==\n");
  auto topts = jopts;
  topts.resume = false;
  topts.telemetry = true;
  topts.checkpoint_dir = ckpt_dir.string();
  std::filesystem::remove_all(ckpt_dir);
  std::string tel_csv;
  {
    tls::study::LongitudinalStudy study(topts);
    study.run();
    tel_csv = tls::analysis::to_csv(study.figure2_negotiated_classes());
    const auto& reg = study.metrics();
    const std::pair<const char*, const char*> phases[] = {
        {"generate", "tls_repro_pipeline_generate_us"},
        {"observe", "tls_repro_pipeline_observe_us"},
        {"absorb", "tls_repro_pipeline_absorb_us"},
        {"checkpoint encode", "tls_repro_checkpoint_encode_us"},
        {"checkpoint append", "tls_repro_checkpoint_append_us"},
    };
    std::uint64_t total_us = 0;
    for (const auto& [label, metric] : phases) {
      total_us += hist_sum_us(reg, metric);
    }
    std::vector<std::vector<std::string>> prows;
    prows.push_back({"phase", "summed task time (s)", "share"});
    for (const auto& [label, metric] : phases) {
      const std::uint64_t us = hist_sum_us(reg, metric);
      char time_s[32], share_s[32];
      std::snprintf(time_s, sizeof(time_s), "%.3f",
                    static_cast<double>(us) / 1e6);
      std::snprintf(share_s, sizeof(share_s), "%.1f%%",
                    total_us > 0
                        ? 100.0 * static_cast<double>(us) /
                              static_cast<double>(total_us)
                        : 0.0);
      prows.push_back({label, time_s, share_s});
    }
    std::fputs(tls::analysis::render_table(prows).c_str(), stdout);
  }
  std::filesystem::remove_all(ckpt_dir);
  if (tel_csv != serial_csv) {
    std::fprintf(stderr, "FAIL: telemetry-enabled run changed exported bytes\n");
    return 1;
  }
  std::printf("telemetry run figures: bit-identical\n");

  // ---- journal modes: per-frame fsync wall vs group commit ----
  // Checkpoint share = (encode + append + writer flush) / total summed
  // phase time. In per-frame mode `append` holds the durable write+fsync
  // pair; in grouped mode `append` is just the enqueue and the write+fsync
  // cost lives in the writer's flush histogram.
  std::printf("\n== journal modes: per-frame vs group commit ==\n");
  struct Lane {
    const char* label;
    tls::study::JournalMode mode;
    double wall = 0;
    double share = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t frames = 0;
    bool identical = false;
  };
  Lane lanes[] = {
      {"per-frame", tls::study::JournalMode::kPerFrame},
      {"group commit", tls::study::JournalMode::kGrouped},
  };
  for (Lane& lane : lanes) {
    std::filesystem::remove_all(ckpt_dir);
    auto lopts = topts;
    lopts.journal_mode = lane.mode;
    // Serial lanes: summed task time on oversubscribed thread pools
    // absorbs scheduler preemption into whichever phase got descheduled,
    // which makes the share comparison noise. One worker gives exact
    // attribution (the writer thread still runs concurrently).
    lopts.threads = 0;
    tls::study::LongitudinalStudy study(lopts);
    lane.wall = bench::timed_seconds([&] { study.run(); });
    lane.identical =
        tls::analysis::to_csv(study.figure2_negotiated_classes()) ==
        serial_csv;
    const auto& reg = study.metrics();
    const std::uint64_t flush_us =
        hist_sum_us(reg, "tls_repro_journal_flush_us");
    const std::uint64_t ckpt_us =
        hist_sum_us(reg, "tls_repro_checkpoint_encode_us") +
        hist_sum_us(reg, "tls_repro_checkpoint_append_us") + flush_us;
    const std::uint64_t total_us =
        hist_sum_us(reg, "tls_repro_pipeline_generate_us") +
        hist_sum_us(reg, "tls_repro_pipeline_observe_us") +
        hist_sum_us(reg, "tls_repro_pipeline_absorb_us") + ckpt_us;
    lane.share = total_us > 0 ? 100.0 * static_cast<double>(ckpt_us) /
                                    static_cast<double>(total_us)
                              : 0.0;
    const auto* fsync = reg.find("tls_repro_journal_fsync_total");
    lane.fsyncs = fsync == nullptr ? 0 : fsync->counter.value;
    lane.frames = study.recovery().tasks_recomputed;
  }
  std::filesystem::remove_all(ckpt_dir);

  std::vector<std::vector<std::string>> mrows;
  mrows.push_back(
      {"mode", "wall (s)", "ckpt share", "journal fsyncs", "frames",
       "figures"});
  for (const Lane& lane : lanes) {
    char wall_b[32], share_b[32];
    std::snprintf(wall_b, sizeof(wall_b), "%.3f", lane.wall);
    std::snprintf(share_b, sizeof(share_b), "%.1f%%", lane.share);
    mrows.push_back({lane.label, wall_b, share_b,
                     lane.mode == tls::study::JournalMode::kGrouped
                         ? std::to_string(lane.fsyncs)
                         : "2/frame",
                     std::to_string(lane.frames),
                     lane.identical ? "bit-identical" : "MISMATCH"});
  }
  std::fputs(tls::analysis::render_table(mrows).c_str(), stdout);
  const Lane& per_frame = lanes[0];
  const Lane& grouped = lanes[1];
  std::printf(
      "checkpoint share: %.1f%% (per-frame) -> %.1f%% (grouped); "
      "target < 15%%: %s\n",
      per_frame.share, grouped.share,
      grouped.share < 15.0 ? "met" : "missed (logged, not gated)");

  if (!per_frame.identical || !grouped.identical) {
    std::fprintf(stderr, "FAIL: journal-mode run changed exported bytes\n");
    return 1;
  }

  // ---- gen-cache: template fast path vs legacy generation ----
  // Two serial telemetry-enabled runs (no journal) differing only in the
  // gen_cache toggle. The generate-phase histogram isolates producer time
  // exactly; figures must stay byte-identical (the toggle's contract), and
  // the >=2x generate-phase speedup is logged against its target.
  std::printf("\n== generate phase: gen-cache off vs on ==\n");
  struct GenLane {
    const char* label;
    bool on;
    double wall = 0;
    double gen_s = 0;
    bool identical = false;
  };
  GenLane glanes[] = {
      {"gen-cache off", false},
      {"gen-cache on", true},
  };
  for (GenLane& lane : glanes) {
    auto gopts = opts;
    gopts.threads = 0;
    gopts.telemetry = true;
    gopts.gen_cache = lane.on;
    tls::study::LongitudinalStudy study(gopts);
    lane.wall = bench::timed_seconds([&] { study.run(); });
    lane.identical =
        tls::analysis::to_csv(study.figure2_negotiated_classes()) ==
        serial_csv;
    lane.gen_s =
        static_cast<double>(hist_sum_us(
            study.metrics(), "tls_repro_pipeline_generate_us")) /
        1e6;
  }
  std::vector<std::vector<std::string>> grows;
  grows.push_back({"config", "wall (s)", "generate phase (s)", "figures"});
  for (const GenLane& lane : glanes) {
    char wall_b[32], gen_b[32];
    std::snprintf(wall_b, sizeof(wall_b), "%.3f", lane.wall);
    std::snprintf(gen_b, sizeof(gen_b), "%.3f", lane.gen_s);
    grows.push_back({lane.label, wall_b, gen_b,
                     lane.identical ? "bit-identical" : "MISMATCH"});
  }
  std::fputs(tls::analysis::render_table(grows).c_str(), stdout);
  const double gen_speedup =
      glanes[1].gen_s > 0 ? glanes[0].gen_s / glanes[1].gen_s : 0.0;
  std::printf("generate phase: %.2fx faster with gen-cache on; "
              "target >= 2x: %s\n",
              gen_speedup,
              gen_speedup >= 2.0 ? "met" : "missed (logged, not gated)");
  if (!glanes[0].identical || !glanes[1].identical) {
    std::fprintf(stderr, "FAIL: gen-cache toggle changed exported bytes\n");
    return 1;
  }

  if (grouped.frames > 0 && grouped.fsyncs >= grouped.frames) {
    std::fprintf(stderr,
                 "FAIL: group commit issued %llu fsyncs for %llu frames "
                 "(no amortization)\n",
                 static_cast<unsigned long long>(grouped.fsyncs),
                 static_cast<unsigned long long>(grouped.frames));
    return 1;
  }
  return 0;
}
