// Wire-codec microbenchmarks: ClientHello serialize/parse and record
// framing throughput — the per-connection cost floor of the passive
// monitor.
#include <benchmark/benchmark.h>

#include "clients/catalog.hpp"
#include "wire/client_hello.hpp"

namespace {

tls::wire::ClientHello sample_hello() {
  const auto catalog = tls::clients::Catalog::core_only();
  const auto* cfg =
      catalog.find("Chrome")->config_at(tls::core::Date(2017, 6, 1));
  tls::core::Rng rng(3);
  return tls::clients::make_client_hello(*cfg, rng, "bench.example");
}

void BM_ClientHelloSerialize(benchmark::State& state) {
  const auto hello = sample_hello();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hello.serialize_record());
  }
}
BENCHMARK(BM_ClientHelloSerialize);

void BM_ClientHelloParse(benchmark::State& state) {
  const auto bytes = sample_hello().serialize_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tls::wire::ClientHello::parse_record(bytes));
  }
}
BENCHMARK(BM_ClientHelloParse);

void BM_RecordRoundTrip(benchmark::State& state) {
  tls::wire::Record rec;
  rec.fragment.assign(512, 0xab);
  for (auto _ : state) {
    const auto bytes = rec.serialize();
    benchmark::DoNotOptimize(tls::wire::Record::parse(bytes));
  }
}
BENCHMARK(BM_RecordRoundTrip);

}  // namespace

BENCHMARK_MAIN();
