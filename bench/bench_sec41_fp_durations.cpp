// §4.1: fingerprint lifetime statistics. Paper anchors (at 191.9G
// connections): 69,874 usable fingerprints; median duration 1 day; mean
// 158.8 days; Q3 171 days; stddev 302.31; max 1,235 days; 42,188 single-day
// fingerprints carrying only 801,232 connections; 1,203 fingerprints seen
// >1200 days carrying 21.75% of fingerprintable connections.
// Our dataset is ~5 orders of magnitude smaller, so absolute fingerprint
// counts scale down; the distribution's shape (median 1 day, heavy single-
// day mass, a long-lived cohort carrying a large traffic share) must hold.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  auto& study = bench::shared_study();
  const auto& tracker = study.monitor().durations();
  const auto s = tracker.summarize(/*long_lived_threshold=*/1100);

  char buf[64];
  const auto fmt = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };

  bench::print_anchors(
      "Section 4.1 fingerprint durations",
      {
          {"usable fingerprints", "69,874 (full-scale)",
           std::to_string(s.fingerprint_count) + " (scaled)"},
          {"median duration (days)", "1", fmt(s.median_days)},
          {"mean duration (days)", "158.8", fmt(s.mean_days)},
          {"3rd quartile (days)", "171", fmt(s.q3_days)},
          {"stddev (days)", "302.31", fmt(s.stddev_days)},
          {"max duration (days)", "1,235", std::to_string(s.max_days)},
          {"single-day fingerprints", "42,188 (60% of FPs)",
           std::to_string(s.single_day_count) + " (" +
               bench::fmt_pct(100.0 * static_cast<double>(s.single_day_count) /
                              static_cast<double>(s.fingerprint_count)) +
               " of FPs)"},
          {"single-day FPs' connection share", "~0.0004%",
           bench::fmt_pct(100.0 *
                              static_cast<double>(s.single_day_connections) /
                              static_cast<double>(s.total_connections),
                          4)},
          {"long-lived (>1200d full / >1100d scaled) FPs' share", "21.75%",
           bench::fmt_pct(100.0 * s.long_lived_connection_share)},
      });

  std::printf("note: window is %d months; max observable duration %d days\n",
              tls::core::MonthRange{tls::notary::PassiveMonitor::fp_start(),
                                    study.options().window.end_month}
                  .size(),
              static_cast<int>(
                  study.options().window.end_month.first_day().to_days() -
                  tls::notary::PassiveMonitor::fp_start().first_day().to_days()) +
                  30);
  return 0;
}
