// §4 feature-set ablation: the paper's fingerprint omits the client
// version, compression methods and signature algorithms that prior work
// [22, 45] used. Applying the restricted methodology to the prior-work
// corpus raised the collision rate from 2.4% to 7.3%. We regenerate the
// comparison over the full catalog: fraction of (software, version)
// configurations whose fingerprint collides with a *different* software
// under each feature set.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fingerprint/fingerprint.hpp"

int main() {
  const auto& catalog = tls::clients::standard_catalog();
  tls::core::Rng rng(31);

  std::map<std::string, std::vector<const tls::clients::ClientProfile*>>
      restricted, extended;
  std::size_t configs = 0;
  for (const auto& p : catalog.profiles()) {
    for (const auto& cfg : p.versions) {
      if (cfg.randomizes_cipher_order) continue;
      const auto hello = tls::clients::make_client_hello(cfg, rng, "c.test");
      restricted[tls::fp::extract_fingerprint(hello).hash()].push_back(&p);
      extended[tls::fp::extended_fingerprint_hash(hello)].push_back(&p);
      ++configs;
    }
  }

  const auto collision_rate = [](const auto& index) {
    std::size_t colliding_hashes = 0;
    for (const auto& [hash, owners] : index) {
      for (std::size_t i = 1; i < owners.size(); ++i) {
        if (owners[i]->name != owners[0]->name) {
          ++colliding_hashes;
          break;
        }
      }
    }
    return 100.0 * static_cast<double>(colliding_hashes) /
           static_cast<double>(index.size());
  };

  const double r = collision_rate(restricted);
  const double e = collision_rate(extended);

  // The paper's 2.4% -> 7.3% was measured on a third-party corpus
  // (Brotherston) full of white-label products sharing stacks; our catalog
  // is de-duplicated by construction (the Table-2 expansion skips colliding
  // hashes), so absolute rates are lower. The *mechanism* — restricted
  // features can only merge fingerprints, never split them — is what this
  // bench verifies, plus the direction of the gap.
  bench::print_anchors(
      "Section 4 fingerprint feature-set ablation",
      {
          {"collision rate, prior-work features",
           "2.4% (on the Brotherston corpus)", bench::fmt_pct(e, 2)},
          {"collision rate, paper's restricted features",
           "7.3% (same corpus)", bench::fmt_pct(r, 2)},
          {"restricted >= extended collisions", "yes (less distinct)",
           r >= e ? "yes" : "NO"},
          {"configs fingerprinted", "-", std::to_string(configs)},
          {"distinct restricted / extended hashes", "-",
           std::to_string(restricted.size()) + " / " +
               std::to_string(extended.size())},
      });
  return r >= e ? 0 : 1;
}
