// §5.1: legacy SSL versions. Paper anchors: passive — SSL2 ~1.2K and SSL3
// 360.1K (<0.01%) connections in Feb 2018, SSL3 insignificant since
// mid-2014, SSL2 confined to a single university's Nagios port; active —
// SSL3 supported by >45% of servers in Sep 2015, <25% in May 2018.
#include <cstdio>

#include "bench_common.hpp"
#include "scan/scanner.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  const auto* feb18 = mon.month(Month(2018, 2));
  const auto* aug14 = mon.month(Month(2014, 8));
  const auto pct_v = [](const tls::notary::MonthlyStats* s, std::uint16_t v) {
    if (s == nullptr || s->total == 0) return 0.0;
    return 100.0 * static_cast<double>(s->negotiated_version_count(v)) /
           static_cast<double>(s->total);
  };

  const tls::scan::ActiveScanner scanner(study.servers());
  const auto s2015 = scanner.scan(Month(2015, 9));
  const auto s2018 = scanner.scan(Month(2018, 5));

  bench::print_anchors(
      "Section 5.1 legacy versions",
      {
          {"SSL3 negotiated 2018-02", "<0.01%",
           bench::fmt_pct(pct_v(feb18, 0x0300), 3)},
          {"SSL2 negotiated 2018-02", "~0% (1.2K conns, Nagios only)",
           bench::fmt_pct(pct_v(feb18, 0x0002), 3)},
          {"SSL3 negotiated 2014-08", "insignificant since mid-2014",
           bench::fmt_pct(pct_v(aug14, 0x0300), 2)},
          {"servers supporting SSL3, 2015-09", ">45%",
           bench::fmt_pct(100 * s2015.ssl3_support)},
          {"servers supporting SSL3, 2018-05", "<25%",
           bench::fmt_pct(100 * s2018.ssl3_support)},
      });

  // SSL2 connections by month (should be nonzero only via Nagios).
  std::uint64_t ssl2_total = 0;
  for (const auto& [m, s] : mon.months()) ssl2_total += s.sslv2_connections;
  std::printf("SSLv2 CLIENT-HELLO connections across dataset: %llu\n",
              static_cast<unsigned long long>(ssl2_total));
  return 0;
}
