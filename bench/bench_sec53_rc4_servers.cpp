// §5.3: server-side RC4. Paper anchors: given an older Chrome cipher list,
// 11.2% of servers chose RC4 in Sep 2015, 3.4% in May 2018; SSL-Pulse-style
// RC4 *support* 92.8% (Oct 2013) -> 19.1% (2018); a handful of servers
// support only RC4.
#include <cstdio>

#include "bench_common.hpp"
#include "scan/scanner.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const tls::scan::ActiveScanner scanner(study.servers());

  const auto s2015 = scanner.scan(Month(2015, 9));
  const auto s2018 = scanner.scan(Month(2018, 5));
  // SSL Pulse samples ~150K *popular* sites (Alexa-based), so its support
  // rates are traffic-weighted, not host-weighted.
  const auto p2013 = scanner.scan_popular(Month(2013, 10));
  const auto p2018 = scanner.scan_popular(Month(2018, 3));

  bench::print_anchors(
      "Section 5.3 server-side RC4",
      {
          {"servers choosing RC4 (old-Chrome hello), 2015-09", "11.2%",
           bench::fmt_pct(100 * s2015.chooses_rc4)},
          {"servers choosing RC4, 2018-05", "3.4%",
           bench::fmt_pct(100 * s2018.chooses_rc4)},
          {"popular sites supporting RC4, 2013-10", "92.8% (SSL Pulse)",
           bench::fmt_pct(100 * p2013.rc4_support)},
          {"popular sites supporting RC4, 2018", "19.1% (SSL Pulse)",
           bench::fmt_pct(100 * p2018.rc4_support)},
          {"IPv4 hosts supporting RC4, 2018", "(host-weighted view)",
           bench::fmt_pct(100 * s2018.rc4_support)},
          {"sites supporting ONLY RC4, 2018", "~0% (1 site)",
           bench::fmt_pct(100 * p2018.rc4_only, 3)},
      });

  std::printf("quarterly choose-RC4 series:\n");
  for (Month m(2015, 9); m <= Month(2018, 5); m += 3) {
    std::printf("  %s  %5.1f%%\n", m.to_string().c_str(),
                100 * scanner.scan(m).chooses_rc4);
  }
  return 0;
}
