// §5.4: Heartbleed / Heartbeat. Paper anchors: ~23.7% of servers vulnerable
// at disclosure (Apr 2014); 5.9% at the first scan; <2% a month later;
// 0.32% in May 2018; 34% of servers still support the Heartbeat extension
// in 2018; 3% of observed connections still negotiate it.
#include <cstdio>

#include "bench_common.hpp"
#include "scan/scanner.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const tls::scan::ActiveScanner scanner(study.servers());

  const auto at = [&](int y, int mo) { return scanner.scan(Month(y, mo)); };

  const auto& mon = study.monitor();
  const auto* may18 = mon.month(Month(2018, 4));
  const double hb_negotiated =
      may18 == nullptr || may18->total == 0
          ? 0
          : 100.0 * static_cast<double>(may18->heartbeat_negotiated) /
                static_cast<double>(may18->total);

  bench::print_anchors(
      "Section 5.4 Heartbleed",
      {
          {"vulnerable servers, 2014-03 (disclosure)", "~23.7%",
           bench::fmt_pct(100 * at(2014, 3).heartbleed_vulnerable)},
          {"vulnerable servers, 2014-05 (first scans)", "5.9%",
           bench::fmt_pct(100 * at(2014, 5).heartbleed_vulnerable)},
          {"vulnerable servers, 2014-06", "<2%",
           bench::fmt_pct(100 * at(2014, 6).heartbleed_vulnerable)},
          {"vulnerable servers, 2018-05", "0.32%",
           bench::fmt_pct(100 * at(2018, 5).heartbleed_vulnerable, 2)},
          {"servers supporting Heartbeat, 2018-05", "34%",
           bench::fmt_pct(100 * at(2018, 5).heartbeat_support)},
          {"connections negotiating Heartbeat, 2018", "3%",
           bench::fmt_pct(hb_negotiated)},
      });

  // Probe-based measurement (the actual §5.4 scan mechanism): send an RFC
  // 6520 request with a lying payload_length and see who over-reads.
  tls::core::Rng probe_rng(0xb1eed);
  const double probed_2014 =
      scanner.heartbleed_probe_fraction(Month(2014, 4), 20000, probe_rng);
  const double probed_2018 =
      scanner.heartbleed_probe_fraction(Month(2018, 5), 20000, probe_rng);
  std::printf("probe-based (Monte-Carlo over RFC 6520 responders):\n");
  std::printf("  2014-04  %5.2f%%   2018-05  %5.2f%%\n\n", 100 * probed_2014,
              100 * probed_2018);

  std::printf("vulnerability decay:\n");
  for (const auto [y, mo] : std::initializer_list<std::pair<int, int>>{
           {2014, 3}, {2014, 4}, {2014, 5}, {2014, 6}, {2014, 12},
           {2015, 6}, {2016, 6}, {2017, 6}, {2018, 5}}) {
    std::printf("  %d-%02d  %6.2f%%\n", y, mo,
                100 * at(y, mo).heartbleed_vulnerable);
  }
  return 0;
}
