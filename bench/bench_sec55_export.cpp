// §5.5: FREAK, Logjam and export ciphers. Paper anchors: export suites
// essentially never negotiated (677 connections in all of 2018), and the
// ones that are split between university Nagios hosts choosing anonymous
// export suites and Interwise servers answering EXP_RC4_40_MD5 that the
// client never offered (a spec violation with completed sessions); client
// advertising of export suites fell from 28.19% (2012) to 1.03% (2018).
#include <cstdio>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  std::uint64_t export_2018 = 0, total_2018 = 0, viol_2018 = 0;
  std::uint64_t export_all = 0;
  for (const auto& [m, s] : mon.months()) {
    export_all += s.negotiated_export;
    if (m.year() == 2018) {
      export_2018 += s.negotiated_export;
      viol_2018 += s.spec_violations;
      total_2018 += s.total;
    }
  }

  const auto* jun12 = mon.month(Month(2012, 6));
  const auto* mar18 = mon.month(Month(2018, 3));

  bench::print_anchors(
      "Section 5.5 export ciphers",
      {
          {"export negotiated in 2018", "677 conns (of ~10^10) = ~0.00001%",
           bench::fmt_pct(total_2018 == 0
                              ? 0
                              : 100.0 * static_cast<double>(export_2018) /
                                    static_cast<double>(total_2018),
                          4) +
               " (" + std::to_string(export_2018) + " conns)"},
          {"spec-violating ServerHellos observed 2018",
           "present (Interwise, GOST)", std::to_string(viol_2018) + " conns"},
          {"export advertised 2012", "28.19%",
           jun12 == nullptr ? "-" : bench::fmt_pct(jun12->pct(jun12->adv_export))},
          {"export advertised 2018", "1.03%",
           mar18 == nullptr ? "-" : bench::fmt_pct(mar18->pct(mar18->adv_export))},
      });
  return 0;
}
