// §5.6: Sweet32, DES and 3DES. Paper anchors: 3DES negotiated in 1.4% of
// connections in mid-2012 vs 0.3% in 2018 (peaks <=5%); nearly all clients
// advertised 3DES until end-2016 and >69% still do in 2018; servers
// choosing the scan's bottom-listed 3DES suite fell 0.54% -> 0.25%.
#include <cstdio>

#include "bench_common.hpp"
#include "scan/scanner.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  const auto negotiated_3des_pct = [&](int year, int mo) {
    const auto* s = mon.month(Month(year, mo));
    if (s == nullptr || s->successful == 0) return 0.0;
    return 100.0 * static_cast<double>(s->negotiated_3des) /
           static_cast<double>(s->successful);
  };

  const tls::scan::ActiveScanner scanner(study.servers());
  const auto s2015 = scanner.scan(Month(2015, 8));
  const auto s2018 = scanner.scan(Month(2018, 5));

  const auto* jun12 = mon.month(Month(2012, 7));
  const auto* dec16 = mon.month(Month(2016, 11));
  const auto* mar18 = mon.month(Month(2018, 3));

  bench::print_anchors(
      "Section 5.6 Sweet32 / 3DES",
      {
          {"3DES negotiated, 2012 (Jun-Aug)", "1.4%",
           bench::fmt_pct(negotiated_3des_pct(2012, 7), 2)},
          {"3DES negotiated, 2018", "0.3%",
           bench::fmt_pct(negotiated_3des_pct(2018, 3), 2)},
          {"clients advertising 3DES, 2016-11", "almost all (>90%)",
           dec16 == nullptr ? "-" : bench::fmt_pct(dec16->pct(dec16->adv_3des))},
          {"clients advertising 3DES, 2018-03", ">69%",
           mar18 == nullptr ? "-" : bench::fmt_pct(mar18->pct(mar18->adv_3des))},
          {"clients advertising 3DES, 2012", "high",
           jun12 == nullptr ? "-" : bench::fmt_pct(jun12->pct(jun12->adv_3des))},
          {"servers choosing 3DES, 2015-08", "0.54%",
           bench::fmt_pct(100 * s2015.chooses_3des, 2)},
          {"servers choosing 3DES, 2018-05", "0.25%",
           bench::fmt_pct(100 * s2018.chooses_3des, 2)},
      });
  return 0;
}
