// §6.3.1: forward secrecy. Paper anchors: >80% of clients already offered
// FS suites in 2012, quickly ~100%; servers nevertheless kept choosing RSA
// key transport for years; DH static used in ~0.00% of connections (4 total
// in 2018), ECDH static in 0.27% (nearly all Splunk port-9997 traffic).
#include <cstdio>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  auto& mon = study.monitor();

  const auto adv_fs = [&](Month m) {
    const auto* s = mon.month(m);
    return s == nullptr ? 0.0 : s->pct(s->adv_fs);
  };

  std::uint64_t ecdh_static = 0, dh_static = 0, fs_negotiated = 0,
                success_all = 0;
  for (const auto& [m, s] : mon.months()) {
    using KC = tls::core::KexClass;
    const auto get = [&](KC c) { return s.negotiated_kex_count(c); };
    ecdh_static += get(KC::kEcdhStatic);
    dh_static += get(KC::kDhStatic);
    fs_negotiated += get(KC::kEcdhe) + get(KC::kDhe) + get(KC::kTls13);
    success_all += s.successful;
  }
  const auto share = [&](std::uint64_t n) {
    return success_all == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) /
                     static_cast<double>(success_all);
  };

  const auto* mar18 = mon.month(Month(2018, 3));
  double fs_2018 = 0;
  if (mar18 != nullptr && mar18->successful > 0) {
    using KC = tls::core::KexClass;
    std::uint64_t n = 0;
    for (const auto c : {KC::kEcdhe, KC::kDhe, KC::kTls13}) {
      n += mar18->negotiated_kex_count(c);
    }
    fs_2018 = 100.0 * static_cast<double>(n) /
              static_cast<double>(mar18->successful);
  }

  bench::print_anchors(
      "Section 6.3.1 forward secrecy",
      {
          {"clients offering FS suites, 2012", ">80%",
           bench::fmt_pct(adv_fs(Month(2012, 6)))},
          {"clients offering FS suites, 2015", "nearly 100%",
           bench::fmt_pct(adv_fs(Month(2015, 6)))},
          {"FS negotiated, 2018-03", ">90%", bench::fmt_pct(fs_2018)},
          {"static ECDH share of dataset", "0.27% (Splunk port 9997)",
           bench::fmt_pct(share(ecdh_static), 2)},
          {"static DH share of dataset", "0.00% (4 conns in 2018)",
           bench::fmt_pct(share(dh_static), 3)},
      });
  return 0;
}
