// §6.3.3: elliptic-curve usage. Paper anchors over the whole measurement:
// secp256r1 84.4%, secp384r1 8.6%, x25519 6.7%, sect571r1 0.2%,
// secp521r1 0.1%; x25519 at 22.2% of connections in Feb 2018.
#include <cstdio>

#include "bench_common.hpp"
#include "tlscore/named_groups.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  std::map<std::uint16_t, std::uint64_t> totals;
  std::uint64_t all = 0;
  for (const auto& [m, s] : mon.months()) {
    for (const auto& [g, n] : s.negotiated_group()) {
      totals[g] += n;
      all += n;
    }
  }
  const auto share = [&](std::uint16_t g) {
    const auto it = totals.find(g);
    return it == totals.end() || all == 0
               ? 0.0
               : 100.0 * static_cast<double>(it->second) /
                     static_cast<double>(all);
  };

  double x25519_feb18 = 0;
  if (const auto* s = mon.month(Month(2018, 2))) {
    std::uint64_t month_all = 0;
    for (const auto& [g, n] : s->negotiated_group()) month_all += n;
    if (month_all > 0) {
      x25519_feb18 = 100.0 *
                     static_cast<double>(s->negotiated_group_count(29)) /
                     static_cast<double>(month_all);
    }
  }

  bench::print_anchors(
      "Section 6.3.3 curves (share of EC connections)",
      {
          {"secp256r1 (dataset)", "84.4%", bench::fmt_pct(share(23))},
          {"secp384r1 (dataset)", "8.6%", bench::fmt_pct(share(24))},
          {"x25519 (dataset)", "6.7%", bench::fmt_pct(share(29))},
          {"sect571r1 (dataset)", "0.2%", bench::fmt_pct(share(14), 2)},
          {"secp521r1 (dataset)", "0.1%", bench::fmt_pct(share(25), 2)},
          {"x25519 in 2018-02", "22.2%", bench::fmt_pct(x25519_feb18)},
      });

  std::printf("full curve distribution:\n");
  for (const auto& [g, n] : totals) {
    std::printf("  %-16s %6.2f%%\n", tls::core::named_group_name(g).c_str(),
                all == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(all));
  }
  return 0;
}
