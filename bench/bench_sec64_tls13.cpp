// §6.4: TLS 1.3 deployment before ratification. Paper anchors: clients
// advertising TLS 1.3 — 0.5% (Feb 2018), 9.8% (Mar), 23.6% (Apr);
// negotiated in only 1.3% of April 2018 connections; most common advertised
// variant 0x7e02 (82.3% of connections carrying the extension), most common
// official draft: draft-18 (13.4%).
#include <cstdio>

#include "bench_common.hpp"
#include "tlscore/version.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  const auto adv = [&](int y, int mo) {
    const auto* s = mon.month(Month(y, mo));
    return s == nullptr ? 0.0 : s->pct(s->adv_tls13);
  };
  const auto* apr = mon.month(Month(2018, 4));
  const double negotiated_apr =
      apr == nullptr || apr->successful == 0
          ? 0
          : 100.0 * static_cast<double>(apr->negotiated_tls13) /
                static_cast<double>(apr->successful);

  // Draft-version breakdown among April 2018 hellos carrying the extension.
  std::uint64_t with_ext = 0;
  std::map<std::uint16_t, std::uint64_t> drafts;
  if (apr != nullptr) {
    with_ext = apr->adv_tls13;
    drafts = apr->adv_tls13_versions();
  }
  const auto draft_share = [&](std::uint16_t v) {
    const auto it = drafts.find(v);
    return it == drafts.end() || with_ext == 0
               ? 0.0
               : 100.0 * static_cast<double>(it->second) /
                     static_cast<double>(with_ext);
  };

  bench::print_anchors(
      "Section 6.4 TLS 1.3",
      {
          {"advertising TLS 1.3, 2018-02", "0.5%",
           bench::fmt_pct(adv(2018, 2))},
          {"advertising TLS 1.3, 2018-03", "9.8%",
           bench::fmt_pct(adv(2018, 3))},
          {"advertising TLS 1.3, 2018-04", "23.6%",
           bench::fmt_pct(adv(2018, 4))},
          {"negotiated TLS 1.3, 2018-04", "1.3%",
           bench::fmt_pct(negotiated_apr)},
          {"variant 0x7e02 share of advertisers", "82.3%",
           bench::fmt_pct(draft_share(0x7e02))},
          {"draft-18 share of advertisers", "13.4%",
           bench::fmt_pct(draft_share(0x7f12))},
      });

  std::printf("advertised TLS 1.3 versions, 2018-04:\n");
  for (const auto& [v, n] : drafts) {
    std::printf("  %-28s %llu\n", tls::core::version_name(v).c_str(),
                static_cast<unsigned long long>(n));
  }
  return 0;
}
