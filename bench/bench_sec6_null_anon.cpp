// §6.1/§6.2: NULL and anonymous cipher suites. Paper anchors: 2.84% of the
// whole dataset established with a NULL cipher (0.42% in 2018; 99.99% GRID
// traffic); NULL_WITH_NULL_NULL used by 198.3K connections total (198 in
// 2018, all Nagios); anonymous suites negotiated in 0.17% of the dataset
// (0.60% in 2018, nearly all Nagios); NULL offered by 0.46% of 2018
// connections and ~8% of fingerprints.
#include <cstdio>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  std::uint64_t null_all = 0, nullnull_all = 0, anon_all = 0, success_all = 0;
  std::uint64_t null_2018 = 0, nullnull_2018 = 0, anon_2018 = 0,
                success_2018 = 0, total_2018 = 0, adv_null_2018 = 0;
  for (const auto& [m, s] : mon.months()) {
    null_all += s.negotiated_null;
    nullnull_all += s.negotiated_null_with_null_null;
    anon_all += s.negotiated_anon;
    success_all += s.successful;
    if (m.year() == 2018) {
      null_2018 += s.negotiated_null;
      nullnull_2018 += s.negotiated_null_with_null_null;
      anon_2018 += s.negotiated_anon;
      success_2018 += s.successful;
      total_2018 += s.total;
      adv_null_2018 += s.adv_null;
    }
  }
  const auto share = [](std::uint64_t n, std::uint64_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(d);
  };

  // Fingerprints offering NULL in 2018 (§6.1's "8% of fingerprints").
  std::size_t fp_null = 0, fp_total = 0;
  if (const auto* mar = mon.month(Month(2018, 3))) {
    fp_total = mar->fingerprints.size();
    // Flags don't include NULL; recompute via the anon/null advertised
    // connection counters is a proxy — the study library tracks per-month
    // NULL-offering fingerprints through the advertised share instead.
    (void)fp_null;
  }

  bench::print_anchors(
      "Section 6.1/6.2 NULL & anonymous suites",
      {
          {"NULL-cipher connections, dataset", "2.84%",
           bench::fmt_pct(share(null_all, success_all), 2)},
          {"NULL-cipher connections, 2018", "0.42%",
           bench::fmt_pct(share(null_2018, success_2018), 2)},
          {"NULL advertised, 2018", "0.46%",
           bench::fmt_pct(share(adv_null_2018, total_2018), 2)},
          {"NULL_WITH_NULL_NULL, dataset", "198.3K conns (tiny)",
           std::to_string(nullnull_all) + " conns"},
          {"NULL_WITH_NULL_NULL, 2018", "198 conns",
           std::to_string(nullnull_2018) + " conns"},
          {"anonymous negotiated, dataset", "0.17%",
           bench::fmt_pct(share(anon_all, success_all), 2)},
          {"anonymous negotiated, 2018", "0.60%",
           bench::fmt_pct(share(anon_2018, success_2018), 2)},
      });

  std::printf("(distinct fingerprints 2018-03: %zu)\n", fp_total);
  return 0;
}
