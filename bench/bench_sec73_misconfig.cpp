// §7.3: misconfigurations and poor implementations. Paper anchors: servers
// choosing outdated suites despite supporting stronger ones (bankmellat.ir
// picking RC4 over offered AEAD); a small number of hosts answering with
// suites the client never offered (GOST choosers, anonymous NULL); none of
// the standard clients complete those handshakes.
#include <cstdio>

#include "bench_common.hpp"

using tls::core::Month;

int main() {
  auto& study = bench::shared_study();
  const auto& mon = study.monitor();

  std::uint64_t rc4_despite_aead = 0, violations = 0, total = 0,
                violation_failures = 0;
  std::map<std::uint8_t, std::uint64_t> alerts;
  for (const auto& [m, s] : mon.months()) {
    rc4_despite_aead += s.rc4_despite_aead;
    violations += s.spec_violations;
    total += s.total;
    for (const auto& [desc, n] : s.alerts()) alerts[desc] += n;
  }
  // illegal_parameter alerts = standard clients aborting on unoffered
  // suites (GOST); Interwise sessions complete, so they raise no alert.
  violation_failures = alerts.count(47) != 0 ? alerts.at(47) : 0;

  const auto share = [&](std::uint64_t n) {
    return total == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };

  bench::print_anchors(
      "Section 7.3 misconfigurations",
      {
          {"RC4 chosen though client offered AEAD",
           "observed (bankmellat-style servers)",
           bench::fmt_pct(share(rc4_despite_aead), 2) + " of connections"},
          {"ServerHello with unoffered suite", "small number of hosts",
           std::to_string(violations) + " conns (" +
               bench::fmt_pct(share(violations), 3) + ")"},
          {"standard clients abort those handshakes", "yes",
           std::to_string(violation_failures) +
               " illegal_parameter alerts (Interwise completes)"},
      });

  std::printf("alert distribution across failed handshakes:\n");
  for (const auto& [desc, n] : alerts) {
    std::printf("  %-24s %llu\n",
                std::string(tls::wire::alert_description_name(
                                static_cast<tls::wire::AlertDescription>(desc)))
                    .c_str(),
                static_cast<unsigned long long>(n));
  }
  return 0;
}
