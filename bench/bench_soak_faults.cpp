// Soak-test artifact: sweeps the chaos tap's fault rate over the passive
// pipeline and the network loss level over the active scanner, printing the
// loss-accounting tables the robustness section of EXPERIMENTS.md quotes.
// The invariants asserted by tests/test_soak.cpp are recomputed here so the
// printed run is self-checking (any violation shows up in the output).
#include <cstdio>

#include "bench_common.hpp"
#include "faults/injector.hpp"

namespace {

using tls::core::Month;
using tls::core::MonthRange;

struct SweepRow {
  double rate;
  std::uint64_t events = 0;
  std::uint64_t accepted = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t one_sided = 0;
  std::uint64_t parse_errors = 0;
  bool partition_exact = true;
  double adv_aead_pct = 0;
};

SweepRow sweep_passive(double rate, const tls::study::StudyOptions& base) {
  tls::study::StudyOptions opts = base;
  opts.faults = tls::faults::FaultConfig::uniform(rate);
  tls::study::LongitudinalStudy study(opts);
  const auto& monitor = study.monitor();

  SweepRow row;
  row.rate = rate;
  std::uint64_t aead = 0;
  for (const auto& [m, s] : monitor.months()) {
    row.events += s.total;
    row.accepted += s.accepted();
    row.quarantined += s.quarantined;
    row.one_sided += s.one_sided_client + s.one_sided_server;
    row.partition_exact &=
        s.total == s.successful + s.failures + s.quarantined;
    for (const auto& [code, n] : s.parse_errors()) row.parse_errors += n;
    aead += s.adv_aead;
  }
  if (row.accepted > 0) {
    row.adv_aead_pct = 100.0 * static_cast<double>(aead) /
                       static_cast<double>(row.accepted);
  }
  if (rate == 0.5) {
    std::puts("== per-month loss table (fault rate 50%) ==");
    std::fputs(tls::analysis::render_loss_table(tls::notary::loss_rows(monitor))
                   .c_str(),
               stdout);
    std::puts("");
  }
  return row;
}

}  // namespace

int main() {
  auto opts = bench::default_options();
  opts.full_catalog = false;  // robustness sweep, not fingerprint coverage
  opts.window = MonthRange{Month(2014, 10), Month(2015, 9)};

  std::puts("== passive soak: fault-rate sweep ==");
  std::vector<std::vector<std::string>> table;
  table.push_back({"fault rate", "events", "accepted", "quar", "1-sided",
                   "parse errs", "partition", "adv AEAD"});
  for (const double rate : {0.0, 0.01, 0.10, 0.50}) {
    const auto row = sweep_passive(rate, opts);
    table.push_back({bench::fmt_pct(100.0 * rate, 0),
                     std::to_string(row.events), std::to_string(row.accepted),
                     std::to_string(row.quarantined),
                     std::to_string(row.one_sided),
                     std::to_string(row.parse_errors),
                     row.partition_exact ? "exact" : "VIOLATED",
                     bench::fmt_pct(row.adv_aead_pct)});
  }
  std::fputs(tls::analysis::render_table(table).c_str(), stdout);
  std::puts("");

  std::puts("== active soak: network loss sweep (2016-06) ==");
  const auto servers = tls::servers::ServerPopulation::standard();
  std::vector<std::vector<std::string>> scan_table;
  scan_table.push_back({"loss level", "scanned", "unreachable", "closure",
                        "attempts", "retries", "abandoned"});
  for (const double level : {0.0, 0.01, 0.10, 0.50}) {
    tls::scan::ScanPolicy policy;
    policy.network = tls::faults::NetworkProfile::lossy(level);
    const tls::scan::ActiveScanner scanner(servers, policy);
    const auto snap = scanner.scan(Month(2016, 6));
    const double closure = snap.scanned + snap.unreachable;
    scan_table.push_back(
        {bench::fmt_pct(100.0 * level, 0),
         bench::fmt_pct(100.0 * snap.scanned),
         bench::fmt_pct(100.0 * snap.unreachable),
         std::abs(closure - 1.0) < 1e-9 ? "1.0 (exact)" : "VIOLATED",
         std::to_string(snap.probe_attempts),
         std::to_string(snap.probe_retries),
         std::to_string(snap.probes_abandoned)});
  }
  std::fputs(tls::analysis::render_table(scan_table).c_str(), stdout);
  return 0;
}
