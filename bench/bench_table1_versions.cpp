// Table 1: release dates of all SSL/TLS versions.
#include <cstdio>

#include "analysis/render.hpp"
#include "tlscore/version.hpp"

int main() {
  using namespace tls::core;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Version", "Release Date (paper)", "Registry"});
  const std::pair<ProtocolVersion, const char*> expected[] = {
      {ProtocolVersion::kSsl2, "Feb. 1995"},
      {ProtocolVersion::kSsl3, "Nov. 1996"},
      {ProtocolVersion::kTls10, "Jan. 1999"},
      {ProtocolVersion::kTls11, "Apr. 2006"},
      {ProtocolVersion::kTls12, "Aug. 2008"},
      {ProtocolVersion::kTls13, "Aug. 2018"},
  };
  for (const auto& [v, paper] : expected) {
    rows.push_back({version_name(v), paper,
                    version_release_date(v)->to_string()});
  }
  std::printf("Table 1: SSL/TLS release dates\n%s",
              tls::analysis::render_table(rows).c_str());
  return 0;
}
