// Table 2: fingerprint database summary — per-class fingerprint counts and
// the share of Notary connections each class explains. Paper anchors:
// 1,684 fingerprints total (listed classes sum to 1,562), 69.23% of
// fingerprintable connections identified, power-law coverage with the top
// 10 fingerprints explaining 25.9% of traffic, most common unlabeled
// fingerprint ~1%.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  auto& study = bench::shared_study();
  const auto& db = study.database();
  const auto& mon = study.monitor();

  const double fpable =
      static_cast<double>(mon.fingerprintable_connections());
  const auto counts = db.count_by_class();
  const auto& labeled = mon.labeled_connections_by_class();

  // Paper's Table 2 counts for reference.
  const std::map<tls::fp::SoftwareClass, std::pair<int, double>> paper = {
      {tls::fp::SoftwareClass::kLibrary, {700, 46.49}},
      {tls::fp::SoftwareClass::kBrowser, {193, 15.63}},
      {tls::fp::SoftwareClass::kOsTool, {13, 2.29}},
      {tls::fp::SoftwareClass::kMobileApp, {489, 1.35}},
      {tls::fp::SoftwareClass::kDevTool, {12, 0.88}},
      {tls::fp::SoftwareClass::kAntivirus, {44, 0.85}},
      {tls::fp::SoftwareClass::kCloudStorage, {29, 0.71}},
      {tls::fp::SoftwareClass::kEmail, {33, 0.58}},
      {tls::fp::SoftwareClass::kMalware, {49, 0.48}},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Class", "FPs(paper)", "FPs(ours)", "Cov%(paper)",
                  "Cov%(ours)"});
  std::size_t total_fps = 0;
  std::uint64_t total_labeled = 0;
  for (const auto& [cls, pp] : paper) {
    const auto it = counts.find(cls);
    const std::size_t ours = it == counts.end() ? 0 : it->second;
    total_fps += ours;
    const auto lit = labeled.find(cls);
    const std::uint64_t lab = lit == labeled.end() ? 0 : lit->second;
    total_labeled += lab;
    rows.push_back({std::string(tls::fp::software_class_name(cls)),
                    std::to_string(pp.first), std::to_string(ours),
                    bench::fmt_pct(pp.second, 2),
                    bench::fmt_pct(fpable == 0 ? 0 : 100.0 * lab / fpable, 2)});
  }
  rows.push_back({"All", "1,562 listed (1,684 total)",
                  std::to_string(total_fps), "69.23%",
                  bench::fmt_pct(fpable == 0 ? 0 : 100.0 * total_labeled / fpable,
                                 2)});
  std::printf("Table 2: fingerprint database summary\n%s\n",
              tls::analysis::render_table(rows).c_str());

  // Power-law coverage: top-10 fingerprints' share of fingerprintable
  // connections, and the most common unlabeled fingerprint's share.
  std::vector<std::pair<std::uint64_t, const std::string*>> by_count;
  for (const auto& [hash, lt] : mon.durations().lifetimes()) {
    by_count.emplace_back(lt.connections, &hash);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  std::uint64_t top10 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, by_count.size()); ++i) {
    top10 += by_count[i].first;
  }
  double top_unlabeled = 0;
  for (const auto& [count, hash] : by_count) {
    if (db.lookup(*hash) == nullptr) {
      top_unlabeled = fpable == 0 ? 0 : 100.0 * static_cast<double>(count) / fpable;
      break;
    }
  }
  bench::print_anchors(
      "Table 2 coverage",
      {
          {"top-10 fingerprints' traffic share", "25.9%",
           bench::fmt_pct(fpable == 0 ? 0 : 100.0 * static_cast<double>(top10) / fpable)},
          {"most common unlabeled fingerprint", "~1%",
           bench::fmt_pct(top_unlabeled, 2)},
          {"distinct fingerprints observed", "69,874 (at 191.9G conns)",
           std::to_string(mon.durations().size()) + " (scaled dataset)"},
      });
  return 0;
}
