// Table 4: changes in RC4 support by major browsers, including complete
// removal dates — regenerated from the catalog.
#include <cstdio>

#include "analysis/render.hpp"
#include "clients/catalog.hpp"

namespace {

struct PaperRow {
  const char* browser;
  const char* version;
  int expected_rc4;
  const char* note;
};

constexpr PaperRow kPaper[] = {
    {"Firefox", "27", 4, "reduced from 6 to 4"},
    {"Firefox", "44", 0, "removed completely"},
    {"Chrome", "29", 4, "reduced from 6 to 4"},
    {"Chrome", "43", 0, "removed completely"},
    {"Opera", "15", 6, "increased from 2 to 6"},
    {"Opera", "16", 4, "reduced to 4"},
    {"Opera", "30", 0, "removed completely"},
    {"IE/Edge", "13", 0, "all RC4 removed"},
    {"Safari", "6", 6, "reduced from 7 to 6"},
    {"Safari", "9", 4, "reduced to 4"},
    {"Safari", "10", 0, "removed completely"},
};

}  // namespace

int main() {
  const auto catalog = tls::clients::Catalog::core_only();
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"Browser", "Ver.", "RC4 (paper)", "RC4 (catalog)", "date", "note"});
  int mismatches = 0;
  for (const auto& row : kPaper) {
    const auto* profile = catalog.find(row.browser);
    const tls::clients::ClientConfig* cfg = nullptr;
    for (const auto& c : profile->versions) {
      if (c.version_label == row.version) cfg = &c;
    }
    const int ours = cfg != nullptr ? static_cast<int>(cfg->count_rc4()) : -1;
    if (ours != row.expected_rc4) ++mismatches;
    rows.push_back({row.browser, row.version, std::to_string(row.expected_rc4),
                    std::to_string(ours),
                    cfg != nullptr ? cfg->release.to_string() : "?", row.note});
  }
  std::printf("Table 4: RC4 suites offered by major browsers\n%s\n%d mismatches\n",
              tls::analysis::render_table(rows).c_str(), mismatches);
  return mismatches == 0 ? 0 : 1;
}
