// Table 5: changes in the number of 3DES suites offered by major browsers.
#include <cstdio>

#include "analysis/render.hpp"
#include "clients/catalog.hpp"

namespace {

struct PaperRow {
  const char* browser;
  const char* version;
  int expected_3des;
};

constexpr PaperRow kPaper[] = {
    {"Firefox", "27", 3}, {"Firefox", "33", 1}, {"Chrome", "29", 1},
    {"Opera", "16", 1},   {"Safari", "7.1", 6}, {"Safari", "9", 3},
};

}  // namespace

int main() {
  const auto catalog = tls::clients::Catalog::core_only();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Browser", "Ver.", "3DES (paper)", "3DES (catalog)"});
  int mismatches = 0;
  for (const auto& row : kPaper) {
    const auto* profile = catalog.find(row.browser);
    const tls::clients::ClientConfig* cfg = nullptr;
    for (const auto& c : profile->versions) {
      if (c.version_label == row.version) cfg = &c;
    }
    const int ours = cfg != nullptr ? static_cast<int>(cfg->count_3des()) : -1;
    if (ours != row.expected_3des) ++mismatches;
    rows.push_back({row.browser, row.version, std::to_string(row.expected_3des),
                    std::to_string(ours)});
  }
  std::printf(
      "Table 5: 3DES suites offered by major browsers\n%s\n%d mismatches\n"
      "(all major browsers still offer 3DES in 2018: ",
      tls::analysis::render_table(rows).c_str(), mismatches);
  bool all_offer = true;
  for (const char* b : {"Firefox", "Chrome", "Opera", "Safari", "IE/Edge"}) {
    const auto* cfg = catalog.find(b)->config_at(tls::core::Date(2018, 3, 1));
    all_offer = all_offer && cfg != nullptr && cfg->count_3des() > 0;
  }
  std::printf("%s)\n", all_offer ? "confirmed" : "NOT confirmed");
  return mismatches == 0 && all_offer ? 0 : 1;
}
