// Table 6: browser TLS protocol-version support timeline — max offered
// version and fallback behaviour per catalog config.
#include <cstdio>

#include "analysis/render.hpp"
#include "clients/catalog.hpp"
#include "tlscore/version.hpp"

namespace {

struct PaperRow {
  const char* browser;
  const char* version;
  std::uint16_t expected_max;   // legacy max version after this release
  bool expected_fallback;       // still performs the insecure dance?
};

constexpr PaperRow kPaper[] = {
    {"Firefox", "27", 0x0303, true},   // TLS 1.1/1.2 supported
    {"Firefox", "37", 0x0303, false},  // SSL3 fallback removed
    {"Chrome", "22", 0x0302, true},    // TLS 1.1
    {"Chrome", "29", 0x0303, true},    // TLS 1.2
    {"Chrome", "39", 0x0303, false},   // fallback removed
    {"IE/Edge", "11", 0x0303, true},   // TLS 1.1/1.2
    {"Opera", "16", 0x0302, true},     // TLS 1.1
    {"Opera", "27", 0x0303, false},    // fallback removed
    {"Safari", "7", 0x0303, true},     // TLS 1.1/1.2
    {"Safari", "9", 0x0303, false},    // SSL3 support removed
};

}  // namespace

int main() {
  const auto catalog = tls::clients::Catalog::core_only();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Browser", "Ver.", "date", "max version", "fallback",
                  "match"});
  int mismatches = 0;
  for (const auto& row : kPaper) {
    const auto* profile = catalog.find(row.browser);
    const tls::clients::ClientConfig* cfg = nullptr;
    for (const auto& c : profile->versions) {
      if (c.version_label == row.version) cfg = &c;
    }
    const bool ok = cfg != nullptr &&
                    cfg->legacy_version == row.expected_max &&
                    cfg->version_fallback == row.expected_fallback;
    if (!ok) ++mismatches;
    rows.push_back(
        {row.browser, row.version,
         cfg != nullptr ? cfg->release.to_string() : "?",
         cfg != nullptr ? tls::core::version_name(cfg->legacy_version) : "?",
         cfg != nullptr && cfg->version_fallback ? "yes" : "no",
         ok ? "yes" : "NO"});
  }
  // TLS 1.3 rows: Firefox 60 (2018-05) and Chrome's experimental variant.
  const auto* ff60 = catalog.find("Firefox")->config_at(
      tls::core::Date(2018, 5, 20));
  rows.push_back({"Firefox", "60", ff60->release.to_string(),
                  "TLS 1.3 (supported_versions)",
                  ff60->supported_versions.empty() ? "-" : "n/a",
                  !ff60->supported_versions.empty() ? "yes" : "NO"});
  if (ff60->supported_versions.empty()) ++mismatches;

  std::printf("Table 6: browser TLS version support\n%s\n%d mismatches\n",
              tls::analysis::render_table(rows).c_str(), mismatches);
  return mismatches == 0 ? 0 : 1;
}
