file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_registry.dir/bench_ablation_registry.cpp.o"
  "CMakeFiles/bench_ablation_registry.dir/bench_ablation_registry.cpp.o.d"
  "bench_ablation_registry"
  "bench_ablation_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
