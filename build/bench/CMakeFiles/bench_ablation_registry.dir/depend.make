# Empty dependencies file for bench_ablation_registry.
# This may be replaced when dependencies are built.
