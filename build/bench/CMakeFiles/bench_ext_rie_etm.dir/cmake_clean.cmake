file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rie_etm.dir/bench_ext_rie_etm.cpp.o"
  "CMakeFiles/bench_ext_rie_etm.dir/bench_ext_rie_etm.cpp.o.d"
  "bench_ext_rie_etm"
  "bench_ext_rie_etm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rie_etm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
