# Empty dependencies file for bench_ext_rie_etm.
# This may be replaced when dependencies are built.
