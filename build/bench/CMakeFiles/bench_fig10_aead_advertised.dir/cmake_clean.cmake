file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_aead_advertised.dir/bench_fig10_aead_advertised.cpp.o"
  "CMakeFiles/bench_fig10_aead_advertised.dir/bench_fig10_aead_advertised.cpp.o.d"
  "bench_fig10_aead_advertised"
  "bench_fig10_aead_advertised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_aead_advertised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
