# Empty dependencies file for bench_fig10_aead_advertised.
# This may be replaced when dependencies are built.
