# Empty compiler generated dependencies file for bench_fig2_cipher_classes.
# This may be replaced when dependencies are built.
