file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_advertised.dir/bench_fig3_advertised.cpp.o"
  "CMakeFiles/bench_fig3_advertised.dir/bench_fig3_advertised.cpp.o.d"
  "bench_fig3_advertised"
  "bench_fig3_advertised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_advertised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
