# Empty dependencies file for bench_fig3_advertised.
# This may be replaced when dependencies are built.
