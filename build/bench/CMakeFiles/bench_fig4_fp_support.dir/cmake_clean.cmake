file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fp_support.dir/bench_fig4_fp_support.cpp.o"
  "CMakeFiles/bench_fig4_fp_support.dir/bench_fig4_fp_support.cpp.o.d"
  "bench_fig4_fp_support"
  "bench_fig4_fp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
