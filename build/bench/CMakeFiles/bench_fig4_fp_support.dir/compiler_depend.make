# Empty compiler generated dependencies file for bench_fig4_fp_support.
# This may be replaced when dependencies are built.
