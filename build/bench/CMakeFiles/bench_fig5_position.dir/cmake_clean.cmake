file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_position.dir/bench_fig5_position.cpp.o"
  "CMakeFiles/bench_fig5_position.dir/bench_fig5_position.cpp.o.d"
  "bench_fig5_position"
  "bench_fig5_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
