file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rc4_advertised.dir/bench_fig6_rc4_advertised.cpp.o"
  "CMakeFiles/bench_fig6_rc4_advertised.dir/bench_fig6_rc4_advertised.cpp.o.d"
  "bench_fig6_rc4_advertised"
  "bench_fig6_rc4_advertised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rc4_advertised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
