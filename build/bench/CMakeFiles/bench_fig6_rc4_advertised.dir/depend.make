# Empty dependencies file for bench_fig6_rc4_advertised.
# This may be replaced when dependencies are built.
