file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_weak_advertised.dir/bench_fig7_weak_advertised.cpp.o"
  "CMakeFiles/bench_fig7_weak_advertised.dir/bench_fig7_weak_advertised.cpp.o.d"
  "bench_fig7_weak_advertised"
  "bench_fig7_weak_advertised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_weak_advertised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
