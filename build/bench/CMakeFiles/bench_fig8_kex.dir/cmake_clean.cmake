file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kex.dir/bench_fig8_kex.cpp.o"
  "CMakeFiles/bench_fig8_kex.dir/bench_fig8_kex.cpp.o.d"
  "bench_fig8_kex"
  "bench_fig8_kex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
