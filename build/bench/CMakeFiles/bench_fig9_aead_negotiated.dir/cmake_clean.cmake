file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_aead_negotiated.dir/bench_fig9_aead_negotiated.cpp.o"
  "CMakeFiles/bench_fig9_aead_negotiated.dir/bench_fig9_aead_negotiated.cpp.o.d"
  "bench_fig9_aead_negotiated"
  "bench_fig9_aead_negotiated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_aead_negotiated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
