# Empty dependencies file for bench_fig9_aead_negotiated.
# This may be replaced when dependencies are built.
