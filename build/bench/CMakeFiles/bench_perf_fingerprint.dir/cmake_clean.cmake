file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_fingerprint.dir/bench_perf_fingerprint.cpp.o"
  "CMakeFiles/bench_perf_fingerprint.dir/bench_perf_fingerprint.cpp.o.d"
  "bench_perf_fingerprint"
  "bench_perf_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
