# Empty dependencies file for bench_perf_fingerprint.
# This may be replaced when dependencies are built.
