file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_negotiate.dir/bench_perf_negotiate.cpp.o"
  "CMakeFiles/bench_perf_negotiate.dir/bench_perf_negotiate.cpp.o.d"
  "bench_perf_negotiate"
  "bench_perf_negotiate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_negotiate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
