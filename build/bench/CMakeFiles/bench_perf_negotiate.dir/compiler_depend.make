# Empty compiler generated dependencies file for bench_perf_negotiate.
# This may be replaced when dependencies are built.
