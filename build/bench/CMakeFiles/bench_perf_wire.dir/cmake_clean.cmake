file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_wire.dir/bench_perf_wire.cpp.o"
  "CMakeFiles/bench_perf_wire.dir/bench_perf_wire.cpp.o.d"
  "bench_perf_wire"
  "bench_perf_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
