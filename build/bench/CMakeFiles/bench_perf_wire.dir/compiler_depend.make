# Empty compiler generated dependencies file for bench_perf_wire.
# This may be replaced when dependencies are built.
