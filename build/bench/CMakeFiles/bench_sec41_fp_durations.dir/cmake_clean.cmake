file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_fp_durations.dir/bench_sec41_fp_durations.cpp.o"
  "CMakeFiles/bench_sec41_fp_durations.dir/bench_sec41_fp_durations.cpp.o.d"
  "bench_sec41_fp_durations"
  "bench_sec41_fp_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_fp_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
