# Empty dependencies file for bench_sec41_fp_durations.
# This may be replaced when dependencies are built.
