file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_collisions.dir/bench_sec4_collisions.cpp.o"
  "CMakeFiles/bench_sec4_collisions.dir/bench_sec4_collisions.cpp.o.d"
  "bench_sec4_collisions"
  "bench_sec4_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
