# Empty compiler generated dependencies file for bench_sec4_collisions.
# This may be replaced when dependencies are built.
