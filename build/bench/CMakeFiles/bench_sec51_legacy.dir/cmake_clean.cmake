file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_legacy.dir/bench_sec51_legacy.cpp.o"
  "CMakeFiles/bench_sec51_legacy.dir/bench_sec51_legacy.cpp.o.d"
  "bench_sec51_legacy"
  "bench_sec51_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
