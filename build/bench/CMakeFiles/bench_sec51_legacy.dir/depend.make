# Empty dependencies file for bench_sec51_legacy.
# This may be replaced when dependencies are built.
