file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_rc4_servers.dir/bench_sec53_rc4_servers.cpp.o"
  "CMakeFiles/bench_sec53_rc4_servers.dir/bench_sec53_rc4_servers.cpp.o.d"
  "bench_sec53_rc4_servers"
  "bench_sec53_rc4_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_rc4_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
