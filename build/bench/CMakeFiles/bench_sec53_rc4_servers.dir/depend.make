# Empty dependencies file for bench_sec53_rc4_servers.
# This may be replaced when dependencies are built.
