file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_heartbleed.dir/bench_sec54_heartbleed.cpp.o"
  "CMakeFiles/bench_sec54_heartbleed.dir/bench_sec54_heartbleed.cpp.o.d"
  "bench_sec54_heartbleed"
  "bench_sec54_heartbleed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_heartbleed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
