# Empty dependencies file for bench_sec54_heartbleed.
# This may be replaced when dependencies are built.
