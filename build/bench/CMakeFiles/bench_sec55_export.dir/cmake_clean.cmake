file(REMOVE_RECURSE
  "CMakeFiles/bench_sec55_export.dir/bench_sec55_export.cpp.o"
  "CMakeFiles/bench_sec55_export.dir/bench_sec55_export.cpp.o.d"
  "bench_sec55_export"
  "bench_sec55_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec55_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
