file(REMOVE_RECURSE
  "CMakeFiles/bench_sec56_3des.dir/bench_sec56_3des.cpp.o"
  "CMakeFiles/bench_sec56_3des.dir/bench_sec56_3des.cpp.o.d"
  "bench_sec56_3des"
  "bench_sec56_3des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec56_3des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
