# Empty dependencies file for bench_sec56_3des.
# This may be replaced when dependencies are built.
