file(REMOVE_RECURSE
  "CMakeFiles/bench_sec631_fs.dir/bench_sec631_fs.cpp.o"
  "CMakeFiles/bench_sec631_fs.dir/bench_sec631_fs.cpp.o.d"
  "bench_sec631_fs"
  "bench_sec631_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec631_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
