# Empty dependencies file for bench_sec631_fs.
# This may be replaced when dependencies are built.
