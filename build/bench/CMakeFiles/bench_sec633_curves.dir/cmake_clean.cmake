file(REMOVE_RECURSE
  "CMakeFiles/bench_sec633_curves.dir/bench_sec633_curves.cpp.o"
  "CMakeFiles/bench_sec633_curves.dir/bench_sec633_curves.cpp.o.d"
  "bench_sec633_curves"
  "bench_sec633_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec633_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
