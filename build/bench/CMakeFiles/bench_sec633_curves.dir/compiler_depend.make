# Empty compiler generated dependencies file for bench_sec633_curves.
# This may be replaced when dependencies are built.
