file(REMOVE_RECURSE
  "CMakeFiles/bench_sec64_tls13.dir/bench_sec64_tls13.cpp.o"
  "CMakeFiles/bench_sec64_tls13.dir/bench_sec64_tls13.cpp.o.d"
  "bench_sec64_tls13"
  "bench_sec64_tls13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec64_tls13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
