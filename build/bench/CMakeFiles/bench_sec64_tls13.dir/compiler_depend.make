# Empty compiler generated dependencies file for bench_sec64_tls13.
# This may be replaced when dependencies are built.
