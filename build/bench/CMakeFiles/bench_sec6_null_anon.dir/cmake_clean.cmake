file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_null_anon.dir/bench_sec6_null_anon.cpp.o"
  "CMakeFiles/bench_sec6_null_anon.dir/bench_sec6_null_anon.cpp.o.d"
  "bench_sec6_null_anon"
  "bench_sec6_null_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_null_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
