# Empty dependencies file for bench_sec6_null_anon.
# This may be replaced when dependencies are built.
