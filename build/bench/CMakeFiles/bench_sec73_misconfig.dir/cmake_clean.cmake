file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_misconfig.dir/bench_sec73_misconfig.cpp.o"
  "CMakeFiles/bench_sec73_misconfig.dir/bench_sec73_misconfig.cpp.o.d"
  "bench_sec73_misconfig"
  "bench_sec73_misconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_misconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
