# Empty dependencies file for bench_sec73_misconfig.
# This may be replaced when dependencies are built.
