file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fingerprints.dir/bench_table2_fingerprints.cpp.o"
  "CMakeFiles/bench_table2_fingerprints.dir/bench_table2_fingerprints.cpp.o.d"
  "bench_table2_fingerprints"
  "bench_table2_fingerprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fingerprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
