# Empty dependencies file for bench_table2_fingerprints.
# This may be replaced when dependencies are built.
