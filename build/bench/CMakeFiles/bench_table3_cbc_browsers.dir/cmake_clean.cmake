file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cbc_browsers.dir/bench_table3_cbc_browsers.cpp.o"
  "CMakeFiles/bench_table3_cbc_browsers.dir/bench_table3_cbc_browsers.cpp.o.d"
  "bench_table3_cbc_browsers"
  "bench_table3_cbc_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cbc_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
