# Empty dependencies file for bench_table3_cbc_browsers.
# This may be replaced when dependencies are built.
