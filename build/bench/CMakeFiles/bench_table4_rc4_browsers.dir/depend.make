# Empty dependencies file for bench_table4_rc4_browsers.
# This may be replaced when dependencies are built.
