file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_3des_browsers.dir/bench_table5_3des_browsers.cpp.o"
  "CMakeFiles/bench_table5_3des_browsers.dir/bench_table5_3des_browsers.cpp.o.d"
  "bench_table5_3des_browsers"
  "bench_table5_3des_browsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_3des_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
