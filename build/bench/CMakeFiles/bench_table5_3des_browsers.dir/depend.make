# Empty dependencies file for bench_table5_3des_browsers.
# This may be replaced when dependencies are built.
