# Empty compiler generated dependencies file for bench_table6_version_support.
# This may be replaced when dependencies are built.
