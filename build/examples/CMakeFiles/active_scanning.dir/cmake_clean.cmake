file(REMOVE_RECURSE
  "CMakeFiles/active_scanning.dir/active_scanning.cpp.o"
  "CMakeFiles/active_scanning.dir/active_scanning.cpp.o.d"
  "active_scanning"
  "active_scanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_scanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
