# Empty compiler generated dependencies file for active_scanning.
# This may be replaced when dependencies are built.
