file(REMOVE_RECURSE
  "CMakeFiles/attack_timeline_report.dir/attack_timeline_report.cpp.o"
  "CMakeFiles/attack_timeline_report.dir/attack_timeline_report.cpp.o.d"
  "attack_timeline_report"
  "attack_timeline_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_timeline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
