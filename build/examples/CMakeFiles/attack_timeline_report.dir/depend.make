# Empty dependencies file for attack_timeline_report.
# This may be replaced when dependencies are built.
