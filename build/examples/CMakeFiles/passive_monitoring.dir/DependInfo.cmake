
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/passive_monitoring.cpp" "examples/CMakeFiles/passive_monitoring.dir/passive_monitoring.cpp.o" "gcc" "examples/CMakeFiles/passive_monitoring.dir/passive_monitoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tls_study.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tls_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/notary/CMakeFiles/tls_notary.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/tls_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/tls_population.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/tls_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/handshake/CMakeFiles/tls_handshake.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/tls_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tls_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
