file(REMOVE_RECURSE
  "CMakeFiles/passive_monitoring.dir/passive_monitoring.cpp.o"
  "CMakeFiles/passive_monitoring.dir/passive_monitoring.cpp.o.d"
  "passive_monitoring"
  "passive_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
