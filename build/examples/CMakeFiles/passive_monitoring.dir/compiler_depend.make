# Empty compiler generated dependencies file for passive_monitoring.
# This may be replaced when dependencies are built.
