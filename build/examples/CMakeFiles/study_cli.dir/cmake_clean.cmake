file(REMOVE_RECURSE
  "CMakeFiles/study_cli.dir/study_cli.cpp.o"
  "CMakeFiles/study_cli.dir/study_cli.cpp.o.d"
  "study_cli"
  "study_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
