# Empty compiler generated dependencies file for study_cli.
# This may be replaced when dependencies are built.
