# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tlscore")
subdirs("wire")
subdirs("fingerprint")
subdirs("clients")
subdirs("servers")
subdirs("handshake")
subdirs("population")
subdirs("notary")
subdirs("scan")
subdirs("analysis")
subdirs("core")
