
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/csv.cpp" "src/analysis/CMakeFiles/tls_analysis.dir/csv.cpp.o" "gcc" "src/analysis/CMakeFiles/tls_analysis.dir/csv.cpp.o.d"
  "/root/repo/src/analysis/render.cpp" "src/analysis/CMakeFiles/tls_analysis.dir/render.cpp.o" "gcc" "src/analysis/CMakeFiles/tls_analysis.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/tls_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/handshake/CMakeFiles/tls_handshake.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/tls_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/tls_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tls_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
