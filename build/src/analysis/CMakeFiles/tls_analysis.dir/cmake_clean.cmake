file(REMOVE_RECURSE
  "CMakeFiles/tls_analysis.dir/csv.cpp.o"
  "CMakeFiles/tls_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/tls_analysis.dir/render.cpp.o"
  "CMakeFiles/tls_analysis.dir/render.cpp.o.d"
  "libtls_analysis.a"
  "libtls_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
