file(REMOVE_RECURSE
  "libtls_analysis.a"
)
