# Empty dependencies file for tls_analysis.
# This may be replaced when dependencies are built.
