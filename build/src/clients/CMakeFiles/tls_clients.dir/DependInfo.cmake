
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clients/catalog.cpp" "src/clients/CMakeFiles/tls_clients.dir/catalog.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/catalog.cpp.o.d"
  "/root/repo/src/clients/catalog_apps.cpp" "src/clients/CMakeFiles/tls_clients.dir/catalog_apps.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/catalog_apps.cpp.o.d"
  "/root/repo/src/clients/catalog_browsers.cpp" "src/clients/CMakeFiles/tls_clients.dir/catalog_browsers.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/catalog_browsers.cpp.o.d"
  "/root/repo/src/clients/catalog_detail.cpp" "src/clients/CMakeFiles/tls_clients.dir/catalog_detail.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/catalog_detail.cpp.o.d"
  "/root/repo/src/clients/catalog_libraries.cpp" "src/clients/CMakeFiles/tls_clients.dir/catalog_libraries.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/catalog_libraries.cpp.o.d"
  "/root/repo/src/clients/profile.cpp" "src/clients/CMakeFiles/tls_clients.dir/profile.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/profile.cpp.o.d"
  "/root/repo/src/clients/suite_pools.cpp" "src/clients/CMakeFiles/tls_clients.dir/suite_pools.cpp.o" "gcc" "src/clients/CMakeFiles/tls_clients.dir/suite_pools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tls_fingerprint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
