file(REMOVE_RECURSE
  "CMakeFiles/tls_clients.dir/catalog.cpp.o"
  "CMakeFiles/tls_clients.dir/catalog.cpp.o.d"
  "CMakeFiles/tls_clients.dir/catalog_apps.cpp.o"
  "CMakeFiles/tls_clients.dir/catalog_apps.cpp.o.d"
  "CMakeFiles/tls_clients.dir/catalog_browsers.cpp.o"
  "CMakeFiles/tls_clients.dir/catalog_browsers.cpp.o.d"
  "CMakeFiles/tls_clients.dir/catalog_detail.cpp.o"
  "CMakeFiles/tls_clients.dir/catalog_detail.cpp.o.d"
  "CMakeFiles/tls_clients.dir/catalog_libraries.cpp.o"
  "CMakeFiles/tls_clients.dir/catalog_libraries.cpp.o.d"
  "CMakeFiles/tls_clients.dir/profile.cpp.o"
  "CMakeFiles/tls_clients.dir/profile.cpp.o.d"
  "CMakeFiles/tls_clients.dir/suite_pools.cpp.o"
  "CMakeFiles/tls_clients.dir/suite_pools.cpp.o.d"
  "libtls_clients.a"
  "libtls_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
