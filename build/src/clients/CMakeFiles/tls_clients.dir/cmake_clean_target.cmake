file(REMOVE_RECURSE
  "libtls_clients.a"
)
