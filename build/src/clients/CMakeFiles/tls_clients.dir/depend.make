# Empty dependencies file for tls_clients.
# This may be replaced when dependencies are built.
