file(REMOVE_RECURSE
  "CMakeFiles/tls_study.dir/study.cpp.o"
  "CMakeFiles/tls_study.dir/study.cpp.o.d"
  "libtls_study.a"
  "libtls_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
