file(REMOVE_RECURSE
  "libtls_study.a"
)
