# Empty dependencies file for tls_study.
# This may be replaced when dependencies are built.
