
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/database.cpp" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/database.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/database.cpp.o.d"
  "/root/repo/src/fingerprint/duration.cpp" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/duration.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/duration.cpp.o.d"
  "/root/repo/src/fingerprint/fingerprint.cpp" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/fingerprint.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/fingerprint.cpp.o.d"
  "/root/repo/src/fingerprint/io.cpp" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/io.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/io.cpp.o.d"
  "/root/repo/src/fingerprint/md5.cpp" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/md5.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tls_fingerprint.dir/md5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
