file(REMOVE_RECURSE
  "CMakeFiles/tls_fingerprint.dir/database.cpp.o"
  "CMakeFiles/tls_fingerprint.dir/database.cpp.o.d"
  "CMakeFiles/tls_fingerprint.dir/duration.cpp.o"
  "CMakeFiles/tls_fingerprint.dir/duration.cpp.o.d"
  "CMakeFiles/tls_fingerprint.dir/fingerprint.cpp.o"
  "CMakeFiles/tls_fingerprint.dir/fingerprint.cpp.o.d"
  "CMakeFiles/tls_fingerprint.dir/io.cpp.o"
  "CMakeFiles/tls_fingerprint.dir/io.cpp.o.d"
  "CMakeFiles/tls_fingerprint.dir/md5.cpp.o"
  "CMakeFiles/tls_fingerprint.dir/md5.cpp.o.d"
  "libtls_fingerprint.a"
  "libtls_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
