file(REMOVE_RECURSE
  "libtls_fingerprint.a"
)
