# Empty dependencies file for tls_fingerprint.
# This may be replaced when dependencies are built.
