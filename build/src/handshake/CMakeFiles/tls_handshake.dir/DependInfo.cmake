
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/handshake/negotiate.cpp" "src/handshake/CMakeFiles/tls_handshake.dir/negotiate.cpp.o" "gcc" "src/handshake/CMakeFiles/tls_handshake.dir/negotiate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/tls_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
