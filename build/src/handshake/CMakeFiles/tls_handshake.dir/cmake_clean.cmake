file(REMOVE_RECURSE
  "CMakeFiles/tls_handshake.dir/negotiate.cpp.o"
  "CMakeFiles/tls_handshake.dir/negotiate.cpp.o.d"
  "libtls_handshake.a"
  "libtls_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
