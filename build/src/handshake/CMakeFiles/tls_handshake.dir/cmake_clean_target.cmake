file(REMOVE_RECURSE
  "libtls_handshake.a"
)
