# Empty dependencies file for tls_handshake.
# This may be replaced when dependencies are built.
