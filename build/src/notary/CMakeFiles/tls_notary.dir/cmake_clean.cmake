file(REMOVE_RECURSE
  "CMakeFiles/tls_notary.dir/monitor.cpp.o"
  "CMakeFiles/tls_notary.dir/monitor.cpp.o.d"
  "libtls_notary.a"
  "libtls_notary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_notary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
