file(REMOVE_RECURSE
  "libtls_notary.a"
)
