# Empty compiler generated dependencies file for tls_notary.
# This may be replaced when dependencies are built.
