file(REMOVE_RECURSE
  "CMakeFiles/tls_population.dir/market.cpp.o"
  "CMakeFiles/tls_population.dir/market.cpp.o.d"
  "CMakeFiles/tls_population.dir/market_standard.cpp.o"
  "CMakeFiles/tls_population.dir/market_standard.cpp.o.d"
  "CMakeFiles/tls_population.dir/traffic.cpp.o"
  "CMakeFiles/tls_population.dir/traffic.cpp.o.d"
  "libtls_population.a"
  "libtls_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
