file(REMOVE_RECURSE
  "libtls_population.a"
)
