# Empty compiler generated dependencies file for tls_population.
# This may be replaced when dependencies are built.
