file(REMOVE_RECURSE
  "CMakeFiles/tls_scan.dir/scanner.cpp.o"
  "CMakeFiles/tls_scan.dir/scanner.cpp.o.d"
  "libtls_scan.a"
  "libtls_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
