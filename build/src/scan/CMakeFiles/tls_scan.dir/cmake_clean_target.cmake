file(REMOVE_RECURSE
  "libtls_scan.a"
)
