# Empty compiler generated dependencies file for tls_scan.
# This may be replaced when dependencies are built.
