file(REMOVE_RECURSE
  "CMakeFiles/tls_servers.dir/config.cpp.o"
  "CMakeFiles/tls_servers.dir/config.cpp.o.d"
  "CMakeFiles/tls_servers.dir/population.cpp.o"
  "CMakeFiles/tls_servers.dir/population.cpp.o.d"
  "libtls_servers.a"
  "libtls_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
