file(REMOVE_RECURSE
  "libtls_servers.a"
)
