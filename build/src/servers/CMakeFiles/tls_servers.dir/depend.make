# Empty dependencies file for tls_servers.
# This may be replaced when dependencies are built.
