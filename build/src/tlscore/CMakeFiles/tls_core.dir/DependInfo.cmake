
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlscore/cipher_suites.cpp" "src/tlscore/CMakeFiles/tls_core.dir/cipher_suites.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/cipher_suites.cpp.o.d"
  "/root/repo/src/tlscore/dates.cpp" "src/tlscore/CMakeFiles/tls_core.dir/dates.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/dates.cpp.o.d"
  "/root/repo/src/tlscore/extensions.cpp" "src/tlscore/CMakeFiles/tls_core.dir/extensions.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/extensions.cpp.o.d"
  "/root/repo/src/tlscore/grease.cpp" "src/tlscore/CMakeFiles/tls_core.dir/grease.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/grease.cpp.o.d"
  "/root/repo/src/tlscore/named_groups.cpp" "src/tlscore/CMakeFiles/tls_core.dir/named_groups.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/named_groups.cpp.o.d"
  "/root/repo/src/tlscore/series.cpp" "src/tlscore/CMakeFiles/tls_core.dir/series.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/series.cpp.o.d"
  "/root/repo/src/tlscore/timeline.cpp" "src/tlscore/CMakeFiles/tls_core.dir/timeline.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/timeline.cpp.o.d"
  "/root/repo/src/tlscore/version.cpp" "src/tlscore/CMakeFiles/tls_core.dir/version.cpp.o" "gcc" "src/tlscore/CMakeFiles/tls_core.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
