file(REMOVE_RECURSE
  "CMakeFiles/tls_core.dir/cipher_suites.cpp.o"
  "CMakeFiles/tls_core.dir/cipher_suites.cpp.o.d"
  "CMakeFiles/tls_core.dir/dates.cpp.o"
  "CMakeFiles/tls_core.dir/dates.cpp.o.d"
  "CMakeFiles/tls_core.dir/extensions.cpp.o"
  "CMakeFiles/tls_core.dir/extensions.cpp.o.d"
  "CMakeFiles/tls_core.dir/grease.cpp.o"
  "CMakeFiles/tls_core.dir/grease.cpp.o.d"
  "CMakeFiles/tls_core.dir/named_groups.cpp.o"
  "CMakeFiles/tls_core.dir/named_groups.cpp.o.d"
  "CMakeFiles/tls_core.dir/series.cpp.o"
  "CMakeFiles/tls_core.dir/series.cpp.o.d"
  "CMakeFiles/tls_core.dir/timeline.cpp.o"
  "CMakeFiles/tls_core.dir/timeline.cpp.o.d"
  "CMakeFiles/tls_core.dir/version.cpp.o"
  "CMakeFiles/tls_core.dir/version.cpp.o.d"
  "libtls_core.a"
  "libtls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
