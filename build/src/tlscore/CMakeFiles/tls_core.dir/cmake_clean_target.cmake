file(REMOVE_RECURSE
  "libtls_core.a"
)
