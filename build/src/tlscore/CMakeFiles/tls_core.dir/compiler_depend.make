# Empty compiler generated dependencies file for tls_core.
# This may be replaced when dependencies are built.
