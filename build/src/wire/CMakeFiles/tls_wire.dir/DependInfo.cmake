
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/alert.cpp" "src/wire/CMakeFiles/tls_wire.dir/alert.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/alert.cpp.o.d"
  "/root/repo/src/wire/buffer.cpp" "src/wire/CMakeFiles/tls_wire.dir/buffer.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/buffer.cpp.o.d"
  "/root/repo/src/wire/client_hello.cpp" "src/wire/CMakeFiles/tls_wire.dir/client_hello.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/client_hello.cpp.o.d"
  "/root/repo/src/wire/extension_codec.cpp" "src/wire/CMakeFiles/tls_wire.dir/extension_codec.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/extension_codec.cpp.o.d"
  "/root/repo/src/wire/heartbeat.cpp" "src/wire/CMakeFiles/tls_wire.dir/heartbeat.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/heartbeat.cpp.o.d"
  "/root/repo/src/wire/record.cpp" "src/wire/CMakeFiles/tls_wire.dir/record.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/record.cpp.o.d"
  "/root/repo/src/wire/server_hello.cpp" "src/wire/CMakeFiles/tls_wire.dir/server_hello.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/server_hello.cpp.o.d"
  "/root/repo/src/wire/server_key_exchange.cpp" "src/wire/CMakeFiles/tls_wire.dir/server_key_exchange.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/server_key_exchange.cpp.o.d"
  "/root/repo/src/wire/sslv2.cpp" "src/wire/CMakeFiles/tls_wire.dir/sslv2.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/sslv2.cpp.o.d"
  "/root/repo/src/wire/transcript.cpp" "src/wire/CMakeFiles/tls_wire.dir/transcript.cpp.o" "gcc" "src/wire/CMakeFiles/tls_wire.dir/transcript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
