file(REMOVE_RECURSE
  "CMakeFiles/tls_wire.dir/alert.cpp.o"
  "CMakeFiles/tls_wire.dir/alert.cpp.o.d"
  "CMakeFiles/tls_wire.dir/buffer.cpp.o"
  "CMakeFiles/tls_wire.dir/buffer.cpp.o.d"
  "CMakeFiles/tls_wire.dir/client_hello.cpp.o"
  "CMakeFiles/tls_wire.dir/client_hello.cpp.o.d"
  "CMakeFiles/tls_wire.dir/extension_codec.cpp.o"
  "CMakeFiles/tls_wire.dir/extension_codec.cpp.o.d"
  "CMakeFiles/tls_wire.dir/heartbeat.cpp.o"
  "CMakeFiles/tls_wire.dir/heartbeat.cpp.o.d"
  "CMakeFiles/tls_wire.dir/record.cpp.o"
  "CMakeFiles/tls_wire.dir/record.cpp.o.d"
  "CMakeFiles/tls_wire.dir/server_hello.cpp.o"
  "CMakeFiles/tls_wire.dir/server_hello.cpp.o.d"
  "CMakeFiles/tls_wire.dir/server_key_exchange.cpp.o"
  "CMakeFiles/tls_wire.dir/server_key_exchange.cpp.o.d"
  "CMakeFiles/tls_wire.dir/sslv2.cpp.o"
  "CMakeFiles/tls_wire.dir/sslv2.cpp.o.d"
  "CMakeFiles/tls_wire.dir/transcript.cpp.o"
  "CMakeFiles/tls_wire.dir/transcript.cpp.o.d"
  "libtls_wire.a"
  "libtls_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
