file(REMOVE_RECURSE
  "libtls_wire.a"
)
