# Empty compiler generated dependencies file for tls_wire.
# This may be replaced when dependencies are built.
