
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alert.cpp" "tests/CMakeFiles/tls_tests.dir/test_alert.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_alert.cpp.o.d"
  "/root/repo/tests/test_buffer.cpp" "tests/CMakeFiles/tls_tests.dir/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_buffer.cpp.o.d"
  "/root/repo/tests/test_cipher_suites.cpp" "tests/CMakeFiles/tls_tests.dir/test_cipher_suites.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_cipher_suites.cpp.o.d"
  "/root/repo/tests/test_clients.cpp" "tests/CMakeFiles/tls_tests.dir/test_clients.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_clients.cpp.o.d"
  "/root/repo/tests/test_compat_matrix.cpp" "tests/CMakeFiles/tls_tests.dir/test_compat_matrix.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_compat_matrix.cpp.o.d"
  "/root/repo/tests/test_dates.cpp" "tests/CMakeFiles/tls_tests.dir/test_dates.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_dates.cpp.o.d"
  "/root/repo/tests/test_extension_codec.cpp" "tests/CMakeFiles/tls_tests.dir/test_extension_codec.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_extension_codec.cpp.o.d"
  "/root/repo/tests/test_extensions_tracking.cpp" "tests/CMakeFiles/tls_tests.dir/test_extensions_tracking.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_extensions_tracking.cpp.o.d"
  "/root/repo/tests/test_fingerprint.cpp" "tests/CMakeFiles/tls_tests.dir/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_fingerprint.cpp.o.d"
  "/root/repo/tests/test_fp_database.cpp" "tests/CMakeFiles/tls_tests.dir/test_fp_database.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_fp_database.cpp.o.d"
  "/root/repo/tests/test_fp_io.cpp" "tests/CMakeFiles/tls_tests.dir/test_fp_io.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_fp_io.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/tls_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_heartbeat.cpp" "tests/CMakeFiles/tls_tests.dir/test_heartbeat.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_heartbeat.cpp.o.d"
  "/root/repo/tests/test_hellos.cpp" "tests/CMakeFiles/tls_tests.dir/test_hellos.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_hellos.cpp.o.d"
  "/root/repo/tests/test_market.cpp" "tests/CMakeFiles/tls_tests.dir/test_market.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_market.cpp.o.d"
  "/root/repo/tests/test_md5.cpp" "tests/CMakeFiles/tls_tests.dir/test_md5.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_md5.cpp.o.d"
  "/root/repo/tests/test_model_sanity.cpp" "tests/CMakeFiles/tls_tests.dir/test_model_sanity.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_model_sanity.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/tls_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_negotiate.cpp" "tests/CMakeFiles/tls_tests.dir/test_negotiate.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_negotiate.cpp.o.d"
  "/root/repo/tests/test_record.cpp" "tests/CMakeFiles/tls_tests.dir/test_record.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_record.cpp.o.d"
  "/root/repo/tests/test_registries.cpp" "tests/CMakeFiles/tls_tests.dir/test_registries.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_registries.cpp.o.d"
  "/root/repo/tests/test_render.cpp" "tests/CMakeFiles/tls_tests.dir/test_render.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_render.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/tls_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_scanner.cpp" "tests/CMakeFiles/tls_tests.dir/test_scanner.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_scanner.cpp.o.d"
  "/root/repo/tests/test_series_rng.cpp" "tests/CMakeFiles/tls_tests.dir/test_series_rng.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_series_rng.cpp.o.d"
  "/root/repo/tests/test_servers.cpp" "tests/CMakeFiles/tls_tests.dir/test_servers.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_servers.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/tls_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/tls_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_transcript.cpp" "tests/CMakeFiles/tls_tests.dir/test_transcript.cpp.o" "gcc" "tests/CMakeFiles/tls_tests.dir/test_transcript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tls_study.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tls_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/notary/CMakeFiles/tls_notary.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/tls_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/tls_population.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/tls_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/handshake/CMakeFiles/tls_handshake.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/tls_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tls_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/tls_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/tlscore/CMakeFiles/tls_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
