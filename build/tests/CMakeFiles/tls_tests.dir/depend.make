# Empty dependencies file for tls_tests.
# This may be replaced when dependencies are built.
