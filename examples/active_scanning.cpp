// Active scanning walkthrough: Censys-style sweeps of the server population
// with the fixed 2015-Chrome, SSL3-only, and EXPORT-only hellos (§3.2),
// printed quarterly across the scan window.
#include <cstdio>

#include "scan/scanner.hpp"

int main() {
  using namespace tls;

  const auto population = servers::ServerPopulation::standard();
  const scan::ActiveScanner scanner(population);

  std::printf("%-8s %8s %8s %8s %8s %8s %10s %8s\n", "month", "SSL3", "RC4",
              "CBC", "AEAD", "3DES", "heartbleed", "TLS1.3");
  const auto window = core::censys_window();
  for (core::Month m = window.begin_month; m <= window.end_month; m += 3) {
    const auto s = scanner.scan(m);
    std::printf(
        "%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.2f%% %9.2f%% %7.1f%%\n",
        m.to_string().c_str(), 100 * s.ssl3_support, 100 * s.chooses_rc4,
        100 * s.chooses_cbc, 100 * s.chooses_aead, 100 * s.chooses_3des,
        100 * s.heartbleed_vulnerable, 100 * s.tls13_support);
  }
  return 0;
}
