// Attack-impact report: for each high-profile attack in the study's
// timeline (§2.2), measure the relevant ecosystem metric shortly before
// disclosure and one year later — the §5 "did the ecosystem react?"
// analysis as a single runnable program.
#include <cstdio>

#include "core/study.hpp"
#include "scan/scanner.hpp"
#include "tlscore/timeline.hpp"

namespace {

using tls::core::Month;
using tls::notary::MonthlyStats;

double metric_rc4(const MonthlyStats& s) {
  const std::uint64_t n = s.negotiated_class_count(tls::core::CipherClass::kRc4);
  return s.successful == 0 ? 0
                           : 100.0 * static_cast<double>(n) /
                                 static_cast<double>(s.successful);
}

double metric_cbc(const MonthlyStats& s) {
  const std::uint64_t n = s.negotiated_class_count(tls::core::CipherClass::kCbc);
  return s.successful == 0 ? 0
                           : 100.0 * static_cast<double>(n) /
                                 static_cast<double>(s.successful);
}

double metric_rsa_kex(const MonthlyStats& s) {
  const std::uint64_t n = s.negotiated_kex_count(tls::core::KexClass::kRsa);
  return s.successful == 0
             ? 0
             : 100.0 * static_cast<double>(n) /
                   static_cast<double>(s.successful);
}

double metric_export_adv(const MonthlyStats& s) {
  return s.pct(s.adv_export);
}

double metric_3des_adv(const MonthlyStats& s) { return s.pct(s.adv_3des); }

}  // namespace

int main() {
  tls::study::StudyOptions opts;
  opts.connections_per_month = 5000;
  opts.full_catalog = false;
  tls::study::LongitudinalStudy study(opts);
  const auto& mon = study.monitor();

  const auto value_at = [&](Month m, double (*metric)(const MonthlyStats&)) {
    const auto* s = mon.month(m);
    return s == nullptr ? 0.0 : metric(*s);
  };

  struct Row {
    const char* event;
    const char* metric_name;
    double (*metric)(const MonthlyStats&);
  };
  const Row rows[] = {
      {"lucky13", "CBC negotiated %", metric_cbc},
      {"rc4", "RC4 negotiated %", metric_rc4},
      {"rc4_nomore", "RC4 negotiated %", metric_rc4},
      {"snowden", "RSA key-transport %", metric_rsa_kex},
      {"freak", "export advertised %", metric_export_adv},
      {"sweet32", "3DES advertised %", metric_3des_adv},
  };

  std::printf("%-14s %-22s %-12s %9s %9s %8s\n", "attack", "metric",
              "disclosed", "before", "+12mo", "delta");
  for (const auto& row : rows) {
    const auto* ev = tls::core::find_event(row.event);
    if (ev == nullptr) continue;
    const Month when(ev->date);
    const double before = value_at(when + -1, row.metric);
    const double after = value_at(when + 12, row.metric);
    std::printf("%-14s %-22s %-12s %8.1f%% %8.1f%% %+7.1fpp\n", ev->label.data(),
                row.metric_name, ev->date.to_string().c_str(), before, after,
                after - before);
  }

  // Heartbleed reacts on the server side — show the scan view.
  const tls::scan::ActiveScanner scanner(study.servers());
  const auto* hb = tls::core::find_event("heartbleed");
  const Month d(hb->date);
  std::printf("%-14s %-22s %-12s %8.1f%% %8.1f%% (vulnerable hosts, +3mo)\n",
              "Heartbleed", "vulnerable hosts %", hb->date.to_string().c_str(),
              100 * scanner.scan(d + -1).heartbleed_vulnerable,
              100 * scanner.scan(d + 3).heartbleed_vulnerable);

  std::printf(
      "\nReading: quick reactions (Heartbleed, Snowden/FS) vs slow ones\n"
      "(RC4 took until 2015-2016; 3DES advertising barely moved) — §7.4.\n");
  return 0;
}
