// Chaos-tap walkthrough: the same study run twice — clean, then with 10% of
// captures corrupted by the deterministic fault injector — to show that the
// loss is fully accounted for (partition + taxonomy + quarantine ring) while
// the headline aggregates barely move.
#include <cstdio>

#include "core/study.hpp"
#include "faults/injector.hpp"

int main() {
  using namespace tls;

  study::StudyOptions opts;
  opts.connections_per_month = 4000;
  opts.window = {core::Month(2014, 10), core::Month(2015, 9)};
  opts.full_catalog = false;  // fast demo

  study::StudyOptions faulty = opts;
  faulty.faults = faults::FaultConfig::uniform(0.10);

  study::LongitudinalStudy clean(opts);
  study::LongitudinalStudy chaotic(faulty);

  const auto& a = clean.monitor();
  const auto& b = chaotic.monitor();

  std::puts("== per-month loss accounting (10% fault rate) ==");
  std::fputs(
      analysis::render_loss_table(notary::loss_rows(b)).c_str(), stdout);

  std::puts("\n== error taxonomy (stage totals) ==");
  for (std::size_t i = 0; i < notary::kIngestStageCount; ++i) {
    const auto stage = static_cast<notary::IngestStage>(i);
    const auto n = b.errors().stage_total(stage);
    if (n == 0) continue;
    std::printf("  %-20s %llu\n",
                std::string(notary::ingest_stage_name(stage)).c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("  quarantine ring holds %zu of %llu quarantined records\n",
              b.quarantine().size(),
              static_cast<unsigned long long>(b.quarantine().total_pushed()));

  std::puts("\n== clean vs chaotic aggregates (accepted connections) ==");
  std::uint64_t acc_a = 0, acc_b = 0, aead_a = 0, aead_b = 0, rc4_a = 0,
                rc4_b = 0;
  for (const auto& [m, s] : a.months()) {
    acc_a += s.accepted();
    aead_a += s.adv_aead;
    rc4_a += s.adv_rc4;
  }
  for (const auto& [m, s] : b.months()) {
    acc_b += s.accepted();
    aead_b += s.adv_aead;
    rc4_b += s.adv_rc4;
  }
  const auto pct = [](std::uint64_t n, std::uint64_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(d);
  };
  std::printf("  accepted:  %llu clean, %llu chaotic\n",
              static_cast<unsigned long long>(acc_a),
              static_cast<unsigned long long>(acc_b));
  std::printf("  adv AEAD:  %.1f%% clean, %.1f%% chaotic\n",
              pct(aead_a, acc_a), pct(aead_b, acc_b));
  std::printf("  adv RC4:   %.1f%% clean, %.1f%% chaotic\n", pct(rc4_a, acc_a),
              pct(rc4_b, acc_b));

  std::puts("\n== active scan through a lossy network (2016-06) ==");
  scan::ScanPolicy policy;
  policy.network = faults::NetworkProfile::lossy(0.3);
  const scan::ActiveScanner scanner(clean.servers(), policy);
  const auto snap = scanner.scan(core::Month(2016, 6));
  std::printf(
      "  scanned %.1f%% + unreachable %.1f%% = %.9f of the population\n",
      100.0 * snap.scanned, 100.0 * snap.unreachable,
      snap.scanned + snap.unreachable);
  std::printf("  %llu attempts, %llu retries, %llu probes abandoned\n",
              static_cast<unsigned long long>(snap.probe_attempts),
              static_cast<unsigned long long>(snap.probe_retries),
              static_cast<unsigned long long>(snap.probes_abandoned));
  return 0;
}
