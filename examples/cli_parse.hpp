// Checked numeric parsing for the example CLIs. Kept header-only and
// dependency-free so tests can include it directly: the alternative —
// testing through the built binary — couples the suite to install paths.
#pragma once

#include <cerrno>
#include <cstdlib>

namespace tls::cli {

/// Strict decimal parse for CLI numbers: the whole argument must be an
/// integer in [min, max]. Returns false (leaving *out untouched) on null or
/// empty input, trailing junk, overflow, or range violation — callers route
/// that to usage() instead of letting atol's silent 0 (or a negative) flow
/// into RunJournal's group-commit config.
inline bool parse_long(const char* s, long min, long max, long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min || v > max) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace tls::cli
