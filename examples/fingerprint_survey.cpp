// Fingerprint survey: build the full §4 database (Table-2 scale) and print
// its class breakdown plus a few example identifications.
#include <cstdio>

#include "core/study.hpp"
#include "fingerprint/io.hpp"
#include "fingerprint/fingerprint.hpp"

int main() {
  using namespace tls;

  const auto catalog = clients::Catalog::standard();
  const auto db = study::LongitudinalStudy::build_database(catalog);

  std::printf("Fingerprint database: %zu labeled fingerprints (%zu dropped "
              "as cross-software collisions)\n\n",
              db.size(), db.removed_count());
  std::printf("%-26s %8s\n", "Class", "FPs");
  for (const auto& [cls, count] : db.count_by_class()) {
    std::printf("%-26s %8zu\n",
                std::string(fp::software_class_name(cls)).c_str(), count);
  }

  // Export in the paper's release format (the corpus published after
  // acceptance).
  tls::fp::save_database_file("tls_fingerprints.tsv", db);
  std::printf("\nwrote tls_fingerprints.tsv (%zu entries)\n", db.size());

  std::printf("\nExample identifications:\n");
  core::Rng rng(99);
  for (const char* name : {"Firefox", "OpenSSL", "Android SDK", "GridFTP"}) {
    const auto* p = catalog.find(name);
    const auto& cfg = p->versions.back();
    const auto hello = clients::make_client_hello(cfg, rng, "svc.test");
    const auto hash = fp::extract_fingerprint(hello).hash();
    const auto* label = db.lookup(hash);
    std::printf("  %-22s %s -> %s\n", (p->name + " " + cfg.version_label).c_str(),
                hash.c_str(),
                label != nullptr ? label->software.c_str() : "(unlabeled)");
  }
  return 0;
}
