// flight_dump — decode and render a flight-recorder dump (DESIGN.md §17).
//
//   flight_dump FILE             render FLIGHT.bin from disk
//   flight_dump --port N [--host ADDR] [--out FILE]
//                                fetch the live rings via kQueryFlight
//
// Prints the human rendering to stdout. Exit codes: 0 decodable (even
// with a checksum mismatch, which is reported in the rendering and via
// exit 3), 1 undecodable or unreachable daemon, 2 usage error. --out
// additionally saves the fetched binary image for later offline decoding.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"
#include "telemetry/flight.hpp"

namespace {

using tls::daemon::FrameDecoder;
using tls::daemon::FrameType;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool fetch_flight(const std::string& host, std::uint16_t port,
                  std::vector<std::uint8_t>* image) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const auto request =
      tls::daemon::encode_frame(FrameType::kQueryFlight, {});
  std::size_t sent = 0;
  while (sent < request.size()) {
    const auto n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  FrameDecoder decoder;
  const std::uint64_t deadline = now_us() + 5'000'000;
  bool got = false;
  while (!got && now_us() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 200) <= 0) continue;
    std::uint8_t buf[16384];
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    const auto frames = decoder.feed({buf, static_cast<std::size_t>(n)});
    for (const auto& f : frames) {
      if (f.type != FrameType::kFlight) continue;
      image->assign(f.payload.begin(), f.payload.end());
      got = true;
      break;
    }
    if (decoder.poisoned()) break;
  }
  ::close(fd);
  return got;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string host = "127.0.0.1";
  std::string out;
  std::uint16_t port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "flight_dump: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(
          std::strtoull(need("--port"), nullptr, 10));
    } else if (arg == "--host") {
      host = need("--host");
    } else if (arg == "--out") {
      out = need("--out");
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "flight_dump: unknown flag " << arg << "\n";
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty() == (port == 0)) {
    std::cerr << "flight_dump: pass exactly one of FILE or --port N\n";
    return 2;
  }

  std::vector<std::uint8_t> image;
  if (port != 0) {
    if (!fetch_flight(host, port, &image)) {
      std::cerr << "flight_dump: daemon at " << host << ":" << port
                << " did not answer kQueryFlight\n";
      return 1;
    }
    if (image.empty()) {
      std::cerr << "flight_dump: daemon is running with observability off\n";
      return 1;
    }
    if (!out.empty()) {
      std::ofstream file(out, std::ios::binary);
      file.write(reinterpret_cast<const char*>(image.data()),
                 static_cast<std::streamsize>(image.size()));
    }
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << "flight_dump: cannot open " << path << "\n";
      return 1;
    }
    image.assign(std::istreambuf_iterator<char>(file),
                 std::istreambuf_iterator<char>());
  }

  const auto dump = tls::telemetry::decode_flight(
      {image.data(), image.size()});
  std::cout << tls::telemetry::render_flight({image.data(), image.size()});
  if (!dump.ok) {
    std::cerr << "flight_dump: image is not a decodable flight dump\n";
    return 1;
  }
  return dump.checksum_ok ? 0 : 3;
}
