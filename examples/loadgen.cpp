// loadgen — open-loop fault-mix load generator for notary_daemon.
//
//   loadgen --port N [--host ADDR] [--connections C] [--rate R]
//           [--duration-s S] [--seed N] [--skew Z] [--fault-milli F]
//           [--events-per-conn E] [--full-catalog] [--json FILE]
//           [--p99-bound-us N] [--expect-closure] [--min-ingested N]
//
// OPEN loop: each connection schedules capture send times from an
// exponential interarrival process at its share of the aggregate --rate
// and fires on schedule regardless of completions — the generator never
// slows down just because the daemon is busy, which is exactly how
// closed-loop benches hide queueing. When the credit window is exhausted
// at fire time the capture is dropped CLIENT-side and counted as a
// backpressure drop (a well-behaved sensor would buffer; the point here
// is to measure the daemon's shed behavior, not to emulate patience).
//
// --skew Zipf-weights the per-connection rates (weight 1/(i+1)^Z) so a
// few heavy sensors dominate, exercising shard imbalance.
//
// --fault-milli F injects chaos at F permille of fire events, cycling
// through: torn frame (half a frame, then reconnect), garbage bytes,
// bit-flipped checksum, and a slow-loris half-frame stall. Faulted sends
// are chaos, not load: counted separately, never against the daemon's
// offered/ingested closure.
//
// Exit gates (for CI): --expect-closure asserts the daemon's
// offered == ingested + shed + malformed ledger; --p99-bound-us bounds
// the daemon-side admitted-capture ingest latency; --min-ingested
// guards against a silently dead pipeline.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "daemon/capture.hpp"
#include "daemon/protocol.hpp"
#include "population/market.hpp"
#include "population/traffic.hpp"
#include "servers/population.hpp"
#include "tlscore/rng.hpp"

namespace {

using tls::daemon::CreditClient;
using tls::daemon::Frame;
using tls::daemon::FrameDecoder;
using tls::daemon::FrameType;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  double rate = 2000.0;  // aggregate captures/s
  double duration_s = 10.0;
  std::uint64_t seed = 42;
  double skew = 0.0;
  std::uint64_t fault_milli = 0;
  std::size_t events_per_conn = 512;
  bool full_catalog = false;
  std::string json_out;
  std::uint64_t p99_bound_us = 0;
  bool expect_closure = false;
  std::uint64_t min_ingested = 0;
};

struct WorkerStats {
  std::uint64_t scheduled = 0;
  std::uint64_t sent = 0;
  std::uint64_t backpressure_drops = 0;
  std::uint64_t faulted = 0;
  std::uint64_t reconnects = 0;
};

class Client {
 public:
  ~Client() { close(); }

  bool connect(const std::string& host, std::uint16_t port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder_ = FrameDecoder();
    credits_ = CreditClient();
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] CreditClient& credits() { return credits_; }

  /// Blocking full send; false on a dead peer.
  bool send_all(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const auto n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Non-blocking read of whatever is pending; applies credit grants,
  /// returns any non-grant frames. False on a dead peer.
  bool drain_input(std::vector<Frame>* out = nullptr) {
    std::uint8_t buf[16384];
    for (;;) {
      const auto n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      auto frames = decoder_.feed({buf, static_cast<std::size_t>(n)});
      for (auto& frame : frames) {
        if (frame.type == FrameType::kCreditGrant) {
          const auto grant = tls::daemon::decode_credit_grant(frame.payload);
          if (grant) credits_.on_grant(*grant);
        } else if (out != nullptr) {
          out->push_back(std::move(frame));
        }
      }
      if (decoder_.poisoned()) return false;
    }
  }

  /// Waits up to timeout_ms for readable input.
  bool wait_readable(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN) != 0;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  CreditClient credits_;
};

/// One worker: fires pre-encoded capture frames at `rate_per_s` on an
/// exponential open-loop schedule until the deadline.
void run_worker(const Options& opt, std::size_t index,
                const std::vector<std::vector<std::uint8_t>>& frames,
                double rate_per_s, std::uint64_t deadline_us,
                WorkerStats& stats) {
  tls::core::Rng rng(opt.seed * 0x9e3779b97f4a7c15ull + index);
  Client client;
  if (!client.connect(opt.host, opt.port)) return;
  // Wait briefly for the initial credit grant so the first fires have a
  // window to spend.
  client.wait_readable(200);
  if (!client.drain_input()) return;

  std::size_t cursor = index;  // desynchronize the event cycles
  double next_fire = static_cast<double>(now_us());
  std::uint64_t fault_cycle = 0;
  while (true) {
    const std::uint64_t now = now_us();
    if (now >= deadline_us) break;
    if (static_cast<double>(now) < next_fire) {
      const auto wait_us = static_cast<std::uint64_t>(
          next_fire - static_cast<double>(now));
      client.wait_readable(static_cast<int>(wait_us / 1000) + 1);
      if (client.connected() && !client.drain_input()) {
        client.close();
      }
      continue;
    }
    // Schedule the next arrival first — open loop: the schedule never
    // waits for the outcome of this fire.
    const double u = rng.uniform();
    next_fire += -std::log(1.0 - u) / rate_per_s * 1e6;
    ++stats.scheduled;

    if (!client.connected()) {
      if (!client.connect(opt.host, opt.port)) {
        ++stats.backpressure_drops;  // daemon unreachable = dropped fire
        continue;
      }
      ++stats.reconnects;
      client.wait_readable(200);
      client.drain_input();
    }

    const auto& frame = frames[cursor % frames.size()];
    ++cursor;

    const bool fault =
        opt.fault_milli > 0 &&
        rng.chance(static_cast<double>(opt.fault_milli) / 1000.0);
    if (fault) {
      ++stats.faulted;
      switch (fault_cycle++ % 4) {
        case 0: {  // torn frame: half the bytes, then a hard disconnect
          const std::size_t half = frame.size() / 2;
          client.send_all({frame.data(), half});
          client.close();
          break;
        }
        case 1: {  // garbage: random bytes that cannot be a frame header
          std::uint8_t junk[32];
          for (auto& b : junk)
            b = static_cast<std::uint8_t>(rng.below(256));
          junk[0] = 0xFF;  // guarantee a magic mismatch
          if (!client.send_all(junk)) client.close();
          break;
        }
        case 2: {  // bit-flipped checksum: daemon poisons + closes
          auto corrupt = frame;
          corrupt[corrupt.size() - 1] ^= 0x01;
          if (!client.send_all(corrupt)) client.close();
          break;
        }
        case 3: {  // slow-loris: half a frame, stall, never finish
          const std::size_t half = frame.size() / 2;
          client.send_all({frame.data(), half});
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          client.close();  // give up mid-frame — daemon sees a torn buffer
          break;
        }
      }
      continue;
    }

    client.drain_input();
    if (!client.credits().try_send()) {
      ++stats.backpressure_drops;
      continue;
    }
    if (!client.send_all(frame)) {
      client.close();
      ++stats.backpressure_drops;
      continue;
    }
    ++stats.sent;
  }
}

/// Control-plane query: fresh connection, one request frame, first reply.
bool query_daemon(const Options& opt, FrameType request, FrameType reply,
                  std::string* body) {
  Client client;
  if (!client.connect(opt.host, opt.port)) return false;
  const auto frame = tls::daemon::encode_frame(request, {});
  if (!client.send_all(frame)) return false;
  std::vector<Frame> frames;
  const std::uint64_t deadline = now_us() + 5'000'000;
  while (now_us() < deadline) {
    client.wait_readable(200);
    if (!client.drain_input(&frames)) return false;
    for (auto& f : frames) {
      if (f.type != reply) continue;
      body->assign(f.payload.begin(), f.payload.end());
      return true;
    }
  }
  return false;
}

std::map<std::string, std::uint64_t> parse_stats(const std::string& text) {
  std::map<std::string, std::uint64_t> stats;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    stats[line.substr(0, eq)] =
        std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return stats;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "loadgen: bad value for " << flag << ": " << text << "\n";
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "loadgen: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(parse_u64(need("--port"), arg.c_str()));
    } else if (arg == "--host") {
      opt.host = need("--host");
    } else if (arg == "--connections") {
      opt.connections = parse_u64(need("--connections"), arg.c_str());
    } else if (arg == "--rate") {
      opt.rate = std::strtod(need("--rate"), nullptr);
    } else if (arg == "--duration-s") {
      opt.duration_s = std::strtod(need("--duration-s"), nullptr);
    } else if (arg == "--seed") {
      opt.seed = parse_u64(need("--seed"), arg.c_str());
    } else if (arg == "--skew") {
      opt.skew = std::strtod(need("--skew"), nullptr);
    } else if (arg == "--fault-milli") {
      opt.fault_milli = parse_u64(need("--fault-milli"), arg.c_str());
    } else if (arg == "--events-per-conn") {
      opt.events_per_conn = parse_u64(need("--events-per-conn"), arg.c_str());
    } else if (arg == "--full-catalog") {
      opt.full_catalog = true;
    } else if (arg == "--json") {
      opt.json_out = need("--json");
    } else if (arg == "--p99-bound-us") {
      opt.p99_bound_us = parse_u64(need("--p99-bound-us"), arg.c_str());
    } else if (arg == "--expect-closure") {
      opt.expect_closure = true;
    } else if (arg == "--min-ingested") {
      opt.min_ingested = parse_u64(need("--min-ingested"), arg.c_str());
    } else {
      std::cerr << "loadgen: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (opt.port == 0) {
    std::cerr << "loadgen: --port is required\n";
    return 2;
  }
  if (opt.connections == 0) opt.connections = 1;
  if (opt.rate <= 0.0) opt.rate = 1.0;
  if (opt.events_per_conn == 0) opt.events_per_conn = 1;

  // Build the synthetic traffic plane once and pre-encode every worker's
  // capture frames: the hot loop does no generation, only scheduling.
  const auto catalog = opt.full_catalog ? tls::clients::Catalog::standard()
                                        : tls::clients::Catalog::core_only();
  const auto servers = tls::servers::ServerPopulation::standard();
  const auto market = tls::population::MarketModel::standard(catalog);

  std::vector<std::vector<std::vector<std::uint8_t>>> frames_per_conn(
      opt.connections);
  for (std::size_t i = 0; i < opt.connections; ++i) {
    tls::population::TrafficGenerator gen(market, servers, opt.seed + i);
    const tls::core::Month month(2015 + static_cast<int>(i / 12) % 3,
                                 1 + static_cast<int>(i % 12));
    auto& frames = frames_per_conn[i];
    frames.reserve(opt.events_per_conn);
    gen.generate_month(month, opt.events_per_conn,
                       [&](const tls::population::ConnectionEvent& event) {
                         const auto capture =
                             tls::daemon::capture_from_event(event);
                         const auto payload =
                             tls::daemon::encode_capture(capture);
                         frames.push_back(tls::daemon::encode_frame(
                             FrameType::kCapture, payload));
                       });
  }

  // Zipf-style per-connection rate split.
  std::vector<double> weights(opt.connections);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < opt.connections; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), opt.skew);
    weight_sum += weights[i];
  }

  const std::uint64_t start_us = now_us();
  const auto deadline_us =
      start_us + static_cast<std::uint64_t>(opt.duration_s * 1e6);
  std::vector<WorkerStats> stats(opt.connections);
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (std::size_t i = 0; i < opt.connections; ++i) {
    const double rate = opt.rate * weights[i] / weight_sum;
    workers.emplace_back([&, i, rate] {
      run_worker(opt, i, frames_per_conn[i], rate, deadline_us, stats[i]);
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_s =
      static_cast<double>(now_us() - start_us) / 1e6;

  WorkerStats total;
  for (const auto& s : stats) {
    total.scheduled += s.scheduled;
    total.sent += s.sent;
    total.backpressure_drops += s.backpressure_drops;
    total.faulted += s.faulted;
    total.reconnects += s.reconnects;
  }

  // The ledger closes only once the shard queues quiesce: captures the
  // daemon admitted in the final instants are offered but neither ingested
  // nor shed until a worker drains them. Poll until the books balance (or
  // a generous timeout — queues drain in well under a second once sends
  // stop) so the closure gate measures accounting, not scheduling.
  std::map<std::string, std::uint64_t> daemon_stats;
  const std::uint64_t quiesce_deadline_us = now_us() + 15'000'000;
  for (;;) {
    std::string stats_body;
    if (!query_daemon(opt, FrameType::kQueryStats, FrameType::kStats,
                      &stats_body)) {
      std::cerr << "loadgen: stats query failed\n";
      return 1;
    }
    daemon_stats = parse_stats(stats_body);
    const std::uint64_t offered = daemon_stats["offered"];
    const std::uint64_t settled = daemon_stats["ingested"] +
                                  daemon_stats["shed"] +
                                  daemon_stats["malformed"];
    if (settled >= offered || now_us() >= quiesce_deadline_us) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto stat = [&](const char* key) -> std::uint64_t {
    const auto it = daemon_stats.find(key);
    return it == daemon_stats.end() ? 0 : it->second;
  };

  // Pull the stage-latency waterfall while the daemon is still up: where
  // each frame's time went (decode/enqueue/queue/observe/complete/grant),
  // plus the slowest exemplars of the last windows.
  std::string waterfall;
  if (query_daemon(opt, FrameType::kQueryTrace, FrameType::kTrace,
                   &waterfall)) {
    std::istringstream lines(waterfall);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "waterfall: " << line << "\n";
    }
  }

  const double achieved = static_cast<double>(total.sent) / elapsed_s;
  std::cout << "loadgen: scheduled=" << total.scheduled
            << " sent=" << total.sent
            << " backpressure_drops=" << total.backpressure_drops
            << " faulted=" << total.faulted
            << " reconnects=" << total.reconnects << "\n"
            << "loadgen: achieved_rate=" << achieved << " captures/s over "
            << elapsed_s << " s\n"
            << "daemon:  offered=" << stat("offered")
            << " ingested=" << stat("ingested") << " shed=" << stat("shed")
            << " malformed=" << stat("malformed")
            << " frame_errors=" << stat("frame_errors") << "\n"
            << "daemon:  ingest_p50_us=" << stat("ingest_p50_us")
            << " ingest_p99_us=" << stat("ingest_p99_us")
            << " ingest_p999_us=" << stat("ingest_p999_us") << "\n";

  if (!opt.json_out.empty()) {
    std::ofstream json(opt.json_out);
    json << "{\n"
         << "  \"scheduled\": " << total.scheduled << ",\n"
         << "  \"sent\": " << total.sent << ",\n"
         << "  \"backpressure_drops\": " << total.backpressure_drops << ",\n"
         << "  \"faulted\": " << total.faulted << ",\n"
         << "  \"reconnects\": " << total.reconnects << ",\n"
         << "  \"elapsed_s\": " << elapsed_s << ",\n"
         << "  \"achieved_rate\": " << achieved << ",\n"
         << "  \"daemon\": {\n";
    bool first = true;
    for (const auto& [key, value] : daemon_stats) {
      if (!first) json << ",\n";
      first = false;
      json << "    \"" << key << "\": " << value;
    }
    json << "\n  }\n}\n";
  }

  // The fire ledger must close on the client side too.
  if (total.scheduled !=
      total.sent + total.backpressure_drops + total.faulted) {
    std::cerr << "loadgen: client ledger violation: scheduled="
              << total.scheduled << " != sent+drops+faulted\n";
    return 1;
  }
  int rc = 0;
  if (opt.expect_closure) {
    const auto offered = stat("offered");
    const auto closure =
        stat("ingested") + stat("shed") + stat("malformed");
    if (offered != closure) {
      std::cerr << "loadgen: closure violation: offered=" << offered
                << " ingested+shed+malformed=" << closure << "\n";
      rc = 1;
    }
  }
  if (opt.p99_bound_us > 0 && stat("ingested") > 0 &&
      stat("ingest_p99_us") > opt.p99_bound_us) {
    std::cerr << "loadgen: p99 ingest latency " << stat("ingest_p99_us")
              << "us exceeds bound " << opt.p99_bound_us << "us\n";
    rc = 1;
  }
  if (opt.min_ingested > 0 && stat("ingested") < opt.min_ingested) {
    std::cerr << "loadgen: ingested " << stat("ingested") << " below floor "
              << opt.min_ingested << "\n";
    rc = 1;
  }
  return rc;
}
