// notary_daemon — the live-ingestion service CLI (DESIGN.md §16).
//
//   notary_daemon [--port N] [--bind ADDR] [--shards N]
//                 [--queue-depth N] [--credit-window N]
//                 [--max-frame-bytes N] [--idle-timeout-ms N]
//                 [--observe-delay-us N] [--max-connections N]
//                 [--checkpoint-dir DIR] [--resume] [--checkpoint-every N]
//                 [--full-catalog] [--port-file FILE] [--metrics-out FILE]
//                 [--trace-out FILE] [--no-observability]
//                 [--flight-events N] [--flight-autodump-ms N]
//                 [--crash-handler]
//
// Observability (DESIGN.md §17): stage-latency attribution and the flight
// recorder are ON by default; --no-observability turns both off (for the
// overhead-control benchmark). --trace-out writes the slowest-exemplar
// waterfall as Chrome trace_event JSON at drain. --flight-autodump-ms
// keeps checkpoint-dir/FLIGHT.bin at most one interval stale so even
// kill -9 leaves a post-mortem; --crash-handler additionally dumps the
// rings from SIGSEGV/SIGABRT/SIGBUS.
//
// Runs until SIGINT/SIGTERM, then drains gracefully: admission stops, the
// shard queues quiesce, the group-commit journal flushes, and a final
// checksummed snapshot (SNAPSHOT.bin/SNAPSHOT.txt under --checkpoint-dir)
// is written before exit 0. kill -9 at any point is recovered on the next
// --resume start from the last durable journal group.
//
// Signal pattern: signals are blocked in main before any thread spawns,
// then a dedicated watcher thread sigwait()s and calls request_stop() —
// no async-signal-safety gymnastics in handlers.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "daemon/daemon.hpp"
#include "telemetry/export.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "notary_daemon: bad value for " << flag << ": " << text
              << "\n";
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  tls::daemon::DaemonConfig config;
  bool full_catalog = false;
  std::string port_file;
  std::string metrics_out;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "notary_daemon: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(parse_u64(need("--port"), arg.c_str()));
    } else if (arg == "--bind") {
      config.bind_address = need("--bind");
    } else if (arg == "--shards") {
      config.shards = parse_u64(need("--shards"), arg.c_str());
    } else if (arg == "--queue-depth") {
      config.shard_queue_depth = parse_u64(need("--queue-depth"), arg.c_str());
    } else if (arg == "--credit-window") {
      config.credit_window =
          static_cast<std::uint32_t>(parse_u64(need("--credit-window"), arg.c_str()));
    } else if (arg == "--max-frame-bytes") {
      config.max_frame_bytes =
          static_cast<std::uint32_t>(parse_u64(need("--max-frame-bytes"), arg.c_str()));
    } else if (arg == "--idle-timeout-ms") {
      config.idle_timeout_ms = parse_u64(need("--idle-timeout-ms"), arg.c_str());
    } else if (arg == "--observe-delay-us") {
      config.observe_delay_us_for_test =
          parse_u64(need("--observe-delay-us"), arg.c_str());
    } else if (arg == "--max-connections") {
      config.max_connections = parse_u64(need("--max-connections"), arg.c_str());
    } else if (arg == "--checkpoint-dir") {
      config.checkpoint_dir = need("--checkpoint-dir");
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--checkpoint-every") {
      config.checkpoint_every = parse_u64(need("--checkpoint-every"), arg.c_str());
    } else if (arg == "--full-catalog") {
      full_catalog = true;
    } else if (arg == "--port-file") {
      port_file = need("--port-file");
    } else if (arg == "--metrics-out") {
      metrics_out = need("--metrics-out");
    } else if (arg == "--trace-out") {
      trace_out = need("--trace-out");
    } else if (arg == "--no-observability") {
      config.observability = false;
    } else if (arg == "--flight-events") {
      config.flight_events = parse_u64(need("--flight-events"), arg.c_str());
    } else if (arg == "--flight-autodump-ms") {
      config.flight_autodump_ms =
          parse_u64(need("--flight-autodump-ms"), arg.c_str());
    } else if (arg == "--crash-handler") {
      config.crash_handler = true;
    } else {
      std::cerr << "notary_daemon: unknown flag " << arg << "\n";
      return 2;
    }
  }

  // Block the termination signals BEFORE any thread exists so they are
  // delivered to nobody but the sigwait watcher below.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  const auto catalog = full_catalog ? tls::clients::Catalog::standard()
                                    : tls::clients::Catalog::core_only();
  const auto database =
      tls::study::LongitudinalStudy::build_database(catalog);
  config.database = &database;

  tls::daemon::NotaryDaemon daemon(std::move(config));
  if (!daemon.start()) {
    std::cerr << "notary_daemon: " << daemon.last_error() << "\n";
    return 1;
  }
  std::cout << "notary_daemon: listening on port " << daemon.port()
            << " (resumed_epoch=" << daemon.resumed_epoch() << ")"
            << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << daemon.port() << "\n";
  }

  std::thread watcher([&sigs, &daemon] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::cout << "notary_daemon: received " << strsignal(sig)
              << ", draining" << std::endl;
    daemon.request_stop();
  });

  daemon.join();
  // Unblock the watcher if the daemon stopped without a signal.
  pthread_kill(watcher.native_handle(), SIGTERM);
  watcher.join();

  std::cout << daemon.stats_text();
  if (!trace_out.empty()) {
    std::ofstream trace(trace_out);
    trace << daemon.trace_chrome();
  }
  if (!metrics_out.empty()) {
    const auto registry = daemon.merged_metrics();
    std::ofstream json(metrics_out);
    json << tls::telemetry::to_metrics_json(registry);
    std::string prom_path = metrics_out;
    const auto dot = prom_path.rfind(".json");
    if (dot != std::string::npos) prom_path.resize(dot);
    prom_path += ".prom";
    std::ofstream prom(prom_path);
    prom << tls::telemetry::to_prometheus(registry);
  }
  return 0;
}
