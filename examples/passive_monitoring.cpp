// Passive monitoring walkthrough: run a Notary-style monitor over two years
// of synthetic traffic and print the monthly version & cipher-class mix —
// the §5 analysis in miniature.
#include <cstdio>

#include "core/study.hpp"

int main() {
  using namespace tls;

  study::StudyOptions opts;
  opts.connections_per_month = 4000;
  opts.window = {core::Month(2014, 1), core::Month(2015, 12)};
  opts.full_catalog = false;  // fast demo
  study::LongitudinalStudy study(opts);

  const auto& monitor = study.monitor();
  std::printf("%-8s %8s %7s %7s %7s | %7s %7s %7s\n", "month", "conns",
              "TLS1.0", "TLS1.1", "TLS1.2", "RC4", "CBC", "AEAD");
  for (const auto& [month, stats] : monitor.months()) {
    const auto vp = [&](std::uint16_t v) {
      return stats.successful == 0
                 ? 0.0
                 : 100.0 *
                       static_cast<double>(stats.negotiated_version_count(v)) /
                       static_cast<double>(stats.successful);
    };
    const auto cp = [&](core::CipherClass c) {
      return stats.successful == 0
                 ? 0.0
                 : 100.0 *
                       static_cast<double>(stats.negotiated_class_count(c)) /
                       static_cast<double>(stats.successful);
    };
    std::printf("%-8s %8llu %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%%\n",
                month.to_string().c_str(),
                static_cast<unsigned long long>(stats.total), vp(0x0301),
                vp(0x0302), vp(0x0303), cp(core::CipherClass::kRc4),
                cp(core::CipherClass::kCbc), cp(core::CipherClass::kAead));
  }
  std::printf("\nDataset totals: %llu connections, %llu fingerprintable\n",
              static_cast<unsigned long long>(monitor.total_connections()),
              static_cast<unsigned long long>(
                  monitor.fingerprintable_connections()));
  return 0;
}
