// Prometheus text-exposition lint (no external deps): validates the
// `.prom` artifact study_cli writes. CI runs this over the exported
// metrics and fails the job on any violation.
//
//   prom_lint <file.prom>
//
// Exit status: 0 clean, 1 violations (one per line on stderr), 2 usage/IO.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/export.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fputs("usage: prom_lint <file.prom>\n", stderr);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "prom_lint: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto errors = tls::telemetry::lint_prometheus(buf.str());
  for (const auto& e : errors) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.c_str());
  }
  if (!errors.empty()) {
    std::fprintf(stderr, "prom_lint: %zu violation(s)\n", errors.size());
    return 1;
  }
  std::printf("%s: ok\n", argv[1]);
  return 0;
}
