// Quickstart: parse a ClientHello off the wire, fingerprint it, identify
// the client, and negotiate it against a server configuration.
#include <cstdio>

#include "clients/catalog.hpp"
#include "core/study.hpp"
#include "fingerprint/fingerprint.hpp"
#include "handshake/negotiate.hpp"
#include "servers/population.hpp"
#include "tlscore/named_groups.hpp"
#include "tlscore/version.hpp"

int main() {
  using namespace tls;

  // 1. Take a real client: Chrome as of March 2016, from the catalog.
  const auto catalog = clients::Catalog::core_only();
  const auto* chrome = catalog.find("Chrome");
  const auto* cfg = chrome->config_at(core::Date(2016, 3, 15));
  std::printf("Client: %s %s (released %s)\n", chrome->name.c_str(),
              cfg->version_label.c_str(), cfg->release.to_string().c_str());

  // 2. Emit its ClientHello, serialize to record bytes, re-parse.
  core::Rng rng(1);
  const auto hello = clients::make_client_hello(*cfg, rng, "example.org");
  const auto wire_bytes = hello.serialize_record();
  std::printf("ClientHello record: %zu bytes, %zu suites, %zu extensions\n",
              wire_bytes.size(), hello.cipher_suites.size(),
              hello.extensions.size());
  const auto parsed = wire::ClientHello::parse_record(wire_bytes);

  // 3. Fingerprint it (§4 methodology) and identify the software.
  const auto fp = fp::extract_fingerprint(parsed);
  const auto db = study::LongitudinalStudy::build_database(catalog);
  std::printf("Fingerprint hash: %s\n", fp.hash().c_str());
  std::printf("JA3: %s\n", fp::ja3_hash(parsed).c_str());
  if (const auto* label = db.lookup(fp.hash())) {
    std::printf("Identified as: %s (versions %s..%s), class %s\n",
                label->software.c_str(), label->version_min.c_str(),
                label->version_max.c_str(),
                std::string(fp::software_class_name(label->cls)).c_str());
  }

  // 4. Negotiate against a modern ECDHE-preferring server.
  const auto servers = servers::ServerPopulation::standard();
  const auto* seg = servers.find("web-modern-ecdhe");
  const auto result = handshake::negotiate(parsed, seg->config, rng);
  const auto* suite = core::find_cipher_suite(result.negotiated_cipher);
  std::printf("Negotiated: %s, %s, group %s\n",
              core::version_name(result.negotiated_version).c_str(),
              suite != nullptr ? std::string(suite->name).c_str() : "?",
              core::named_group_name(result.negotiated_group).c_str());
  return 0;
}
