// Command-line driver for the library — the tool a downstream user runs.
//
//   study_cli figure <1..10>          render one paper figure as ASCII
//   study_cli scan [YYYY-MM]          one Censys-style sweep (default window)
//   study_cli export <dir> [--checkpoint-dir <ckpt>] [--resume]
//                    [--journal-mode <frame|group>] [--gen-cache <on|off>]
//                    [--journal-group-frames <n>] [--journal-group-ms <t>]
//                    [--metrics-out <file>] [--trace-out <file>]
//                                     write all figures + scans as CSV;
//                                     with a checkpoint dir the run is
//                                     journaled (crash-safe) and --resume
//                                     replays verified work after a crash;
//                                     --journal-mode picks the durability
//                                     store: "group" (default) batches
//                                     frames through the group-commit
//                                     segmented journal (one fsync per
//                                     group; size/age thresholds set by the
//                                     --journal-group-* knobs), "frame" is
//                                     the legacy one-durable-file-per-frame
//                                     store. Either mode resumes a journal
//                                     written by the other;
//                                     --gen-cache toggles the producer-side
//                                     template/negotiation cache (default
//                                     on; off is a byte-identical slow
//                                     path for benchmarking);
//                                     --metrics-out writes METRICS.json (plus
//                                     a .prom Prometheus exposition next to
//                                     it) and prints the run report;
//                                     --trace-out writes Chrome trace JSON
//   study_cli fingerprints <file>     dump the labeled fingerprint DB
//   study_cli identify <hex-record>   fingerprint a raw ClientHello record
//
// Environment: TLS_STUDY_CPM / TLS_STUDY_SEED / TLS_STUDY_CORE as in bench/;
// TLS_STUDY_THREADS sets the worker pool; TLS_STUDY_KILL_AFTER (test/CI
// seam) SIGKILLs the process after N durable journal appends;
// TLS_STUDY_TERM_AFTER (test/CI seam) SIGTERMs it after N appends to
// exercise the graceful-drain path below.
//
// Signals: during `export`, SIGINT/SIGTERM trigger a graceful drain — the
// group-commit journal's linger buffer is flushed and fsynced before the
// process exits 0, so a clean Ctrl-C never loses the in-flight group
// (only SIGKILL can, and --resume recovers that). Implemented as a
// sigwait watcher thread (signals blocked before any worker spawns), the
// same pattern notary_daemon uses.
#include <atomic>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "analysis/csv.hpp"
#include "cli_parse.hpp"
#include "core/study.hpp"
#include "fingerprint/fingerprint.hpp"
#include "fingerprint/io.hpp"
#include "telemetry/export.hpp"

namespace {

tls::study::StudyOptions options_from_env() {
  tls::study::StudyOptions opts;
  opts.connections_per_month = 6000;
  if (const char* cpm = std::getenv("TLS_STUDY_CPM")) {
    opts.connections_per_month =
        static_cast<std::size_t>(std::strtoull(cpm, nullptr, 10));
  }
  if (const char* seed = std::getenv("TLS_STUDY_SEED")) {
    opts.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* core = std::getenv("TLS_STUDY_CORE")) {
    opts.full_catalog = std::string(core) != "1";
  }
  if (const char* threads = std::getenv("TLS_STUDY_THREADS")) {
    opts.threads = static_cast<unsigned>(std::strtoul(threads, nullptr, 10));
  }
  if (const char* kill = std::getenv("TLS_STUDY_KILL_AFTER")) {
    opts.checkpoint_kill_after_frames =
        static_cast<std::size_t>(std::strtoull(kill, nullptr, 10));
  }
  if (const char* term = std::getenv("TLS_STUDY_TERM_AFTER")) {
    opts.checkpoint_term_after_frames =
        static_cast<std::size_t>(std::strtoull(term, nullptr, 10));
  }
  return opts;
}

/// Scoped sigwait watcher for the export path: blocks SIGINT/SIGTERM on
/// construction (before the study spawns worker threads, so the mask is
/// inherited process-wide) and drains the checkpoint journal + exits 0 if
/// one arrives mid-export. A run that completes naturally unblocks the
/// watcher on destruction and exits through main as usual.
class SignalDrain {
 public:
  explicit SignalDrain(tls::study::LongitudinalStudy& study) {
    sigemptyset(&sigs_);
    sigaddset(&sigs_, SIGINT);
    sigaddset(&sigs_, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs_, nullptr);
    watcher_ = std::thread([this, &study] {
      int sig = 0;
      sigwait(&sigs_, &sig);
      if (done_.load()) return;  // natural completion woke us
      std::fprintf(stderr,
                   "study_cli: received %s, draining checkpoint journal\n",
                   strsignal(sig));
      study.drain_checkpoint();
      std::fprintf(stderr, "study_cli: journal drained, exiting\n");
      // _Exit: the main thread is still mid-export; everything appended
      // before the signal is durable now, and --resume replays it.
      std::_Exit(0);
    });
  }

  ~SignalDrain() {
    done_.store(true);
    pthread_kill(watcher_.native_handle(), SIGTERM);
    watcher_.join();
    pthread_sigmask(SIG_UNBLOCK, &sigs_, nullptr);
  }

 private:
  sigset_t sigs_{};
  std::atomic<bool> done_{false};
  std::thread watcher_;
};

using tls::cli::parse_long;

int usage() {
  std::fputs(
      "usage: study_cli figure <1..10> | scan [YYYY-MM] |\n"
      "       export <dir> [--checkpoint-dir <ckpt>] [--resume]\n"
      "              [--journal-mode <frame|group>] [--gen-cache <on|off>]\n"
      "              [--journal-group-frames <n>] [--journal-group-ms <t>]\n"
      "              [--metrics-out <file>] [--trace-out <file>] |\n"
      "       fingerprints <file> | identify <hex-client-hello-record>\n",
      stderr);
  return 2;
}

int cmd_figure(int n) {
  tls::study::LongitudinalStudy study(options_from_env());
  tls::analysis::MonthlyChart chart;
  switch (n) {
    case 1: chart = study.figure1_versions(); break;
    case 2: chart = study.figure2_negotiated_classes(); break;
    case 3: chart = study.figure3_advertised_classes(); break;
    case 4: chart = study.figure4_fingerprint_support(); break;
    case 5: chart = study.figure5_relative_positions(); break;
    case 6: chart = study.figure6_rc4_advertised(); break;
    case 7: chart = study.figure7_weak_advertised(); break;
    case 8: chart = study.figure8_key_exchange(); break;
    case 9: chart = study.figure9_aead_negotiated(); break;
    case 10: chart = study.figure10_aead_advertised(); break;
    default: return usage();
  }
  std::fputs(tls::analysis::render_chart(chart).c_str(), stdout);
  return 0;
}

int cmd_scan(const char* month_arg) {
  const auto pop = tls::servers::ServerPopulation::standard();
  const tls::scan::ActiveScanner scanner(pop);
  const auto m = month_arg != nullptr
                     ? tls::core::Month::parse(month_arg)
                     : tls::core::censys_window().end_month;
  const auto s = scanner.scan(m);
  std::printf("scan %s (IPv4 host-weighted)\n", m.to_string().c_str());
  std::printf("  SSL3 support        %6.2f%%\n", 100 * s.ssl3_support);
  std::printf("  export support      %6.2f%%\n", 100 * s.export_support);
  std::printf("  chooses RC4         %6.2f%%\n", 100 * s.chooses_rc4);
  std::printf("  chooses CBC         %6.2f%%\n", 100 * s.chooses_cbc);
  std::printf("  chooses AEAD        %6.2f%%\n", 100 * s.chooses_aead);
  std::printf("  chooses 3DES        %6.2f%%\n", 100 * s.chooses_3des);
  std::printf("  heartbeat support   %6.2f%%\n", 100 * s.heartbeat_support);
  std::printf("  heartbleed vuln.    %6.2f%%\n",
              100 * s.heartbleed_vulnerable);
  std::printf("  TLS 1.3 support     %6.2f%%\n", 100 * s.tls13_support);
  return 0;
}

/// Sibling path for the Prometheus exposition: swaps a trailing ".json"
/// for ".prom", else appends ".prom".
std::string prometheus_path(const std::string& metrics_path) {
  const std::string suffix = ".json";
  if (metrics_path.size() > suffix.size() &&
      metrics_path.compare(metrics_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    return metrics_path.substr(0, metrics_path.size() - suffix.size()) +
           ".prom";
  }
  return metrics_path + ".prom";
}

int cmd_export(const char* dir, const char* checkpoint_dir, bool resume,
               const char* journal_mode, const char* gen_cache,
               long journal_group_frames, long journal_group_ms,
               const char* metrics_out, const char* trace_out) {
  auto opts = options_from_env();
  if (checkpoint_dir != nullptr) {
    opts.checkpoint_dir = checkpoint_dir;
    opts.resume = resume;
  }
  if (gen_cache != nullptr) {
    if (std::strcmp(gen_cache, "on") == 0) {
      opts.gen_cache = true;
    } else if (std::strcmp(gen_cache, "off") == 0) {
      opts.gen_cache = false;
    } else {
      std::fprintf(stderr, "export: unknown --gen-cache '%s'\n", gen_cache);
      return 2;
    }
  }
  if (journal_mode != nullptr) {
    if (std::strcmp(journal_mode, "frame") == 0) {
      opts.journal_mode = tls::study::JournalMode::kPerFrame;
    } else if (std::strcmp(journal_mode, "group") == 0) {
      opts.journal_mode = tls::study::JournalMode::kGrouped;
    } else {
      std::fprintf(stderr, "export: unknown --journal-mode '%s'\n",
                   journal_mode);
      return 2;
    }
  }
  if (journal_group_frames > 0) {
    opts.journal_group_frames =
        static_cast<std::size_t>(journal_group_frames);
  }
  if (journal_group_ms >= 0) {
    opts.journal_group_ms = static_cast<std::uint64_t>(journal_group_ms);
  }
  opts.telemetry = metrics_out != nullptr || trace_out != nullptr;
  tls::study::LongitudinalStudy study(opts);
  // Mask + watcher must exist before export spawns the worker pool.
  SignalDrain drain(study);
  for (const auto& path : study.export_figures(dir)) {
    std::printf("wrote %s\n", path.c_str());
  }
  if (metrics_out != nullptr) {
    std::ofstream(metrics_out) << tls::telemetry::to_metrics_json(
        study.metrics());
    std::printf("wrote %s\n", metrics_out);
    const auto prom = prometheus_path(metrics_out);
    std::ofstream(prom) << tls::telemetry::to_prometheus(study.metrics());
    std::printf("wrote %s\n", prom.c_str());
    std::fputs(tls::telemetry::render_run_report(study.metrics()).c_str(),
               stdout);
  }
  if (trace_out != nullptr) {
    std::ofstream(trace_out) << study.trace().to_json();
    std::printf("wrote %s\n", trace_out);
  }
  if (checkpoint_dir != nullptr) {
    const auto report = study.recovery();
    const auto table = tls::analysis::render_recovery_table(report);
    std::fputs(table.c_str(), stdout);
    const auto report_path =
        (std::filesystem::path(checkpoint_dir) / "RECOVERY.txt").string();
    std::ofstream(report_path) << table;
    std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}

int cmd_fingerprints(const char* path) {
  const auto db = tls::study::LongitudinalStudy::build_database(
      tls::clients::standard_catalog());
  tls::fp::save_database_file(path, db);
  std::printf("wrote %zu fingerprints to %s\n", db.size(), path);
  return 0;
}

int cmd_identify(const char* hex) {
  std::vector<std::uint8_t> bytes;
  const std::size_t len = std::strlen(hex);
  if (len % 2 != 0) {
    std::fputs("identify: odd-length hex string\n", stderr);
    return 2;
  }
  for (std::size_t i = 0; i < len; i += 2) {
    char buf[3] = {hex[i], hex[i + 1], 0};
    char* end = nullptr;
    const auto v = std::strtoul(buf, &end, 16);
    if (end != buf + 2) {
      std::fputs("identify: invalid hex\n", stderr);
      return 2;
    }
    bytes.push_back(static_cast<std::uint8_t>(v));
  }
  try {
    const auto hello = tls::wire::ClientHello::parse_record(bytes);
    const auto fp = tls::fp::extract_fingerprint(hello);
    std::printf("fingerprint: %s\n", fp.hash().c_str());
    std::printf("canonical:   %s\n", fp.canonical().c_str());
    std::printf("ja3:         %s\n", tls::fp::ja3_hash(hello).c_str());
    const auto db = tls::study::LongitudinalStudy::build_database(
        tls::clients::standard_catalog());
    if (const auto* label = db.lookup(fp.hash())) {
      std::printf("identified:  %s (%s..%s)\n", label->software.c_str(),
                  label->version_min.c_str(), label->version_max.c_str());
    } else {
      std::printf("identified:  (unknown client)\n");
    }
  } catch (const tls::wire::ParseError& e) {
    std::fprintf(stderr, "identify: not a ClientHello record: %s\n",
                 e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "figure" && argc == 3) {
    long n = 0;
    if (!parse_long(argv[2], 1, 10, &n)) return usage();
    return cmd_figure(static_cast<int>(n));
  }
  if (cmd == "scan") return cmd_scan(argc >= 3 ? argv[2] : nullptr);
  if (cmd == "export" && argc >= 3) {
    const char* checkpoint_dir = nullptr;
    const char* metrics_out = nullptr;
    const char* trace_out = nullptr;
    const char* journal_mode = nullptr;
    const char* gen_cache = nullptr;
    long journal_group_frames = 0;  // 0 = keep the StudyOptions default
    long journal_group_ms = -1;     // -1 = keep the StudyOptions default
    bool resume = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
        checkpoint_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--resume") == 0) {
        resume = true;
      } else if (std::strcmp(argv[i], "--journal-mode") == 0 &&
                 i + 1 < argc) {
        journal_mode = argv[++i];
      } else if (std::strcmp(argv[i], "--gen-cache") == 0 && i + 1 < argc) {
        gen_cache = argv[++i];
      } else if (std::strcmp(argv[i], "--journal-group-frames") == 0 &&
                 i + 1 < argc) {
        // A zero-frame group can never commit; reject it with the garbage.
        if (!parse_long(argv[++i], 1, LONG_MAX, &journal_group_frames)) {
          return usage();
        }
      } else if (std::strcmp(argv[i], "--journal-group-ms") == 0 &&
                 i + 1 < argc) {
        if (!parse_long(argv[++i], 0, LONG_MAX, &journal_group_ms)) {
          return usage();
        }
      } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
        metrics_out = argv[++i];
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        trace_out = argv[++i];
      } else {
        return usage();
      }
    }
    return cmd_export(argv[2], checkpoint_dir, resume, journal_mode,
                      gen_cache, journal_group_frames, journal_group_ms,
                      metrics_out, trace_out);
  }
  if (cmd == "fingerprints" && argc == 3) return cmd_fingerprints(argv[2]);
  if (cmd == "identify" && argc == 3) return cmd_identify(argv[2]);
  return usage();
}
