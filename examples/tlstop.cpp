// tlstop — a `top`-style live text dashboard for notary_daemon.
//
//   tlstop --port N [--host ADDR] [--interval-ms N] [--once]
//
// Polls the daemon's control-plane queries (kQueryStats, kQueryMetrics,
// kQueryTrace) on an interval and renders a single refreshing screen:
// the outcome ledger with ingest/shed rates derived between polls, the
// per-shard queue-depth gauges from the metrics exposition, and the
// stage-latency waterfall (percentile lines + slowest exemplars). --once
// prints one snapshot without the ANSI screen clearing — the mode CI and
// scripts use.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.hpp"

namespace {

using tls::daemon::Frame;
using tls::daemon::FrameDecoder;
using tls::daemon::FrameType;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t interval_ms = 1000;
  bool once = false;
};

/// Minimal blocking control-plane client: one connection reused across
/// polls; reconnects transparently if the daemon restarts.
class QueryClient {
 public:
  ~QueryClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool query(const Options& opt, FrameType request, FrameType reply,
             std::string* body) {
    if (fd_ < 0 && !connect(opt)) return false;
    const auto frame = tls::daemon::encode_frame(request, {});
    if (!send_all(frame)) {
      disconnect();
      if (!connect(opt) || !send_all(frame)) return false;
    }
    const std::uint64_t deadline = now_us() + 5'000'000;
    while (now_us() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 200) <= 0) continue;
      std::uint8_t buf[16384];
      const auto n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        disconnect();
        return false;
      }
      const auto frames = decoder_.feed({buf, static_cast<std::size_t>(n)});
      for (const auto& f : frames) {
        if (f.type != reply) continue;
        body->assign(f.payload.begin(), f.payload.end());
        return true;
      }
      if (decoder_.poisoned()) {
        disconnect();
        return false;
      }
    }
    return false;
  }

 private:
  bool send_all(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const auto n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool connect(const Options& opt) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt.port);
    if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      disconnect();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder_ = FrameDecoder();
    return true;
  }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd_ = -1;
  FrameDecoder decoder_;
};

std::map<std::string, std::uint64_t> parse_stats(const std::string& text) {
  std::map<std::string, std::uint64_t> stats;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    stats[line.substr(0, eq)] =
        std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return stats;
}

/// Pulls `name{...}` gauge lines out of the Prometheus exposition.
std::vector<std::string> metric_lines(const std::string& exposition,
                                      const std::string& name) {
  std::vector<std::string> out;
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name, 0) != 0) continue;
    // Exact family only: "queue_depth" must not swallow "queue_depth_peak".
    const char next = line.size() > name.size() ? line[name.size()] : ' ';
    if (next == '{' || next == ' ') out.push_back(line);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tlstop: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port =
          static_cast<std::uint16_t>(std::strtoull(need("--port"), nullptr, 10));
    } else if (arg == "--host") {
      opt.host = need("--host");
    } else if (arg == "--interval-ms") {
      opt.interval_ms = std::strtoull(need("--interval-ms"), nullptr, 10);
    } else if (arg == "--once") {
      opt.once = true;
    } else {
      std::cerr << "tlstop: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (opt.port == 0) {
    std::cerr << "tlstop: --port is required\n";
    return 2;
  }
  if (opt.interval_ms == 0) opt.interval_ms = 100;

  QueryClient client;
  std::map<std::string, std::uint64_t> prev;
  std::uint64_t prev_us = 0;
  for (;;) {
    std::string stats_body, metrics_body, trace_body;
    const bool ok =
        client.query(opt, FrameType::kQueryStats, FrameType::kStats,
                     &stats_body) &&
        client.query(opt, FrameType::kQueryMetrics, FrameType::kMetrics,
                     &metrics_body) &&
        client.query(opt, FrameType::kQueryTrace, FrameType::kTrace,
                     &trace_body);
    if (!ok) {
      std::cerr << "tlstop: daemon at " << opt.host << ":" << opt.port
                << " not answering\n";
      return opt.once ? 1 : 0;  // live mode: daemon drained, clean exit
    }
    const std::uint64_t sample_us = now_us();
    const auto stats = parse_stats(stats_body);
    const auto stat = [&](const char* key) -> std::uint64_t {
      const auto it = stats.find(key);
      return it == stats.end() ? 0 : it->second;
    };
    const auto rate = [&](const char* key) -> double {
      if (prev_us == 0) return 0.0;
      const auto it = prev.find(key);
      if (it == prev.end()) return 0.0;
      const double ds = static_cast<double>(sample_us - prev_us) / 1e6;
      if (ds <= 0.0) return 0.0;
      return static_cast<double>(stat(key) - it->second) / ds;
    };

    std::ostringstream screen;
    screen << "tlstop " << opt.host << ":" << opt.port
           << "  (interval " << opt.interval_ms << " ms)\n\n"
           << "ledger   offered=" << stat("offered")
           << " ingested=" << stat("ingested") << " shed=" << stat("shed")
           << " malformed=" << stat("malformed")
           << " frame_errors=" << stat("frame_errors") << "\n"
           << "rates    ingest/s=" << static_cast<std::uint64_t>(
                  rate("ingested"))
           << " shed/s=" << static_cast<std::uint64_t>(rate("shed"))
           << " offered/s=" << static_cast<std::uint64_t>(rate("offered"))
           << "\n"
           << "latency  p50_us=" << stat("ingest_p50_us")
           << " p99_us=" << stat("ingest_p99_us")
           << " p999_us=" << stat("ingest_p999_us") << "\n\n";
    screen << "gauges\n";
    for (const auto& name :
         {"tls_repro_daemon_queue_depth", "tls_repro_daemon_queue_depth_peak",
          "tls_repro_daemon_credits_outstanding",
          "tls_repro_daemon_shed_rate_per_s"}) {
      for (const auto& line : metric_lines(metrics_body, name)) {
        screen << "  " << line << "\n";
      }
    }
    screen << "\n" << trace_body;

    if (opt.once) {
      std::cout << screen.str();
      return 0;
    }
    // ANSI home+clear keeps the screen stable without a curses dependency.
    std::cout << "\x1b[H\x1b[2J" << screen.str() << std::flush;
    prev = stats;
    prev_us = sample_us;
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
}
