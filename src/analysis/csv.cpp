#include "analysis/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace tls::analysis {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  return out;
}

}  // namespace

void write_csv_file(const std::string& path, const MonthlyChart& chart) {
  auto out = open_or_throw(path);
  out << to_csv(chart);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_scan_csv_file(const std::string& path,
                         const std::vector<tls::scan::ScanSnapshot>& snaps) {
  auto out = open_or_throw(path);
  out << "month,ssl3_support,export_support,chooses_rc4,chooses_cbc,"
         "chooses_aead,chooses_3des,rc4_support,rc4_only,heartbeat_support,"
         "heartbleed_vulnerable,tls13_support\n";
  for (const auto& s : snaps) {
    // csv_double keeps every fraction round-trippable; the default stream
    // precision (6 significant digits) silently rounded exported values.
    out << s.month.to_string() << ',' << csv_double(s.ssl3_support) << ','
        << csv_double(s.export_support) << ',' << csv_double(s.chooses_rc4)
        << ',' << csv_double(s.chooses_cbc) << ','
        << csv_double(s.chooses_aead) << ',' << csv_double(s.chooses_3des)
        << ',' << csv_double(s.rc4_support) << ',' << csv_double(s.rc4_only)
        << ',' << csv_double(s.heartbeat_support) << ','
        << csv_double(s.heartbleed_vulnerable) << ','
        << csv_double(s.tls13_support) << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace tls::analysis
