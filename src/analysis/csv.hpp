// CSV file export for figures and scan series, so results can be plotted
// with external tooling (gnuplot/matplotlib) instead of the ASCII renderer.
#pragma once

#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "scan/scanner.hpp"

namespace tls::analysis {

/// Writes a figure's monthly series as CSV. Throws std::runtime_error when
/// the file cannot be opened.
void write_csv_file(const std::string& path, const MonthlyChart& chart);

/// Writes active-scan snapshots ("month,ssl3,rc4,cbc,aead,...") as CSV.
void write_scan_csv_file(const std::string& path,
                         const std::vector<tls::scan::ScanSnapshot>& snaps);

}  // namespace tls::analysis
