#include "analysis/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tls::analysis {

using tls::core::Month;

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v);
  return buf;
}

std::string render_chart(const MonthlyChart& chart) {
  const int n_months = chart.range.size();
  if (n_months <= 0) throw std::invalid_argument("empty chart range");
  for (const auto& s : chart.series) {
    if (static_cast<int>(s.values.size()) != n_months) {
      throw std::invalid_argument("series '" + s.name +
                                  "' length != month range");
    }
  }

  double y_max = chart.y_max;
  if (y_max <= 0) {
    y_max = 1;
    for (const auto& s : chart.series) {
      for (const auto v : s.values) y_max = std::max(y_max, v);
    }
    y_max *= 1.05;
  }

  const int h = std::max(4, chart.height);
  std::vector<std::string> grid(
      static_cast<std::size_t>(h),
      std::string(static_cast<std::size_t>(n_months), ' '));

  // Markers first so data overwrites them.
  for (const auto& [m, c] : chart.markers) {
    if (!chart.range.contains(m)) continue;
    const int x = m - chart.range.begin_month;
    for (auto& row : grid) row[static_cast<std::size_t>(x)] = c;
  }

  for (std::size_t si = 0; si < chart.series.size(); ++si) {
    const char glyph = static_cast<char>('A' + (si % 26));
    for (int x = 0; x < n_months; ++x) {
      const double v = chart.series[si].values[static_cast<std::size_t>(x)];
      int y = static_cast<int>(std::lround(v / y_max * (h - 1)));
      y = std::clamp(y, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - y)][static_cast<std::size_t>(x)] =
          glyph;
    }
  }

  std::ostringstream out;
  out << chart.title << "\n";
  for (int r = 0; r < h; ++r) {
    const double level = y_max * (h - 1 - r) / (h - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%5.0f |", level);
    out << label << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << "      +" << std::string(static_cast<std::size_t>(n_months), '-')
      << "\n       ";
  // Year ticks under every January.
  std::string axis(static_cast<std::size_t>(n_months), ' ');
  for (int x = 0; x < n_months; ++x) {
    const Month m = chart.range.begin_month + x;
    if (m.month() == 1) {
      const std::string y = std::to_string(m.year());
      for (std::size_t i = 0; i < y.size() && x + static_cast<int>(i) < n_months; ++i) {
        axis[static_cast<std::size_t>(x) + i] = y[i];
      }
    }
  }
  out << axis << "\n";
  for (std::size_t si = 0; si < chart.series.size(); ++si) {
    out << "       " << static_cast<char>('A' + (si % 26)) << " = "
        << chart.series[si].name << "\n";
  }
  if (!chart.markers.empty()) {
    out << "       markers:";
    for (const auto& [m, c] : chart.markers) {
      out << " " << c << "=" << m.to_string();
    }
    out << "\n";
  }
  return out.str();
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < rows[r].size(); ++i) {
      out << rows[r][i]
          << std::string(widths[i] - rows[r][i].size() + 2, ' ');
    }
    out << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (const auto w : widths) total += w + 2;
      out << std::string(total, '-') << "\n";
    }
  }
  return out.str();
}

std::string render_loss_table(const std::vector<LossRow>& rows) {
  if (rows.empty()) return "";
  static const char* kCodeNames[] = {"trunc", "trail", "bad-len", "bad-val",
                                     "unsup"};
  std::vector<std::vector<std::string>> table;
  table.push_back({"month", "total", "ok", "failed", "quar", "quar%",
                   "1-sided", kCodeNames[0], kCodeNames[1], kCodeNames[2],
                   kCodeNames[3], kCodeNames[4]});
  std::size_t clean = 0;
  const auto is_clean = [](const LossRow& r) {
    if (r.quarantined != 0 || r.one_sided != 0) return false;
    for (const auto c : r.by_code) {
      if (c != 0) return false;
    }
    return true;
  };
  for (const auto& r : rows) {
    if (is_clean(r)) {
      ++clean;
      continue;
    }
    const double quar_pct =
        r.total == 0 ? 0.0
                     : 100.0 * static_cast<double>(r.quarantined) /
                           static_cast<double>(r.total);
    std::vector<std::string> row{
        r.month,
        std::to_string(r.total),
        std::to_string(r.successful),
        std::to_string(r.failures),
        std::to_string(r.quarantined),
        pct(quar_pct),
        std::to_string(r.one_sided)};
    for (const auto c : r.by_code) row.push_back(std::to_string(c));
    table.push_back(std::move(row));
  }
  std::ostringstream out;
  out << render_table(table);
  if (clean > 0) {
    out << "(clean) " << clean << " month" << (clean == 1 ? "" : "s")
        << " with no losses\n";
  }
  return out.str();
}

std::string render_recovery_table(const RecoveryReport& report) {
  std::vector<std::vector<std::string>> table;
  table.push_back({"recovery", "count"});
  table.push_back({"resumed", report.resumed ? "yes" : "no"});
  table.push_back({"frames replayed", std::to_string(report.frames_replayed)});
  table.push_back({"frames torn", std::to_string(report.frames_torn)});
  table.push_back({"frames corrupt", std::to_string(report.frames_corrupt)});
  table.push_back(
      {"frames mismatched", std::to_string(report.frames_mismatched)});
  table.push_back(
      {"frames duplicate", std::to_string(report.frames_duplicate)});
  table.push_back({"tasks skipped", std::to_string(report.tasks_skipped)});
  table.push_back(
      {"tasks recomputed", std::to_string(report.tasks_recomputed)});
  table.push_back({"stuck reruns", std::to_string(report.stuck_reruns)});
  // Group-commit rows appear only when the journal actually ran grouped
  // (or hit IO trouble), keeping legacy per-frame reports byte-stable.
  if (report.groups_committed != 0 || report.groups_torn != 0 ||
      report.torn_bytes != 0 || report.index_stale != 0 ||
      report.fallback_frames != 0 || report.degraded_per_frame) {
    table.push_back(
        {"groups committed", std::to_string(report.groups_committed)});
    table.push_back({"groups torn", std::to_string(report.groups_torn)});
    table.push_back({"torn bytes", std::to_string(report.torn_bytes)});
    table.push_back({"index stale", std::to_string(report.index_stale)});
    table.push_back(
        {"fallback frames", std::to_string(report.fallback_frames)});
    table.push_back(
        {"degraded per-frame", report.degraded_per_frame ? "yes" : "no"});
  }
  if (report.io_retries != 0 || report.io_errors != 0) {
    table.push_back({"io retries", std::to_string(report.io_retries)});
    table.push_back({"io errors", std::to_string(report.io_errors)});
  }
  if (report.telemetry_partial) {
    table.push_back({"telemetry", "partial since resume"});
  }
  std::ostringstream out;
  out << render_table(table);
  if (!report.quarantined.empty()) {
    out << "quarantined frames:\n";
    for (const auto& path : report.quarantined) out << "  " << path << "\n";
  }
  return out.str();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_double(double value) {
  // %.17g (max_digits10) is the shortest fixed precision guaranteeing
  // text -> double round-trips; %g also drops trailing zeros, so integral
  // values keep printing as "0" / "100".
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string to_csv(const MonthlyChart& chart) {
  std::ostringstream out;
  out << "month";
  for (const auto& s : chart.series) out << "," << csv_escape(s.name);
  out << "\n";
  for (int x = 0; x < chart.range.size(); ++x) {
    out << csv_escape((chart.range.begin_month + x).to_string());
    for (const auto& s : chart.series) {
      out << "," << csv_double(s.values[static_cast<std::size_t>(x)]);
    }
    out << "\n";
  }
  return out.str();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  bool field_started = false;  // row has content pending a terminator
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        quoted = true;
        field_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        field_started = false;
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (field_started || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tls::analysis
