// Rendering utilities shared by benches and examples: monthly multi-series
// ASCII charts (the terminal stand-ins for the paper's figures) and aligned
// text tables (for its tables).
#pragma once

#include <string>
#include <vector>

#include "tlscore/dates.hpp"

namespace tls::analysis {

struct Series {
  std::string name;
  std::vector<double> values;  // one per month of the chart's range
};

struct MonthlyChart {
  std::string title;
  tls::core::MonthRange range{tls::core::Month(2012, 1),
                              tls::core::Month(2018, 4)};
  std::vector<Series> series;
  /// Vertical marker positions (e.g. attack dates) with one-char labels.
  std::vector<std::pair<tls::core::Month, char>> markers;
  int height = 18;
  double y_max = 100.0;  // <= 0 -> auto-scale
};

/// Renders a chart like:
///   75 |  AA
///   50 | A  BB..
/// with one letter per series and a month axis.
std::string render_chart(const MonthlyChart& chart);

/// Aligned text table; first row is the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Formats a double as a percent with one decimal ("12.3%").
std::string pct(double value_0_to_100);

/// Writes chart series as CSV ("month,series1,series2,...").
std::string to_csv(const MonthlyChart& chart);

}  // namespace tls::analysis
