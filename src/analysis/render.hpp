// Rendering utilities shared by benches and examples: monthly multi-series
// ASCII charts (the terminal stand-ins for the paper's figures) and aligned
// text tables (for its tables).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tlscore/dates.hpp"

namespace tls::analysis {

struct Series {
  std::string name;
  std::vector<double> values;  // one per month of the chart's range
};

struct MonthlyChart {
  std::string title;
  tls::core::MonthRange range{tls::core::Month(2012, 1),
                              tls::core::Month(2018, 4)};
  std::vector<Series> series;
  /// Vertical marker positions (e.g. attack dates) with one-char labels.
  std::vector<std::pair<tls::core::Month, char>> markers;
  int height = 18;
  double y_max = 100.0;  // <= 0 -> auto-scale
};

/// Renders a chart like:
///   75 |  AA
///   50 | A  BB..
/// with one letter per series and a month axis.
std::string render_chart(const MonthlyChart& chart);

/// Aligned text table; first row is the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// One month of ingest loss accounting for render_loss_table. Deliberately a
/// plain struct (no notary/wire dependency): `by_code` follows the
/// tls::wire::ParseErrorCode order — truncated, trailing, bad-length,
/// bad-value, unsupported.
struct LossRow {
  std::string month;
  std::uint64_t total = 0;        // successful + failures + quarantined
  std::uint64_t successful = 0;
  std::uint64_t failures = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t one_sided = 0;    // captures salvaged from a single direction
  std::array<std::uint64_t, 5> by_code{};
};

/// Per-month malformed/quarantine summary:
///   month  total  ok  failed  quar  quar%  1-sided  trunc  trail  ...
/// Months with nothing quarantined, no one-sided captures, and no parse
/// errors are collapsed into a single "(clean)" count line to keep long
/// windows readable. Returns "" for empty input.
std::string render_loss_table(const std::vector<LossRow>& rows);

/// What a checkpoint-journal replay found and did. Like LossRow this is a
/// plain struct with no dependency on the journal that fills it, so the
/// study layer can produce one and this layer can render it.
struct RecoveryReport {
  bool resumed = false;  // a usable manifest was found and accepted
  std::uint64_t frames_replayed = 0;   // verified and absorbed
  std::uint64_t frames_torn = 0;       // leftover .tmp (interrupted write)
  std::uint64_t frames_corrupt = 0;    // checksum/decode failure
  std::uint64_t frames_mismatched = 0; // wrong options digest or version
  std::uint64_t frames_duplicate = 0;  // same (kind, month, slot) twice
  std::uint64_t tasks_skipped = 0;     // satisfied from the journal
  std::uint64_t tasks_recomputed = 0;  // run (fresh, or frame unusable)
  std::uint64_t stuck_reruns = 0;      // watchdog-discarded shard attempts
  // Group-commit journal accounting (zero in per-frame mode).
  std::uint64_t groups_committed = 0;  // checksummed groups written/replayed
  std::uint64_t groups_torn = 0;       // segments with a torn tail
  std::uint64_t torn_bytes = 0;        // bytes scan-truncated off tails
  std::uint64_t index_stale = 0;       // INDEX entries contradicted by scan
  std::uint64_t io_retries = 0;        // transient IO errors recovered
  std::uint64_t io_errors = 0;         // terminal IO failures (per-stage)
  std::uint64_t fallback_frames = 0;   // frames written per-frame (degraded)
  /// The writer hit repeated backend failures and fell back to the legacy
  /// per-frame durable path for the rest of the run.
  bool degraded_per_frame = false;
  /// Telemetry covers only the recomputed slice of this run: checkpoint
  /// frames carry monitor state but not the metrics registry, so after a
  /// resume the phase timings / fault-trigger counters describe just the
  /// tasks that actually re-ran. (Cache and error-taxonomy stats ARE
  /// frame-persisted and stay exact across resume.)
  bool telemetry_partial = false;
  /// Quarantine sidecar paths of every rejected frame, in replay order.
  std::vector<std::string> quarantined;
};

/// Renders the replay summary as an aligned two-column table followed by
/// the quarantined-frame paths (if any), one per line.
std::string render_recovery_table(const RecoveryReport& report);

/// Formats a double as a percent with one decimal ("12.3%").
std::string pct(double value_0_to_100);

/// RFC 4180 field escaping: fields containing a comma, double quote, CR,
/// or LF are wrapped in double quotes with embedded quotes doubled; all
/// other fields pass through unchanged.
std::string csv_escape(const std::string& field);

/// Formats a double with max_digits10 significant digits — enough that
/// parsing the text back yields the identical double (round-trippable),
/// while integral values still print without a trailing ".0".
std::string csv_double(double value);

/// Writes chart series as CSV ("month,series1,series2,..."). Series names
/// and month labels are RFC 4180-escaped; values round-trip exactly.
std::string to_csv(const MonthlyChart& chart);

/// Parses RFC 4180 CSV text (quoted fields, doubled quotes, embedded
/// newlines in quoted fields) into rows of unescaped fields. Accepts both
/// "\n" and "\r\n" row terminators; a trailing newline does not produce an
/// empty final row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace tls::analysis
