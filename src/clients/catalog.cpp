// Catalog assembly and the synthetic long-tail expansion.
//
// Table 2 of the paper reports fingerprint counts per software class
// (Libraries 700, Browsers 193, OS tools 13, Mobile apps 489, Dev tools 12,
// AV 44, Cloud 29, Email 33, Malware & PUP 49; total 1,684). The
// hand-written profiles cover the software that dominates traffic;
// synthetic_profiles() deterministically generates configuration variants —
// the same way real the fingerprint corpus grows from app-specific library
// configurations — until each class reaches its Table-2 count.
#include "clients/catalog.hpp"

#include <map>
#include <unordered_set>

#include "clients/catalog_detail.hpp"
#include "fingerprint/fingerprint.hpp"

namespace tls::clients {

using namespace detail;
using tls::core::Date;

namespace {

/// Table 2 fingerprint counts per class.
const std::map<tls::fp::SoftwareClass, std::size_t>& table2_targets() {
  using SC = tls::fp::SoftwareClass;
  static const auto* t = new std::map<SC, std::size_t>{
      {SC::kLibrary, 700},  {SC::kBrowser, 193},     {SC::kOsTool, 13},
      {SC::kMobileApp, 489}, {SC::kDevTool, 12},     {SC::kAntivirus, 44},
      {SC::kCloudStorage, 29}, {SC::kEmail, 33},     {SC::kMalware, 49},
  };
  return *t;
}

std::string fingerprint_of(const ClientConfig& cfg) {
  tls::core::Rng rng(1);  // GREASE/randomness is stripped; any seed works
  ClientConfig fixed = cfg;
  fixed.randomizes_cipher_order = false;
  return tls::fp::extract_fingerprint(make_client_hello(fixed, rng, "x.test"))
      .hash();
}

/// Deterministic variant of an era-appropriate library-style config.
/// The tweak space mirrors how applications really diverge from library
/// defaults: trimming the suite list, toggling optional extensions,
/// narrowing the curve list.
ClientConfig variant_config(tls::fp::SoftwareClass cls, std::size_t salt) {
  std::uint64_t s = 0x9042 + salt * 0x9e3779b97f4a7c15ull;
  const auto pick = [&s](std::uint64_t bound) {
    return tls::core::splitmix64(s) % bound;
  };

  ClientConfig c;
  c.version_label = "v" + std::to_string(salt);
  // Spread releases over 2012-2017 so variants participate in the long
  // tail of every study year.
  const int month_off = static_cast<int>(pick(72));
  c.release = Date(2012 + month_off / 12, 1 + month_off % 12, 1);

  const bool modern = month_off >= 6 && pick(8) != 0;
  c.legacy_version = modern ? 0x0303 : 0x0301;

  std::vector<std::uint16_t> suites;
  if (modern) {
    const auto aead = aead_pool_no_chacha();
    // Most modern stacks keep a 3DES suite as a last resort (§5.6: >70% of
    // 2018 fingerprints still offer 3DES).
    suites = compose({prefix(aead, 2 + pick(aead.size() - 2)),
                      prefix(cbc_pool(), 4 + pick(20)),
                      prefix(tdes_pool(), pick(5) == 0 ? 0 : 1)});
  } else {
    suites = compose({prefix(cbc_pool(), 4 + pick(22)),
                      prefix(rc4_pool(), pick(5)),
                      prefix(tdes_pool(), pick(4))});
  }
  // Class-flavored quirks keep the long tail as messy as the measured one.
  if (cls == tls::fp::SoftwareClass::kMalware && pick(2) == 0) {
    const auto exp = export_pool();
    suites = compose({suites, prefix(exp, 1 + pick(exp.size() - 1))});
  }
  if ((cls == tls::fp::SoftwareClass::kMobileApp ||
       cls == tls::fp::SoftwareClass::kAntivirus) &&
      pick(5) == 0) {
    suites = compose({suites, prefix(anon_pool(), 1 + pick(2))});
  }
  if (cls == tls::fp::SoftwareClass::kMobileApp && pick(60) == 0) {
    suites = compose({suites, prefix(null_pool(), 1 + pick(2))});
  }
  // Drop a mid-list suite for extra spread.
  if (suites.size() > 3 && pick(2) == 0) {
    suites.erase(suites.begin() +
                 static_cast<std::ptrdiff_t>(1 + pick(suites.size() - 2)));
  }
  c.cipher_suites = std::move(suites);

  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  if (pick(2) == 0) {
    c.extension_order.push_back(X(ExtensionType::kSessionTicket));
  }
  if (pick(3) == 0) {
    c.extension_order.insert(c.extension_order.begin() + 1,
                             X(ExtensionType::kRenegotiationInfo));
  }
  if (modern) {
    c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
    c.sig_algs = default_sig_algs();
    if (pick(4) == 0) {
      c.extension_order.push_back(X(ExtensionType::kHeartbeat));
      c.heartbeat_mode = 1;
    }
  }
  switch (pick(4)) {
    case 0: c.groups = {23}; break;
    case 1: c.groups = {23, 24}; break;
    case 2: c.groups = classic_groups(); break;
    default: c.groups = {23, 24, 25, 14}; break;
  }
  return c;
}

std::string_view class_stub(tls::fp::SoftwareClass cls) {
  using SC = tls::fp::SoftwareClass;
  switch (cls) {
    case SC::kLibrary: return "lib";
    case SC::kBrowser: return "browser";
    case SC::kOsTool: return "ostool";
    case SC::kMobileApp: return "app";
    case SC::kDevTool: return "devtool";
    case SC::kAntivirus: return "av";
    case SC::kCloudStorage: return "cloud";
    case SC::kEmail: return "mail";
    case SC::kMalware: return "pup";
  }
  return "sw";
}

}  // namespace

std::vector<ClientProfile> synthetic_profiles() {
  std::vector<ClientProfile> handwritten;
  for (auto& p : browser_profiles()) handwritten.push_back(std::move(p));
  for (auto& p : library_profiles()) handwritten.push_back(std::move(p));
  for (auto& p : app_profiles()) handwritten.push_back(std::move(p));

  // Simulate the database build (same collision rules as §4) so the
  // expansion hits the Table-2 per-class counts in the *resulting* database
  // exactly, regardless of cross-class hash collisions.
  tls::fp::FingerprintDatabase db;
  for (const auto& p : handwritten) {
    for (const auto& cfg : p.versions) {
      if (cfg.randomizes_cipher_order) continue;
      db.add(fingerprint_of(cfg),
             tls::fp::SoftwareLabel{p.name, p.cls, cfg.version_label,
                                    cfg.version_label});
    }
  }

  std::vector<ClientProfile> out;
  for (const auto& [cls, target] : table2_targets()) {
    std::size_t salt = static_cast<std::size_t>(cls) * 100000;
    std::size_t have = db.count_by_class()[cls];
    std::size_t serial = 0;
    while (have < target) {
      ClientConfig cfg = variant_config(cls, salt++);
      const std::string hash = fingerprint_of(cfg);
      // Skip hashes already claimed by any software: adding them would
      // trigger collision handling and perturb other classes' counts.
      if (db.lookup(hash) != nullptr) continue;
      ClientProfile p;
      p.name = std::string(class_stub(cls)) + "-" + std::to_string(++serial);
      p.cls = cls;
      p.synthetic = true;
      if (db.add(hash, tls::fp::SoftwareLabel{p.name, cls, cfg.version_label,
                                              cfg.version_label}) !=
          tls::fp::FingerprintDatabase::AddOutcome::kAdded) {
        --serial;
        continue;
      }
      ++have;
      p.versions.push_back(std::move(cfg));
      out.push_back(std::move(p));
    }
  }
  return out;
}

Catalog Catalog::core_only() {
  Catalog c;
  for (auto& p : browser_profiles()) c.profiles_.push_back(std::move(p));
  for (auto& p : library_profiles()) c.profiles_.push_back(std::move(p));
  for (auto& p : app_profiles()) c.profiles_.push_back(std::move(p));
  return c;
}

Catalog Catalog::standard() {
  Catalog c = core_only();
  for (auto& p : synthetic_profiles()) c.profiles_.push_back(std::move(p));
  return c;
}

const ClientProfile* Catalog::find(std::string_view name) const {
  for (const auto& p : profiles_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Catalog& standard_catalog() {
  static const Catalog* catalog = new Catalog(Catalog::standard());
  return *catalog;
}

}  // namespace tls::clients
