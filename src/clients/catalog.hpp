// The client software catalog: the simulator's equivalent of the paper's
// fingerprint-harvesting effort (BrowserStack sweeps, compiled OpenSSL
// builds, manual identification). Hand-written profiles model the software
// that dominates traffic; synthetic_profiles() tops each Table-2 class up
// to the paper's fingerprint counts with deterministic long-tail variants.
#pragma once

#include <string_view>
#include <vector>

#include "clients/profile.hpp"

namespace tls::clients {

/// The five major browsers of Tables 3-6.
std::vector<ClientProfile> browser_profiles();

/// TLS libraries and OS stacks (OpenSSL branches, Android SDK, Apple
/// SecureTransport, MS CryptoAPI, Java JSSE, NSS).
std::vector<ClientProfile> library_profiles();

/// Applications, tools and the long-tail oddities of §5/§6: GRID and Nagios
/// tooling, NULL/anon-offering apps, AV middleboxes, mail clients, cloud
/// sync, malware, the Interwise client, scanners.
std::vector<ClientProfile> app_profiles();

/// Deterministic variant profiles that extend the database to the paper's
/// per-class fingerprint counts (Table 2). Each is a configuration tweak of
/// an era-appropriate library profile, as real apps do in practice.
std::vector<ClientProfile> synthetic_profiles();

class Catalog {
 public:
  /// Builds the full catalog (hand-written + synthetic).
  static Catalog standard();
  /// Builds only the hand-written profiles (fast; used by most tests).
  static Catalog core_only();

  [[nodiscard]] const std::vector<ClientProfile>& profiles() const {
    return profiles_;
  }
  [[nodiscard]] const ClientProfile* find(std::string_view name) const;

 private:
  std::vector<ClientProfile> profiles_;
};

/// Process-wide shared standard catalog (built once).
const Catalog& standard_catalog();

}  // namespace tls::clients
