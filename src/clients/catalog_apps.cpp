// Application, tool and long-tail profiles — the clients behind the paper's
// §5/§6 oddities: GRID transfer tooling negotiating NULL ciphers (§6.1),
// Nagios monitoring using anonymous and NULL_WITH_NULL_NULL suites (§6.2,
// §5.5), the Interwise voice/video client whose servers select an export
// RC4 suite that was never offered (§5.5), security apps advertising NULL/
// anonymous ciphers (Lookout, Kaspersky, Craftar), scanners, mail clients,
// cloud sync, AV middleboxes, and malware families.
#include "clients/catalog.hpp"

#include "clients/catalog_detail.hpp"

namespace tls::clients {

using namespace detail;
using tls::core::Date;

namespace {

ClientConfig openssl_flavored(std::string label, Date release,
                              std::vector<std::uint16_t> suites,
                              bool tls12 = true) {
  ClientConfig c;
  c.version_label = std::move(label);
  c.release = release;
  c.legacy_version = tls12 ? 0x0303 : 0x0301;
  c.cipher_suites = std::move(suites);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket)};
  if (tls12) {
    c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
    c.sig_algs = default_sig_algs();
  }
  c.groups = classic_groups();
  return c;
}

ClientProfile grid_ftp() {
  // GRID data transfers use TLS for mutual authentication only; bulk data
  // is not confidential, so NULL ciphers are offered first and accepted by
  // GRID endpoints (§6.1: 99.99% of NULL-cipher connections are GRID).
  ClientProfile p{"GridFTP", tls::fp::SoftwareClass::kDevTool, {}};
  auto c = openssl_flavored(
      "5.2", Date(2012, 1, 1),
      compose({prefix(null_pool(), 3), prefix(cbc_pool().subspan(8), 6),
               prefix(tdes_pool(), 1)}),
      /*tls12=*/false);
  // GRID stacks prefer the ECDHE-NULL suite over sect571r1 — the source of
  // the sect571r1 sliver in §6.3.3's curve distribution.
  c.cipher_suites.insert(c.cipher_suites.begin(), 0xc010);
  c.groups = {14, 23, 24};
  p.versions.push_back(c);
  c = openssl_flavored(
      "6.0", Date(2014, 6, 1),
      compose({prefix(null_pool(), 3), aead_pool_no_chacha(),
               prefix(cbc_pool(), 8)}));
  c.cipher_suites.insert(c.cipher_suites.begin(), 0xc010);
  c.groups = {14, 23, 24};
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  return p;
}

ClientProfile nagios() {
  // Nagios NRPE-style checks: anonymous DH with application-level auth
  // (§6.2), including the NULL_WITH_NULL_NULL and anonymous export suites
  // observed at university Nagios ports (§5.5, §6.1).
  ClientProfile p{"Nagios NRPE", tls::fp::SoftwareClass::kDevTool, {}};
  ClientConfig c;
  c.version_label = "2.x";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(anon_pool(), 4),
      prefix(export_pool().subspan(5), 2),  // anon export suites
  });
  c.extension_order = {};
  p.versions.push_back(c);
  // Newer checks drop the export-anon suites; the frozen half of the
  // install base keeps offering them (the §5.5 university residue).
  ClientConfig c2 = c;
  c2.version_label = "3.x";
  c2.release = Date(2014, 6, 1);
  c2.cipher_suites = compose({prefix(anon_pool(), 4)});
  p.versions.push_back(c2);
  return p;
}

ClientProfile nagios_legacy() {
  // The tiny check population that still negotiates TLS_NULL_WITH_NULL_NULL
  // (198.3K connections across the dataset, 198 in 2018 — §6.1).
  ClientProfile p{"Nagios legacy check", tls::fp::SoftwareClass::kOsTool, {}};
  ClientConfig c;
  c.version_label = "1.x";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = {0x0000, 0x0034, 0x0018};
  c.extension_order = {};
  p.versions.push_back(c);
  return p;
}

ClientProfile interwise() {
  // Interwise clients offer plain RC4_128_SHA; their servers respond with
  // EXP_RC4_40_MD5 — a protocol violation the monitor must surface (§5.5).
  ClientProfile p{"Interwise", tls::fp::SoftwareClass::kOsTool, {}};
  ClientConfig c;
  c.version_label = "9";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = {0x0005, 0x0004, 0x002f, 0x0035, 0x000a};
  c.extension_order = {X(ExtensionType::kRenegotiationInfo)};
  p.versions.push_back(c);
  return p;
}

ClientProfile shodan_scanner() {
  // Internet-wide scanner advertising nearly everything, including
  // anonymous suites (§6.2 identifies Shodan among anon-offering clients).
  ClientProfile p{"Shodan", tls::fp::SoftwareClass::kDevTool, {}};
  ClientConfig c;
  c.version_label = "1";
  c.release = Date(2013, 1, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({aead_pool_no_chacha(), prefix(cbc_pool(), 29),
                             rc4_pool(), tdes_pool(), des_pool(),
                             export_pool(), anon_pool(), null_pool()});
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kHeartbeat)};
  c.sig_algs = default_sig_algs();
  c.groups = classic_groups();
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  return p;
}

ClientProfile lookout() {
  // Android identity-theft-protection app advertising NULL and anonymous
  // ciphers alongside real ones (§6.1, §6.2) — the "probably unwittingly
  // unsafe" client software the abstract calls out.
  ClientProfile p{"Lookout Personal", tls::fp::SoftwareClass::kMobileApp, {}};
  ClientConfig c;
  c.version_label = "9";
  c.release = Date(2014, 5, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 10),
      prefix(anon_pool(), 3),
      prefix(null_pool(), 2),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kSignatureAlgorithms)};
  c.sig_algs = default_sig_algs();
  c.groups = classic_groups();
  p.versions.push_back(c);
  return p;
}

ClientProfile craftar() {
  ClientProfile p{"Craftar Image Recognition",
                  tls::fp::SoftwareClass::kMobileApp, {}};
  ClientConfig c;
  c.version_label = "2";
  c.release = Date(2014, 9, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(null_pool(), 2),
      prefix(cbc_pool().subspan(12), 4),
      prefix(rc4_pool().subspan(2), 2),
  });
  c.extension_order = {X(ExtensionType::kServerName)};
  p.versions.push_back(c);
  return p;
}

ClientProfile kaspersky() {
  ClientProfile p{"Kaspersky", tls::fp::SoftwareClass::kAntivirus, {}};
  auto c = openssl_flavored(
      "15", Date(2014, 8, 1),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 14),
               prefix(rc4_pool(), 2), prefix(anon_pool(), 2)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "17", Date(2016, 8, 1),
      compose({aead_pool(), prefix(cbc_pool(), 12), prefix(anon_pool(), 2)}));
  p.versions.push_back(c2);
  return p;
}

ClientProfile avast() {
  ClientProfile p{"Avast WebShield", tls::fp::SoftwareClass::kAntivirus, {}};
  auto c = openssl_flavored(
      "2014", Date(2013, 10, 1),
      compose({prefix(cbc_pool(), 18), prefix(rc4_pool(), 4),
               prefix(tdes_pool(), 2)}),
      /*tls12=*/false);
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "2016", Date(2016, 2, 1),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 14),
               prefix(tdes_pool(), 1)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c2.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c2.heartbeat_mode = 1;
  p.versions.push_back(c2);
  return p;
}

ClientProfile bluecoat() {
  ClientProfile p{"Bluecoat Proxy", tls::fp::SoftwareClass::kAntivirus, {}};
  auto c = openssl_flavored(
      "6.5", Date(2013, 1, 1),
      compose({prefix(rc4_pool(), 3), prefix(cbc_pool(), 12),
               prefix(tdes_pool(), 2)}),
      /*tls12=*/false);
  c.extension_order = {X(ExtensionType::kRenegotiationInfo)};
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "6.7", Date(2016, 11, 1),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 10)}));
  p.versions.push_back(c2);
  return p;
}

ClientProfile curl_tool() {
  ClientProfile p{"curl", tls::fp::SoftwareClass::kDevTool, {}};
  auto c = openssl_flavored(
      "7.29", Date(2013, 2, 6),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 22),
               prefix(rc4_pool(), 4), prefix(tdes_pool(), 3)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  c.alpn = {"http/1.1"};
  c.extension_order.push_back(X(ExtensionType::kAlpn));
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "7.52", Date(2016, 12, 21),
      compose({aead_pool(), prefix(cbc_pool(), 16)}));
  c2.alpn = {"h2", "http/1.1"};
  c2.extension_order.push_back(X(ExtensionType::kAlpn));
  c2.groups = x25519_groups();
  p.versions.push_back(c2);
  return p;
}

ClientProfile git_tool() {
  ClientProfile p{"git", tls::fp::SoftwareClass::kDevTool, {}};
  auto c = openssl_flavored(
      "1.8", Date(2012, 10, 21),
      compose({prefix(cbc_pool(), 22), prefix(rc4_pool(), 4),
               prefix(tdes_pool(), 3)}),
      /*tls12=*/false);
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "2.9", Date(2016, 6, 13),
      compose({aead_pool(), prefix(cbc_pool(), 16)}));
  p.versions.push_back(c2);
  return p;
}

ClientProfile flux() {
  ClientProfile p{"Flux", tls::fp::SoftwareClass::kDevTool, {}};
  auto c = openssl_flavored(
      "37", Date(2015, 3, 1),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 12)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  return p;
}

ClientProfile spotlight() {
  ClientProfile p{"Apple Spotlight", tls::fp::SoftwareClass::kOsTool, {}};
  ClientConfig c;
  c.version_label = "10.10";
  c.release = Date(2014, 10, 16);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 12, 0, 2, 0, false);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms)};
  c.sig_algs = default_sig_algs();
  c.groups = classic_groups();
  p.versions.push_back(c);
  return p;
}

ClientProfile windows_update() {
  ClientProfile p{"Windows Update", tls::fp::SoftwareClass::kOsTool, {}};
  ClientConfig c;
  c.version_label = "7";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 8, 2, 2);
  c.extension_order = {X(ExtensionType::kStatusRequest),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kRenegotiationInfo)};
  c.groups = classic_groups();
  p.versions.push_back(c);
  ClientConfig c2 = c;
  c2.version_label = "10";
  c2.release = Date(2015, 7, 29);
  c2.legacy_version = 0x0303;
  c2.cipher_suites = browser_list(4, 8, 0, 2, 0, false);
  c2.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c2.sig_algs = default_sig_algs();
  p.versions.push_back(c2);
  return p;
}

ClientProfile dropbox() {
  ClientProfile p{"Dropbox", tls::fp::SoftwareClass::kCloudStorage, {}};
  auto c = openssl_flavored(
      "2.10", Date(2014, 1, 1),
      compose({aead_pool_no_chacha(), prefix(cbc_pool(), 8)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "16", Date(2016, 11, 1), compose({aead_pool(), prefix(cbc_pool(), 6)}));
  c2.groups = x25519_groups();
  p.versions.push_back(c2);
  return p;
}

ClientProfile onedrive() {
  ClientProfile p{"OneDrive", tls::fp::SoftwareClass::kCloudStorage, {}};
  ClientConfig c;
  c.version_label = "17";
  c.release = Date(2014, 2, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 10, 2, 2, 0, false);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kStatusRequest),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kRenegotiationInfo)};
  c.sig_algs = default_sig_algs();
  c.groups = classic_groups();
  p.versions.push_back(c);
  return p;
}

ClientProfile thunderbird() {
  ClientProfile p{"Thunderbird", tls::fp::SoftwareClass::kEmail, {}};
  ClientConfig c;
  c.version_label = "17";
  c.release = Date(2012, 11, 20);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 20, 6, 4);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kStatusRequest)};
  c.groups = classic_groups();
  p.versions.push_back(c);
  ClientConfig c2 = c;
  c2.version_label = "38";
  c2.release = Date(2015, 6, 2);
  c2.legacy_version = 0x0303;
  c2.cipher_suites = browser_list(4, 12, 0, 1, 0, false);
  c2.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c2.sig_algs = default_sig_algs();
  p.versions.push_back(c2);
  return p;
}

ClientProfile apple_mail() {
  ClientProfile p{"Apple Mail", tls::fp::SoftwareClass::kEmail, {}};
  ClientConfig c;
  c.version_label = "6";
  c.release = Date(2012, 7, 25);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 20, 6, 4);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket)};
  c.groups = classic_groups();
  p.versions.push_back(c);
  ClientConfig c2 = c;
  c2.version_label = "9";  // MacOS Mail long-tail fingerprint of §4.1
  c2.release = Date(2015, 9, 30);
  c2.legacy_version = 0x0303;
  c2.cipher_suites = browser_list(4, 15, 0, 3, 0, false);
  c2.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c2.sig_algs = default_sig_algs();
  p.versions.push_back(c2);
  return p;
}

ClientProfile facebook_app() {
  ClientProfile p{"Facebook", tls::fp::SoftwareClass::kMobileApp, {}};
  ClientConfig c;
  c.version_label = "30";
  c.release = Date(2015, 2, 1);
  c.legacy_version = 0x0303;
  // Facebook's mobile stack adopted ChaCha20 unusually early (fizz/proxygen
  // lineage): AEAD-only list, ChaCha first.
  c.cipher_suites = [] {
    const std::uint16_t chacha_first[] = {0xcca8, 0xcca9};
    return compose({chacha_first, aead_pool()});
  }();
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kAlpn)};
  c.alpn = {"h2", "http/1.1"};
  c.sig_algs = default_sig_algs();
  c.groups = x25519_groups();
  p.versions.push_back(c);
  return p;
}

ClientProfile hola_vpn() {
  ClientProfile p{"Hola VPN", tls::fp::SoftwareClass::kMobileApp, {}};
  auto c = openssl_flavored(
      "1.8", Date(2014, 6, 1),
      compose({prefix(cbc_pool(), 10), prefix(rc4_pool(), 4),
               prefix(anon_pool(), 2)}),
      /*tls12=*/false);
  p.versions.push_back(c);
  return p;
}

ClientProfile zbot() {
  // Zeus-family malware uses the platform CryptoAPI of the infected host —
  // an XP-era fingerprint that never updates.
  ClientProfile p{"Zbot", tls::fp::SoftwareClass::kMalware, {}};
  ClientConfig c;
  c.version_label = "2";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(rc4_pool().subspan(2), 2),
      prefix(cbc_pool().subspan(12), 2),
      prefix(tdes_pool(), 1),
      prefix(des_pool(), 1),
      prefix(export_pool(), 4),
  });
  c.extension_order = {};
  p.versions.push_back(c);
  return p;
}

ClientProfile install_money() {
  ClientProfile p{"InstallMoney", tls::fp::SoftwareClass::kMalware, {}};
  auto c = openssl_flavored(
      "1", Date(2014, 3, 1),
      compose({prefix(cbc_pool(), 16), prefix(rc4_pool(), 4),
               prefix(tdes_pool(), 3), prefix(export_pool(), 3)}),
      /*tls12=*/false);
  p.versions.push_back(c);
  return p;
}

ClientProfile tor_client() {
  ClientProfile p{"Tor", tls::fp::SoftwareClass::kDevTool, {}};
  auto c = openssl_flavored(
      "0.2.4", Date(2013, 12, 1),
      compose({prefix(cbc_pool(), 12), prefix(tdes_pool(), 1)}));
  // OpenSSL-1.0.1-era build: Heartbeat extension advertised (§5.4 tail).
  c.extension_order.push_back(X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 1;
  p.versions.push_back(c);
  auto c2 = openssl_flavored(
      "0.2.9", Date(2016, 12, 1),
      compose({aead_pool(), prefix(cbc_pool(), 8)}));
  p.versions.push_back(c2);
  return p;
}

ClientProfile firefox_nightly() {
  // Nightly/beta Firefox with TLS 1.3 draft-18 enabled well before the
  // release-channel rollout (§6.4's pre-2018 advertising trickle).
  ClientProfile p{"Firefox Nightly", tls::fp::SoftwareClass::kBrowser, {}};
  ClientConfig c;
  c.version_label = "55-nightly";
  c.release = Date(2017, 3, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose(
      {tls13_pool(), aead_pool(), prefix(cbc_pool(), 9), prefix(tdes_pool(), 1)});
  c.supported_versions = {0x7f12, 0x0303, 0x0302, 0x0301};
  c.extension_order = tls13_browser_exts();
  c.sig_algs = modern_sig_algs();
  c.alpn = {"h2", "http/1.1"};
  c.groups = x25519_groups();
  c.version_fallback = false;
  c.min_version = 0x0301;
  p.versions.push_back(c);
  return p;
}

ClientProfile splunk_forwarder() {
  // Splunk forwarders on port 9997: static ECDH suites preferred — nearly
  // all of the non-forward-secret ECDH traffic of §6.3.1.
  ClientProfile p{"Splunk Forwarder", tls::fp::SoftwareClass::kOsTool, {}};
  auto c = openssl_flavored("6.2", Date(2013, 10, 1), {});
  c.cipher_suites = {0xc004, 0xc005, 0xc00e, 0xc00f, 0x002f, 0x0035, 0x000a};
  p.versions.push_back(c);
  return p;
}

ClientProfile iot_gateway() {
  // Embedded/IoT stacks (mbedTLS-style): CCM suites for constrained
  // hardware — the small AES-CCM advertising share of Fig. 10.
  ClientProfile p{"IoT Gateway", tls::fp::SoftwareClass::kLibrary, {}};
  ClientConfig c;
  c.version_label = "2.1";
  c.release = Date(2014, 6, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = {0xc0ac, 0xc0ae, 0xc09c, 0xc0a0,
                     0xc02b, 0xc023, 0x002f, 0x0035};
  c.extension_order = {X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms)};
  c.sig_algs = default_sig_algs();
  c.groups = {23};
  p.versions.push_back(c);
  return p;
}

ClientProfile cipher_shuffler() {
  // The hypothesized source of the single-day fingerprint explosion (§4.1):
  // software that fails to keep its cipher list in a fixed order, emitting
  // a fresh fingerprint on (nearly) every connection.
  ClientProfile p{"ShuffleBot", tls::fp::SoftwareClass::kMalware, {}};
  ClientConfig c;
  c.version_label = "1";
  c.release = Date(2014, 10, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({aead_pool_no_chacha(), prefix(cbc_pool(), 12),
                             prefix(rc4_pool(), 3), prefix(tdes_pool(), 2)});
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  c.groups = classic_groups();
  c.randomizes_cipher_order = true;
  p.versions.push_back(c);
  return p;
}

}  // namespace

std::vector<ClientProfile> app_profiles() {
  return {grid_ftp(),   nagios(),     nagios_legacy(),  interwise(),
          shodan_scanner(),
          lookout(),    craftar(),    kaspersky(),      avast(),
          bluecoat(),   curl_tool(),  git_tool(),       flux(),
          spotlight(),  windows_update(), dropbox(),    onedrive(),
          thunderbird(), apple_mail(), facebook_app(),  hola_vpn(),
          zbot(),       install_money(), tor_client(),  cipher_shuffler(),
          splunk_forwarder(), iot_gateway(), firefox_nightly()};
}

}  // namespace tls::clients
