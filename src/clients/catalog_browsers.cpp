// Browser profiles encoding the paper's Tables 3 (CBC counts), 4 (RC4
// support), 5 (3DES counts) and 6 (protocol version support). Each config's
// release date is the date given in those tables; where the paper's tables
// disagree on a date (they contain a few transposition typos) we use the
// more widely corroborated one and note it inline.
#include "clients/catalog.hpp"

#include "clients/catalog_detail.hpp"

namespace tls::clients {

using namespace detail;
using tls::core::Date;

namespace {

std::vector<std::uint16_t> with_tls13(std::vector<std::uint16_t> suites) {
  std::vector<std::uint16_t> out(tls13_pool().begin(), tls13_pool().end());
  out.insert(out.end(), suites.begin(), suites.end());
  return out;
}

ClientProfile chrome() {
  ClientProfile p{"Chrome", tls::fp::SoftwareClass::kBrowser, {}};

  ClientConfig c;
  c.version_label = "16";
  c.release = Date(2012, 1, 5);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 29, 6, 8);
  c.extension_order = legacy_browser_exts();
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "22";  // TLS 1.1 (Table 6)
  c.release = Date(2012, 9, 25);
  c.legacy_version = 0x0302;
  p.versions.push_back(c);

  c.version_label = "29";  // TLS 1.2 + GCM; CBC 29->16, RC4 6->4, 3DES 8->1
  c.release = Date(2013, 8, 20);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 16, 4, 1, 0, /*chacha=*/false);
  c.extension_order = tls12_browser_exts(/*alpn=*/false, /*ems=*/false);
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "31";  // CBC -> 10
  c.release = Date(2013, 11, 12);
  c.cipher_suites = browser_list(4, 10, 4, 1, 0, false);
  p.versions.push_back(c);

  c.version_label = "33";  // ChaCha20-Poly1305 shipped
  c.release = Date(2014, 2, 20);
  c.cipher_suites = browser_list(6, 10, 4, 1);
  c.alpn = {"h2", "http/1.1"};
  c.extension_order = tls12_browser_exts(/*alpn=*/true, /*ems=*/false);
  p.versions.push_back(c);

  c.version_label = "39";  // SSL3 fallback removed (Table 6)
  c.release = Date(2014, 11, 18);
  c.version_fallback = false;
  c.min_version = 0x0301;
  p.versions.push_back(c);

  c.version_label = "41";  // CBC -> 9
  c.release = Date(2015, 3, 3);
  c.cipher_suites = browser_list(6, 9, 4, 1);
  c.extension_order = tls12_browser_exts(true, /*ems=*/true, /*sct=*/true);
  p.versions.push_back(c);

  c.version_label = "43";  // RC4 removed completely (Table 4)
  c.release = Date(2015, 5, 19);
  c.cipher_suites = browser_list(6, 9, 0, 1);
  p.versions.push_back(c);

  c.version_label = "49";  // CBC -> 7
  c.release = Date(2016, 3, 2);
  c.cipher_suites = browser_list(6, 7, 0, 1);
  p.versions.push_back(c);

  c.version_label = "50";  // x25519 becomes the preferred group
  c.release = Date(2016, 4, 13);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  c.version_label = "55";  // GREASE rollout
  c.release = Date(2016, 12, 1);
  c.grease = true;
  p.versions.push_back(c);

  c.version_label = "56";  // CBC -> 5 (Table 3)
  c.release = Date(2017, 1, 25);
  c.cipher_suites = browser_list(6, 5, 0, 1);
  p.versions.push_back(c);

  c.version_label = "65";  // TLS 1.3 Google experimental variant on
  c.release = Date(2018, 3, 6);
  c.cipher_suites = with_tls13(browser_list(6, 5, 0, 1));
  c.supported_versions = {0x7e02, 0x0303, 0x0302, 0x0301};
  c.extension_order = tls13_browser_exts();
  // Chrome-only extensions keep its fingerprint distinct from other
  // BoringSSL/NSS TLS 1.3 stacks.
  c.extension_order.push_back(X(ExtensionType::kChannelId));
  c.sig_algs = modern_sig_algs();
  p.versions.push_back(c);

  return p;
}

ClientProfile firefox() {
  ClientProfile p{"Firefox", tls::fp::SoftwareClass::kBrowser, {}};

  ClientConfig c;
  c.version_label = "10";
  c.release = Date(2012, 1, 31);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 29, 6, 8);
  c.extension_order = legacy_browser_exts();
  c.groups = classic_groups();
  p.versions.push_back(c);

  // Table 6: TLS 1.1/1.2 in Firefox 27; Table 3: CBC 29 -> 17; Table 4:
  // RC4 6 -> 4 (the table prints 04/12/2014, corroborated date is the
  // Firefox 27 release on 2014-02-04); Table 5: 3DES 8 -> 3.
  c.version_label = "27";
  c.release = Date(2014, 2, 4);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 17, 4, 3, 0, /*chacha=*/false);
  c.extension_order = tls12_browser_exts(/*alpn=*/true, /*ems=*/false);
  c.sig_algs = default_sig_algs();
  c.alpn = {"h2", "http/1.1"};
  p.versions.push_back(c);

  c.version_label = "33";  // CBC -> 10, 3DES -> 1
  c.release = Date(2014, 10, 14);
  c.cipher_suites = browser_list(4, 10, 4, 1, 0, false);
  p.versions.push_back(c);

  c.version_label = "37";  // CBC -> 9; SSL3 fallback removed
  c.release = Date(2015, 3, 31);
  c.cipher_suites = browser_list(4, 9, 4, 1, 0, false);
  c.version_fallback = false;
  c.min_version = 0x0301;
  c.extension_order = tls12_browser_exts(true, /*ems=*/true);
  p.versions.push_back(c);

  // Firefox 36-43 kept RC4 for fallback/whitelist only; the advertised
  // default list is RC4-free from 44 (Table 4).
  c.version_label = "44";
  c.release = Date(2016, 1, 26);
  c.cipher_suites = browser_list(4, 9, 0, 1, 0, false);
  p.versions.push_back(c);

  c.version_label = "47";  // ChaCha20-Poly1305 (NSS 3.23)
  c.release = Date(2016, 6, 7);
  c.cipher_suites = browser_list(6, 9, 0, 1);
  p.versions.push_back(c);

  c.version_label = "49";  // x25519
  c.release = Date(2016, 9, 20);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  c.version_label = "59";  // TLS 1.3 draft-18 rollout to release users
  c.release = Date(2018, 3, 13);
  c.cipher_suites = with_tls13(browser_list(6, 9, 0, 1));
  c.supported_versions = {0x7f12, 0x0303, 0x0302, 0x0301};
  c.extension_order = tls13_browser_exts();
  c.sig_algs = modern_sig_algs();
  p.versions.push_back(c);

  c.version_label = "60";  // TLS 1.3 by default; CBC -> 5 (60 beta)
  c.release = Date(2018, 5, 16);
  c.cipher_suites = with_tls13(browser_list(6, 5, 0, 1));
  c.supported_versions = {0x7f1c, 0x0303, 0x0302, 0x0301};
  p.versions.push_back(c);

  return p;
}

ClientProfile opera() {
  ClientProfile p{"Opera", tls::fp::SoftwareClass::kBrowser, {}};

  ClientConfig c;
  c.version_label = "12";  // Presto engine
  c.release = Date(2012, 6, 14);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 25, 2, 8);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "15";  // Chromium base; CBC 25 -> 29, RC4 2 -> 6
  c.release = Date(2013, 7, 2);
  c.cipher_suites = browser_list(0, 29, 6, 8);
  c.extension_order = legacy_browser_exts();
  p.versions.push_back(c);

  c.version_label = "16";  // TLS 1.1; CBC -> 16, RC4 -> 4, 3DES -> 1
  c.release = Date(2013, 8, 27);
  c.legacy_version = 0x0302;
  c.cipher_suites = browser_list(0, 16, 4, 1);
  p.versions.push_back(c);

  c.version_label = "18";  // TLS 1.2 + GCM; CBC -> 10
  c.release = Date(2013, 11, 19);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 10, 4, 1, 0, false);
  c.extension_order = tls12_browser_exts(/*alpn=*/false, /*ems=*/false);
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "27";  // SSL3 fallback removed
  c.release = Date(2015, 1, 22);
  c.version_fallback = false;
  c.min_version = 0x0301;
  p.versions.push_back(c);

  c.version_label = "28";  // CBC -> 9
  c.release = Date(2015, 3, 10);
  c.cipher_suites = browser_list(4, 9, 4, 1, 0, false);
  p.versions.push_back(c);

  c.version_label = "30";  // CBC -> 7; RC4 removed; ChaCha (Chromium 43)
  c.release = Date(2015, 6, 9);
  c.cipher_suites = browser_list(6, 7, 0, 1);
  c.alpn = {"h2", "http/1.1"};
  c.extension_order = tls12_browser_exts(true, true);
  p.versions.push_back(c);

  c.version_label = "37";  // x25519 (Chromium 50)
  c.release = Date(2016, 5, 4);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  c.version_label = "43";  // CBC -> 5; GREASE (Chromium 56)
  c.release = Date(2017, 2, 7);
  c.cipher_suites = browser_list(6, 5, 0, 1);
  c.grease = true;
  p.versions.push_back(c);

  return p;
}

ClientProfile safari() {
  ClientProfile p{"Safari", tls::fp::SoftwareClass::kBrowser, {}};

  ClientConfig c;
  c.version_label = "5.1";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 28, 7, 7);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "6";  // RC4 7 -> 6 (Table 4)
  c.release = Date(2012, 2, 25);
  c.cipher_suites = browser_list(0, 28, 6, 7);
  p.versions.push_back(c);

  c.version_label = "7";  // TLS 1.1/1.2 (Table 6)
  c.release = Date(2013, 10, 22);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(0, 28, 6, 7);
  c.extension_order = tls12_browser_exts(/*alpn=*/false, /*ems=*/false);
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "7.1";  // CBC 28 -> 30 (Table 3); 3DES 7 -> 6 (Table 5)
  c.release = Date(2014, 9, 18);
  // The pool holds 29 CBC suites; Safari's 30th was a duplicate-keyed ECDHE
  // variant — we saturate at the pool size, preserving "increased" order.
  c.cipher_suites = browser_list(0, 29, 6, 6);
  p.versions.push_back(c);

  // Safari 9 (2015-09-30 per Tables 4/5/6): CBC -> 15, RC4 -> 4, 3DES -> 3,
  // SSL3 support removed, GCM shipped.
  c.version_label = "9";
  c.release = Date(2015, 9, 30);
  c.cipher_suites = browser_list(4, 15, 4, 3, 0, false);
  c.version_fallback = false;
  c.min_version = 0x0301;
  p.versions.push_back(c);

  c.version_label = "10";  // RC4 removed (Table 4, 2016-09-20)
  c.release = Date(2016, 9, 20);
  c.cipher_suites = browser_list(4, 15, 0, 3, 0, false);
  c.alpn = {"h2", "http/1.1"};
  c.extension_order = tls12_browser_exts(true, true, true);
  p.versions.push_back(c);

  c.version_label = "10.1";  // CBC -> 12 (Table 3)
  c.release = Date(2017, 7, 19);
  c.cipher_suites = browser_list(4, 12, 0, 3, 0, false);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  return p;
}

ClientProfile ie_edge() {
  ClientProfile p{"IE/Edge", tls::fp::SoftwareClass::kBrowser, {}};

  ClientConfig c;
  c.version_label = "9";  // Win7 SChannel
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 10, 2, 2, 1);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kStatusRequest),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kRenegotiationInfo)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "11";  // TLS 1.1/1.2 (Table 6)
  c.release = Date(2013, 11, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 10, 2, 2, 0, false);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kStatusRequest),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kRenegotiationInfo)};
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "13";  // all RC4 suites removed (Table 4)
  c.release = Date(2015, 5, 20);
  c.cipher_suites = browser_list(4, 10, 0, 2, 0, false);
  c.version_fallback = false;
  c.min_version = 0x0301;
  c.alpn = {"h2", "http/1.1"};
  c.extension_order.push_back(X(ExtensionType::kAlpn));
  c.extension_order.push_back(X(ExtensionType::kExtendedMasterSecret));
  p.versions.push_back(c);

  c.version_label = "14";  // Edge: x25519
  c.release = Date(2016, 8, 2);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  return p;
}

}  // namespace

std::vector<ClientProfile> browser_profiles() {
  return {chrome(), firefox(), opera(), safari(), ie_edge()};
}

}  // namespace tls::clients
