#include "clients/catalog_detail.hpp"

namespace tls::clients::detail {

std::vector<std::uint16_t> browser_list(std::size_t n_aead, std::size_t n_cbc,
                                        std::size_t n_rc4, std::size_t n_3des,
                                        std::size_t n_des, bool chacha) {
  const auto aead = chacha ? aead_pool() : aead_pool_no_chacha();
  const std::size_t cbc_head = n_cbc - n_cbc / 3;  // RC4 after ~2/3 of CBC
  return compose({
      prefix(aead, n_aead),
      prefix(cbc_pool(), cbc_head),
      prefix(rc4_pool(), n_rc4),
      prefix(cbc_pool(), n_cbc),  // compose() dedups the head
      prefix(tdes_pool(), n_3des),
      prefix(des_pool(), n_des),
  });
}

}  // namespace tls::clients::detail
