// Internal helpers shared by the catalog translation units.
#pragma once

#include <cstdint>
#include <vector>

#include "clients/profile.hpp"
#include "clients/suite_pools.hpp"
#include "tlscore/extensions.hpp"

namespace tls::clients::detail {

using tls::core::ExtensionType;

inline std::uint16_t X(ExtensionType t) { return tls::core::wire_value(t); }

/// Default signature_algorithms list of TLS 1.2-era clients.
inline std::vector<std::uint16_t> default_sig_algs() {
  return {0x0403, 0x0503, 0x0603, 0x0401, 0x0501, 0x0601, 0x0201, 0x0203};
}

/// TLS 1.3-era list (adds RSA-PSS).
inline std::vector<std::uint16_t> modern_sig_algs() {
  return {0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501,
          0x0806, 0x0601, 0x0201};
}

inline std::vector<std::uint16_t> classic_groups() {
  return {23, 24, 25};  // secp256r1, secp384r1, secp521r1
}

inline std::vector<std::uint16_t> x25519_groups() {
  return {29, 23, 24};  // x25519 preferred
}

/// Pre-TLS1.2 browser extension order (2012 era).
inline std::vector<std::uint16_t> legacy_browser_exts() {
  return {X(ExtensionType::kServerName),
          X(ExtensionType::kRenegotiationInfo),
          X(ExtensionType::kSupportedGroups),
          X(ExtensionType::kEcPointFormats),
          X(ExtensionType::kSessionTicket),
          X(ExtensionType::kNextProtocolNegotiation),
          X(ExtensionType::kStatusRequest)};
}

/// TLS 1.2-era browser extension order.
inline std::vector<std::uint16_t> tls12_browser_exts(bool alpn, bool ems,
                                                     bool sct = false) {
  std::vector<std::uint16_t> v = {
      X(ExtensionType::kServerName),    X(ExtensionType::kRenegotiationInfo),
      X(ExtensionType::kSupportedGroups), X(ExtensionType::kEcPointFormats),
      X(ExtensionType::kSessionTicket), X(ExtensionType::kSignatureAlgorithms),
      X(ExtensionType::kStatusRequest)};
  if (alpn) v.push_back(X(ExtensionType::kAlpn));
  if (sct) v.push_back(X(ExtensionType::kSignedCertificateTimestamp));
  if (ems) v.push_back(X(ExtensionType::kExtendedMasterSecret));
  return v;
}

/// TLS 1.3-capable browser extension order.
inline std::vector<std::uint16_t> tls13_browser_exts() {
  return {X(ExtensionType::kServerName),
          X(ExtensionType::kExtendedMasterSecret),
          X(ExtensionType::kRenegotiationInfo),
          X(ExtensionType::kSupportedGroups),
          X(ExtensionType::kEcPointFormats),
          X(ExtensionType::kSessionTicket),
          X(ExtensionType::kAlpn),
          X(ExtensionType::kStatusRequest),
          X(ExtensionType::kSignatureAlgorithms),
          X(ExtensionType::kSignedCertificateTimestamp),
          X(ExtensionType::kKeyShare),
          X(ExtensionType::kPskKeyExchangeModes),
          X(ExtensionType::kSupportedVersions)};
}

/// Composes a browser cipher list. AEAD first; RC4 sits after the first
/// ~60% of the CBC block (matching the mid-list relative positions of
/// Fig. 5); 3DES and DES at the bottom as ciphers of last resort.
std::vector<std::uint16_t> browser_list(std::size_t n_aead, std::size_t n_cbc,
                                        std::size_t n_rc4, std::size_t n_3des,
                                        std::size_t n_des = 0,
                                        bool chacha = true);

}  // namespace tls::clients::detail
