// TLS library / OS stack profiles. These dominate non-browser traffic
// ("Libraries" is the largest class in Table 2 at 46.49% coverage) and
// carry the long-tail behaviours the paper highlights: OpenSSL 1.0.1/1.0.2
// advertising the Heartbeat extension for years after Heartbleed (§5.4),
// Android 2.3 pinned to TLS 1.0 without ECDHE/AEAD (§7.2), export suites in
// 0.9.8-era defaults (§5.5).
#include "clients/catalog.hpp"

#include "clients/catalog_detail.hpp"

namespace tls::clients {

using namespace detail;
using tls::core::Date;

namespace {

// Pre-1.0.1 branch modeled as its own lineage: a large 2012 installed base
// that decays but never fully updates. Many of these builds were linked
// with permissive "ALL"-style cipher strings, so anonymous and NULL suites
// ride along (a chunk of the §6.1/§6.2 advertising baseline).
ClientProfile openssl_09x() {
  ClientProfile p{"OpenSSL 0.9.x", tls::fp::SoftwareClass::kLibrary, {}};

  ClientConfig c;
  c.version_label = "0.9.8";
  c.release = Date(2012, 1, 1);  // installed base at study start
  c.legacy_version = 0x0301;
  // 0.9.8 defaults: no ECC, export + DES still enabled, no extensions.
  c.cipher_suites = compose({
      prefix(cbc_pool().subspan(8), 8),  // DHE/RSA CBC block
      prefix(rc4_pool().subspan(2), 2),  // RSA RC4 SHA/MD5
      prefix(tdes_pool(), 3),
      des_pool(),
      export_pool(),
      prefix(anon_pool(), 3),
  });
  c.extension_order = {};
  c.groups = {};
  p.versions.push_back(c);

  c = ClientConfig{};
  c.version_label = "1.0.0";
  c.release = Date(2012, 2, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(cbc_pool(), 22),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 3),
      prefix(des_pool(), 2),
      prefix(anon_pool(), 3),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket)};
  c.groups = {23, 24, 25, 14};  // includes sect571r1 (§6.3.3 tail)
  p.versions.push_back(c);
  return p;
}

ClientProfile openssl() {
  ClientProfile p{"OpenSSL", tls::fp::SoftwareClass::kLibrary, {}};

  // 1.0.1: TLS 1.2, GCM — and the Heartbeat extension, on by default.
  ClientConfig c;
  c.version_label = "1.0.1";
  c.release = Date(2012, 3, 14);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 22),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 3),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kHeartbeat)};
  c.sig_algs = default_sig_algs();
  c.groups = {23, 24, 25, 14};
  c.heartbeat_mode = 1;
  p.versions.push_back(c);

  // 1.0.1g (Heartbleed fix, 2014-04-07) changed no ClientHello bytes: the
  // extension stayed. We still model it as a distinct catalog version so
  // studies can assert the fingerprint is IDENTICAL pre/post patch.
  ClientConfig patched = c;
  patched.version_label = "1.0.1g";
  patched.release = Date(2014, 4, 7);
  p.versions.push_back(patched);

  c.version_label = "1.0.2";  // + ALPN, EMS; Heartbeat still advertised
  c.release = Date(2015, 1, 22);
  c.extension_order.push_back(X(ExtensionType::kAlpn));
  c.extension_order.push_back(X(ExtensionType::kExtendedMasterSecret));
  c.alpn = {"http/1.1"};
  p.versions.push_back(c);

  // 1.1.0: ChaCha + x25519; RC4/3DES/Heartbeat dropped from defaults.
  c = ClientConfig{};
  c.version_label = "1.1.0";
  c.release = Date(2016, 8, 25);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({aead_pool(), prefix(cbc_pool(), 16)});
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kSignatureAlgorithms),
                       X(ExtensionType::kAlpn),
                       X(ExtensionType::kEncryptThenMac),
                       X(ExtensionType::kExtendedMasterSecret)};
  c.sig_algs = modern_sig_algs();
  c.groups = {29, 23, 24, 25};
  c.alpn = {"http/1.1"};
  p.versions.push_back(c);

  // 1.1.1 pre-release: TLS 1.3 draft-23 (the "compiling new versions of
  // libraries & custom setup" population of §6.4).
  c.version_label = "1.1.1-pre";
  c.release = Date(2018, 2, 13);
  c.cipher_suites = compose({tls13_pool(), aead_pool(), prefix(cbc_pool(), 16)});
  c.supported_versions = {0x7f17, 0x0303, 0x0302, 0x0301};
  c.extension_order.push_back(X(ExtensionType::kKeyShare));
  c.extension_order.push_back(X(ExtensionType::kPskKeyExchangeModes));
  c.extension_order.push_back(X(ExtensionType::kSupportedVersions));
  p.versions.push_back(c);

  return p;
}

ClientProfile android_sdk() {
  ClientProfile p{"Android SDK", tls::fp::SoftwareClass::kLibrary, {}};

  ClientConfig c;
  c.version_label = "2.3";  // Gingerbread: TLS 1.0, no ECDHE, no AEAD (§7.2)
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(rc4_pool().subspan(2), 2),  // RC4 first — Gingerbread order
      prefix(cbc_pool().subspan(8), 6),  // DHE/RSA AES CBC
      prefix(tdes_pool(), 2),
      prefix(des_pool(), 2),
      prefix(export_pool(), 3),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSessionTicket)};
  c.groups = {};
  p.versions.push_back(c);

  c = ClientConfig{};
  c.version_label = "4.0";  // export/DES dropped
  c.release = Date(2012, 6, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(cbc_pool(), 12),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 2),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket),
                       X(ExtensionType::kHeartbeat)};  // OpenSSL-1.0.1 era
  c.heartbeat_mode = 1;
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "5.0";  // TLS 1.2 + GCM by default
  c.release = Date(2014, 11, 12);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 8),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 1),
  });
  c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "6.0";  // RC4 removed; BoringSSL (no Heartbeat)
  c.release = Date(2015, 10, 5);
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 8),
      prefix(tdes_pool(), 1),
  });
  std::erase(c.extension_order, X(ExtensionType::kHeartbeat));
  c.heartbeat_mode = 0;
  p.versions.push_back(c);

  c.version_label = "7.0";  // ChaCha + x25519 (BoringSSL)
  c.release = Date(2016, 8, 22);
  // Handsets without AES acceleration put ChaCha20 first; servers honoring
  // client order pick it (§6.3.2's mobile ChaCha traffic).
  c.cipher_suites = [] {
    const std::uint16_t chacha_first[] = {0xcca8, 0xcca9};
    return compose({chacha_first, aead_pool(), prefix(cbc_pool(), 8)});
  }();
  c.groups = x25519_groups();
  c.alpn = {"h2", "http/1.1"};
  c.extension_order.push_back(X(ExtensionType::kAlpn));
  p.versions.push_back(c);

  c.version_label = "8.0";  // GREASE via BoringSSL
  c.release = Date(2017, 8, 21);
  c.grease = true;
  p.versions.push_back(c);

  return p;
}

ClientProfile secure_transport() {
  ClientProfile p{"Apple SecureTransport", tls::fp::SoftwareClass::kLibrary,
                  {}};

  ClientConfig c;
  c.version_label = "iOS5";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 20, 6, 4);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "iOS7";  // TLS 1.2
  c.release = Date(2013, 9, 18);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(0, 20, 6, 4);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSignatureAlgorithms)};
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "iOS9";  // GCM; RC4 disabled (ATS); 3DES kept
  c.release = Date(2015, 9, 16);
  c.cipher_suites = browser_list(4, 15, 0, 3, 0, false);
  p.versions.push_back(c);

  c.version_label = "iOS10";
  c.release = Date(2016, 9, 13);
  c.cipher_suites = browser_list(4, 12, 0, 3, 0, false);
  c.alpn = {"h2", "http/1.1"};
  c.extension_order.push_back(X(ExtensionType::kAlpn));
  p.versions.push_back(c);

  c.version_label = "iOS11";  // ChaCha + x25519
  c.release = Date(2017, 9, 19);
  c.cipher_suites = browser_list(6, 12, 0, 3);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  return p;
}

// Windows XP SChannel: its own lineage — the installed base shrinks but
// the configuration never changes (RC4-first, DES, export, no extensions
// beyond renegotiation_info). Malware running on XP hosts shares it.
ClientProfile ms_cryptoapi_xp() {
  ClientProfile p{"MS CryptoAPI XP", tls::fp::SoftwareClass::kLibrary, {}};
  ClientConfig c;
  c.version_label = "WinXP";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = compose({
      prefix(rc4_pool().subspan(2), 2),
      prefix(cbc_pool().subspan(12), 2),  // RSA AES CBC
      prefix(tdes_pool(), 1),
      prefix(des_pool(), 1),
      prefix(export_pool(), 2),
  });
  c.extension_order = {X(ExtensionType::kRenegotiationInfo)};
  c.groups = {};
  p.versions.push_back(c);
  return p;
}

ClientProfile ms_cryptoapi() {
  ClientProfile p{"MS CryptoAPI", tls::fp::SoftwareClass::kLibrary, {}};

  ClientConfig c;
  c.version_label = "Win7";
  c.release = Date(2012, 1, 15);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 10, 2, 2);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kStatusRequest),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kRenegotiationInfo)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "Win8.1";  // TLS 1.2 + GCM for system components
  c.release = Date(2013, 10, 17);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 10, 2, 2, 0, false);
  c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "Win10";  // RC4 off by default
  c.release = Date(2015, 7, 29);
  c.cipher_suites = browser_list(4, 10, 0, 2, 0, false);
  c.extension_order.push_back(X(ExtensionType::kExtendedMasterSecret));
  p.versions.push_back(c);

  c.version_label = "Win10-1607";  // x25519
  c.release = Date(2016, 8, 2);
  c.groups = x25519_groups();
  p.versions.push_back(c);

  return p;
}

ClientProfile java_jsse() {
  ClientProfile p{"Java JSSE", tls::fp::SoftwareClass::kLibrary, {}};

  ClientConfig c;
  c.version_label = "7";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;  // 1.2 implemented but off by default
  // JSSE 7 defaults still enabled the SSL_*_EXPORT_* aliases.
  c.cipher_suites = compose({
      prefix(cbc_pool(), 14),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 3),
      prefix(des_pool(), 2),
      prefix(export_pool(), 3),
  });
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "8";  // TLS 1.2 default, GCM
  c.release = Date(2014, 3, 18);
  c.legacy_version = 0x0303;
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 10),
      prefix(rc4_pool(), 4),
      prefix(tdes_pool(), 1),
  });
  c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "8u60";  // RC4 removed from defaults
  c.release = Date(2015, 8, 18);
  c.cipher_suites = compose({
      aead_pool_no_chacha(),
      prefix(cbc_pool(), 10),
      prefix(tdes_pool(), 1),
  });
  p.versions.push_back(c);

  return p;
}

ClientProfile nss() {
  ClientProfile p{"NSS", tls::fp::SoftwareClass::kLibrary, {}};

  // Non-browser NSS consumers; same engine as Firefox, but without the
  // browser extension set, so fingerprints stay distinct.
  ClientConfig c;
  c.version_label = "3.13";
  c.release = Date(2012, 1, 1);
  c.legacy_version = 0x0301;
  c.cipher_suites = browser_list(0, 20, 6, 4);
  c.extension_order = {X(ExtensionType::kServerName),
                       X(ExtensionType::kRenegotiationInfo),
                       X(ExtensionType::kSupportedGroups),
                       X(ExtensionType::kEcPointFormats),
                       X(ExtensionType::kSessionTicket)};
  c.groups = classic_groups();
  p.versions.push_back(c);

  c.version_label = "3.16";
  c.release = Date(2014, 3, 1);
  c.legacy_version = 0x0303;
  c.cipher_suites = browser_list(4, 14, 4, 1, 0, false);
  c.extension_order.push_back(X(ExtensionType::kSignatureAlgorithms));
  c.sig_algs = default_sig_algs();
  p.versions.push_back(c);

  c.version_label = "3.23";  // ChaCha; RC4 out
  c.release = Date(2016, 3, 8);
  c.cipher_suites = browser_list(6, 14, 0, 1);
  p.versions.push_back(c);

  return p;
}

}  // namespace

std::vector<ClientProfile> library_profiles() {
  return {openssl_09x(),  openssl(),        android_sdk(),
          secure_transport(), ms_cryptoapi_xp(), ms_cryptoapi(),
          java_jsse(),    nss()};
}

}  // namespace tls::clients
