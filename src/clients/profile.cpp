#include "clients/profile.hpp"

#include <algorithm>

#include "tlscore/cipher_suites.hpp"
#include "tlscore/extensions.hpp"
#include "tlscore/grease.hpp"

namespace tls::clients {

using tls::core::ExtensionType;

std::size_t ClientConfig::count_cbc() const {
  // Table 3 semantics: CBC suites excluding the 64-bit-block (DES/3DES)
  // suites, which the paper tallies separately in Table 5.
  std::size_t n = 0;
  for (const auto id : cipher_suites) {
    const auto* s = tls::core::find_cipher_suite(id);
    if (s != nullptr && tls::core::is_cbc(*s) && !tls::core::is_3des(*s) &&
        !tls::core::is_single_des(*s)) {
      ++n;
    }
  }
  return n;
}

std::size_t ClientConfig::count_rc4() const {
  std::size_t n = 0;
  for (const auto id : cipher_suites) {
    const auto* s = tls::core::find_cipher_suite(id);
    if (s != nullptr && tls::core::is_rc4(*s)) ++n;
  }
  return n;
}

std::size_t ClientConfig::count_3des() const {
  std::size_t n = 0;
  for (const auto id : cipher_suites) {
    const auto* s = tls::core::find_cipher_suite(id);
    if (s != nullptr && tls::core::is_3des(*s)) ++n;
  }
  return n;
}

bool ClientConfig::offers_aead() const {
  return std::any_of(cipher_suites.begin(), cipher_suites.end(),
                     [](std::uint16_t id) {
                       const auto* s = tls::core::find_cipher_suite(id);
                       return s != nullptr && tls::core::is_aead(*s);
                     });
}

const ClientConfig* ClientProfile::config_at(
    const tls::core::Date& when) const {
  const ClientConfig* best = nullptr;
  for (const auto& cfg : versions) {
    if (cfg.release <= when) best = &cfg;
  }
  return best;
}

std::optional<std::size_t> ClientProfile::version_index_at(
    const tls::core::Date& when) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].release <= when) best = i;
  }
  return best;
}

namespace {

std::uint16_t pick_grease(tls::core::Rng& rng) {
  return tls::core::grease_values()[rng.below(16)];
}

tls::wire::Extension build_extension(const ClientConfig& cfg,
                                     std::uint16_t type,
                                     std::string_view sni_host,
                                     tls::core::Rng& rng) {
  using namespace tls::wire;
  switch (static_cast<ExtensionType>(type)) {
    case ExtensionType::kServerName:
      return make_server_name(sni_host);
    case ExtensionType::kSupportedGroups: {
      std::vector<std::uint16_t> groups = cfg.groups;
      if (cfg.grease) groups.insert(groups.begin(), pick_grease(rng));
      return make_supported_groups(groups);
    }
    case ExtensionType::kEcPointFormats:
      return make_ec_point_formats(cfg.point_formats);
    case ExtensionType::kSupportedVersions: {
      std::vector<std::uint16_t> versions = cfg.supported_versions;
      if (cfg.grease) versions.insert(versions.begin(), pick_grease(rng));
      return make_supported_versions_client(versions);
    }
    case ExtensionType::kSignatureAlgorithms:
      return make_signature_algorithms(cfg.sig_algs);
    case ExtensionType::kAlpn:
      return make_alpn(cfg.alpn);
    case ExtensionType::kHeartbeat:
      return make_heartbeat(cfg.heartbeat_mode == 0 ? 1 : cfg.heartbeat_mode);
    case ExtensionType::kSessionTicket:
      return make_session_ticket();
    case ExtensionType::kRenegotiationInfo:
      return make_renegotiation_info();
    case ExtensionType::kEncryptThenMac:
      return make_encrypt_then_mac();
    case ExtensionType::kExtendedMasterSecret:
      return make_extended_master_secret();
    case ExtensionType::kStatusRequest:
      return make_status_request();
    case ExtensionType::kSignedCertificateTimestamp:
      return make_sct();
    case ExtensionType::kKeyShare: {
      // Offer a share for the client's most preferred group.
      std::vector<std::uint16_t> share_groups;
      if (!cfg.groups.empty()) share_groups.push_back(cfg.groups.front());
      return make_key_share_client(share_groups);
    }
    case ExtensionType::kPskKeyExchangeModes: {
      const std::uint8_t modes[] = {1};  // psk_dhe_ke
      return make_psk_key_exchange_modes(modes);
    }
    case ExtensionType::kPadding:
      return make_padding(16);
    default:
      // NPN, channel_id and anything else: empty body.
      return Extension{type, {}};
  }
}

}  // namespace

tls::wire::ClientHello make_client_hello(const ClientConfig& cfg,
                                         tls::core::Rng& rng,
                                         std::string_view sni_host) {
  tls::wire::ClientHello ch;
  ch.legacy_version = cfg.legacy_version;
  for (auto& b : ch.random) b = static_cast<std::uint8_t>(rng.next());
  // Modern clients send a 32-byte legacy session id for middlebox compat
  // in TLS 1.3 mode; earlier clients send an empty one on a fresh session.
  if (!cfg.supported_versions.empty()) {
    ch.session_id.resize(32);
    for (auto& b : ch.session_id) b = static_cast<std::uint8_t>(rng.next());
  }

  ch.cipher_suites = cfg.cipher_suites;
  if (cfg.randomizes_cipher_order) {
    for (std::size_t i = ch.cipher_suites.size(); i > 1; --i) {
      std::swap(ch.cipher_suites[i - 1], ch.cipher_suites[rng.below(i)]);
    }
  }
  if (cfg.grease) {
    ch.cipher_suites.insert(ch.cipher_suites.begin(), pick_grease(rng));
  }

  for (const auto type : cfg.extension_order) {
    if (type == tls::core::wire_value(ExtensionType::kServerName) &&
        sni_host.empty()) {
      continue;
    }
    ch.extensions.push_back(build_extension(cfg, type, sni_host, rng));
  }
  if (cfg.grease) {
    // Chrome-style: one GREASE extension first, one last.
    ch.extensions.insert(ch.extensions.begin(),
                         tls::wire::make_grease_extension(pick_grease(rng)));
    ch.extensions.push_back(
        tls::wire::make_grease_extension(pick_grease(rng)));
  }
  return ch;
}

}  // namespace tls::clients
