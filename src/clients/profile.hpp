// Client software model. A ClientProfile is one software lineage (e.g.
// "Chrome"); each ClientConfig is the TLS configuration one version range
// of that software ships, anchored at its release date. The emitter turns
// a config into real ClientHello wire bytes — these bytes are what the
// Notary observes and fingerprints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fingerprint/database.hpp"
#include "tlscore/dates.hpp"
#include "tlscore/rng.hpp"
#include "wire/client_hello.hpp"

namespace tls::clients {

struct ClientConfig {
  std::string version_label;
  tls::core::Date release{2012, 1, 1};

  /// Highest legacy version offered in the ClientHello version field
  /// (TLS 1.3 clients keep this at 0x0303 and use supported_versions).
  std::uint16_t legacy_version = 0x0301;
  /// Non-empty => emit a supported_versions extension with these values
  /// (highest preference first). May contain draft/experiment values.
  std::vector<std::uint16_t> supported_versions;
  /// Lowest version the client will fall back to (fallback dance).
  std::uint16_t min_version = 0x0300;
  /// Whether the client performs the insecure downgrade dance on failure
  /// (removed from browsers over 2014-2015, Table 6).
  bool version_fallback = true;

  std::vector<std::uint16_t> cipher_suites;
  /// Extension types in ClientHello order; bodies are synthesized.
  std::vector<std::uint16_t> extension_order;
  std::vector<std::uint16_t> groups;
  std::vector<std::uint8_t> point_formats{0};
  std::vector<std::uint16_t> sig_algs;
  std::vector<std::string> alpn;

  bool grease = false;
  /// 0 = no heartbeat extension; 1/2 = RFC 6520 modes.
  std::uint8_t heartbeat_mode = 0;
  /// Pathological client that shuffles its cipher list per connection —
  /// the hypothesized source of the single-day fingerprint explosion (§4.1).
  bool randomizes_cipher_order = false;

  /// Count of offered suites in a class (for Tables 3-5 assertions).
  [[nodiscard]] std::size_t count_cbc() const;
  [[nodiscard]] std::size_t count_rc4() const;
  [[nodiscard]] std::size_t count_3des() const;
  [[nodiscard]] bool offers_aead() const;
};

struct ClientProfile {
  std::string name;
  tls::fp::SoftwareClass cls = tls::fp::SoftwareClass::kLibrary;
  /// Version configs in chronological release order.
  std::vector<ClientConfig> versions;
  /// True for the generated long-tail variants (see catalog.hpp).
  bool synthetic = false;

  /// Latest config released on or before `when`; nullptr if none yet.
  [[nodiscard]] const ClientConfig* config_at(const tls::core::Date& when) const;
  /// Index variant of config_at (npos when none).
  [[nodiscard]] std::optional<std::size_t> version_index_at(
      const tls::core::Date& when) const;
};

/// Emits wire-accurate ClientHello for a config. `rng` drives the random
/// field, session id, GREASE values, and cipher-order randomization.
tls::wire::ClientHello make_client_hello(const ClientConfig& config,
                                         tls::core::Rng& rng,
                                         std::string_view sni_host = "");

}  // namespace tls::clients
