#include "clients/suite_pools.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "tlscore/cipher_suites.hpp"

namespace tls::clients {

namespace {

constexpr std::uint16_t kCbc[] = {
    0xc023,  // ECDHE_ECDSA_AES_128_CBC_SHA256
    0xc024,  // ECDHE_ECDSA_AES_256_CBC_SHA384
    0xc009,  // ECDHE_ECDSA_AES_128_CBC_SHA
    0xc00a,  // ECDHE_ECDSA_AES_256_CBC_SHA
    0xc027,  // ECDHE_RSA_AES_128_CBC_SHA256
    0xc028,  // ECDHE_RSA_AES_256_CBC_SHA384
    0xc013,  // ECDHE_RSA_AES_128_CBC_SHA
    0xc014,  // ECDHE_RSA_AES_256_CBC_SHA
    0x0033,  // DHE_RSA_AES_128_CBC_SHA
    0x0039,  // DHE_RSA_AES_256_CBC_SHA
    0x0067,  // DHE_RSA_AES_128_CBC_SHA256
    0x006b,  // DHE_RSA_AES_256_CBC_SHA256
    0x002f,  // RSA_AES_128_CBC_SHA
    0x0035,  // RSA_AES_256_CBC_SHA
    0x003c,  // RSA_AES_128_CBC_SHA256
    0x003d,  // RSA_AES_256_CBC_SHA256
    0x0032,  // DHE_DSS_AES_128_CBC_SHA
    0x0038,  // DHE_DSS_AES_256_CBC_SHA
    0xc004,  // ECDH_ECDSA_AES_128_CBC_SHA
    0xc005,  // ECDH_ECDSA_AES_256_CBC_SHA
    0xc00e,  // ECDH_RSA_AES_128_CBC_SHA
    0xc00f,  // ECDH_RSA_AES_256_CBC_SHA
    0x0041,  // RSA_CAMELLIA_128_CBC_SHA
    0x0084,  // RSA_CAMELLIA_256_CBC_SHA
    0x0045,  // DHE_RSA_CAMELLIA_128_CBC_SHA
    0x0088,  // DHE_RSA_CAMELLIA_256_CBC_SHA
    0x0007,  // RSA_IDEA_CBC_SHA
    0x0096,  // RSA_SEED_CBC_SHA
    0x009a,  // DHE_RSA_SEED_CBC_SHA
};

constexpr std::uint16_t kRc4[] = {
    0xc011,  // ECDHE_RSA_RC4_128_SHA
    0xc007,  // ECDHE_ECDSA_RC4_128_SHA
    0x0005,  // RSA_RC4_128_SHA
    0x0004,  // RSA_RC4_128_MD5
    0xc002,  // ECDH_ECDSA_RC4_128_SHA
    0xc00c,  // ECDH_RSA_RC4_128_SHA
    0x008a,  // PSK_RC4_128_SHA
};

constexpr std::uint16_t k3Des[] = {
    0x000a,  // RSA_3DES_EDE_CBC_SHA
    0xc012,  // ECDHE_RSA_3DES_EDE_CBC_SHA
    0x0016,  // DHE_RSA_3DES_EDE_CBC_SHA
    0xc008,  // ECDHE_ECDSA_3DES_EDE_CBC_SHA
    0x0013,  // DHE_DSS_3DES_EDE_CBC_SHA
    0xc003,  // ECDH_ECDSA_3DES_EDE_CBC_SHA
    0xc00d,  // ECDH_RSA_3DES_EDE_CBC_SHA
    0x0010,  // DH_RSA_3DES_EDE_CBC_SHA
};

constexpr std::uint16_t kDes[] = {
    0x0009,  // RSA_DES_CBC_SHA
    0x0015,  // DHE_RSA_DES_CBC_SHA
    0x0012,  // DHE_DSS_DES_CBC_SHA
};

constexpr std::uint16_t kAead[] = {
    0xc02b,  // ECDHE_ECDSA_AES_128_GCM_SHA256
    0xc02f,  // ECDHE_RSA_AES_128_GCM_SHA256
    0xc02c,  // ECDHE_ECDSA_AES_256_GCM_SHA384
    0xc030,  // ECDHE_RSA_AES_256_GCM_SHA384
    0xcca9,  // ECDHE_ECDSA_CHACHA20_POLY1305
    0xcca8,  // ECDHE_RSA_CHACHA20_POLY1305
    0x009e,  // DHE_RSA_AES_128_GCM_SHA256
    0x009f,  // DHE_RSA_AES_256_GCM_SHA384
    0x009c,  // RSA_AES_128_GCM_SHA256
    0x009d,  // RSA_AES_256_GCM_SHA384
};

constexpr std::uint16_t kAeadNoChaCha[] = {
    0xc02b, 0xc02f, 0xc02c, 0xc030, 0x009e, 0x009f, 0x009c, 0x009d,
};

constexpr std::uint16_t kTls13[] = {0x1301, 0x1302, 0x1303};

constexpr std::uint16_t kExport[] = {
    0x0003,  // RSA_EXPORT_RC4_40_MD5
    0x0006,  // RSA_EXPORT_RC2_CBC_40_MD5
    0x0008,  // RSA_EXPORT_DES40_CBC_SHA
    0x0014,  // DHE_RSA_EXPORT_DES40_CBC_SHA
    0x0011,  // DHE_DSS_EXPORT_DES40_CBC_SHA
    0x0017,  // DH_anon_EXPORT_RC4_40_MD5
    0x0019,  // DH_anon_EXPORT_DES40_CBC_SHA
};

constexpr std::uint16_t kAnon[] = {
    0x0034,  // DH_anon_AES_128_CBC_SHA
    0x003a,  // DH_anon_AES_256_CBC_SHA
    0x0018,  // DH_anon_RC4_128_MD5
    0x001b,  // DH_anon_3DES_EDE_CBC_SHA
    0xc018,  // ECDH_anon_AES_128_CBC_SHA
    0xc019,  // ECDH_anon_AES_256_CBC_SHA
    0x006c,  // DH_anon_AES_128_CBC_SHA256
    0x00a6,  // DH_anon_AES_128_GCM_SHA256
};

constexpr std::uint16_t kNull[] = {
    0x0002,  // RSA_NULL_SHA
    0x0001,  // RSA_NULL_MD5
    0x003b,  // RSA_NULL_SHA256
    0xc006,  // ECDHE_ECDSA_NULL_SHA
    0xc010,  // ECDHE_RSA_NULL_SHA
    0x0000,  // NULL_WITH_NULL_NULL
};

// Every pool entry must exist in the registry and be of the advertised
// class; checked once at startup so catalog composition can't drift.
[[maybe_unused]] const bool kPoolsValidated = [] {
  using namespace tls::core;
  const auto check = [](std::span<const std::uint16_t> pool, auto pred,
                        const char* what) {
    for (const auto id : pool) {
      const auto* info = find_cipher_suite(id);
      if (info == nullptr || !pred(*info)) {
        throw std::logic_error(std::string("bad pool entry for ") + what);
      }
    }
  };
  check(kCbc, [](const CipherSuiteInfo& s) { return is_cbc(s); }, "cbc");
  check(kRc4, [](const CipherSuiteInfo& s) { return is_rc4(s); }, "rc4");
  check(k3Des, [](const CipherSuiteInfo& s) { return is_3des(s); }, "3des");
  check(kDes, [](const CipherSuiteInfo& s) { return is_single_des(s); },
        "des");
  check(kAead, [](const CipherSuiteInfo& s) { return is_aead(s); }, "aead");
  check(kExport, [](const CipherSuiteInfo& s) { return is_export(s); },
        "export");
  check(kAnon, [](const CipherSuiteInfo& s) { return is_anonymous(s); },
        "anon");
  check(kNull, [](const CipherSuiteInfo& s) { return is_null_cipher(s); },
        "null");
  return true;
}();

}  // namespace

std::span<const std::uint16_t> cbc_pool() { return kCbc; }
std::span<const std::uint16_t> rc4_pool() { return kRc4; }
std::span<const std::uint16_t> tdes_pool() { return k3Des; }
std::span<const std::uint16_t> des_pool() { return kDes; }
std::span<const std::uint16_t> aead_pool() { return kAead; }
std::span<const std::uint16_t> aead_pool_no_chacha() { return kAeadNoChaCha; }
std::span<const std::uint16_t> tls13_pool() { return kTls13; }
std::span<const std::uint16_t> export_pool() { return kExport; }
std::span<const std::uint16_t> anon_pool() { return kAnon; }
std::span<const std::uint16_t> null_pool() { return kNull; }

std::vector<std::uint16_t> compose(
    std::initializer_list<std::span<const std::uint16_t>> parts) {
  std::vector<std::uint16_t> out;
  std::unordered_set<std::uint16_t> seen;
  for (const auto part : parts) {
    for (const auto id : part) {
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return out;
}

std::span<const std::uint16_t> prefix(std::span<const std::uint16_t> pool,
                                      std::size_t n) {
  if (n > pool.size()) {
    throw std::out_of_range("pool prefix larger than pool");
  }
  return pool.subspan(0, n);
}

}  // namespace tls::clients
