// Preference-ordered cipher-suite pools used to compose client
// configurations. Browser tables in the paper (Tables 3-5) report *counts*
// of CBC/RC4/3DES suites per version; catalogs take prefixes of these pools
// so that, e.g., "Chrome 31 reduced CBC to 10" maps to cbc_pool()[0..10).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tls::clients {

/// 29 CBC suites, modern-preference order (ECDHE first, exotic last).
std::span<const std::uint16_t> cbc_pool();
/// 7 RC4 suites (ECDHE first).
std::span<const std::uint16_t> rc4_pool();
/// 8 3DES suites.
std::span<const std::uint16_t> tdes_pool();
/// Single-DES suites (legacy SChannel / OpenSSL 0.9.x era).
std::span<const std::uint16_t> des_pool();
/// AEAD suites in modern browser order (ECDHE-GCM, ChaCha, RSA-GCM).
std::span<const std::uint16_t> aead_pool();
/// AEAD without ChaCha (pre-2015 clients).
std::span<const std::uint16_t> aead_pool_no_chacha();
/// TLS 1.3 suites.
std::span<const std::uint16_t> tls13_pool();
/// Export-grade suites (OpenSSL 0.9.x-era defaults).
std::span<const std::uint16_t> export_pool();
/// Anonymous (DH_anon/ECDH_anon) suites.
std::span<const std::uint16_t> anon_pool();
/// NULL-cipher suites.
std::span<const std::uint16_t> null_pool();

/// Concatenates spans/prefixes into one list (deduplicating, keeping the
/// first occurrence).
std::vector<std::uint16_t> compose(
    std::initializer_list<std::span<const std::uint16_t>> parts);

/// First n entries of a pool.
std::span<const std::uint16_t> prefix(std::span<const std::uint16_t> pool,
                                      std::size_t n);

}  // namespace tls::clients
