#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "core/study.hpp"
#include "notary/observe_cache.hpp"
#include "wire/buffer.hpp"

namespace tls::study {

namespace fs = std::filesystem;
using tls::wire::ByteReader;
using tls::wire::ByteWriter;
using tls::wire::ParseError;
using tls::wire::ParseErrorCode;

namespace {

constexpr std::uint32_t kFrameMagic = 0x544c534a;     // "TLSJ"
constexpr std::uint32_t kManifestMagic = 0x544c534d;  // "TLSM"

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  return tls::notary::ObserveCache::fnv1a64(bytes);
}

void write_double(ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double read_double(ByteReader& r) { return std::bit_cast<double>(r.u64()); }

/// Reads a whole file; returns false on any IO error (caller treats the
/// frame as unreadable, i.e. corrupt).
bool slurp_file(const fs::path& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return !in.bad();
}

/// EINTR/short-write-hardened temp+fsync+rename recipe (core/journal.cpp);
/// the journal's IO taxonomy parameter is unused on this legacy path.
bool write_file_atomic(const fs::path& path,
                       std::span<const std::uint8_t> bytes) {
  return write_file_durable(path.string(), bytes);
}

char frame_prefix(FrameKind kind) {
  return kind == FrameKind::kPassiveShard ? 'p' : 's';
}

/// `p_000123_0004.frame` — lexicographic directory order IS (kind, month,
/// slot) plan order, with all passive frames sorting before scan frames.
std::string frame_file_name(FrameKind kind, std::uint32_t month_index,
                            std::uint32_t slot) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c_%06u_%04u.frame", frame_prefix(kind),
                month_index, slot);
  return buf;
}

}  // namespace

std::uint64_t options_digest(const StudyOptions& options) {
  // Canonical encoding of every byte-affecting option. Field order is part
  // of the format: changing it (or what is included) orphans old journals,
  // which is the safe failure mode. Deliberately absent: the pure
  // performance toggles (observe_cache_entries, fast_observe, gen_cache,
  // telemetry, the journal knobs) — none of them changes an exported byte,
  // so a run may resume with any of them flipped.
  ByteWriter w;
  w.u64(options.seed);
  w.u64(options.connections_per_month);
  w.u32(static_cast<std::uint32_t>(options.window.begin_month.index()));
  w.u32(static_cast<std::uint32_t>(options.window.end_month.index()));
  w.u8(options.full_catalog ? 1 : 0);
  // Capture-plane fault rates only: the frame_* rates of this config are
  // never rolled by the passive pipeline.
  for (const double rate :
       {options.faults.truncate, options.faults.bit_flip,
        options.faults.length_corrupt, options.faults.trailing_garbage,
        options.faults.record_split, options.faults.record_coalesce,
        options.faults.drop_flight, options.faults.one_sided}) {
    write_double(w, rate);
  }
  w.u64(options.fault_seed);
  const auto& net = options.scan_policy.network;
  for (const double v : {net.unreachable, net.timeout, net.reset,
                         net.flaky_hosts, net.flaky_penalty}) {
    write_double(w, v);
  }
  const auto& retry = options.scan_policy.retry;
  w.u32(retry.max_attempts);
  for (const double v : {retry.attempt_timeout_ms, retry.base_backoff_ms,
                         retry.backoff_factor, retry.jitter,
                         retry.total_budget_ms}) {
    write_double(w, v);
  }
  w.u64(options.scan_policy.seed);
  w.u64(options.shards_per_month);
  return fnv1a64(w.data());
}

CheckpointManifest make_manifest(const StudyOptions& options,
                                 std::size_t scan_segments) {
  CheckpointManifest m;
  m.options_digest = options_digest(options);
  m.seed = options.seed;
  m.window_begin =
      static_cast<std::uint32_t>(options.window.begin_month.index());
  m.window_end = static_cast<std::uint32_t>(options.window.end_month.index());
  m.shards_per_month = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, options.shards_per_month));
  m.connections_per_month = options.connections_per_month;
  const auto scan = tls::core::censys_window();
  m.scan_begin = static_cast<std::uint32_t>(scan.begin_month.index());
  m.scan_end = static_cast<std::uint32_t>(scan.end_month.index());
  m.scan_segments = static_cast<std::uint32_t>(scan_segments);
  return m;
}

std::vector<std::uint8_t> encode_manifest(const CheckpointManifest& manifest) {
  ByteWriter w;
  w.u32(kManifestMagic);
  w.u32(manifest.format_version);
  w.u64(manifest.options_digest);
  w.u64(manifest.seed);
  w.u32(manifest.window_begin);
  w.u32(manifest.window_end);
  w.u32(manifest.shards_per_month);
  w.u64(manifest.connections_per_month);
  w.u32(manifest.scan_begin);
  w.u32(manifest.scan_end);
  w.u32(manifest.scan_segments);
  w.u64(fnv1a64(w.data()));
  return w.take();
}

CheckpointManifest decode_manifest(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) {
    throw ParseError(ParseErrorCode::kTruncated, "manifest too short");
  }
  const std::uint64_t expected = fnv1a64(bytes.first(bytes.size() - 8));
  ByteReader r(bytes);
  if (r.u32() != kManifestMagic) {
    throw ParseError(ParseErrorCode::kBadValue, "manifest magic");
  }
  CheckpointManifest m;
  m.format_version = r.u32();
  if (m.format_version != kCheckpointFormatVersion) {
    throw ParseError(ParseErrorCode::kUnsupported,
                     "manifest format version " +
                         std::to_string(m.format_version));
  }
  m.options_digest = r.u64();
  m.seed = r.u64();
  m.window_begin = r.u32();
  m.window_end = r.u32();
  m.shards_per_month = r.u32();
  m.connections_per_month = r.u64();
  m.scan_begin = r.u32();
  m.scan_end = r.u32();
  m.scan_segments = r.u32();
  if (r.u64() != expected) {
    throw ParseError(ParseErrorCode::kBadValue, "manifest checksum");
  }
  r.expect_empty("checkpoint manifest");
  return m;
}

std::vector<std::uint8_t> encode_frame(std::uint64_t options_digest,
                                       const FrameHeader& header,
                                       std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(kCheckpointFormatVersion);
  w.u64(options_digest);
  w.u8(static_cast<std::uint8_t>(header.kind));
  w.u32(header.month_index);
  w.u32(header.slot);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  w.u64(fnv1a64(w.data()));
  return w.take();
}

DecodedFrame decode_frame(std::span<const std::uint8_t> bytes,
                          std::uint32_t max_payload) {
  if (bytes.size() < 8) {
    throw ParseError(ParseErrorCode::kTruncated, "frame too short");
  }
  const std::uint64_t expected = fnv1a64(bytes.first(bytes.size() - 8));
  ByteReader r(bytes);
  if (r.u32() != kFrameMagic) {
    throw ParseError(ParseErrorCode::kBadValue, "frame magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kCheckpointFormatVersion) {
    throw ParseError(ParseErrorCode::kUnsupported,
                     "frame format version " + std::to_string(version));
  }
  DecodedFrame frame;
  frame.options_digest = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(FrameKind::kPassiveShard) &&
      kind != static_cast<std::uint8_t>(FrameKind::kScanSegment)) {
    throw ParseError(ParseErrorCode::kBadValue,
                     "frame kind " + std::to_string(kind));
  }
  frame.header.kind = static_cast<FrameKind>(kind);
  frame.header.month_index = r.u32();
  frame.header.slot = r.u32();
  const std::uint32_t payload_len = r.u32();
  if (payload_len > max_payload) {
    // Checked against the declared length BEFORE r.bytes() materializes a
    // view and before the payload vector allocates: a hostile 4 GiB length
    // field costs one comparison, not an allocation.
    throw ParseError(ParseErrorCode::kBadLength,
                     "frame payload length " + std::to_string(payload_len));
  }
  const auto payload = r.bytes(payload_len);
  frame.payload.assign(payload.begin(), payload.end());
  if (r.u64() != expected) {
    throw ParseError(ParseErrorCode::kBadValue, "frame checksum");
  }
  r.expect_empty("checkpoint frame");
  return frame;
}

std::vector<std::uint8_t> encode_segment_probe(
    const tls::scan::SegmentProbe& probe) {
  ByteWriter w;
  w.u8(probe.included ? 1 : 0);
  w.u8(probe.reached ? 1 : 0);
  w.u8(probe.abandoned ? 1 : 0);
  write_double(w, probe.weight);
  w.u64(probe.attempts);
  w.u64(probe.retries);
  for (const double v :
       {probe.ssl3, probe.expo, probe.rc4, probe.cbc, probe.aead, probe.tdes,
        probe.rc4_support, probe.rc4_only, probe.heartbeat, probe.heartbleed,
        probe.tls13}) {
    write_double(w, v);
  }
  return w.take();
}

tls::scan::SegmentProbe decode_segment_probe(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  tls::scan::SegmentProbe probe;
  const auto read_flag = [&r](const char* what) {
    const std::uint8_t v = r.u8();
    if (v > 1) {
      throw ParseError(ParseErrorCode::kBadValue,
                       std::string("segment probe ") + what);
    }
    return v == 1;
  };
  probe.included = read_flag("included");
  probe.reached = read_flag("reached");
  probe.abandoned = read_flag("abandoned");
  probe.weight = read_double(r);
  probe.attempts = r.u64();
  probe.retries = r.u64();
  for (double* v :
       {&probe.ssl3, &probe.expo, &probe.rc4, &probe.cbc, &probe.aead,
        &probe.tdes, &probe.rc4_support, &probe.rc4_only, &probe.heartbeat,
        &probe.heartbleed, &probe.tls13}) {
    *v = read_double(r);
  }
  r.expect_empty("segment probe");
  return probe;
}

RunJournal::RunJournal(Config config) : config_(std::move(config)) {
  const fs::path dir(config_.directory);
  frames_dir_ = (dir / "frames").string();
  quarantine_dir_ = (dir / "quarantine").string();
  std::error_code ec;
  fs::create_directories(frames_dir_, ec);
  if (config_.backend != nullptr) {
    backend_ = config_.backend;
  } else {
    owned_backend_ = std::make_unique<PosixJournalBackend>(config_.directory);
    backend_ = owned_backend_.get();
  }
  replay();
  if (config_.mode == JournalMode::kGrouped) {
    GroupCommitWriter::Config wc;
    wc.group_frames = std::max<std::size_t>(1, config_.group_frames);
    wc.group_ms = config_.group_ms;
    wc.options_digest = config_.manifest.options_digest;
    wc.first_segment_id = next_segment_id_;
    // Degraded mode writes straight into the legacy frame store, which
    // replay always reads — so a fallback frame resumes like any other.
    wc.fallback_dir = frames_dir_;
    wc.kill_after_frames = config_.kill_after_frames;
    wc.faults_mutex = &mutex_;
    writer_ = std::make_unique<GroupCommitWriter>(backend_, wc,
                                                  config_.frame_faults);
  }
}

RunJournal::~RunJournal() {
  if (writer_ != nullptr) writer_->stop();
}

void RunJournal::replay() {
  const fs::path dir(config_.directory);
  const fs::path manifest_path = dir / "MANIFEST";
  const std::vector<std::uint8_t> manifest_bytes = encode_manifest(
      config_.manifest);

  bool accept_frames = false;
  if (config_.resume && fs::exists(manifest_path)) {
    std::vector<std::uint8_t> on_disk;
    if (slurp_file(manifest_path, on_disk)) {
      try {
        accept_frames = decode_manifest(on_disk) == config_.manifest;
      } catch (const ParseError&) {
        accept_frames = false;
      }
    }
    report_.resumed = accept_frames;
  }

  // Directory listing in sorted (== plan) order, .tmp leftovers included.
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(frames_dir_, ec)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());

  if (!config_.resume) {
    // Cold start: wipe whatever is there — legacy frames, segments, and
    // the index — and lay down a fresh manifest.
    for (const auto& name : names) {
      fs::remove(fs::path(frames_dir_) / name, ec);
    }
    for (const auto id : backend_->list_segments()) {
      backend_->remove_segment(id);
    }
    backend_->clear_index();
    write_file_atomic(manifest_path, manifest_bytes);
    return;
  }

  for (const auto& name : names) {
    const fs::path path = fs::path(frames_dir_) / name;
    if (name.size() >= 4 && name.ends_with(".tmp")) {
      // A temp file survived: the writer died mid-frame.
      ++report_.frames_torn;
      quarantine_file(name);
      continue;
    }
    if (!accept_frames) {
      // Foreign or absent manifest: every frame describes different work.
      ++report_.frames_mismatched;
      quarantine_file(name);
      continue;
    }
    std::vector<std::uint8_t> bytes;
    if (!slurp_file(path, bytes)) {
      ++report_.frames_corrupt;
      quarantine_file(name);
      continue;
    }
    accept_frame(name, std::move(bytes), true);
  }

  // Then the segment store: frames recovered from committed groups run
  // through the same acceptance pipeline, so a journal written in either
  // mode resumes under the other.
  replay_segments(accept_frames);

  // Re-stamp the manifest: on a clean resume it is byte-identical; after a
  // manifest mismatch this adopts the journal for the current options.
  if (!accept_frames) write_file_atomic(manifest_path, manifest_bytes);
}

void RunJournal::accept_frame(const std::string& name,
                              std::vector<std::uint8_t>&& bytes,
                              bool accept_any) {
  const bool from_file = !name.empty();
  const auto reject = [&](const char* reason) {
    if (from_file) {
      quarantine_file(name);
    } else {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "seg_frame_%s.frame", reason);
      quarantine_bytes(buf, bytes);
    }
  };
  if (!accept_any) {
    ++report_.frames_mismatched;
    reject("mismatched");
    return;
  }
  DecodedFrame frame;
  try {
    frame = decode_frame(bytes, config_.max_frame_bytes);
  } catch (const ParseError&) {
    ++report_.frames_corrupt;
    reject("corrupt");
    return;
  }
  if (frame.options_digest != config_.manifest.options_digest) {
    ++report_.frames_mismatched;
    reject("mismatched");
    return;
  }
  const FrameKey key{static_cast<std::uint8_t>(frame.header.kind),
                     frame.header.month_index, frame.header.slot};
  auto [it, inserted] = frames_.try_emplace(key);
  if (inserted || !it->second.usable) {
    // First sighting — or a duplicate of a frame we already threw out;
    // an independently-written copy may still verify.
    if (!inserted) ++report_.frames_duplicate;
    it->second.payload = std::move(frame.payload);
    it->second.file_name = name;  // empty for segment-sourced frames
    it->second.usable = true;
    ++report_.frames_replayed;
  } else {
    // Same task twice (e.g. an injected duplicate append). The first
    // verified copy wins; the extra copy is quarantined.
    ++report_.frames_duplicate;
    reject("duplicate");
  }
}

void RunJournal::replay_segments(bool accept_frames) {
  std::vector<std::uint8_t> index_bytes;
  std::vector<IndexEntry> index;
  if (backend_->read_index(index_bytes)) {
    index = decode_index(index_bytes);
  }

  std::vector<IndexEntry> rebuilt;
  const auto ids = backend_->list_segments();
  for (const auto id : ids) {
    next_segment_id_ = std::max(next_segment_id_, id + 1);
    std::vector<std::uint8_t> bytes;
    if (!backend_->read_segment(id, bytes)) {
      // Unreadable segment: everything it held is recomputed.
      ++report_.groups_torn;
      continue;
    }
    SegmentScan scan = scan_segment(bytes);
    report_.groups_committed += scan.groups;
    for (auto& frame : scan.frames) {
      accept_frame({}, std::move(frame), accept_frames);
    }
    if (scan.torn_bytes > 0) {
      // The crash rule in action: an un-fsynced (or damaged) tail is as
      // if never written. Quarantine the bytes for the post-mortem, then
      // scan-truncate the segment to the last valid group boundary.
      ++report_.groups_torn;
      report_.torn_bytes += scan.torn_bytes;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "seg_%06u_tail.torn", id);
      quarantine_bytes(
          buf, std::span<const std::uint8_t>(bytes).subspan(
                   static_cast<std::size_t>(scan.valid_bytes)));
      backend_->truncate_segment(id, scan.valid_bytes);
    }
    // Cross-check INDEX entries against the scan: the index is a hint and
    // a stale pointer (wrong offset/length, or past the durable tail) is
    // counted and ignored — the scan above is the ground truth.
    for (const auto& entry : index) {
      if (entry.segment != id) continue;
      const bool matches = std::any_of(
          scan.boundaries.begin(), scan.boundaries.end(),
          [&](const SegmentScan::GroupSpan& g) {
            return g.offset == entry.offset && g.length == entry.length;
          });
      if (!matches) ++report_.index_stale;
    }
    for (const auto& g : scan.boundaries) {
      rebuilt.push_back(IndexEntry{id, g.offset, g.length});
    }
  }
  // Entries naming segments that no longer exist are stale too.
  for (const auto& entry : index) {
    if (std::find(ids.begin(), ids.end(), entry.segment) == ids.end()) {
      ++report_.index_stale;
    }
  }
  // Rebuild the index to match post-truncation reality.
  if (!ids.empty() || !index.empty()) {
    backend_->clear_index();
    for (const auto& entry : rebuilt) {
      backend_->append_index(encode_index_entry(entry));
    }
  }
}

const std::vector<std::uint8_t>* RunJournal::replayed(
    FrameKind kind, std::uint32_t month_index, std::uint32_t slot) const {
  const auto it = frames_.find(
      FrameKey{static_cast<std::uint8_t>(kind), month_index, slot});
  if (it == frames_.end() || !it->second.usable) return nullptr;
  return &it->second.payload;
}

void RunJournal::write_frame_file(const std::string& name,
                                  std::span<const std::uint8_t> bytes) {
  write_file_atomic(fs::path(frames_dir_) / name, bytes);
}

void RunJournal::append(FrameKind kind, std::uint32_t month_index,
                        std::uint32_t slot,
                        std::span<const std::uint8_t> payload) {
  FrameHeader header{kind, month_index, slot};
  std::vector<std::uint8_t> bytes =
      encode_frame(config_.manifest.options_digest, header, payload);
  const std::string name = frame_file_name(kind, month_index, slot);

  std::lock_guard<std::mutex> lock(mutex_);
  bool duplicate = false;
  if (config_.frame_faults != nullptr) {
    const auto fault = config_.frame_faults->corrupt_frame(bytes);
    duplicate = fault == tls::faults::FaultKind::kFrameDuplicate;
  }
  if (writer_ != nullptr) {
    // Grouped mode: hand the frame to the group-commit writer and return;
    // durability arrives with the frame's group (flush() to wait for it).
    // The crash-matrix kill seam lives in the writer, after the fsync.
    ++appended_;
    if (duplicate) {
      // A replayed append: the same frame enters the journal twice; replay
      // dedupes on (kind, month, slot).
      writer_->enqueue(name, std::vector<std::uint8_t>(bytes));
    }
    writer_->enqueue(name, std::move(bytes));
    fire_term_seam();
    return;
  }
  write_frame_file(name, bytes);
  if (duplicate) {
    // A replayed append: the same frame lands twice under sibling names.
    write_frame_file(name + ".dup.frame", bytes);
  }
  ++appended_;
  if (config_.kill_after_frames != 0 &&
      appended_ >= config_.kill_after_frames) {
    // Crash-matrix seam: die exactly here, after N durable frames.
    std::raise(SIGKILL);
  }
  fire_term_seam();
}

void RunJournal::fire_term_seam() {
  // Signal-drain seam: fires exactly once, right after the Nth append was
  // handed to the journal (durable or still lingering in an uncommitted
  // group). ::kill, not std::raise — the signal must be deliverable to the
  // host's sigwait watcher thread, which raise() on a signal-blocked
  // worker thread would bypass (thread-directed pending, never consumed).
  if (config_.term_after_frames != 0 &&
      appended_ == config_.term_after_frames) {
    ::kill(::getpid(), SIGTERM);
  }
}

void RunJournal::invalidate(FrameKind kind, std::uint32_t month_index,
                            std::uint32_t slot) {
  const auto it = frames_.find(
      FrameKey{static_cast<std::uint8_t>(kind), month_index, slot});
  if (it == frames_.end() || !it->second.usable) return;
  it->second.usable = false;
  std::lock_guard<std::mutex> lock(mutex_);
  --report_.frames_replayed;
  ++report_.frames_corrupt;
  if (it->second.file_name.empty()) {
    // Segment-sourced frame: no file to move, quarantine the payload.
    quarantine_bytes("seg_frame_invalidated.bin", it->second.payload);
  } else {
    quarantine_file(it->second.file_name);
  }
}

void RunJournal::note_task(bool replayed_from_journal) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (replayed_from_journal) {
    ++report_.tasks_skipped;
  } else {
    ++report_.tasks_recomputed;
  }
}

void RunJournal::quarantine_file(const std::string& name) {
  std::error_code ec;
  fs::create_directories(quarantine_dir_, ec);
  char seq[16];
  std::snprintf(seq, sizeof(seq), "q%04zu_", report_.quarantined.size());
  const fs::path from = fs::path(frames_dir_) / name;
  const fs::path to = fs::path(quarantine_dir_) / (seq + name);
  fs::rename(from, to, ec);
  if (ec) {
    // Cross-device or racing remove: fall back to copy+delete, and if even
    // that fails just remove the bad frame — never abort a recovery.
    fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
    fs::remove(from, ec);
  }
  report_.quarantined.push_back(to.string());
}

void RunJournal::quarantine_bytes(const std::string& name,
                                  std::span<const std::uint8_t> bytes) {
  std::error_code ec;
  fs::create_directories(quarantine_dir_, ec);
  char seq[16];
  std::snprintf(seq, sizeof(seq), "q%04zu_", report_.quarantined.size());
  const fs::path to = fs::path(quarantine_dir_) / (seq + name);
  // Best-effort, non-durable: the quarantine copy is forensic material,
  // never replayed, so a failed write must not fail the recovery.
  std::ofstream out(to, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  report_.quarantined.push_back(to.string());
}

void RunJournal::flush() {
  if (writer_ != nullptr) writer_->flush();
}

void RunJournal::collect_metrics(tls::telemetry::MetricsRegistry& out) const {
  if (writer_ != nullptr) writer_->collect_metrics(out);
  JournalErrorTaxonomy errors = backend_->errors();
  if (writer_ != nullptr) errors.merge(writer_->fallback_errors());
  for (std::size_t s = 0; s < kJournalStageCount; ++s) {
    for (std::size_t c = 0; c < kJournalErrorClassCount; ++c) {
      const auto stage = static_cast<JournalStage>(s);
      const auto cls = static_cast<JournalErrorClass>(c);
      const std::uint64_t n = errors.count(stage, cls);
      if (n == 0) continue;
      const std::string labels =
          "stage=\"" + std::string(journal_stage_name(stage)) +
          "\",class=\"" + std::string(journal_error_class_name(cls)) + "\"";
      out.counter("tls_repro_journal_io_errors_total", labels,
                  "journal IO incidents by stage and errno class", true)
          .add(n);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (report_.torn_bytes != 0) {
    out.counter("tls_repro_journal_torn_bytes_total", {},
                "bytes scan-truncated off torn segment tails on replay",
                true)
        .add(report_.torn_bytes);
  }
  if (report_.groups_torn != 0) {
    out.counter("tls_repro_journal_torn_groups_total", {},
                "segments found with a torn or damaged tail on replay", true)
        .add(report_.groups_torn);
  }
}

tls::analysis::RecoveryReport RunJournal::snapshot_report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  tls::analysis::RecoveryReport report = report_;
  if (writer_ != nullptr) {
    const auto stats = writer_->stats();
    report.groups_committed += stats.groups;
    report.fallback_frames = stats.fallback_frames;
    report.degraded_per_frame = stats.degraded;
  }
  JournalErrorTaxonomy errors = backend_->errors();
  if (writer_ != nullptr) errors.merge(writer_->fallback_errors());
  for (std::size_t s = 0; s < kJournalStageCount; ++s) {
    report.io_retries += errors.count(static_cast<JournalStage>(s),
                                      JournalErrorClass::kRetried);
  }
  report.io_errors = errors.failures();
  return report;
}

}  // namespace tls::study
