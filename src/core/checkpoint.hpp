// Crash-safe checkpoint journal for study runs. Each completed (month,
// shard) passive task and each (month, segment) scan probe is persisted as
// one checksummed frame; a manifest pins the run's identity (options
// digest, seed, shard plan, format version). On restart the journal
// replays: frames that verify are absorbed in plan order and their tasks
// skipped, while torn, corrupt, mismatched, or duplicate frames are
// quarantined to a sidecar directory and their tasks deterministically
// recomputed — a half-written journal can degrade a resume back toward a
// cold run, but can never corrupt a result or crash the study.
//
// Two durability modes share the frame format:
//
//   kPerFrame (legacy): one frame per file — write `<name>.tmp`, fsync,
//   atomically rename to `<name>.frame`, fsync the directory. A power cut
//   leaves either no file or a `.tmp` (counted as torn); a visible
//   `.frame` is complete bar in-place media corruption, which the
//   per-frame FNV-1a-64 checksum catches on replay.
//
//   kGrouped (default for studies): completed frames are handed to a
//   group-commit writer (core/journal.hpp) that batches them into
//   append-only segment files and pays ONE fsync per group. An un-fsynced
//   group is as if never written: replay scans each segment, truncates at
//   the last checksummed group boundary, quarantines the torn tail and
//   recomputes the affected tasks. Replay always reads BOTH stores, so a
//   journal written in either mode (or by the degraded per-frame fallback)
//   resumes under the other.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/render.hpp"
#include "core/journal.hpp"
#include "faults/injector.hpp"
#include "scan/scanner.hpp"
#include "telemetry/metrics.hpp"
#include "tlscore/dates.hpp"

namespace tls::study {

struct StudyOptions;

/// Journal wire-format version; manifests and frames carrying any other
/// value are quarantined (kUnsupported), never migrated in place.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Default ceiling on a frame's declared payload length. One monitor
/// snapshot for a tiny shard is a few KiB; a full-catalog shard a few
/// hundred KiB. Anything beyond this is a corrupt length field, not a
/// plausible payload — decode_frame rejects it BEFORE allocating, so a
/// hostile on-disk length can cost at most one bounds check, never an
/// allocation-driven OOM.
inline constexpr std::uint32_t kDefaultMaxFramePayload = 64u << 20;

/// How completed frames reach durable storage (see file header).
enum class JournalMode : std::uint8_t {
  kPerFrame = 0,  // one durable file per frame (legacy)
  kGrouped = 1,   // segmented group-commit journal, one fsync per group
};

/// What a frame's payload holds.
enum class FrameKind : std::uint8_t {
  kPassiveShard = 1,  // encode_monitor_state of one (month, shard) monitor
  kScanSegment = 2,   // encode_segment_probe of one (month, segment) probe
};

/// Identity of one frame inside a run: which task's result it carries.
struct FrameHeader {
  FrameKind kind = FrameKind::kPassiveShard;
  std::uint32_t month_index = 0;  // tls::core::Month::index()
  std::uint32_t slot = 0;         // shard (passive) or segment (scan)
};

/// Everything that pins a journal to one specific run. A manifest whose
/// digest, seed, or plan differs from the current options invalidates every
/// frame (they describe different work).
struct CheckpointManifest {
  std::uint32_t format_version = kCheckpointFormatVersion;
  std::uint64_t options_digest = 0;
  std::uint64_t seed = 0;
  std::uint32_t window_begin = 0;  // month indices, inclusive
  std::uint32_t window_end = 0;
  std::uint32_t shards_per_month = 0;
  std::uint64_t connections_per_month = 0;
  std::uint32_t scan_begin = 0;
  std::uint32_t scan_end = 0;
  std::uint32_t scan_segments = 0;

  friend bool operator==(const CheckpointManifest&,
                         const CheckpointManifest&) = default;
};

/// FNV-1a-64 digest over the byte-affecting StudyOptions fields only
/// (seed, traffic volume, window, catalog, fault rates/seeds, scan policy,
/// shard plan). Checkpoint/thread/cache knobs are excluded: they never
/// change an exported byte, so flipping them must not orphan a journal.
[[nodiscard]] std::uint64_t options_digest(const StudyOptions& options);

/// Builds the manifest describing a run of `options` over a scan grid with
/// `scan_segments` segments per month.
[[nodiscard]] CheckpointManifest make_manifest(const StudyOptions& options,
                                               std::size_t scan_segments);

[[nodiscard]] std::vector<std::uint8_t> encode_manifest(
    const CheckpointManifest& manifest);
/// Throws tls::wire::ParseError on malformed bytes or version mismatch.
[[nodiscard]] CheckpointManifest decode_manifest(
    std::span<const std::uint8_t> bytes);

/// Wraps a task payload into a checksummed frame:
///   magic u32, format u32, options_digest u64, kind u8, month u32,
///   slot u32, payload_len u32, payload, fnv1a64-of-all-preceding u64.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint64_t options_digest, const FrameHeader& header,
    std::span<const std::uint8_t> payload);

struct DecodedFrame {
  FrameHeader header;
  std::uint64_t options_digest = 0;
  std::vector<std::uint8_t> payload;
};

/// Verifies and unwraps one frame. Throws tls::wire::ParseError on bad
/// magic/kind/checksum (kBadValue), foreign format version (kUnsupported),
/// truncation (kTruncated), trailing bytes (kTrailingBytes), or a declared
/// payload length above `max_payload` (kBadLength, checked before any
/// payload allocation). Never reads out of bounds regardless of input.
[[nodiscard]] DecodedFrame decode_frame(
    std::span<const std::uint8_t> bytes,
    std::uint32_t max_payload = kDefaultMaxFramePayload);

/// Scan-probe payload codec; doubles are bit-cast so replayed probes fold
/// to bit-identical snapshots.
[[nodiscard]] std::vector<std::uint8_t> encode_segment_probe(
    const tls::scan::SegmentProbe& probe);
[[nodiscard]] tls::scan::SegmentProbe decode_segment_probe(
    std::span<const std::uint8_t> bytes);

/// The on-disk run journal. Construction replays whatever the directory
/// holds (see Config::resume); append() persists one completed task.
/// Thread-safety: append() may be called concurrently from pool workers;
/// replayed() reads are lock-free because the replay map is immutable
/// after construction (invalidate() moves the file and books the stats but
/// never erases a map entry — callers consume each key once).
class RunJournal {
 public:
  struct Config {
    std::string directory;
    /// false: wipe any existing journal and start cold (checkpointing on,
    /// resume off). true: replay what verifies, quarantine what doesn't.
    bool resume = false;
    CheckpointManifest manifest;
    /// Optional chaos tap for the frame path (frame_* rates); applied to
    /// every appended frame's bytes before they hit the disk.
    tls::faults::FaultInjector* frame_faults = nullptr;
    /// Test seam: raise SIGKILL immediately after the Nth successful
    /// append (1-based; in grouped mode, after the group containing the
    /// Nth frame becomes durable). 0 disables. This is how the crash
    /// matrix murders the process at deterministic journal offsets.
    std::size_t kill_after_frames = 0;
    /// Test seam: send the process SIGTERM (::kill, not raise — the
    /// signal must route through whatever sigwait watcher the host
    /// installed) right after the Nth append is handed to the journal
    /// (1-based; 0 disables). Unlike kill_after_frames the frame need
    /// not be durable yet: this is how the signal-drain lane proves a
    /// graceful shutdown flushes the still-lingering group.
    std::size_t term_after_frames = 0;
    /// Ceiling on a replayed frame's declared payload length; frames
    /// announcing more are booked corrupt and quarantined without ever
    /// allocating the claimed size (defends replay against hostile or
    /// bit-rotted length fields).
    std::uint32_t max_frame_bytes = kDefaultMaxFramePayload;
    /// Durability mode. Defaults to the legacy per-frame store so direct
    /// constructions stay byte-compatible; studies opt into kGrouped via
    /// StudyOptions::journal_mode.
    JournalMode mode = JournalMode::kPerFrame;
    /// Grouped-mode knobs: flush when this many frames are pending, or
    /// when the oldest pending frame is this old — whichever first.
    std::size_t group_frames = 64;
    std::uint64_t group_ms = 50;
    /// Optional backend override (tests inject MemoryJournalBackend);
    /// null means a PosixJournalBackend over `directory`.
    JournalBackend* backend = nullptr;
  };

  explicit RunJournal(Config config);
  ~RunJournal();

  /// The verified payload for a task, or nullptr when the journal has
  /// nothing usable (not present, torn, corrupt, mismatched). Lock-free.
  [[nodiscard]] const std::vector<std::uint8_t>* replayed(
      FrameKind kind, std::uint32_t month_index, std::uint32_t slot) const;

  /// Persists one completed task's payload (durable before return).
  /// Thread-safe. IO failures are counted, never thrown: checkpointing is
  /// an aid, losing a frame only costs recompute time on the next run.
  void append(FrameKind kind, std::uint32_t month_index, std::uint32_t slot,
              std::span<const std::uint8_t> payload);

  /// Discards a replayed frame whose payload failed downstream decoding:
  /// quarantines the file and books it corrupt. The task is then
  /// recomputed by the caller.
  void invalidate(FrameKind kind, std::uint32_t month_index,
                  std::uint32_t slot);

  /// Books one task outcome for the report (true = served from journal).
  void note_task(bool replayed_from_journal);

  /// Blocks until every frame appended so far is durable (grouped mode;
  /// a no-op per-frame, where append() is already durable-before-return).
  /// Call at phase boundaries before trusting the journal's contents.
  void flush();

  /// Folds the journal's telemetry (writer histograms/counters, backend
  /// IO-error taxonomy) into `out`. All entries are timing=true — journal
  /// health is wall-clock/IO-dependent, never part of exported bytes.
  void collect_metrics(tls::telemetry::MetricsRegistry& out) const;

  [[nodiscard]] tls::analysis::RecoveryReport snapshot_report() const;

  [[nodiscard]] const std::string& directory() const {
    return config_.directory;
  }

 private:
  struct ReplayedFrame {
    std::vector<std::uint8_t> payload;
    std::string file_name;
    bool usable = false;  // false after invalidate()
  };
  using FrameKey = std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>;

  void replay();
  /// Fires the term_after_frames signal-drain seam (no-op when disabled).
  /// Called with mutex_ held, right after appended_ is bumped.
  void fire_term_seam();
  /// Replays one candidate frame (from a file or a scanned segment group)
  /// through the acceptance pipeline: decode, digest check, dedupe.
  /// `name` is the frame's legacy file name when it came from a file
  /// (quarantined by rename), empty for segment-sourced frames
  /// (quarantined by writing the bytes out).
  void accept_frame(const std::string& name,
                    std::vector<std::uint8_t>&& bytes, bool accept_any);
  /// Scans every segment: frames of checksummed groups feed
  /// accept_frame(); torn tails are quarantined and scan-truncated; INDEX
  /// entries are cross-checked against the scan and stale ones counted.
  void replay_segments(bool accept_frames);
  /// Moves `frames/<name>` into the quarantine sidecar, recording the
  /// destination path in the report.
  void quarantine_file(const std::string& name);
  /// Quarantines raw bytes (segment-sourced rejects and torn tails have
  /// no file of their own to move).
  void quarantine_bytes(const std::string& name,
                        std::span<const std::uint8_t> bytes);
  void write_frame_file(const std::string& name,
                        std::span<const std::uint8_t> bytes);

  Config config_;
  std::string frames_dir_;
  std::string quarantine_dir_;
  std::unique_ptr<JournalBackend> owned_backend_;
  JournalBackend* backend_ = nullptr;
  std::unique_ptr<GroupCommitWriter> writer_;
  std::uint32_t next_segment_id_ = 1;  // first id the writer may use
  // Immutable after replay() returns — the lock-free read contract.
  std::map<FrameKey, ReplayedFrame> frames_;
  mutable std::mutex mutex_;  // guards report_ and append-side state
  tls::analysis::RecoveryReport report_;
  std::size_t appended_ = 0;
};

}  // namespace tls::study
