#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "faults/injector.hpp"
#include "notary/observe_cache.hpp"
#include "wire/buffer.hpp"

namespace tls::study {

namespace fs = std::filesystem;
using tls::wire::ByteReader;
using tls::wire::ByteWriter;
using tls::wire::ParseError;
using tls::wire::ParseErrorCode;

namespace {

constexpr std::uint32_t kGroupMagic = 0x544c5347;  // "TLSG"
constexpr std::uint32_t kIndexMagic = 0x544c5358;  // "TLSX"
constexpr std::uint32_t kGroupFormatVersion = 1;
// A group holds at most one writer batch; anything past these bounds is a
// corrupt header, not a plausible record — reject before trusting lengths.
constexpr std::uint32_t kMaxGroupFrames = 4096;
constexpr std::uint32_t kMaxGroupPayload = 256u * 1024u * 1024u;
constexpr std::size_t kIndexEntrySize = 4 + 4 + 8 + 8 + 8;

// Bounded backoff for transient IO errors: EINTR and short writes are
// retried up to this many times with a short linear sleep between
// attempts; a persistent error then surfaces through the taxonomy.
constexpr int kMaxIoRetries = 5;
constexpr unsigned kRetrySleepUs = 500;

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  return tls::notary::ObserveCache::fnv1a64(bytes);
}

void book(JournalErrorTaxonomy* errors, JournalStage stage, int err) {
  if (errors != nullptr) errors->record(stage, classify_errno(err));
}

/// Writes all of `bytes` to `fd`, retrying EINTR and short writes with
/// bounded backoff. Transient-but-recovered retries are booked as
/// kRetried; a terminal failure is booked under its errno class.
bool full_write(int fd, std::span<const std::uint8_t> bytes,
                JournalStage stage, JournalErrorTaxonomy* errors) {
  std::size_t written = 0;
  int retries = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    const int err = (n < 0) ? errno : EIO;  // n == 0: treat as short write
    if ((err == EINTR || err == EAGAIN || n == 0) && retries < kMaxIoRetries) {
      ++retries;
      book(errors, stage, EINTR);  // books kRetried
      ::usleep(kRetrySleepUs * static_cast<unsigned>(retries));
      continue;
    }
    book(errors, stage, err);
    return false;
  }
  return true;
}

bool fsync_fd(int fd, JournalErrorTaxonomy* errors) {
  int retries = 0;
  while (::fsync(fd) != 0) {
    if (errno == EINTR && retries < kMaxIoRetries) {
      ++retries;
      book(errors, JournalStage::kSync, EINTR);
      continue;
    }
    book(errors, JournalStage::kSync, errno);
    return false;
  }
  return true;
}

void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

bool slurp(const fs::path& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return !in.bad();
}

}  // namespace

// ---- taxonomy -----------------------------------------------------------

std::string_view journal_stage_name(JournalStage stage) {
  switch (stage) {
    case JournalStage::kOpen: return "open";
    case JournalStage::kWrite: return "write";
    case JournalStage::kSync: return "sync";
    case JournalStage::kRead: return "read";
    case JournalStage::kTruncate: return "truncate";
    case JournalStage::kIndex: return "index";
    case JournalStage::kRemove: return "remove";
  }
  return "?";
}

std::string_view journal_error_class_name(JournalErrorClass cls) {
  switch (cls) {
    case JournalErrorClass::kRetried: return "retried";
    case JournalErrorClass::kNoSpace: return "no_space";
    case JournalErrorClass::kIo: return "io";
    case JournalErrorClass::kOther: return "other";
  }
  return "?";
}

JournalErrorClass classify_errno(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
      return JournalErrorClass::kRetried;
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return JournalErrorClass::kNoSpace;
    case EIO:
      return JournalErrorClass::kIo;
    default:
      return JournalErrorClass::kOther;
  }
}

// ---- POSIX backend ------------------------------------------------------

PosixJournalBackend::PosixJournalBackend(std::string directory)
    : directory_(std::move(directory)) {
  segments_dir_ = (fs::path(directory_) / "segments").string();
  std::error_code ec;
  fs::create_directories(segments_dir_, ec);
}

PosixJournalBackend::~PosixJournalBackend() {
  close_segment();
  if (index_fd_ >= 0) ::close(index_fd_);
}

std::string PosixJournalBackend::segment_path(std::uint32_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg_%06u.seg", id);
  return (fs::path(segments_dir_) / buf).string();
}

bool PosixJournalBackend::open_segment(std::uint32_t id) {
  close_segment();
  fd_ = ::open(segment_path(id).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    book(&errors_, JournalStage::kOpen, errno);
    return false;
  }
  return true;
}

bool PosixJournalBackend::append(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) {
    book(&errors_, JournalStage::kWrite, EBADF);
    return false;
  }
  return full_write(fd_, bytes, JournalStage::kWrite, &errors_);
}

bool PosixJournalBackend::sync() {
  if (fd_ < 0) {
    book(&errors_, JournalStage::kSync, EBADF);
    return false;
  }
  return fsync_fd(fd_, &errors_);
}

void PosixJournalBackend::close_segment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::uint32_t> PosixJournalBackend::list_segments() {
  std::vector<std::uint32_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(segments_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(name.c_str(), "seg_%06u.seg", &id) == 1) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool PosixJournalBackend::read_segment(std::uint32_t id,
                                       std::vector<std::uint8_t>& out) {
  if (!slurp(segment_path(id), out)) {
    book(&errors_, JournalStage::kRead, EIO);
    return false;
  }
  return true;
}

bool PosixJournalBackend::truncate_segment(std::uint32_t id,
                                           std::uint64_t size) {
  if (::truncate(segment_path(id).c_str(),
                 static_cast<::off_t>(size)) != 0) {
    book(&errors_, JournalStage::kTruncate, errno);
    return false;
  }
  fsync_dir(segments_dir_);
  return true;
}

bool PosixJournalBackend::remove_segment(std::uint32_t id) {
  std::error_code ec;
  if (!fs::remove(segment_path(id), ec) && ec) {
    book(&errors_, JournalStage::kRemove, EIO);
    return false;
  }
  return true;
}

bool PosixJournalBackend::write_manifest(std::span<const std::uint8_t> bytes) {
  return write_file_durable((fs::path(directory_) / "MANIFEST").string(),
                            bytes, &errors_);
}

bool PosixJournalBackend::read_manifest(std::vector<std::uint8_t>& out) {
  return slurp(fs::path(directory_) / "MANIFEST", out);
}

bool PosixJournalBackend::append_index(std::span<const std::uint8_t> bytes) {
  if (index_fd_ < 0) {
    index_fd_ = ::open((fs::path(segments_dir_) / "INDEX").c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (index_fd_ < 0) {
      book(&errors_, JournalStage::kIndex, errno);
      return false;
    }
  }
  // Buffered, deliberately not fsynced: the index is a hint, the segment
  // scan is the ground truth.
  return full_write(index_fd_, bytes, JournalStage::kIndex, &errors_);
}

bool PosixJournalBackend::read_index(std::vector<std::uint8_t>& out) {
  return slurp(fs::path(segments_dir_) / "INDEX", out);
}

bool PosixJournalBackend::clear_index() {
  if (index_fd_ >= 0) {
    ::close(index_fd_);
    index_fd_ = -1;
  }
  std::error_code ec;
  fs::remove(fs::path(segments_dir_) / "INDEX", ec);
  return !ec;
}

// ---- in-memory backend --------------------------------------------------

bool MemoryJournalBackend::open_segment(std::uint32_t id) {
  open_id_ = id;
  open_ = true;
  segments_.try_emplace(id);
  return true;
}

bool MemoryJournalBackend::append(std::span<const std::uint8_t> bytes) {
  if (!open_) {
    errors_.record(JournalStage::kWrite, JournalErrorClass::kOther);
    return false;
  }
  if (appends_before_failure_ != static_cast<std::size_t>(-1)) {
    if (appends_before_failure_ == 0) {
      errors_.record(JournalStage::kWrite, JournalErrorClass::kIo);
      return false;
    }
    --appends_before_failure_;
  }
  auto& seg = segments_[open_id_];
  seg.bytes.insert(seg.bytes.end(), bytes.begin(), bytes.end());
  return true;
}

bool MemoryJournalBackend::sync() {
  ++sync_calls_;
  if (!open_) {
    errors_.record(JournalStage::kSync, JournalErrorClass::kOther);
    return false;
  }
  if (appends_before_failure_ == 0) {
    errors_.record(JournalStage::kSync, JournalErrorClass::kIo);
    return false;
  }
  auto& seg = segments_[open_id_];
  seg.synced = seg.bytes.size();
  return true;
}

void MemoryJournalBackend::close_segment() { open_ = false; }

std::vector<std::uint32_t> MemoryJournalBackend::list_segments() {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, seg] : segments_) ids.push_back(id);
  return ids;
}

bool MemoryJournalBackend::read_segment(std::uint32_t id,
                                        std::vector<std::uint8_t>& out) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) {
    errors_.record(JournalStage::kRead, JournalErrorClass::kOther);
    return false;
  }
  out = it->second.bytes;
  return true;
}

bool MemoryJournalBackend::truncate_segment(std::uint32_t id,
                                            std::uint64_t size) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) return false;
  if (size < it->second.bytes.size()) {
    it->second.bytes.resize(size);
    it->second.synced = std::min<std::size_t>(it->second.synced, size);
  }
  return true;
}

bool MemoryJournalBackend::remove_segment(std::uint32_t id) {
  segments_.erase(id);
  return true;
}

bool MemoryJournalBackend::write_manifest(
    std::span<const std::uint8_t> bytes) {
  manifest_.assign(bytes.begin(), bytes.end());
  has_manifest_ = true;
  return true;
}

bool MemoryJournalBackend::read_manifest(std::vector<std::uint8_t>& out) {
  if (!has_manifest_) return false;
  out = manifest_;
  return true;
}

bool MemoryJournalBackend::append_index(std::span<const std::uint8_t> bytes) {
  index_.insert(index_.end(), bytes.begin(), bytes.end());
  return true;
}

bool MemoryJournalBackend::read_index(std::vector<std::uint8_t>& out) {
  out = index_;
  return true;
}

bool MemoryJournalBackend::clear_index() {
  index_.clear();
  return true;
}

void MemoryJournalBackend::drop_unsynced() {
  for (auto& [id, seg] : segments_) {
    seg.bytes.resize(seg.synced);
  }
}

// ---- group record codec -------------------------------------------------

std::vector<std::uint8_t> encode_group(
    std::uint64_t options_digest,
    std::span<const std::vector<std::uint8_t>> frames) {
  std::uint64_t payload = 0;
  for (const auto& f : frames) payload += 4 + f.size();
  ByteWriter w;
  w.u32(kGroupMagic);
  w.u32(kGroupFormatVersion);
  w.u64(options_digest);
  w.u32(static_cast<std::uint32_t>(frames.size()));
  w.u32(static_cast<std::uint32_t>(payload));
  for (const auto& f : frames) {
    w.u32(static_cast<std::uint32_t>(f.size()));
    w.bytes(f);
  }
  w.u64(fnv1a64(w.data()));
  return w.take();
}

DecodedGroup decode_group(std::span<const std::uint8_t> bytes,
                          std::size_t* consumed) {
  if (bytes.size() < kGroupHeaderSize) {
    throw ParseError(ParseErrorCode::kTruncated, "group header");
  }
  ByteReader r(bytes);
  if (r.u32() != kGroupMagic) {
    throw ParseError(ParseErrorCode::kBadValue, "group magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kGroupFormatVersion) {
    throw ParseError(ParseErrorCode::kUnsupported,
                     "group format version " + std::to_string(version));
  }
  DecodedGroup group;
  group.options_digest = r.u64();
  const std::uint32_t frame_count = r.u32();
  if (frame_count > kMaxGroupFrames) {
    throw ParseError(ParseErrorCode::kBadLength,
                     "group frame count " + std::to_string(frame_count));
  }
  const std::uint32_t payload_len = r.u32();
  if (payload_len > kMaxGroupPayload) {
    throw ParseError(ParseErrorCode::kBadLength,
                     "group payload length " + std::to_string(payload_len));
  }
  const std::size_t total = kGroupHeaderSize + std::size_t{payload_len} + 8;
  if (bytes.size() < total) {
    throw ParseError(ParseErrorCode::kTruncated, "group body");
  }
  const std::uint64_t expected = fnv1a64(bytes.first(total - 8));
  group.frames.reserve(frame_count);
  std::size_t payload_used = 0;
  for (std::uint32_t i = 0; i < frame_count; ++i) {
    if (payload_used + 4 > payload_len) {
      throw ParseError(ParseErrorCode::kBadLength, "group frame offsets");
    }
    const std::uint32_t len = r.u32();
    if (payload_used + 4 + std::size_t{len} > payload_len) {
      throw ParseError(ParseErrorCode::kBadLength,
                       "group frame length " + std::to_string(len));
    }
    const auto frame = r.bytes(len);
    group.frames.emplace_back(frame.begin(), frame.end());
    payload_used += 4 + len;
  }
  if (payload_used != payload_len) {
    throw ParseError(ParseErrorCode::kBadLength, "group payload slack");
  }
  if (r.u64() != expected) {
    throw ParseError(ParseErrorCode::kBadValue, "group checksum");
  }
  if (consumed != nullptr) *consumed = total;
  return group;
}

SegmentScan scan_segment(std::span<const std::uint8_t> bytes) {
  SegmentScan scan;
  std::size_t at = 0;
  while (at < bytes.size()) {
    std::size_t consumed = 0;
    DecodedGroup group;
    try {
      group = decode_group(bytes.subspan(at), &consumed);
    } catch (const ParseError&) {
      break;  // first bad record: everything from here is a torn tail
    }
    scan.boundaries.push_back({at, consumed});
    for (auto& frame : group.frames) {
      scan.frames.push_back(std::move(frame));
    }
    ++scan.groups;
    at += consumed;
  }
  scan.valid_bytes = at;
  scan.torn_bytes = bytes.size() - at;
  return scan;
}

// ---- INDEX codec --------------------------------------------------------

std::vector<std::uint8_t> encode_index_entry(const IndexEntry& entry) {
  ByteWriter w;
  w.u32(kIndexMagic);
  w.u32(entry.segment);
  w.u64(entry.offset);
  w.u64(entry.length);
  w.u64(fnv1a64(w.data()));
  return w.take();
}

std::vector<IndexEntry> decode_index(std::span<const std::uint8_t> bytes) {
  std::vector<IndexEntry> entries;
  std::size_t at = 0;
  while (at + kIndexEntrySize <= bytes.size()) {
    const auto record = bytes.subspan(at, kIndexEntrySize);
    const std::uint64_t expected = fnv1a64(record.first(kIndexEntrySize - 8));
    ByteReader r(record);
    if (r.u32() != kIndexMagic) break;
    IndexEntry entry;
    entry.segment = r.u32();
    entry.offset = r.u64();
    entry.length = r.u64();
    if (r.u64() != expected) break;
    entries.push_back(entry);
    at += kIndexEntrySize;
  }
  return entries;
}

// ---- group-commit writer ------------------------------------------------

GroupCommitWriter::GroupCommitWriter(JournalBackend* backend, Config config,
                                     tls::faults::FaultInjector* faults)
    : backend_(backend), config_(std::move(config)), faults_(faults) {
  config_.group_frames = std::max<std::size_t>(1, config_.group_frames);
  segment_id_ = config_.first_segment_id;
  thread_ = std::thread([this] { writer_loop(); });
}

GroupCommitWriter::~GroupCommitWriter() { stop(); }

void GroupCommitWriter::enqueue(std::string name,
                                std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(Pending{std::move(name), std::move(frame),
                               std::chrono::steady_clock::now()});
    ++enqueued_;
  }
  wake_cv_.notify_all();
}

void GroupCommitWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t target = enqueued_;
  flush_pending_ = true;
  wake_cv_.notify_all();
  done_cv_.wait(lock, [&] { return completed_ >= target; });
}

void GroupCommitWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool GroupCommitWriter::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

GroupCommitWriter::Stats GroupCommitWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.degraded = degraded_;
  return s;
}

void GroupCommitWriter::collect_metrics(
    tls::telemetry::MetricsRegistry& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out.merge(metrics_);
  out.gauge("tls_repro_journal_degraded", {},
            "1 when the group-commit writer fell back to per-frame mode",
            true)
      .set(degraded_ ? 1 : 0);
}

JournalErrorTaxonomy GroupCommitWriter::fallback_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fallback_errors_;
}

void GroupCommitWriter::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      flush_pending_ = false;
      if (stop_) return;
      continue;
    }
    if (!stop_ && !flush_pending_ &&
        pending_.size() < config_.group_frames) {
      // Not a full group yet: linger until the oldest frame's deadline so
      // small trickles still coalesce, but bounded latency.
      const auto deadline =
          pending_.front().enqueued_at +
          std::chrono::milliseconds(config_.group_ms);
      wake_cv_.wait_until(lock, deadline, [&] {
        return stop_ || flush_pending_ ||
               pending_.size() >= config_.group_frames;
      });
      if (pending_.empty()) continue;
    }
    std::vector<Pending> batch;
    const std::size_t take =
        std::min(pending_.size(), config_.group_frames);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const bool already_degraded = degraded_;
    lock.unlock();

    bool ok = false;
    if (!already_degraded) {
      ok = commit_group(batch);
      if (!ok) ok = commit_group(batch);  // one whole-group retry
    }
    if (!ok) write_fallback(batch);

    lock.lock();
    if (!already_degraded) {
      if (ok) {
        consecutive_failures_ = 0;
      } else {
        ++consecutive_failures_;
        if (consecutive_failures_ >= config_.max_consecutive_failures) {
          degraded_ = true;
        }
      }
    }
    completed_ += batch.size();
    done_cv_.notify_all();
  }
}

bool GroupCommitWriter::commit_group(std::vector<Pending>& batch) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(batch.size());
  for (const auto& p : batch) frames.push_back(p.frame);
  std::vector<std::uint8_t> bytes =
      encode_group(config_.options_digest, frames);

  // Chaos tap: at most one segment-level fault per committed group.
  using tls::faults::FaultKind;
  FaultKind fault = FaultKind::kNone;
  std::uint64_t chaos_roll = 0;
  if (faults_ != nullptr) {
    std::unique_lock<std::mutex> fault_lock;
    if (config_.faults_mutex != nullptr) {
      fault_lock = std::unique_lock<std::mutex>(*config_.faults_mutex);
    }
    fault = faults_->corrupt_group(bytes);
    if (fault == FaultKind::kSegmentTruncate ||
        fault == FaultKind::kIndexStale) {
      chaos_roll = faults_->rng().next();
    }
  }

  if (!segment_open_) {
    if (!backend_->open_segment(segment_id_)) return false;
    segment_open_ = true;
    segment_bytes_ = 0;
  } else if (segment_bytes_ > 0 &&
             segment_bytes_ + bytes.size() > config_.max_segment_bytes) {
    backend_->close_segment();
    ++segment_id_;
    if (!backend_->open_segment(segment_id_)) {
      segment_open_ = false;
      return false;
    }
    segment_bytes_ = 0;
  }

  const std::uint64_t offset = segment_bytes_;
  if (!backend_->append(bytes)) return false;
  if (!backend_->sync()) return false;
  segment_bytes_ += bytes.size();

  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  std::size_t durable_frames = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.groups;
    stats_.frames += batch.size();
    ++stats_.fsyncs;
    stats_.bytes += bytes.size();
    durable_frames = stats_.frames;
    metrics_
        .histogram("tls_repro_journal_group_frames",
                   {1, 2, 4, 8, 16, 32, 64, 128, 256}, {},
                   "frames per committed journal group", true)
        .record(batch.size());
    metrics_
        .histogram("tls_repro_journal_flush_us",
                   tls::telemetry::duration_buckets_us(), {},
                   "group encode+append+fsync latency", true)
        .record(us);
    metrics_
        .counter("tls_repro_journal_fsync_total", {},
                 "fsync barriers paid by the group-commit writer", true)
        .add();
    metrics_
        .counter("tls_repro_journal_group_total", {},
                 "groups committed by the journal writer", true)
        .add();
    metrics_
        .counter("tls_repro_journal_bytes_total", {},
                 "segment bytes appended by the journal writer", true)
        .add(bytes.size());
  }

  // Crash-matrix seam: die right after the group containing the Nth frame
  // became durable — before the index entry, so resume also exercises the
  // scan-over-index path.
  if (config_.kill_after_frames != 0 &&
      durable_frames >= config_.kill_after_frames) {
    std::raise(SIGKILL);
  }

  IndexEntry entry{segment_id_, offset,
                   static_cast<std::uint64_t>(bytes.size())};
  if (fault == FaultKind::kIndexStale) {
    // A stale pointer: offset drifts somewhere wrong. Replay must detect
    // and ignore it via the scan cross-check.
    entry.offset += 1 + (chaos_roll % 4096);
  }
  backend_->append_index(encode_index_entry(entry));

  if (fault == FaultKind::kSegmentTruncate && segment_bytes_ > 0) {
    // Lose an arbitrary tail of the segment after the commit (media/fs
    // failure): cut somewhere inside what we believed durable, then roll
    // to a fresh segment so later groups stay recoverable.
    backend_->truncate_segment(segment_id_, chaos_roll % segment_bytes_);
    backend_->close_segment();
    segment_open_ = false;
    ++segment_id_;
  } else if (fault == FaultKind::kGroupTornTail) {
    // The group bytes were already cut short before the append (a torn
    // write). Roll to a fresh segment: a real torn tail ends a segment,
    // and later groups appended after garbage would be unreachable.
    backend_->close_segment();
    segment_open_ = false;
    ++segment_id_;
  }
  return true;
}

void GroupCommitWriter::write_fallback(std::vector<Pending>& batch) {
  namespace fsn = std::filesystem;
  std::error_code ec;
  fsn::create_directories(config_.fallback_dir, ec);
  JournalErrorTaxonomy errors;
  std::size_t written = 0;
  for (auto& p : batch) {
    const std::string path =
        (fsn::path(config_.fallback_dir) / p.name).string();
    if (write_file_durable(path, p.frame, &errors)) ++written;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.fallback_frames += written;
  fallback_errors_.merge(errors);
}

// ---- shared durable-file helper -----------------------------------------

bool write_file_durable(const std::string& path,
                        std::span<const std::uint8_t> bytes,
                        JournalErrorTaxonomy* errors) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    book(errors, JournalStage::kOpen, errno);
    return false;
  }
  if (!full_write(fd, bytes, JournalStage::kWrite, errors)) {
    ::close(fd);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
  }
  if (!fsync_fd(fd, errors)) {
    ::close(fd);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    book(errors, JournalStage::kWrite, errno);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
  }
  fsync_dir(fs::path(path).parent_path());
  return true;
}

}  // namespace tls::study
