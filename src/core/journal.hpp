// Segmented, append-only, group-commit journal — the storage engine under
// the study's crash-safe checkpoint layer (core/checkpoint.hpp).
//
// PR 5's phase attribution showed the per-frame write+fsync+rename recipe
// at 66% of summed task time: every completed (month, shard) task paid one
// file create, one fsync, one rename, and one directory fsync. This layer
// replaces that with large append-only segment files into which a
// dedicated writer thread batches completed frames as *group records*,
// amortizing ONE fsync per group (flush when N frames are pending or the
// oldest has waited T ms, whichever first).
//
// Crash-consistency rule (the durability contract, stated once): a group
// that was never fsynced is as if it was never written. Each group record
// is covered by a trailing FNV-1a-64 checksum, so on replay a segment is
// scanned group-by-group and TRUNCATED at the last checksummed group
// boundary; everything past it (a torn write, a partial group, garbage
// after a power cut) is quarantined as a torn tail and the affected tasks
// are recomputed deterministically. Recovery never aborts the run and
// never yields wrong bytes — the worst crash costs recompute time.
//
// The byte sink is a pluggable JournalBackend: buffered POSIX files for
// production (EINTR/short-write retries with bounded backoff; persistent
// errors surface through a per-stage JournalErrorTaxonomy, never as
// exceptions out of the writer thread) and an in-memory backend for tests
// (simulated power cuts via drop_unsynced(), injected write failures for
// the graceful-degradation path). On repeated backend failure the writer
// degrades to the legacy one-file-per-frame durable mode and records it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace tls::faults {
class FaultInjector;
}

namespace tls::study {

// ---- per-stage journal IO error taxonomy --------------------------------
// The journal's analogue of the monitor's ErrorTaxonomy: every backend
// failure is booked per (IO stage × errno class) instead of being thrown
// out of the writer thread. kRetried counts transient EINTR/short-write
// retries that eventually succeeded; the other classes are terminal for
// the attempted operation.

enum class JournalStage : std::uint8_t {
  kOpen,      // segment / sidecar open or create
  kWrite,     // buffered append to a segment
  kSync,      // fsync durability barrier
  kRead,      // replay-side segment read
  kTruncate,  // scan-truncation of a torn tail
  kIndex,     // INDEX sidecar maintenance
  kRemove,    // segment removal (cold start / cleanup)
};

inline constexpr std::size_t kJournalStageCount = 7;

std::string_view journal_stage_name(JournalStage stage);

enum class JournalErrorClass : std::uint8_t {
  kRetried,  // EINTR / short write, recovered by retry
  kNoSpace,  // ENOSPC / EDQUOT: the disk is full, not failing
  kIo,       // EIO and friends: the device is failing
  kOther,    // anything else (EBADF, EROFS, ...)
};

inline constexpr std::size_t kJournalErrorClassCount = 4;

std::string_view journal_error_class_name(JournalErrorClass cls);

/// Maps an errno captured at failure time onto an error class.
[[nodiscard]] JournalErrorClass classify_errno(int err);

class JournalErrorTaxonomy {
 public:
  void record(JournalStage stage, JournalErrorClass cls) {
    ++counts_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(cls)];
    ++total_;
  }
  [[nodiscard]] std::uint64_t count(JournalStage stage,
                                    JournalErrorClass cls) const {
    return counts_[static_cast<std::size_t>(stage)]
                  [static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t stage_total(JournalStage stage) const {
    std::uint64_t n = 0;
    for (const auto c : counts_[static_cast<std::size_t>(stage)]) n += c;
    return n;
  }
  /// Total terminal failures (retried-and-recovered excluded).
  [[nodiscard]] std::uint64_t failures() const {
    std::uint64_t n = total_;
    for (const auto& row : counts_) {
      n -= row[static_cast<std::size_t>(JournalErrorClass::kRetried)];
    }
    return n;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  void merge(const JournalErrorTaxonomy& other) {
    for (std::size_t s = 0; s < kJournalStageCount; ++s) {
      for (std::size_t c = 0; c < kJournalErrorClassCount; ++c) {
        counts_[s][c] += other.counts_[s][c];
      }
    }
    total_ += other.total_;
  }

 private:
  std::uint64_t counts_[kJournalStageCount][kJournalErrorClassCount] = {};
  std::uint64_t total_ = 0;
};

// ---- pluggable byte sink -------------------------------------------------

/// Storage interface the journal writes through. One segment is open for
/// append at a time; replay reads whole segments back. All operations
/// return false on failure (after booking the error in the taxonomy) —
/// the journal layer decides whether to retry, degrade, or recompute.
/// Implementations need not be thread-safe: the group-commit writer is the
/// single append-side caller, and replay happens before the writer starts.
class JournalBackend {
 public:
  virtual ~JournalBackend() = default;

  // -- append side (one open segment at a time) --
  virtual bool open_segment(std::uint32_t id) = 0;
  virtual bool append(std::span<const std::uint8_t> bytes) = 0;
  /// Durability barrier: everything appended so far survives a crash.
  virtual bool sync() = 0;
  virtual void close_segment() = 0;

  // -- replay side --
  [[nodiscard]] virtual std::vector<std::uint32_t> list_segments() = 0;
  virtual bool read_segment(std::uint32_t id,
                            std::vector<std::uint8_t>& out) = 0;
  /// Scan-truncation of a torn tail: shrink segment `id` to `size` bytes.
  virtual bool truncate_segment(std::uint32_t id, std::uint64_t size) = 0;
  virtual bool remove_segment(std::uint32_t id) = 0;

  // -- small sidecar files --
  virtual bool write_manifest(std::span<const std::uint8_t> bytes) = 0;
  virtual bool read_manifest(std::vector<std::uint8_t>& out) = 0;
  /// Appends one record to the INDEX sidecar (buffered, non-durable — the
  /// index is a hint; segment scans are the ground truth).
  virtual bool append_index(std::span<const std::uint8_t> bytes) = 0;
  virtual bool read_index(std::vector<std::uint8_t>& out) = 0;
  virtual bool clear_index() = 0;

  [[nodiscard]] const JournalErrorTaxonomy& errors() const { return errors_; }

 protected:
  JournalErrorTaxonomy errors_;
};

/// Buffered POSIX files under `<directory>/segments/`: `seg_<id>.seg` plus
/// an `INDEX` sidecar; the manifest lives at `<directory>/MANIFEST`.
/// Short writes and EINTR are retried with bounded backoff; ENOSPC and
/// other persistent errors are booked in the taxonomy and surfaced as a
/// false return.
class PosixJournalBackend : public JournalBackend {
 public:
  explicit PosixJournalBackend(std::string directory);
  ~PosixJournalBackend() override;

  bool open_segment(std::uint32_t id) override;
  bool append(std::span<const std::uint8_t> bytes) override;
  bool sync() override;
  void close_segment() override;
  [[nodiscard]] std::vector<std::uint32_t> list_segments() override;
  bool read_segment(std::uint32_t id, std::vector<std::uint8_t>& out) override;
  bool truncate_segment(std::uint32_t id, std::uint64_t size) override;
  bool remove_segment(std::uint32_t id) override;
  bool write_manifest(std::span<const std::uint8_t> bytes) override;
  bool read_manifest(std::vector<std::uint8_t>& out) override;
  bool append_index(std::span<const std::uint8_t> bytes) override;
  bool read_index(std::vector<std::uint8_t>& out) override;
  bool clear_index() override;

 private:
  [[nodiscard]] std::string segment_path(std::uint32_t id) const;

  std::string directory_;
  std::string segments_dir_;
  int fd_ = -1;
  int index_fd_ = -1;
};

/// Everything in RAM, with an explicit durable watermark per segment so
/// tests can simulate a power cut: bytes appended after the last sync()
/// vanish on drop_unsynced(), exactly as an un-fsynced page-cache tail
/// would. fail_appends_after() injects persistent write failures to drive
/// the graceful-degradation path.
class MemoryJournalBackend : public JournalBackend {
 public:
  bool open_segment(std::uint32_t id) override;
  bool append(std::span<const std::uint8_t> bytes) override;
  bool sync() override;
  void close_segment() override;
  [[nodiscard]] std::vector<std::uint32_t> list_segments() override;
  bool read_segment(std::uint32_t id, std::vector<std::uint8_t>& out) override;
  bool truncate_segment(std::uint32_t id, std::uint64_t size) override;
  bool remove_segment(std::uint32_t id) override;
  bool write_manifest(std::span<const std::uint8_t> bytes) override;
  bool read_manifest(std::vector<std::uint8_t>& out) override;
  bool append_index(std::span<const std::uint8_t> bytes) override;
  bool read_index(std::vector<std::uint8_t>& out) override;
  bool clear_index() override;

  /// Power-cut simulation: every segment loses its un-synced tail.
  void drop_unsynced();
  /// After `n` more successful appends, every append/sync fails (as a
  /// persistently broken device would). SIZE_MAX disables.
  void fail_appends_after(std::size_t n) { appends_before_failure_ = n; }
  [[nodiscard]] std::uint64_t sync_calls() const { return sync_calls_; }

 private:
  struct Segment {
    std::vector<std::uint8_t> bytes;
    std::size_t synced = 0;  // durable watermark
  };
  std::map<std::uint32_t, Segment> segments_;
  std::vector<std::uint8_t> manifest_;
  bool has_manifest_ = false;
  std::vector<std::uint8_t> index_;
  std::uint32_t open_id_ = 0;
  bool open_ = false;
  std::size_t appends_before_failure_ = static_cast<std::size_t>(-1);
  std::uint64_t sync_calls_ = 0;
};

// ---- group record codec --------------------------------------------------
// One group record packs the frames committed under a single fsync:
//   magic u32 "TLSG", format u32, options_digest u64, frame_count u32,
//   payload_len u32, frame_count × { u32 len, frame bytes },
//   fnv1a64-of-all-preceding u64
// Frames inside are whole encode_frame() blobs, so a bit flip inside a
// committed group is caught twice: the group checksum rejects the group on
// a strict scan, and the per-frame checksum quarantines exactly the
// damaged frame when the group is still otherwise decodable.

/// Serialized size of a group's fixed header (before the frame payload).
inline constexpr std::size_t kGroupHeaderSize = 24;

[[nodiscard]] std::vector<std::uint8_t> encode_group(
    std::uint64_t options_digest,
    std::span<const std::vector<std::uint8_t>> frames);

struct DecodedGroup {
  std::uint64_t options_digest = 0;
  std::vector<std::vector<std::uint8_t>> frames;  // encode_frame() blobs
};

/// Decodes ONE group record from the head of `bytes` (more groups may
/// follow; no trailing-bytes check). Throws tls::wire::ParseError on any
/// structural or checksum violation; never reads out of bounds. On
/// success `*consumed` is the group's total encoded size.
[[nodiscard]] DecodedGroup decode_group(std::span<const std::uint8_t> bytes,
                                        std::size_t* consumed);

/// Result of scanning one segment for committed groups.
struct SegmentScan {
  struct GroupSpan {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };
  /// Frames of every checksummed group, in append order.
  std::vector<std::vector<std::uint8_t>> frames;
  /// (offset, length) of each valid group — what INDEX entries are
  /// cross-checked against.
  std::vector<GroupSpan> boundaries;
  std::uint64_t groups = 0;       // checksum-valid groups found
  std::uint64_t valid_bytes = 0;  // last valid group boundary (offset)
  std::uint64_t torn_bytes = 0;   // bytes past it (torn tail / garbage)
};

/// Walks `bytes` group-by-group, stopping at the first record that fails
/// to decode: everything before the stop point is committed, everything
/// after is a torn tail. Never throws — a segment full of garbage is just
/// a scan with zero groups and size() torn bytes.
[[nodiscard]] SegmentScan scan_segment(std::span<const std::uint8_t> bytes);

// ---- INDEX sidecar codec -------------------------------------------------
// The manifest-side pointer set: one entry per committed group, naming
// where its bytes live. Entries are a replay HINT cross-checked against
// the segment scan — a stale entry (pointing past durable data, or at a
// boundary that is not a committed group) is counted and ignored, never
// trusted. Entry: magic u32 "TLSX", segment u32, offset u64, length u64,
// fnv1a64 u64.

struct IndexEntry {
  std::uint32_t segment = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_index_entry(
    const IndexEntry& entry);
/// Decodes as many valid entries as the blob holds, stopping at the first
/// damaged one (the index is append-only; a torn tail is expected).
[[nodiscard]] std::vector<IndexEntry> decode_index(
    std::span<const std::uint8_t> bytes);

// ---- group-commit writer -------------------------------------------------

/// Dedicated writer thread that turns enqueued frames into group records.
/// append-side threads call enqueue() (cheap: one lock + one move); the
/// writer wakes when kGroupFrames are pending or the oldest pending frame
/// is group_ms old, writes one group, and pays ONE fsync for it.
///
/// Failure policy: a failed group write/sync is retried once as a whole;
/// after `max_consecutive_failures` consecutive group failures the writer
/// DEGRADES — every pending and future frame is written through the
/// legacy per-frame durable path into `fallback_dir` instead, and the
/// degradation is reported (RecoveryReport::degraded_per_frame). Frames
/// are never silently dropped while the fallback path still works.
class GroupCommitWriter {
 public:
  struct Config {
    std::size_t group_frames = 64;
    /// Linger before committing a partial group. Frames are checkpoint
    /// task results — a crash inside the window just recomputes them — so
    /// the linger trades a tiny recompute window for real fsync
    /// amortization when frames trickle in slower than they batch.
    std::uint64_t group_ms = 50;
    /// Roll to a fresh segment beyond this many bytes.
    std::uint64_t max_segment_bytes = 64ull << 20;
    std::uint64_t options_digest = 0;
    std::uint32_t first_segment_id = 1;
    /// Legacy one-file-per-frame directory for the degraded mode.
    std::string fallback_dir;
    std::size_t max_consecutive_failures = 3;
    /// Crash-matrix seam: raise SIGKILL right after the group containing
    /// the Nth frame becomes durable (1-based; 0 disables). Killing after
    /// the fsync guarantees ≥ N frames of forward progress per run, so a
    /// kill-resume loop always terminates.
    std::size_t kill_after_frames = 0;
    /// Serializes FaultInjector access when the injector is shared with
    /// append-side frame faulting (the injector's RNG is not thread-safe).
    std::mutex* faults_mutex = nullptr;
  };

  /// `faults` (nullable) is the checkpoint chaos tap: group_* and
  /// segment-level fault kinds are rolled per committed group.
  GroupCommitWriter(JournalBackend* backend, Config config,
                    tls::faults::FaultInjector* faults);
  ~GroupCommitWriter();

  GroupCommitWriter(const GroupCommitWriter&) = delete;
  GroupCommitWriter& operator=(const GroupCommitWriter&) = delete;

  /// Hands one encoded frame to the writer. `name` is the frame's legacy
  /// file name, used only if this frame ends up on the degraded path.
  /// Returns immediately; durability arrives with the frame's group.
  void enqueue(std::string name, std::vector<std::uint8_t> frame);

  /// Blocks until everything enqueued so far is durable (or has been
  /// written through the degraded fallback).
  void flush();

  /// flush() + join the writer thread. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool degraded() const;

  struct Stats {
    std::uint64_t frames = 0;  // frames committed through groups
    std::uint64_t groups = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t bytes = 0;   // segment bytes written
    std::uint64_t fallback_frames = 0;  // frames written per-frame (degraded)
    bool degraded = false;
  };
  [[nodiscard]] Stats stats() const;

  /// Folds the writer's telemetry (group-size and flush-latency
  /// histograms, fsync/byte counters, degradation gauge) into `out`.
  /// All wall-clock-derived metrics are registered timing=true.
  void collect_metrics(tls::telemetry::MetricsRegistry& out) const;

  /// IO errors booked by the degraded per-frame fallback path (the
  /// backend's own taxonomy is separate; see JournalBackend::errors()).
  [[nodiscard]] JournalErrorTaxonomy fallback_errors() const;

 private:
  struct Pending {
    std::string name;
    std::vector<std::uint8_t> frame;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void writer_loop();
  /// Writes one group of `batch` frames (write + fsync + index entry),
  /// applying any rolled chaos faults. Returns false on backend failure.
  bool commit_group(std::vector<Pending>& batch);
  void write_fallback(std::vector<Pending>& batch);

  JournalBackend* backend_;
  Config config_;
  tls::faults::FaultInjector* faults_;

  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;   // writer sleeps here
  std::condition_variable done_cv_;   // flush() waiters sleep here
  std::deque<Pending> pending_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t completed_ = 0;  // durable or fallback-written
  bool flush_pending_ = false;   // flush() wants an immediate commit
  bool stop_ = false;
  bool degraded_ = false;
  std::size_t consecutive_failures_ = 0;

  // Writer-thread-only state (no lock needed).
  std::uint32_t segment_id_ = 0;
  std::uint64_t segment_bytes_ = 0;
  bool segment_open_ = false;

  Stats stats_;                                 // guarded by mutex_
  tls::telemetry::MetricsRegistry metrics_;     // guarded by mutex_
  JournalErrorTaxonomy fallback_errors_;        // guarded by mutex_
  std::thread thread_;
};

// ---- shared durable-file helper -----------------------------------------

/// The legacy per-frame durability recipe, hardened: write `<path>.tmp`
/// (retrying EINTR and short writes with bounded backoff), fsync, rename
/// atomically over `path`, fsync the directory. Returns false on failure
/// (partial temp files removed best-effort); errors are booked into
/// `errors` when non-null.
bool write_file_durable(const std::string& path,
                        std::span<const std::uint8_t> bytes,
                        JournalErrorTaxonomy* errors = nullptr);

}  // namespace tls::study
