#include "core/shard.hpp"

#include "telemetry/stopwatch.hpp"

namespace tls::core {

std::vector<std::size_t> shard_counts(std::size_t total, std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<std::size_t> counts(shards, total / shards);
  const std::size_t extra = total % shards;
  for (std::size_t i = 0; i < extra; ++i) ++counts[i];
  return counts;
}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (task_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    drain();
  }
}

void ThreadPool::drain() {
  while (true) {
    std::size_t index;
    const std::function<void(std::size_t)>* task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (task_ == nullptr || next_index_ >= total_) return;
      index = next_index_++;
      task = task_;
    }
    std::exception_ptr error;
    const telemetry::Stopwatch body;
    try {
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }
    busy_us_.fetch_add(body.elapsed_us(), std::memory_order_relaxed);
    tasks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (++completed_ == total_) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  const telemetry::Stopwatch grid;
  grids_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    // Serial path: no scheduling machinery at all.
    for (std::size_t i = 0; i < n; ++i) {
      const telemetry::Stopwatch body;
      task(i);
      busy_us_.fetch_add(body.elapsed_us(), std::memory_order_relaxed);
      tasks_.fetch_add(1, std::memory_order_relaxed);
    }
    wall_us_.fetch_add(grid.elapsed_us(), std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    next_index_ = 0;
    total_ = n;
    completed_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller helps drain the grid instead of idling.
  drain();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return completed_ == total_; });
    task_ = nullptr;
    error = first_error_;
  }
  wall_us_.fetch_add(grid.elapsed_us(), std::memory_order_relaxed);
  if (error) std::rethrow_exception(error);
}

}  // namespace tls::core
