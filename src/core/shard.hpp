// Sharded execution primitives for the study pipeline: a deterministic
// work partitioner (shard_counts) and a small thread pool whose only job
// is to run an indexed task grid. Determinism contract: the pool never
// decides *what* a task computes or *where* its result lands — tasks are
// pure functions of their index writing to per-index slots — so the result
// of run() is bit-identical for every pool size, including zero (inline).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tls::core {

/// Splits `total` work items into `shards` contiguous chunks whose sizes
/// sum to `total`; the first (total % shards) chunks get one extra item.
/// The partition depends only on (total, shards) — never on thread count.
std::vector<std::size_t> shard_counts(std::size_t total, std::size_t shards);

/// Fixed-size pool of worker threads executing indexed task grids.
/// `threads == 0` keeps everything on the calling thread (the serial
/// path): no workers are spawned and run() degenerates to a plain loop.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Executes task(0) .. task(n-1), each exactly once, and blocks until
  /// all have finished. Tasks are claimed from a shared counter, so the
  /// schedule load-balances; callers must make each index independent.
  /// The first exception thrown by any task is rethrown here after the
  /// grid drains.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  /// Claims and runs indices until the grid is exhausted.
  void drain();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes workers for a new grid
  std::condition_variable done_cv_;   // wakes run() when the grid drains
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t next_index_ = 0;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;  // bumped per grid so workers re-sleep
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tls::core
