// Sharded execution primitives for the study pipeline: a deterministic
// work partitioner (shard_counts) and a small thread pool whose only job
// is to run an indexed task grid. Determinism contract: the pool never
// decides *what* a task computes or *where* its result lands — tasks are
// pure functions of their index writing to per-index slots — so the result
// of run() is bit-identical for every pool size, including zero (inline).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tls::core {

/// Splits `total` work items into `shards` contiguous chunks whose sizes
/// sum to `total`; the first (total % shards) chunks get one extra item.
/// The partition depends only on (total, shards) — never on thread count.
std::vector<std::size_t> shard_counts(std::size_t total, std::size_t shards);

/// Cumulative pool accounting since construction. busy_us sums the time
/// spent inside task bodies across all lanes (so it can exceed wall_us,
/// which sums the run() call durations). Wall-clock values feed telemetry
/// only — they never influence task results.
struct ThreadPoolStats {
  std::uint64_t grids = 0;    // run() calls that executed at least one task
  std::uint64_t tasks = 0;    // task invocations completed
  std::uint64_t busy_us = 0;  // summed task-body time across lanes
  std::uint64_t wall_us = 0;  // summed run() durations
};

/// Fixed-size pool of worker threads executing indexed task grids.
/// `threads == 0` keeps everything on the calling thread (the serial
/// path): no workers are spawned and run() degenerates to a plain loop.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  [[nodiscard]] ThreadPoolStats stats() const {
    return {grids_.load(), tasks_.load(), busy_us_.load(), wall_us_.load()};
  }

  /// Executes task(0) .. task(n-1), each exactly once, and blocks until
  /// all have finished. Tasks are claimed from a shared counter, so the
  /// schedule load-balances; callers must make each index independent.
  /// The first exception thrown by any task is rethrown here after the
  /// grid drains.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  /// Claims and runs indices until the grid is exhausted.
  void drain();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes workers for a new grid
  std::condition_variable done_cv_;   // wakes run() when the grid drains
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t next_index_ = 0;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;  // bumped per grid so workers re-sleep
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> grids_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> busy_us_{0};
  std::atomic<std::uint64_t> wall_us_{0};
};

}  // namespace tls::core
