#include "core/study.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "analysis/csv.hpp"

#include "core/shard.hpp"
#include "fingerprint/fingerprint.hpp"
#include "notary/snapshot.hpp"
#include "telemetry/stopwatch.hpp"
#include "tlscore/timeline.hpp"

namespace tls::study {

using tls::analysis::MonthlyChart;
using tls::analysis::Series;
using tls::core::Month;
using tls::notary::MonthlyStats;

LongitudinalStudy::LongitudinalStudy(StudyOptions options)
    : options_(options),
      catalog_(options.full_catalog ? tls::clients::Catalog::standard()
                                    : tls::clients::Catalog::core_only()),
      database_(build_database(catalog_)),
      servers_(tls::servers::ServerPopulation::standard()) {
  market_ = std::make_unique<tls::population::MarketModel>(
      tls::population::MarketModel::standard(catalog_));
  monitor_ = std::make_unique<tls::notary::PassiveMonitor>(&database_);
  scanner_ =
      std::make_unique<tls::scan::ActiveScanner>(servers_, options_.scan_policy);
}

namespace {

/// Internal watchdog signal: the shard blew its per-task deadline. Thrown
/// from the generator sink and caught inside the same pool task — it must
/// never escape into the ThreadPool, which would rethrow it from run().
struct StuckShardError {};

}  // namespace

void LongitudinalStudy::ensure_journal() {
  if (journal_ != nullptr || options_.checkpoint_dir.empty()) return;
  if (options_.checkpoint_faults.frame_total() +
          options_.checkpoint_faults.group_total() >
      0) {
    frame_injector_ = std::make_unique<tls::faults::FaultInjector>(
        options_.checkpoint_faults, options_.checkpoint_fault_seed);
  }
  RunJournal::Config config;
  config.directory = options_.checkpoint_dir;
  config.resume = options_.resume;
  config.manifest = make_manifest(options_, servers_.segments().size());
  config.frame_faults = frame_injector_.get();
  config.kill_after_frames = options_.checkpoint_kill_after_frames;
  config.term_after_frames = options_.checkpoint_term_after_frames;
  config.max_frame_bytes = options_.checkpoint_max_frame_bytes;
  config.mode = options_.journal_mode;
  config.group_frames = options_.journal_group_frames;
  config.group_ms = options_.journal_group_ms;
  journal_ = std::make_unique<RunJournal>(std::move(config));
}

void LongitudinalStudy::drain_checkpoint() {
  // The journal is created on the run() thread before any worker spawns;
  // a signal watcher calling this mid-run therefore observes either a
  // fully-constructed journal or none at all (in which case there is
  // nothing to lose). flush() is thread-safe against concurrent append().
  if (journal_ != nullptr) journal_->flush();
}

tls::analysis::RecoveryReport LongitudinalStudy::recovery() const {
  tls::analysis::RecoveryReport report;
  if (journal_ != nullptr) report = journal_->snapshot_report();
  report.stuck_reruns = stuck_reruns_.load();
  // Checkpoint frames persist monitor state (including cache and taxonomy
  // stats) but not the telemetry registry: after a resume the phase
  // timings and fault-trigger counters cover only the recomputed tasks.
  report.telemetry_partial =
      options_.telemetry && report.resumed && report.tasks_skipped > 0;
  return report;
}

tls::population::TrafficGenerator& LongitudinalStudy::worker_generator() {
  const auto id = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(worker_gen_mutex_);
  auto& slot = worker_gens_[id];
  if (slot == nullptr) {
    slot = std::make_unique<tls::population::TrafficGenerator>(*market_,
                                                               servers_, 0);
  }
  return *slot;
}

std::unique_ptr<tls::notary::PassiveMonitor> LongitudinalStudy::compute_shard(
    Month month, std::size_t shard, std::size_t count,
    TaskTelemetry* telemetry, std::uint32_t lane_id) {
  const bool faulty = options_.faults.total() > 0;
  const auto lane = static_cast<std::uint64_t>(month.index());
  // Each attempt rebuilds monitor, injector and generator from their seeds,
  // so a watchdog rerun consumes exactly the streams the discarded attempt
  // did — determinism survives the discard.
  const auto attempt = [&](bool enforce_deadline, TaskTelemetry* tel) {
    auto mon = std::make_unique<tls::notary::PassiveMonitor>(&database_);
    mon->set_observe_cache_capacity(options_.observe_cache_entries);
    mon->set_fast_observe(options_.fast_observe);
    if (tel != nullptr) mon->set_telemetry(&tel->registry);
    std::unique_ptr<tls::faults::FaultInjector> injector;
    if (faulty) {
      injector = std::make_unique<tls::faults::FaultInjector>(
          options_.faults,
          tls::core::rng_stream_seed(options_.fault_seed, lane, shard));
      mon->set_fault_injector(injector.get());
    }
    // Worker-local generator, re-seeded per task: every cache it carries
    // is a pure function of the models, so the stream (and every exported
    // byte) is identical to a freshly constructed generator's — but the
    // gen-cache templates compile once per worker instead of once per task.
    tls::population::TrafficGenerator& gen = worker_generator();
    gen.set_gen_cache(options_.gen_cache);
    gen.reseed(tls::core::rng_stream_seed(options_.seed, lane, shard));
    const auto gen_stats_before = gen.gen_cache_stats();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.task_deadline_us);
    const tls::telemetry::Stopwatch task_watch;
    std::uint64_t observe_us = 0;
    // Batched hand-off: one virtual-call boundary per 256 events instead of
    // per event; the generator's RNG stream is unchanged. The watchdog
    // piggybacks on the same boundary — a cooperative check per batch.
    gen.generate_month_batched(
        month, count, 256,
        [&](std::span<const tls::population::ConnectionEvent> events) {
          if (enforce_deadline &&
              std::chrono::steady_clock::now() >= deadline) {
            throw StuckShardError{};
          }
          if (tel == nullptr) {
            mon->observe_span(events);
            return;
          }
          const tls::telemetry::Stopwatch sw;
          mon->observe_span(events);
          observe_us += sw.elapsed_us();
        });
    mon->set_fault_injector(nullptr);
    mon->set_telemetry(nullptr);
    if (tel != nullptr) {
      const std::uint64_t total_us = task_watch.elapsed_us();
      const std::uint64_t generate_us =
          total_us > observe_us ? total_us - observe_us : 0;
      auto buckets = tls::telemetry::duration_buckets_us();
      tel->registry
          .histogram("tls_repro_pipeline_generate_us", buckets, "",
                     "Traffic-generation share of each shard task")
          .record(generate_us);
      tel->registry
          .histogram("tls_repro_pipeline_observe_us", buckets, "",
                     "Monitor-ingest share of each shard task")
          .record(observe_us);
      tel->registry
          .counter("tls_repro_pipeline_shard_tasks_total", "",
                   "Passive (month, shard) tasks computed")
          .add();
      {
        // Deltas against the task-start snapshot: the worker generator's
        // cache (and its stats) persists across tasks.
        const auto& gs = gen.gen_cache_stats();
        const auto& gb = gen_stats_before;
        // template_hits and bypasses are per-connection facts (functions
        // of the plan); the warmth counters (misses, plan hits/misses,
        // resident bytes) depend on which worker ran which tasks, so they
        // carry the schedule-derived flag and stay out of the
        // deterministic digest.
        struct GenCounter {
          const char* name;
          std::uint64_t value;
          bool warmth;
        };
        const GenCounter gen_counters[] = {
            {"tls_repro_gen_cache_template_hits_total",
             gs.template_hits - gb.template_hits, false},
            {"tls_repro_gen_cache_bypass_total", gs.bypasses - gb.bypasses,
             false},
            {"tls_repro_gen_cache_template_misses_total",
             gs.template_misses - gb.template_misses, true},
            {"tls_repro_gen_cache_plan_hits_total",
             gs.plan_hits - gb.plan_hits, true},
            {"tls_repro_gen_cache_plan_misses_total",
             gs.plan_misses - gb.plan_misses, true},
            {"tls_repro_gen_cache_template_bytes_total",
             gs.template_bytes - gb.template_bytes, true},
        };
        for (const auto& [name, value, warmth] : gen_counters) {
          if (value == 0) continue;
          tel->registry
              .counter(name, "",
                       "Producer-side GenCache template/plan activity",
                       warmth)
              .add(value);
        }
      }
      if (injector != nullptr) {
        const auto& fs = injector->stats();
        for (std::size_t k = 1; k < tls::faults::kFaultKindCount; ++k) {
          if (fs.applied[k] == 0) continue;
          const auto kind = static_cast<tls::faults::FaultKind>(k);
          std::string label = "kind=\"";
          label += tls::faults::fault_kind_name(kind);
          label += '"';
          tel->registry
              .counter("tls_repro_faults_applied_total", label,
                       "Faults the chaos tap injected, by kind")
              .add(fs.applied[k]);
        }
      }
      // The generate/observe split interleaves per batch; render the two
      // shares as contiguous child spans under the task span.
      const std::uint64_t t0 = task_watch.start_us();
      tel->trace.add({"generate", "passive", t0, generate_us, lane_id, {}});
      tel->trace.add(
          {"observe", "passive", t0 + generate_us, observe_us, lane_id, {}});
      tls::telemetry::TraceEvent task_event{
          "shard_task", "passive", t0, total_us, lane_id, {}};
      task_event.args.emplace_back("month", lane);
      task_event.args.emplace_back("shard", shard);
      task_event.args.emplace_back("connections", count);
      tel->trace.add(std::move(task_event));
    }
    return mon;
  };
  if (options_.task_deadline_us == 0) return attempt(false, telemetry);
  try {
    return attempt(true, telemetry);
  } catch (const StuckShardError&) {
    // Over budget: discard the partial shard and re-run once without a
    // deadline so a genuinely slow machine still completes (and report it).
    stuck_reruns_.fetch_add(1);
    // Drop the aborted attempt's partial telemetry so nothing is counted
    // twice; only the successful attempt reports.
    if (telemetry != nullptr) *telemetry = TaskTelemetry{};
    return attempt(false, telemetry);
  }
}

tls::fp::FingerprintDatabase LongitudinalStudy::build_database(
    const tls::clients::Catalog& catalog) {
  tls::fp::FingerprintDatabase db;
  tls::core::Rng rng(7);
  for (const auto& profile : catalog.profiles()) {
    for (const auto& cfg : profile.versions) {
      // Shuffling clients have no stable fingerprint to harvest.
      if (cfg.randomizes_cipher_order) continue;
      const auto hello = tls::clients::make_client_hello(cfg, rng, "db.test");
      const auto fp = tls::fp::extract_fingerprint(hello);
      db.add(fp, tls::fp::SoftwareLabel{profile.name, profile.cls,
                                        cfg.version_label, cfg.version_label});
    }
  }
  return db;
}

void LongitudinalStudy::run() {
  if (ran_) return;
  ran_ = true;
  // Deterministic shard plan: every month is split into a fixed number of
  // shards, each driving its own traffic generator (and fault injector)
  // seeded by rng_stream(seed, month, shard). The plan — shard counts,
  // stream seeds, and the (month, shard) merge order below — depends only
  // on StudyOptions, never on `threads`, which merely schedules the shard
  // tasks. Result: bit-identical figures at every thread count.
  const std::size_t shards =
      std::max<std::size_t>(1, options_.shards_per_month);
  const auto counts =
      tls::core::shard_counts(options_.connections_per_month, shards);

  struct ShardTask {
    Month month;
    std::size_t shard = 0;
    std::size_t count = 0;
  };
  std::vector<ShardTask> tasks;
  tasks.reserve(static_cast<std::size_t>(options_.window.size()) * shards);
  for (Month m = options_.window.begin_month; m <= options_.window.end_month;
       ++m) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (counts[s] > 0) tasks.push_back({m, s, counts[s]});
    }
  }

  ensure_journal();
  std::vector<std::unique_ptr<tls::notary::PassiveMonitor>> shard_monitors(
      tasks.size());
  const bool telemetry_on = options_.telemetry;
  std::vector<TaskTelemetry> task_telemetry(telemetry_on ? tasks.size() : 0);
  tls::core::ThreadPool pool(options_.threads);
  pool.run(tasks.size(), [&](std::size_t i) {
    const ShardTask& task = tasks[i];
    const auto month_index = static_cast<std::uint32_t>(task.month.index());
    const auto slot = static_cast<std::uint32_t>(task.shard);
    TaskTelemetry* tel = telemetry_on ? &task_telemetry[i] : nullptr;
    const auto lane_id = static_cast<std::uint32_t>(i + 1);  // 0 = study
    if (journal_ != nullptr) {
      // Resume path: a verified journal frame replaces the whole task.
      // Absorbing the decoded monitor is bit-identical to absorbing the
      // one that wrote the frame, so replayed and recomputed shards mix
      // freely without changing a single exported byte.
      if (const auto* payload = journal_->replayed(FrameKind::kPassiveShard,
                                                   month_index, slot)) {
        try {
          tls::telemetry::Span replay_span(tel ? &tel->trace : nullptr,
                                           "checkpoint_replay", "checkpoint",
                                           lane_id);
          shard_monitors[i] = std::make_unique<tls::notary::PassiveMonitor>(
              tls::notary::decode_monitor_state(*payload, &database_));
          journal_->note_task(true);
          return;
        } catch (const tls::wire::ParseError&) {
          // Framing verified but the payload didn't decode: quarantine and
          // fall through to an ordinary recompute.
          journal_->invalidate(FrameKind::kPassiveShard, month_index, slot);
        }
      }
    }
    auto mon = compute_shard(task.month, task.shard, task.count, tel, lane_id);
    if (journal_ != nullptr) {
      if (tel == nullptr) {
        journal_->append(FrameKind::kPassiveShard, month_index, slot,
                         tls::notary::encode_monitor_state(*mon));
      } else {
        const tls::telemetry::Stopwatch enc;
        const auto payload = tls::notary::encode_monitor_state(*mon);
        const std::uint64_t enc_us = enc.elapsed_us();
        tel->registry
            .histogram("tls_repro_checkpoint_encode_us",
                       tls::telemetry::duration_buckets_us(), "",
                       "Monitor-state snapshot encode time per frame")
            .record(enc_us);
        tls::telemetry::TraceEvent enc_event{
            "checkpoint_encode", "checkpoint", enc.start_us(), enc_us,
            lane_id,             {}};
        enc_event.args.emplace_back("bytes", payload.size());
        tel->trace.add(std::move(enc_event));
        const tls::telemetry::Stopwatch app;
        journal_->append(FrameKind::kPassiveShard, month_index, slot,
                         payload);
        const std::uint64_t app_us = app.elapsed_us();
        tel->registry
            .histogram("tls_repro_checkpoint_append_us",
                       tls::telemetry::duration_buckets_us(), "",
                       "Durable frame write+fsync time per frame")
            .record(app_us);
        tel->trace.add({"checkpoint_append", "checkpoint", app.start_us(),
                        app_us, lane_id, {}});
      }
      journal_->note_task(false);
    }
    shard_monitors[i] = std::move(mon);
  });
  // Phase boundary: everything the passive phase appended is durable (or
  // has been written through the degraded fallback) before we aggregate.
  if (journal_ != nullptr) journal_->flush();

  // Late aggregation in plan order — the only place shard results meet.
  {
    tls::telemetry::Span absorb_span(telemetry_on ? &trace_ : nullptr,
                                     "absorb", "passive", 0);
    for (const auto& mon : shard_monitors) {
      if (!telemetry_on) {
        monitor_->absorb(*mon);
        continue;
      }
      const tls::telemetry::Stopwatch sw;
      monitor_->absorb(*mon);
      metrics_
          .histogram("tls_repro_pipeline_absorb_us",
                     tls::telemetry::duration_buckets_us(), "",
                     "Shard-monitor merge time per absorbed shard")
          .record(sw.elapsed_us());
    }
  }
  // Fold the per-task telemetry islands in the same fixed plan order as
  // the monitors — the registry's merge is associative and commutative,
  // so the folded state is independent of which threads ran which tasks.
  for (auto& tel : task_telemetry) {
    metrics_.merge(tel.registry);
    trace_.append(std::move(tel.trace));
  }
  collect_run_metrics(pool);
}

void LongitudinalStudy::collect_run_metrics(const tls::core::ThreadPool& pool) {
  if (!options_.telemetry) return;
  // ---- observe-cache stat island (merged across shards by absorb) ----
  const auto& cs = monitor_->observe_cache_stats();
  const auto side = [&](const char* label,
                        const tls::notary::CacheSideStats& s) {
    const std::string lb = std::string("side=\"") + label + '"';
    const std::pair<const char*, std::uint64_t> counters[] = {
        {"tls_repro_observe_cache_hits_total", s.hits},
        {"tls_repro_observe_cache_misses_total", s.misses},
        {"tls_repro_observe_cache_inserts_total", s.inserts},
        {"tls_repro_observe_cache_evictions_total", s.evictions},
        {"tls_repro_observe_cache_flushes_total", s.flushes},
        {"tls_repro_observe_cache_collisions_total", s.collisions},
    };
    for (const auto& [name, v] : counters) {
      metrics_.counter(name, lb, "ObserveCache accounting, per side").value = v;
    }
  };
  side("client", cs.client);
  side("server", cs.server);
  metrics_
      .counter("tls_repro_observe_cache_bypasses_total", "",
               "Captures routed around the cache (fault-touched records)")
      .value = cs.bypasses;
  metrics_
      .counter("tls_repro_observe_cache_uncacheable_total", "",
               "Captures with no cacheable record shape")
      .value = cs.uncacheable;

  // ---- error taxonomy + quarantine ring ----
  for (std::size_t s = 0; s < tls::notary::kIngestStageCount; ++s) {
    const auto stage = static_cast<tls::notary::IngestStage>(s);
    const std::uint64_t n = monitor_->errors().stage_total(stage);
    if (n == 0) continue;
    std::string label = "stage=\"";
    label += tls::notary::ingest_stage_name(stage);
    label += '"';
    metrics_
        .counter("tls_repro_notary_parse_errors_total", label,
                 "Record parse failures, by ingest stage")
        .value = n;
  }
  const auto& ring = monitor_->quarantine();
  metrics_
      .gauge("tls_repro_quarantine_occupancy", "",
             "Quarantined records currently retained in the ring")
      .set(ring.size());
  metrics_
      .gauge("tls_repro_quarantine_capacity", "",
             "Quarantine ring capacity")
      .set(ring.capacity());
  metrics_
      .counter("tls_repro_quarantine_pushed_total", "",
               "Records ever quarantined (including evicted)")
      .value = ring.total_pushed();

  // ---- dataset totals ----
  metrics_
      .counter("tls_repro_notary_connections_total", "",
               "Connections the merged monitor ingested")
      .value = monitor_->total_connections();
  metrics_
      .counter("tls_repro_notary_fingerprintable_total", "",
               "Connections within the fingerprint-feature window")
      .value = monitor_->fingerprintable_connections();

  // ---- pool + watchdog accounting (wall-clock / schedule dependent) ----
  const auto ps = pool.stats();
  metrics_
      .counter("tls_repro_pool_tasks_total", "",
               "Task-grid indices executed by the thread pool")
      .value = ps.tasks;
  metrics_
      .counter("tls_repro_pool_busy_us", "",
               "Summed task-body wall time across lanes", /*timing=*/true)
      .value = ps.busy_us;
  metrics_
      .counter("tls_repro_pool_wall_us", "",
               "Summed run() grid durations", /*timing=*/true)
      .value = ps.wall_us;
  metrics_
      .gauge("tls_repro_pool_threads", "", "Configured worker threads",
             /*timing=*/true)
      .set(options_.threads);
  metrics_
      .counter("tls_repro_watchdog_stuck_reruns_total", "",
               "Shard attempts discarded by the stuck-shard watchdog",
               /*timing=*/true)
      .value = stuck_reruns_.load();

  // ---- journal health (writer histograms, IO taxonomy, torn bytes) ----
  if (journal_ != nullptr) journal_->collect_metrics(metrics_);

  // ---- checkpoint recovery (gauge semantics: refreshed, not summed) ----
  const auto rep = recovery();
  metrics_
      .gauge("tls_repro_checkpoint_frames_replayed", "",
             "Journal frames verified and replayed", /*timing=*/true)
      .set(rep.frames_replayed);
  metrics_
      .gauge("tls_repro_checkpoint_frames_quarantined", "",
             "Journal frames rejected (torn/corrupt/mismatched/duplicate)",
             /*timing=*/true)
      .set(rep.frames_torn + rep.frames_corrupt + rep.frames_mismatched +
           rep.frames_duplicate);
  metrics_
      .gauge("tls_repro_checkpoint_tasks_skipped", "",
             "Tasks satisfied from the journal", /*timing=*/true)
      .set(rep.tasks_skipped);
  metrics_
      .gauge("tls_repro_telemetry_partial", "",
             "1 when timings/fault counters cover only the resumed run's "
             "recomputed slice",
             /*timing=*/true)
      .set(rep.telemetry_partial ? 1 : 0);
  metrics_
      .gauge("tls_repro_checkpoint_groups_committed", "",
             "Journal groups committed (written this run + replayed)",
             /*timing=*/true)
      .set(rep.groups_committed);
  metrics_
      .gauge("tls_repro_checkpoint_fallback_frames", "",
             "Frames the degraded writer stored per-frame", /*timing=*/true)
      .set(rep.fallback_frames);
}

const tls::telemetry::MetricsRegistry& LongitudinalStudy::metrics() {
  run();
  return metrics_;
}

const tls::telemetry::TraceRecorder& LongitudinalStudy::trace() {
  run();
  return trace_;
}

const tls::notary::PassiveMonitor& LongitudinalStudy::monitor() {
  run();
  return *monitor_;
}

Series LongitudinalStudy::monthly_series(const std::string& name,
                                         const StatProjector& projector) {
  run();
  Series s;
  s.name = name;
  s.values.reserve(static_cast<std::size_t>(options_.window.size()));
  static const MonthlyStats kEmpty{};
  for (Month m = options_.window.begin_month; m <= options_.window.end_month;
       ++m) {
    const auto* stats = monitor_->month(m);
    s.values.push_back(projector(stats != nullptr ? *stats : kEmpty));
  }
  return s;
}

std::vector<std::string> LongitudinalStudy::export_figures(
    const std::string& directory) {
  std::filesystem::create_directories(directory);
  std::vector<std::string> written;
  const std::pair<const char*, MonthlyChart> figures[] = {
      {"fig1_versions.csv", figure1_versions()},
      {"fig2_cipher_classes.csv", figure2_negotiated_classes()},
      {"fig3_advertised.csv", figure3_advertised_classes()},
      {"fig4_fp_support.csv", figure4_fingerprint_support()},
      {"fig5_positions.csv", figure5_relative_positions()},
      {"fig6_rc4_advertised.csv", figure6_rc4_advertised()},
      {"fig7_weak_advertised.csv", figure7_weak_advertised()},
      {"fig8_key_exchange.csv", figure8_key_exchange()},
      {"fig9_aead_negotiated.csv", figure9_aead_negotiated()},
      {"fig10_aead_advertised.csv", figure10_aead_advertised()},
  };
  const bool telemetry_on = options_.telemetry;
  for (const auto& [name, chart] : figures) {
    const auto path = (std::filesystem::path(directory) / name).string();
    tls::telemetry::Span csv_span(telemetry_on ? &trace_ : nullptr,
                                  "csv_render", "export", 0);
    const tls::telemetry::Stopwatch sw;
    tls::analysis::write_csv_file(path, chart);
    if (telemetry_on) {
      metrics_
          .histogram("tls_repro_export_csv_us",
                     tls::telemetry::duration_buckets_us(), "",
                     "CSV figure render+write time per file")
          .record(sw.elapsed_us());
    }
    written.push_back(path);
  }
  const auto scan_path =
      (std::filesystem::path(directory) / "censys_scans.csv").string();
  // The pool-backed sweep folds per-(month, segment) probes in plan order,
  // so these bytes match the serial scan_range at any thread count.
  tls::core::ThreadPool pool(options_.threads);
  tls::telemetry::Span sweep_span(telemetry_on ? &trace_ : nullptr,
                                  "scan_sweep", "scan", 0);
  const auto range = tls::core::censys_window();
  ensure_journal();
  if (journal_ != nullptr) {
    // Journaled sweep: each (month, segment) probe is replayed from the
    // journal when a verified frame exists, recomputed (and appended)
    // otherwise, then everything folds through the identical plan-order
    // fold — the same bytes as the un-journaled sweep.
    const auto n_months = static_cast<std::size_t>(range.size());
    const std::size_t n_segments = servers_.segments().size();
    std::vector<tls::scan::SegmentProbe> probes(n_months * n_segments);
    // Per-probe telemetry islands (lock-free; folded in plan order below).
    std::vector<tls::telemetry::TraceRecorder> probe_traces(
        telemetry_on ? probes.size() : 0);
    std::vector<std::uint64_t> probe_us(telemetry_on ? probes.size() : 0);
    pool.run(probes.size(), [&](std::size_t i) {
      const auto mi = static_cast<int>(i / n_segments);
      const std::size_t si = i % n_segments;
      const auto month_index =
          static_cast<std::uint32_t>((range.begin_month + mi).index());
      const auto slot = static_cast<std::uint32_t>(si);
      tls::telemetry::TraceRecorder* rec =
          telemetry_on ? &probe_traces[i] : nullptr;
      if (const auto* payload =
              journal_->replayed(FrameKind::kScanSegment, month_index, slot)) {
        try {
          probes[i] = decode_segment_probe(*payload);
          journal_->note_task(true);
          return;
        } catch (const tls::wire::ParseError&) {
          journal_->invalidate(FrameKind::kScanSegment, month_index, slot);
        }
      }
      {
        tls::telemetry::Span probe_span(
            rec, "scan_probe", "scan", static_cast<std::uint32_t>(i + 1));
        probe_span.arg("month", month_index);
        probe_span.arg("segment", slot);
        const tls::telemetry::Stopwatch sw;
        probes[i] = scanner_->probe_segment(range.begin_month + mi, si,
                                            /*by_traffic=*/false);
        if (telemetry_on) probe_us[i] = sw.elapsed_us();
      }
      journal_->append(FrameKind::kScanSegment, month_index, slot,
                       encode_segment_probe(probes[i]));
      journal_->note_task(false);
    });
    journal_->flush();  // scan-phase frames durable before folding
    if (telemetry_on) {
      auto& hist = metrics_.histogram(
          "tls_repro_scan_probe_us", tls::telemetry::duration_buckets_us(),
          "", "Active-scan segment probe time per (month, segment)");
      for (std::size_t i = 0; i < probes.size(); ++i) {
        if (probe_us[i] > 0) hist.record(probe_us[i]);
        trace_.append(std::move(probe_traces[i]));
      }
    }
    tls::analysis::write_scan_csv_file(scan_path,
                                       scanner().fold_range(range, probes));
  } else {
    tls::analysis::write_scan_csv_file(scan_path,
                                       scanner().scan_range(range, pool));
  }
  sweep_span.close();
  if (telemetry_on) {
    // Fold this pool's accounting on top of run()'s (counter add).
    const auto ps = pool.stats();
    metrics_.counter("tls_repro_pool_tasks_total").add(ps.tasks);
    metrics_.counter("tls_repro_pool_busy_us", "", "", true).add(ps.busy_us);
    metrics_.counter("tls_repro_pool_wall_us", "", "", true).add(ps.wall_us);
  }
  written.push_back(scan_path);
  return written;
}

std::vector<std::pair<Month, char>> attack_markers() {
  std::vector<std::pair<Month, char>> out;
  const char* ids[] = {"lucky13", "rc4",        "snowden", "heartbleed",
                       "poodle",  "rc4_passwords", "rc4_nomore", "sweet32"};
  const char glyphs[] = {'l', 'r', 's', 'h', 'p', 'w', 'n', '3'};
  for (std::size_t i = 0; i < std::size(ids); ++i) {
    if (const auto* e = tls::core::find_event(ids[i])) {
      out.emplace_back(Month(e->date), glyphs[i]);
    }
  }
  return out;
}

namespace {

double pct_of(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : 100.0 * static_cast<double>(num) /
                        static_cast<double>(den);
}

double version_pct(const MonthlyStats& s, std::uint16_t version) {
  return pct_of(s.negotiated_version_count(version), s.successful);
}

}  // namespace

MonthlyChart LongitudinalStudy::figure1_versions() {
  MonthlyChart c;
  c.title = "Figure 1: Negotiated SSL/TLS versions (% monthly connections)";
  c.range = options_.window;
  c.markers = attack_markers();
  for (const auto& [version, name] :
       std::initializer_list<std::pair<std::uint16_t, const char*>>{
           {0x0300, "SSLv3"},
           {0x0301, "TLSv1.0"},
           {0x0302, "TLSv1.1"},
           {0x0303, "TLSv1.2"}}) {
    c.series.push_back(monthly_series(
        name, [version = version](const MonthlyStats& s) {
          return version_pct(s, version);
        }));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure2_negotiated_classes() {
  using tls::core::CipherClass;
  MonthlyChart c;
  c.title = "Figure 2: Negotiated RC4 / CBC / AEAD (% monthly connections)";
  c.range = options_.window;
  c.markers = attack_markers();
  for (const auto& [cls, name] :
       std::initializer_list<std::pair<CipherClass, const char*>>{
           {CipherClass::kAead, "AEAD"},
           {CipherClass::kCbc, "CBC"},
           {CipherClass::kRc4, "RC4"}}) {
    c.series.push_back(
        monthly_series(name, [cls = cls](const MonthlyStats& s) {
          return pct_of(s.negotiated_class_count(cls), s.successful);
        }));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure3_advertised_classes() {
  MonthlyChart c;
  c.title =
      "Figure 3: Clients advertising RC4 / DES / 3DES / AEAD (% monthly "
      "connections)";
  c.range = options_.window;
  c.markers = attack_markers();
  c.series.push_back(monthly_series("AEAD", [](const MonthlyStats& s) {
    return s.pct(s.adv_aead);
  }));
  c.series.push_back(monthly_series("RC4", [](const MonthlyStats& s) {
    return s.pct(s.adv_rc4);
  }));
  c.series.push_back(monthly_series("DES", [](const MonthlyStats& s) {
    return s.pct(s.adv_des);
  }));
  c.series.push_back(monthly_series("3DES", [](const MonthlyStats& s) {
    return s.pct(s.adv_3des);
  }));
  return c;
}

MonthlyChart LongitudinalStudy::figure4_fingerprint_support() {
  MonthlyChart c;
  c.title =
      "Figure 4: Distinct monthly fingerprints supporting RC4 / DES / 3DES "
      "/ AEAD (%)";
  c.range = {tls::notary::PassiveMonitor::fp_start(),
             options_.window.end_month};
  const auto fp_pct = [](const MonthlyStats& s, std::uint8_t flag) {
    if (s.fingerprints.empty()) return 0.0;
    std::size_t n = 0;
    for (const auto& [hash, flags] : s.fingerprints) {
      if ((flags & flag) != 0) ++n;
    }
    return 100.0 * static_cast<double>(n) /
           static_cast<double>(s.fingerprints.size());
  };
  run();
  for (const auto& [flag, name] :
       std::initializer_list<std::pair<std::uint8_t, const char*>>{
           {tls::notary::kFpAead, "AEAD"},
           {tls::notary::kFpRc4, "RC4"},
           {tls::notary::kFpDes, "DES"},
           {tls::notary::kFp3Des, "3DES"}}) {
    Series s;
    s.name = name;
    static const MonthlyStats kEmpty{};
    for (Month m = c.range.begin_month; m <= c.range.end_month; ++m) {
      const auto* stats = monitor_->month(m);
      s.values.push_back(fp_pct(stats != nullptr ? *stats : kEmpty, flag));
    }
    c.series.push_back(std::move(s));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure5_relative_positions() {
  MonthlyChart c;
  c.title =
      "Figure 5: Average relative position of first AEAD/CBC/RC4/DES/3DES "
      "cipher (%)";
  c.range = {tls::notary::PassiveMonitor::fp_start(),
             options_.window.end_month};
  run();
  using Getter = const tls::notary::PositionAccumulator& (*)(const MonthlyStats&);
  const std::pair<const char*, Getter> defs[] = {
      {"AEAD", [](const MonthlyStats& s) -> const tls::notary::PositionAccumulator& { return s.pos_aead; }},
      {"CBC", [](const MonthlyStats& s) -> const tls::notary::PositionAccumulator& { return s.pos_cbc; }},
      {"RC4", [](const MonthlyStats& s) -> const tls::notary::PositionAccumulator& { return s.pos_rc4; }},
      {"DES", [](const MonthlyStats& s) -> const tls::notary::PositionAccumulator& { return s.pos_des; }},
      {"3DES", [](const MonthlyStats& s) -> const tls::notary::PositionAccumulator& { return s.pos_3des; }},
  };
  static const MonthlyStats kEmpty{};
  for (const auto& [name, getter] : defs) {
    Series s;
    s.name = name;
    for (Month m = c.range.begin_month; m <= c.range.end_month; ++m) {
      const auto* stats = monitor_->month(m);
      s.values.push_back(getter(stats != nullptr ? *stats : kEmpty).average() *
                         100.0);
    }
    c.series.push_back(std::move(s));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure6_rc4_advertised() {
  MonthlyChart c;
  c.title =
      "Figure 6: Connections where the client advertises RC4 (% monthly)";
  c.range = options_.window;
  c.markers = attack_markers();
  c.series.push_back(monthly_series("RC4 advertised", [](const MonthlyStats& s) {
    return s.pct(s.adv_rc4);
  }));
  return c;
}

MonthlyChart LongitudinalStudy::figure7_weak_advertised() {
  MonthlyChart c;
  c.title =
      "Figure 7: Clients advertising Export / Anonymous / NULL ciphers (% "
      "monthly connections)";
  c.range = options_.window;
  c.series.push_back(monthly_series("Export", [](const MonthlyStats& s) {
    return s.pct(s.adv_export);
  }));
  c.series.push_back(monthly_series("Anonymous", [](const MonthlyStats& s) {
    return s.pct(s.adv_anon);
  }));
  c.series.push_back(monthly_series("Null", [](const MonthlyStats& s) {
    return s.pct(s.adv_null);
  }));
  c.y_max = 40;
  return c;
}

MonthlyChart LongitudinalStudy::figure8_key_exchange() {
  using tls::core::KexClass;
  MonthlyChart c;
  c.title =
      "Figure 8: Negotiated RSA / DHE / ECDHE key exchange (% monthly "
      "connections)";
  c.range = options_.window;
  if (const auto* e = tls::core::find_event("snowden")) {
    c.markers.emplace_back(Month(e->date), 's');
  }
  for (const auto& [cls, name] :
       std::initializer_list<std::pair<KexClass, const char*>>{
           {KexClass::kDhe, "DHE"},
           {KexClass::kEcdhe, "ECDHE"},
           {KexClass::kRsa, "RSA"}}) {
    c.series.push_back(
        monthly_series(name, [cls = cls](const MonthlyStats& s) {
          // TLS 1.3 connections always use an ephemeral (EC)DHE exchange.
          if (cls == KexClass::kEcdhe) {
            return pct_of(s.negotiated_kex_count(KexClass::kEcdhe) +
                              s.negotiated_kex_count(KexClass::kTls13),
                          s.successful);
          }
          return pct_of(s.negotiated_kex_count(cls), s.successful);
        }));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure9_aead_negotiated() {
  using tls::core::AeadKind;
  MonthlyChart c;
  c.title =
      "Figure 9: Negotiated AEAD ciphers (% monthly connections)";
  c.range = options_.window;
  c.series.push_back(monthly_series("AEAD Total", [](const MonthlyStats& s) {
    return pct_of(s.negotiated_class_count(tls::core::CipherClass::kAead),
                  s.successful);
  }));
  for (const auto& [kind, name] :
       std::initializer_list<std::pair<AeadKind, const char*>>{
           {AeadKind::kAes128Gcm, "AES128-GCM"},
           {AeadKind::kAes256Gcm, "AES256-GCM"},
           {AeadKind::kChaCha20Poly1305, "ChaCha20-Poly1305"}}) {
    c.series.push_back(
        monthly_series(name, [kind = kind](const MonthlyStats& s) {
          return pct_of(s.negotiated_aead_count(kind), s.successful);
        }));
  }
  return c;
}

MonthlyChart LongitudinalStudy::figure10_aead_advertised() {
  MonthlyChart c;
  c.title =
      "Figure 10: Connections advertising AES-GCM / ChaCha20-Poly1305 / "
      "AES-CCM (% monthly)";
  c.range = options_.window;
  c.series.push_back(monthly_series("AES128-GCM", [](const MonthlyStats& s) {
    return s.pct(s.adv_aes128gcm);
  }));
  c.series.push_back(monthly_series("AES256-GCM", [](const MonthlyStats& s) {
    return s.pct(s.adv_aes256gcm);
  }));
  c.series.push_back(
      monthly_series("ChaCha20-Poly1305", [](const MonthlyStats& s) {
        return s.pct(s.adv_chacha);
      }));
  c.series.push_back(monthly_series("AES-CCM", [](const MonthlyStats& s) {
    return s.pct(s.adv_ccm);
  }));
  return c;
}

}  // namespace tls::study
