// LongitudinalStudy — the paper's end-to-end pipeline as a single API:
//   build the client catalog  -> harvest the fingerprint database (§4)
//   build the server population
//   generate the connection stream -> feed the passive monitor (§5, §6)
//   sweep the server population with the active scanner (§3.2)
// and expose one accessor per paper figure/table. This is the library's
// primary public entry point; the bench binaries are thin wrappers over it.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/render.hpp"
#include "clients/catalog.hpp"
#include "core/checkpoint.hpp"
#include "faults/injector.hpp"
#include "fingerprint/database.hpp"
#include "notary/monitor.hpp"
#include "population/market.hpp"
#include "population/traffic.hpp"
#include "scan/scanner.hpp"
#include "servers/population.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace tls::core {
class ThreadPool;
}

namespace tls::study {

struct StudyOptions {
  std::uint64_t seed = 42;
  /// Synthetic connections generated per month. The paper's dataset is
  /// ~10^9/month; every figure is a percentage, so this only sets noise.
  std::size_t connections_per_month = 20000;
  tls::core::MonthRange window = tls::core::notary_window();
  /// Full catalog includes the ~1,684-fingerprint Table-2 expansion;
  /// disable for fast tests.
  bool full_catalog = true;
  /// Chaos tap for the passive plane: when any rate is non-zero, every
  /// serialized capture passes through a FaultInjector seeded with
  /// `fault_seed` before reaching the monitor. All-zero (default) keeps
  /// the pipeline byte-identical to the fault-free build.
  tls::faults::FaultConfig faults{};
  std::uint64_t fault_seed = 0xc4a05;
  /// Network model + retry budget for the active plane (default: ideal).
  tls::scan::ScanPolicy scan_policy{};
  /// Worker threads for the sharded runner. 0 (default) keeps everything
  /// on the calling thread. Any value yields the same bytes: the shard
  /// plan, the per-shard rng_stream(seed, month, shard) derivations, and
  /// the (month, shard) merge order are all independent of thread count,
  /// which only decides how shards are scheduled.
  unsigned threads = 0;
  /// Fixed shard fan-out per month. Part of the deterministic shard plan
  /// (it changes which rng stream feeds each connection), so changing it
  /// changes the sampled stream — changing `threads` never does.
  std::size_t shards_per_month = 8;
  /// Per-side capacity of each shard monitor's ObserveCache (0 disables).
  /// Cache state never changes any exported byte — only throughput.
  std::size_t observe_cache_entries = tls::notary::ObserveCache::kDefaultCapacity;
  /// Struct-reuse fast path for fault-free observations (see
  /// PassiveMonitor::observe). Off forces the serialize→parse byte path;
  /// outputs are identical either way.
  bool fast_observe = true;
  /// Producer-side template cache (tls::population::GenCache): compiled
  /// hello wire templates + memoized negotiation plans. Off forces the
  /// build-from-scratch path; the RNG stream and every exported byte are
  /// identical either way (tested across threads and fault rates), so —
  /// like the observe-cache knobs above — it is excluded from
  /// options_digest and a checkpointed run may resume with it flipped.
  bool gen_cache = true;
  /// Unified telemetry: collect the metrics registry and pipeline spans
  /// during run()/export_figures(). Observability only — enabling it may
  /// not change a single exported CSV byte at any thread count or fault
  /// rate (tested); wall-clock readings are confined to the metrics/trace
  /// artifacts. Off (default) keeps the hot path on the compiled-in no-op
  /// sink: null handles, one branch per event, no clock reads.
  bool telemetry = false;

  // ---- durable checkpoint/resume (off by default; no byte may change
  //      whether checkpointing is on, off, or resumed mid-run) ----
  /// Journal directory; empty disables checkpointing entirely.
  std::string checkpoint_dir{};
  /// Replay a compatible journal found in checkpoint_dir instead of wiping
  /// it. Frames that fail verification are quarantined and recomputed.
  bool resume = false;
  /// Cooperative stuck-shard watchdog: a passive shard task exceeding this
  /// budget (microseconds of wall clock) is discarded mid-generation and
  /// re-run once from scratch; the rerun is exempt so a slow machine can
  /// still finish. 0 disables.
  std::uint64_t task_deadline_us = 0;
  /// Chaos tap for the journal itself (frame_* rates): soak-tests the
  /// torn/corrupt/duplicate recovery paths. All-zero (default) keeps the
  /// journal bytes pristine.
  tls::faults::FaultConfig checkpoint_faults{};
  std::uint64_t checkpoint_fault_seed = 0x57a7e;
  /// Test seam: SIGKILL the process after this many durable frame appends
  /// (1-based; 0 disables). Drives the crash-matrix tests and CI job.
  std::size_t checkpoint_kill_after_frames = 0;
  /// Test seam: SIGTERM the process (via ::kill, so a sigwait watcher
  /// thread receives it) after this many frame appends — durable or still
  /// lingering in an uncommitted group (1-based; 0 disables). Drives the
  /// signal-drain lane: the watcher must drain_checkpoint() and exit 0
  /// without losing the in-flight group.
  std::size_t checkpoint_term_after_frames = 0;
  /// Ceiling on a replayed frame's declared payload length. Frames
  /// announcing more are quarantined as corrupt before any allocation
  /// (hostile-length defense for the journal replay path). Replay-side
  /// only — like every checkpoint knob it is excluded from
  /// options_digest and never changes an exported byte.
  std::uint32_t checkpoint_max_frame_bytes = kDefaultMaxFramePayload;
  /// How completed frames reach durable storage. kGrouped (default)
  /// batches frames through the group-commit segmented journal — one
  /// fsync per group instead of per frame; kPerFrame is the legacy
  /// one-durable-file-per-frame store. Like every checkpoint knob, the
  /// mode and the group_* tunables below are EXCLUDED from
  /// options_digest: they never change an exported byte, so switching
  /// them must not orphan a journal (replay reads both stores).
  JournalMode journal_mode = JournalMode::kGrouped;
  /// Grouped mode: flush when this many frames are pending...
  std::size_t journal_group_frames = 64;
  /// ...or when the oldest pending frame is this old (ms), whichever
  /// comes first. The linger bounds how much completed work a crash can
  /// lose to an uncommitted group; lost frames are recomputed, so the
  /// default favors fsync amortization over a tighter window.
  std::uint64_t journal_group_ms = 50;
};

class LongitudinalStudy {
 public:
  explicit LongitudinalStudy(StudyOptions options = {});

  /// Runs the passive pipeline (idempotent; called lazily by accessors).
  void run();

  [[nodiscard]] const tls::clients::Catalog& catalog() const { return catalog_; }
  [[nodiscard]] const tls::fp::FingerprintDatabase& database() const {
    return database_;
  }
  [[nodiscard]] const tls::servers::ServerPopulation& servers() const {
    return servers_;
  }
  [[nodiscard]] const tls::notary::PassiveMonitor& monitor();
  [[nodiscard]] const tls::scan::ActiveScanner& scanner() const {
    return *scanner_;
  }
  [[nodiscard]] const StudyOptions& options() const { return options_; }

  /// Journal replay + watchdog accounting for the last run()/export. All
  /// zeros (resumed=false) when checkpointing is disabled.
  [[nodiscard]] tls::analysis::RecoveryReport recovery() const;

  /// Blocks until every checkpoint frame appended so far is durable:
  /// flushes the group-commit writer's linger buffer and fsyncs. No-op
  /// when checkpointing is off. Safe to call from a signal-watcher thread
  /// while run() is still appending on workers — this is the graceful
  /// SIGINT/SIGTERM hook (a clean Ctrl-C must never lose the in-flight
  /// group; only SIGKILL may).
  void drain_checkpoint();

  // ---- telemetry artifacts (populated when options.telemetry is set) ----
  /// The merged metrics registry: per-shard registries folded in plan
  /// order, plus the post-run stat collection (cache, taxonomy,
  /// quarantine, pool, recovery). Empty when telemetry is off.
  [[nodiscard]] const tls::telemetry::MetricsRegistry& metrics();
  /// Pipeline spans in plan order (one trace lane per shard task, lane 0
  /// for study-level phases). Empty when telemetry is off.
  [[nodiscard]] const tls::telemetry::TraceRecorder& trace();

  // ---- passive figures (monthly percentage series over options.window) --
  [[nodiscard]] tls::analysis::MonthlyChart figure1_versions();
  [[nodiscard]] tls::analysis::MonthlyChart figure2_negotiated_classes();
  [[nodiscard]] tls::analysis::MonthlyChart figure3_advertised_classes();
  [[nodiscard]] tls::analysis::MonthlyChart figure4_fingerprint_support();
  [[nodiscard]] tls::analysis::MonthlyChart figure5_relative_positions();
  [[nodiscard]] tls::analysis::MonthlyChart figure6_rc4_advertised();
  [[nodiscard]] tls::analysis::MonthlyChart figure7_weak_advertised();
  [[nodiscard]] tls::analysis::MonthlyChart figure8_key_exchange();
  [[nodiscard]] tls::analysis::MonthlyChart figure9_aead_negotiated();
  [[nodiscard]] tls::analysis::MonthlyChart figure10_aead_advertised();

  /// Generic monthly percentage series from a MonthlyStats projection.
  using StatProjector =
      std::function<double(const tls::notary::MonthlyStats&)>;
  [[nodiscard]] tls::analysis::Series monthly_series(
      const std::string& name, const StatProjector& projector);

  /// Writes all ten figures plus the active-scan series as CSV files into
  /// `directory` (created if absent). Returns the file paths written.
  std::vector<std::string> export_figures(const std::string& directory);

  /// Builds the labeled fingerprint database exactly as §4 does: run the
  /// extractor over every catalog config and insert with collision rules.
  static tls::fp::FingerprintDatabase build_database(
      const tls::clients::Catalog& catalog);

 private:
  StudyOptions options_;
  tls::clients::Catalog catalog_;
  tls::fp::FingerprintDatabase database_;
  tls::servers::ServerPopulation servers_;
  std::unique_ptr<tls::population::MarketModel> market_;
  std::unique_ptr<tls::notary::PassiveMonitor> monitor_;
  std::unique_ptr<tls::scan::ActiveScanner> scanner_;
  std::unique_ptr<RunJournal> journal_;
  std::unique_ptr<tls::faults::FaultInjector> frame_injector_;
  std::atomic<std::uint64_t> stuck_reruns_{0};
  /// One TrafficGenerator per worker thread, reused (re-seeded) across
  /// shard tasks so the gen-cache templates compile once per worker, not
  /// once per task. Guarded by worker_gen_mutex_ for slot creation; each
  /// thread only ever touches its own generator.
  std::mutex worker_gen_mutex_;
  std::unordered_map<std::thread::id,
                     std::unique_ptr<tls::population::TrafficGenerator>>
      worker_gens_;
  bool ran_ = false;
  tls::telemetry::MetricsRegistry metrics_;
  tls::telemetry::TraceRecorder trace_;

  /// Per-shard-task telemetry island: written lock-free by whichever
  /// thread runs the task, folded into metrics_/trace_ in plan order.
  struct TaskTelemetry {
    tls::telemetry::MetricsRegistry registry;
    tls::telemetry::TraceRecorder trace;
  };

  /// Lazily opens (and replays) the journal; no-op without checkpoint_dir.
  void ensure_journal();
  /// Returns this worker thread's reusable generator (created on first
  /// use). Callers must reseed() it before generating.
  tls::population::TrafficGenerator& worker_generator();
  /// One passive (month, shard) task under the watchdog; returns the
  /// shard's monitor (rerun once if the first attempt blows the deadline).
  /// `telemetry` (nullable) receives the successful attempt's metrics and
  /// spans; `lane` is the trace lane (task index).
  std::unique_ptr<tls::notary::PassiveMonitor> compute_shard(
      tls::core::Month month, std::size_t shard, std::size_t count,
      TaskTelemetry* telemetry, std::uint32_t lane);
  /// Post-run stat collection: migrates the subsystem stat islands (cache,
  /// taxonomy, quarantine, monitor totals, pool accounting, recovery)
  /// onto the registry. No-op when telemetry is off.
  void collect_run_metrics(const tls::core::ThreadPool& pool);
};

/// The study's standard attack markers for charts (Figs. 1, 2, 3, 6).
std::vector<std::pair<tls::core::Month, char>> attack_markers();

}  // namespace tls::study
