#include "daemon/capture.hpp"

#include "handshake/negotiate.hpp"
#include "wire/server_key_exchange.hpp"

namespace tls::daemon {

CapturePayload capture_from_event(
    const tls::population::ConnectionEvent& event) {
  CapturePayload capture;
  capture.month_index = static_cast<std::uint32_t>(event.month.index());
  capture.day = event.day;
  capture.sslv2 = event.sslv2;
  if (event.sslv2) return capture;  // hello is not set for SSLv2 residue
  capture.success = event.result.success;
  capture.used_fallback = event.used_fallback;
  if (!event.client_record.empty()) {
    capture.client = event.client_record;
  } else {
    event.hello.serialize_record_into(capture.client);
  }
  if (event.result.server_hello.has_value()) {
    const auto& sh = *event.result.server_hello;
    sh.serialize_record_into(capture.server);
    // Pre-1.3 EC handshakes carry the chosen curve in ServerKeyExchange —
    // same condition as the monitor's serialization path.
    if (event.result.negotiated_group != 0 &&
        !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
      tls::wire::EcdheServerKeyExchange::stub(event.result.negotiated_group)
          .serialize_record_into(sh.legacy_version, capture.ske);
    }
  }
  if (!event.result.success &&
      event.result.failure != tls::handshake::FailureReason::kNone) {
    tls::handshake::alert_for(event.result.failure)
        .serialize_record_into(0x0301, capture.alert);
  }
  return capture;
}

}  // namespace tls::daemon
