// Bridges the synthetic traffic plane to the daemon wire protocol:
// serializes one generated ConnectionEvent into the CapturePayload a live
// sensor would ship. The record bytes follow EXACTLY the recipe of
// PassiveMonitor::observe's byte path (monitor.cpp) — client record from
// the event (or re-serialized hello), ServerHello, the pre-1.3
// ServerKeyExchange stub, and the failure alert — so a stream ingested
// through the daemon is byte-for-byte the stream batch mode observes.
// That equivalence is what the determinism acceptance test pins.
#pragma once

#include "daemon/protocol.hpp"
#include "population/traffic.hpp"

namespace tls::daemon {

[[nodiscard]] CapturePayload capture_from_event(
    const tls::population::ConnectionEvent& event);

}  // namespace tls::daemon
