#include "daemon/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/journal.hpp"
#include "notary/observe_cache.hpp"
#include "notary/snapshot.hpp"
#include "telemetry/export.hpp"

namespace tls::daemon {
namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_ms() { return now_us() / 1000; }

tls::core::Month month_from_index(std::uint32_t index) {
  return tls::core::Month(static_cast<int>(index / 12),
                          static_cast<int>(index % 12) + 1);
}

}  // namespace

struct NotaryDaemon::AtomicCounters {
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> credit_violations{0};
  std::atomic<std::uint64_t> frame_errors{0};
  std::atomic<std::uint64_t> idle_timeouts{0};
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> sslv2{0};
  std::atomic<std::uint64_t> checkpoint_epochs{0};
};

struct NotaryDaemon::Job {
  CapturePayload capture;
  std::uint64_t conn_id = 0;
  std::uint64_t admit_us = 0;
};

struct NotaryDaemon::Shard {
  // Admission plane: the bounded queue. Locked by the event thread (push)
  // and this shard's worker (pop) only — observes never block admission.
  std::mutex queue_mutex;
  std::condition_variable cv;
  std::deque<Job> queue;

  // Observe plane: exclusive monitor access for the worker; checkpoint
  // aggregation and query serving take it briefly.
  std::mutex monitor_mutex;
  std::unique_ptr<tls::notary::PassiveMonitor> monitor;

  // Telemetry island, merged on demand.
  std::mutex telemetry_mutex;
  tls::telemetry::MetricsRegistry registry;
  tls::telemetry::Histogram* latency = nullptr;
};

struct NotaryDaemon::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  CreditGate gate;
  std::vector<std::uint8_t> outbound;
  std::size_t out_off = 0;
  std::uint64_t last_progress_ms = 0;
  bool pending_close = false;
  /// Month of the last well-formed capture — the best anchor we have for
  /// quarantining this connection's later wire-level garbage.
  tls::core::Month last_month{2012, 1};

  Connection(int fd_, std::uint64_t id_, std::uint32_t max_frame,
             std::uint32_t window, std::uint64_t now)
      : fd(fd_), id(id_), decoder(max_frame), gate(window),
        last_progress_ms(now) {}
};

struct NotaryDaemon::JournalPlane {
  explicit JournalPlane(const std::string& dir) : backend(dir) {}
  tls::study::PosixJournalBackend backend;
  std::unique_ptr<tls::study::GroupCommitWriter> writer;
};

NotaryDaemon::NotaryDaemon(DaemonConfig config)
    : config_(std::move(config)),
      counters_(std::make_unique<AtomicCounters>()) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shard_queue_depth == 0) config_.shard_queue_depth = 1;
  if (config_.credit_window == 0) config_.credit_window = 1;
}

NotaryDaemon::~NotaryDaemon() {
  request_stop();
  join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
}

bool NotaryDaemon::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad bind address: " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    last_error_ = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  wake_rx_ = pipefd[0];
  wake_tx_ = pipefd[1];

  if (!config_.checkpoint_dir.empty() && !open_journal()) return false;

  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->monitor =
        std::make_unique<tls::notary::PassiveMonitor>(config_.database);
    shard->monitor->set_observe_cache_capacity(config_.observe_cache_entries);
    shard->latency = &shard->registry.histogram(
        "tls_repro_daemon_ingest_latency_us",
        tls::telemetry::duration_buckets_us(), {},
        "Admission-to-observe latency of ingested captures", true);
    shards_.push_back(std::move(shard));
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
  return true;
}

bool NotaryDaemon::open_journal() {
  journal_ = std::make_unique<JournalPlane>(config_.checkpoint_dir);
  auto segments = journal_->backend.list_segments();
  std::sort(segments.begin(), segments.end());
  std::uint32_t next_segment = 1;
  if (!segments.empty()) next_segment = segments.back() + 1;

  if (config_.resume) {
    // Scan-is-ground-truth replay: every checksummed group in every
    // segment is a candidate; the newest valid epoch frame wins. Torn
    // tails and foreign frames are simply skipped — worst case the daemon
    // falls back one epoch and the sensors re-send.
    std::vector<std::uint8_t> best_payload;
    std::uint64_t best_slot = 0;
    bool found = false;
    for (auto id : segments) {
      std::vector<std::uint8_t> bytes;
      if (!journal_->backend.read_segment(id, bytes)) continue;
      auto scan = tls::study::scan_segment(bytes);
      for (const auto& frame_bytes : scan.frames) {
        try {
          auto frame = tls::study::decode_frame(frame_bytes);
          if (frame.options_digest != kDaemonOptionsDigest) continue;
          if (frame.header.kind != tls::study::FrameKind::kPassiveShard)
            continue;
          if (!found || frame.header.slot >= best_slot) {
            best_slot = frame.header.slot;
            best_payload = std::move(frame.payload);
            found = true;
          }
        } catch (const tls::wire::ParseError&) {
          // Corrupt frame inside a valid group: skip, older epochs remain.
        }
      }
    }
    if (found) {
      try {
        baseline_ = std::make_unique<tls::notary::PassiveMonitor>(
            tls::notary::decode_monitor_state(best_payload, config_.database));
        resumed_epoch_ = best_slot;
        epoch_ = best_slot;
      } catch (const tls::wire::ParseError&) {
        baseline_.reset();
      }
    }
  } else {
    for (auto id : segments) journal_->backend.remove_segment(id);
    journal_->backend.clear_index();
    next_segment = 1;
  }

  tls::study::GroupCommitWriter::Config wcfg;
  wcfg.group_frames = config_.journal_group_frames;
  wcfg.group_ms = config_.journal_group_ms;
  wcfg.options_digest = kDaemonOptionsDigest;
  wcfg.first_segment_id = next_segment;
  wcfg.fallback_dir = config_.checkpoint_dir + "/fallback";
  journal_->writer = std::make_unique<tls::study::GroupCommitWriter>(
      &journal_->backend, wcfg, nullptr);
  return true;
}

void NotaryDaemon::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void NotaryDaemon::wake() {
  if (wake_tx_ < 0) return;
  const std::uint8_t byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] auto n = ::write(wake_tx_, &byte, 1);
}

void NotaryDaemon::join() {
  if (event_thread_.joinable()) event_thread_.join();
}

DaemonCounters NotaryDaemon::counters() const {
  DaemonCounters c;
  c.offered = counters_->offered.load(std::memory_order_relaxed);
  c.admitted = counters_->admitted.load(std::memory_order_relaxed);
  c.ingested = counters_->ingested.load(std::memory_order_relaxed);
  c.shed = counters_->shed.load(std::memory_order_relaxed);
  c.malformed = counters_->malformed.load(std::memory_order_relaxed);
  c.credit_violations =
      counters_->credit_violations.load(std::memory_order_relaxed);
  c.frame_errors = counters_->frame_errors.load(std::memory_order_relaxed);
  c.idle_timeouts = counters_->idle_timeouts.load(std::memory_order_relaxed);
  c.connections_accepted =
      counters_->connections_accepted.load(std::memory_order_relaxed);
  c.connections_closed =
      counters_->connections_closed.load(std::memory_order_relaxed);
  c.sslv2 = counters_->sslv2.load(std::memory_order_relaxed);
  c.checkpoint_epochs =
      counters_->checkpoint_epochs.load(std::memory_order_relaxed);
  return c;
}

namespace {

/// Upper-bound quantile from histogram buckets: the smallest bucket bound
/// covering fraction `q` of the samples (conservative — never understates).
std::uint64_t bucket_quantile(const tls::telemetry::Histogram& h, double q) {
  if (h.count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (seen >= target) {
      return i < h.bounds.size() ? h.bounds[i] : h.max;
    }
  }
  return h.max;
}

}  // namespace

std::string NotaryDaemon::stats_text() {
  const DaemonCounters c = counters();
  std::uint64_t quarantined = 0;
  {
    std::lock_guard<std::mutex> lock(wire_mutex_);
    quarantined = wire_quarantine_.total_pushed();
  }
  tls::telemetry::Histogram latency;
  latency.bounds = tls::telemetry::duration_buckets_us();
  latency.counts.assign(latency.bounds.size() + 1, 0);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->telemetry_mutex);
    latency.merge(*shard->latency);
  }
  std::ostringstream out;
  out << "admitted=" << c.admitted << '\n'
      << "checkpoint_epochs=" << c.checkpoint_epochs << '\n'
      << "connections_accepted=" << c.connections_accepted << '\n'
      << "connections_closed=" << c.connections_closed << '\n'
      << "credit_violations=" << c.credit_violations << '\n'
      << "frame_errors=" << c.frame_errors << '\n'
      << "idle_timeouts=" << c.idle_timeouts << '\n'
      << "ingest_p50_us=" << bucket_quantile(latency, 0.50) << '\n'
      << "ingest_p99_us=" << bucket_quantile(latency, 0.99) << '\n'
      << "ingest_p999_us=" << bucket_quantile(latency, 0.999) << '\n'
      << "ingested=" << c.ingested << '\n'
      << "malformed=" << c.malformed << '\n'
      << "offered=" << c.offered << '\n'
      << "resumed_epoch=" << resumed_epoch_ << '\n'
      << "shed=" << c.shed << '\n'
      << "sslv2=" << c.sslv2 << '\n'
      << "wire_quarantined=" << quarantined << '\n';
  return out.str();
}

tls::telemetry::MetricsRegistry NotaryDaemon::merged_metrics() {
  tls::telemetry::MetricsRegistry reg;
  const DaemonCounters c = counters();
  const auto add = [&reg](const char* name, const char* help,
                          std::uint64_t value) {
    reg.counter(name, {}, help).add(value);
  };
  add("tls_repro_daemon_offered_total", "Captures offered by clients",
      c.offered);
  add("tls_repro_daemon_admitted_total", "Captures admitted to a shard queue",
      c.admitted);
  add("tls_repro_daemon_ingested_total", "Captures observed by a shard",
      c.ingested);
  add("tls_repro_daemon_shed_total",
      "Captures refused admission (queue full or credit violation)", c.shed);
  add("tls_repro_daemon_malformed_total",
      "Checksum-valid frames whose capture payload failed to parse",
      c.malformed);
  add("tls_repro_daemon_credit_violations_total",
      "Captures sent past the granted credit window", c.credit_violations);
  add("tls_repro_daemon_frame_errors_total",
      "Connections dropped for wire-framing violations", c.frame_errors);
  add("tls_repro_daemon_idle_timeouts_total",
      "Connections dropped mid-frame by the slow-loris guard",
      c.idle_timeouts);
  add("tls_repro_daemon_connections_total", "Connections accepted",
      c.connections_accepted);
  add("tls_repro_daemon_checkpoint_epochs_total",
      "Aggregate checkpoint epochs committed to the journal",
      c.checkpoint_epochs);
  {
    std::lock_guard<std::mutex> lock(wire_mutex_);
    for (std::size_t s = 0; s < tls::notary::kIngestStageCount; ++s) {
      for (std::size_t e = 0; e < tls::wire::kParseErrorCodeCount; ++e) {
        const auto stage = static_cast<tls::notary::IngestStage>(s);
        const auto code = static_cast<tls::wire::ParseErrorCode>(e);
        const std::uint64_t n = wire_errors_.count(stage, code);
        if (n == 0) continue;
        std::string labels = "stage=\"";
        labels += tls::notary::ingest_stage_name(stage);
        labels += "\",code=\"";
        labels += tls::wire::parse_error_code_name(code);
        labels += "\"";
        reg.counter("tls_repro_daemon_wire_errors_total", labels,
                    "Wire-level decode failures by stage and code")
            .add(n);
      }
    }
    reg.gauge("tls_repro_daemon_quarantine_pushed", {},
              "Total wire-level records quarantined")
        .set(wire_quarantine_.total_pushed());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto& shard = *shards_[i];
    {
      std::lock_guard<std::mutex> lock(shard.telemetry_mutex);
      reg.merge(shard.registry);
    }
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      depth = shard.queue.size();
    }
    reg.gauge("tls_repro_daemon_queue_depth",
              "shard=\"" + std::to_string(i) + "\"",
              "Shard ingest-queue occupancy at scrape time", true)
        .set(depth);
  }
  return reg;
}

tls::notary::PassiveMonitor NotaryDaemon::aggregate_locked() {
  tls::notary::PassiveMonitor aggregate(config_.database);
  if (baseline_) aggregate.absorb(*baseline_);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->monitor_mutex);
    aggregate.absorb(*shard->monitor);
  }
  return aggregate;
}

tls::notary::PassiveMonitor NotaryDaemon::aggregate_monitor() {
  return aggregate_locked();
}

void NotaryDaemon::checkpoint_epoch(bool final_epoch) {
  if (!journal_ || !journal_->writer) return;
  auto aggregate = aggregate_locked();
  const auto state = tls::notary::encode_monitor_state(aggregate);
  ++epoch_;
  tls::study::FrameHeader header;
  header.kind = tls::study::FrameKind::kPassiveShard;
  header.month_index = 0;
  header.slot = static_cast<std::uint32_t>(epoch_);
  auto frame = tls::study::encode_frame(kDaemonOptionsDigest, header, state);
  journal_->writer->enqueue("epoch_" + std::to_string(epoch_) + ".frame",
                            std::move(frame));
  journal_->writer->flush();
  counters_->checkpoint_epochs.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_ingested_ =
      counters_->ingested.load(std::memory_order_relaxed);
  if (final_epoch) journal_->writer->stop();
}

void NotaryDaemon::write_snapshot_files() {
  if (config_.checkpoint_dir.empty()) return;
  auto aggregate = aggregate_locked();
  const auto state = tls::notary::encode_monitor_state(aggregate);
  tls::study::FrameHeader header;
  header.kind = tls::study::FrameKind::kPassiveShard;
  header.month_index = 0;
  header.slot = static_cast<std::uint32_t>(epoch_);
  const auto frame =
      tls::study::encode_frame(kDaemonOptionsDigest, header, state);
  tls::study::write_file_durable(config_.checkpoint_dir + "/SNAPSHOT.bin",
                                 frame);
  std::string text = stats_text();
  text += "clean_drain=1\n";
  const std::span<const std::uint8_t> text_bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  tls::study::write_file_durable(config_.checkpoint_dir + "/SNAPSHOT.txt",
                                 text_bytes);
}

// ---------------------------------------------------------------------------
// Worker plane
// ---------------------------------------------------------------------------

void NotaryDaemon::worker_loop(std::size_t shard_index) {
  auto& shard = *shards_[shard_index];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      shard.cv.wait(lock, [&] {
        return workers_stop_.load(std::memory_order_acquire) ||
               !shard.queue.empty();
      });
      if (shard.queue.empty()) {
        if (workers_stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (config_.observe_delay_us_for_test != 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.observe_delay_us_for_test));
    }
    const auto month = month_from_index(job.capture.month_index);
    {
      std::lock_guard<std::mutex> lock(shard.monitor_mutex);
      if (job.capture.sslv2) {
        shard.monitor->observe_sslv2(month);
        counters_->sslv2.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.monitor->observe_wire(month, job.capture.day,
                                    job.capture.client, job.capture.server,
                                    job.capture.ske, job.capture.success,
                                    job.capture.used_fallback,
                                    job.capture.alert,
                                    /*cacheable=*/true);
      }
    }
    const std::uint64_t latency = now_us() - job.admit_us;
    {
      std::lock_guard<std::mutex> lock(shard.telemetry_mutex);
      shard.latency->record(latency);
    }
    counters_->ingested.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(job.conn_id);
    }
    wake();
  }
}

// ---------------------------------------------------------------------------
// Event plane
// ---------------------------------------------------------------------------

void NotaryDaemon::queue_frame(Connection& conn, FrameType type,
                               std::span<const std::uint8_t> payload) {
  const auto bytes = encode_frame(type, payload);
  conn.outbound.insert(conn.outbound.end(), bytes.begin(), bytes.end());
}

bool NotaryDaemon::flush_outbound(Connection& conn) {
  while (conn.out_off < conn.outbound.size()) {
    const auto n =
        ::send(conn.fd, conn.outbound.data() + conn.out_off,
               conn.outbound.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.out_off == conn.outbound.size()) {
    conn.outbound.clear();
    conn.out_off = 0;
  } else if (conn.out_off > 65536) {
    conn.outbound.erase(conn.outbound.begin(),
                        conn.outbound.begin() +
                            static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  return true;
}

void NotaryDaemon::close_connection(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  counters_->connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void NotaryDaemon::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        fd, id, config_.max_frame_bytes, config_.credit_window, now_ms());
    counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    // Open the credit window immediately: the client may not send a
    // capture before it holds credit.
    const auto grant = encode_credit_grant(config_.credit_window);
    queue_frame(*conn, FrameType::kCreditGrant, grant);
    auto* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    if (!flush_outbound(*raw)) close_connection(id);
  }
}

void NotaryDaemon::handle_capture(Connection& conn,
                                  std::vector<std::uint8_t> payload) {
  counters_->offered.fetch_add(1, std::memory_order_relaxed);
  if (!conn.gate.consume()) {
    // Protocol violation: the client overran its window. The capture is
    // refused admission (a shed, honestly counted) and the connection
    // goes away — a sensor that ignores backpressure cannot be reasoned
    // about.
    counters_->credit_violations.fetch_add(1, std::memory_order_relaxed);
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    close_connection(conn.id);  // erases conn — caller must not touch it
    return;
  }
  CapturePayload capture;
  try {
    capture = decode_capture(payload);
  } catch (const tls::wire::ParseError& err) {
    counters_->malformed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(wire_mutex_);
      wire_errors_.record(tls::notary::IngestStage::kClientHello, err.code());
      wire_quarantine_.push(tls::notary::IngestStage::kClientHello, err.code(),
                            conn.last_month, payload);
    }
    conn.gate.complete();
    return;
  }
  conn.last_month = month_from_index(capture.month_index);
  const std::size_t shard_index =
      capture.client.empty()
          ? capture.month_index % shards_.size()
          : tls::notary::ObserveCache::fnv1a64(capture.client) %
                shards_.size();
  auto& shard = *shards_[shard_index];
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    if (shard.queue.size() < config_.shard_queue_depth) {
      Job job;
      job.capture = std::move(capture);
      job.conn_id = conn.id;
      job.admit_us = now_us();
      shard.queue.push_back(std::move(job));
      admitted = true;
    }
  }
  if (admitted) {
    counters_->admitted.fetch_add(1, std::memory_order_relaxed);
    shard.cv.notify_one();
  } else {
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    conn.gate.complete();
  }
}

bool NotaryDaemon::process_frame(Connection& conn, Frame frame) {
  if (!is_client_frame(frame.type)) {
    counters_->frame_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  switch (frame.type) {
    case FrameType::kHello:
      break;
    case FrameType::kCapture: {
      const std::uint64_t id = conn.id;
      handle_capture(conn, std::move(frame.payload));
      // handle_capture may have erased the connection (credit violation);
      // `conn` is dangling in that case, so re-resolve by id.
      return conns_.find(id) != conns_.end();
    }
    case FrameType::kQueryStats: {
      const std::string text = stats_text();
      queue_frame(conn, FrameType::kStats,
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
      break;
    }
    case FrameType::kQueryMetrics: {
      const auto registry = merged_metrics();
      const std::string text = tls::telemetry::to_prometheus(registry);
      queue_frame(conn, FrameType::kMetrics,
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
      break;
    }
    case FrameType::kGoodbye:
      conn.pending_close = true;
      break;
    default:
      break;
  }
  return true;
}

bool NotaryDaemon::read_ready(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::uint8_t buf[65536];
  for (;;) {
    const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    auto frames = conn.decoder.feed({buf, static_cast<std::size_t>(n)});
    for (auto& frame : frames) {
      conn.last_progress_ms = now_ms();
      if (!process_frame(conn, std::move(frame))) return false;
      if (conns_.find(id) == conns_.end()) return true;  // closed inside
    }
    if (conn.decoder.poisoned()) {
      counters_->frame_errors.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(wire_mutex_);
        const auto code = parse_code_for(conn.decoder.error());
        wire_errors_.record(tls::notary::IngestStage::kClientFlight, code);
        wire_quarantine_.push(tls::notary::IngestStage::kClientFlight, code,
                              conn.last_month, conn.decoder.poison_prefix());
      }
      return false;
    }
  }
  return true;
}

void NotaryDaemon::drain_completions() {
  std::vector<std::uint64_t> resolved;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    resolved.swap(completions_);
  }
  for (const auto id : resolved) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // connection already gone
    it->second->gate.complete();
  }
  // Batch the resolved credits into one grant frame per connection.
  std::vector<std::uint64_t> to_close;
  for (auto& [id, conn] : conns_) {
    const std::uint32_t grant = conn->gate.take_grant();
    if (grant > 0) {
      const auto payload = encode_credit_grant(grant);
      queue_frame(*conn, FrameType::kCreditGrant, payload);
    }
    if (!conn->outbound.empty() && !flush_outbound(*conn)) {
      to_close.push_back(id);
      continue;
    }
    if (conn->pending_close && conn->outbound.empty() &&
        conn->gate.outstanding() == 0) {
      to_close.push_back(id);
    }
  }
  for (const auto id : to_close) close_connection(id);
}

void NotaryDaemon::sweep_idle(std::uint64_t now) {
  std::vector<std::uint64_t> to_close;
  for (auto& [id, conn] : conns_) {
    if (conn->decoder.buffered_bytes() == 0) continue;
    if (now - conn->last_progress_ms > config_.idle_timeout_ms) {
      counters_->idle_timeouts.fetch_add(1, std::memory_order_relaxed);
      to_close.push_back(id);
    }
  }
  for (const auto id : to_close) close_connection(id);
}

void NotaryDaemon::event_loop() {
  bool draining = false;
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;
  for (;;) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rx_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (!draining && listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    if (!draining) {
      for (auto& [id, conn] : conns_) {
        short events = POLLIN;
        if (!conn->outbound.empty()) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
        pfd_conn.push_back(id);
      }
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);

    if (pfds[0].revents & POLLIN) {
      std::uint8_t scratch[256];
      while (::read(wake_rx_, scratch, sizeof(scratch)) > 0) {
      }
    }
    drain_completions();

    std::size_t index = 1;
    if (!draining && listen_fd_ >= 0) {
      if (pfds[index].revents & POLLIN) accept_ready();
      ++index;
    }
    if (!draining) {
      for (; index < pfds.size(); ++index) {
        const std::uint64_t id = pfd_conn[index];
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        auto& conn = *it->second;
        const short re = pfds[index].revents;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          close_connection(id);
          continue;
        }
        if ((re & POLLOUT) && !flush_outbound(conn)) {
          close_connection(id);
          continue;
        }
        if ((re & POLLIN) && !read_ready(conn)) {
          close_connection(id);
          continue;
        }
      }
      drain_completions();
      sweep_idle(now_ms());
    }

    if (config_.checkpoint_every > 0 && journal_) {
      const auto ingested =
          counters_->ingested.load(std::memory_order_relaxed);
      if (ingested - last_checkpoint_ingested_ >= config_.checkpoint_every) {
        checkpoint_epoch(false);
      }
    }

    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Admission stops here; already-admitted work drains below. The
      // sockets close now — sensors reconnect after the restart.
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, conn] : conns_) ids.push_back(id);
      for (const auto id : ids) close_connection(id);
    }
    if (draining) {
      const auto admitted =
          counters_->admitted.load(std::memory_order_relaxed);
      const auto ingested =
          counters_->ingested.load(std::memory_order_relaxed);
      if (admitted == ingested) break;
    }
  }

  workers_stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  if (journal_) checkpoint_epoch(true);
  write_snapshot_files();
  running_.store(false, std::memory_order_release);
}

}  // namespace tls::daemon
