#include "daemon/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/journal.hpp"
#include "notary/observe_cache.hpp"
#include "notary/snapshot.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/trace.hpp"

namespace tls::daemon {
namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_ms() { return now_us() / 1000; }

tls::core::Month month_from_index(std::uint32_t index) {
  return tls::core::Month(static_cast<int>(index / 12),
                          static_cast<int>(index % 12) + 1);
}

/// Stage timeline vocabulary (DESIGN.md §17). The ISSUE's "journal-enqueue"
/// edge is `complete` here: the daemon journals aggregate epochs rather
/// than individual frames, so the edge a frame crosses after observe is
/// the worker->event-loop completion handoff that makes it journal- and
/// credit-visible.
constexpr std::size_t kStageCount = 7;
constexpr const char* kStageNames[kStageCount] = {
    "decode", "enqueue", "queue", "observe", "complete", "grant", "total"};

std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

struct NotaryDaemon::AtomicCounters {
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> credit_violations{0};
  std::atomic<std::uint64_t> frame_errors{0};
  std::atomic<std::uint64_t> idle_timeouts{0};
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> sslv2{0};
  std::atomic<std::uint64_t> checkpoint_epochs{0};
};

/// Absolute monotonic stamps (us) as a frame crosses each stage edge.
struct NotaryDaemon::StageStamps {
  std::uint64_t ingress = 0;  // frame complete, before payload decode
  std::uint64_t decode = 0;   // capture payload decoded
  std::uint64_t enqueue = 0;  // admitted to the shard queue
  std::uint64_t dequeue = 0;  // worker popped it
  std::uint64_t observe = 0;  // monitor observe returned
};

struct NotaryDaemon::Job {
  CapturePayload capture;
  std::uint64_t conn_id = 0;
  std::uint64_t admit_us = 0;
  StageStamps at;
};

/// One resolved capture flowing back to the event loop: the credit to
/// return plus the stage timeline to finalize (the last two edges —
/// completion drain and credit grant — only exist on the event thread).
struct NotaryDaemon::Completion {
  std::uint64_t conn_id = 0;
  std::uint32_t shard = 0;
  StageStamps at;
};

/// One slow frame kept for the waterfall: full per-stage breakdown.
struct NotaryDaemon::Exemplar {
  std::uint64_t conn_id = 0;
  std::uint32_t shard = 0;
  std::uint64_t ts_us = 0;  // ingress, relative to daemon start
  std::uint64_t total_us = 0;
  std::uint64_t stage_us[kStageCount - 1] = {0, 0, 0, 0, 0, 0};
};

/// Reservoir of the K slowest frames per window, double-buffered so a
/// query right after a window roll still sees a full window.
struct NotaryDaemon::TracePlane {
  std::mutex mutex;
  std::uint64_t window_start_ms = 0;
  std::uint64_t window_events = 0;
  std::uint64_t prev_window_events = 0;
  std::vector<Exemplar> current;
  std::vector<Exemplar> previous;
};

/// Ticker-sampled gauges (queue depth, outstanding credits, shed rate) in
/// their own registry island, merged into merged_metrics() on demand.
struct NotaryDaemon::TickerPlane {
  std::mutex mutex;
  tls::telemetry::MetricsRegistry registry;
  std::uint64_t last_sample_ms = 0;
  std::uint64_t last_shed = 0;
};

/// Single-writer seqlock over the outcome ledger. The event thread
/// publishes; readers retry until they catch a quiescent (even, stable)
/// sequence. All fields are atomics, so the retry loop is race-free under
/// TSan, not just in practice.
struct NotaryDaemon::StatsSeqlock {
  std::atomic<std::uint64_t> seq{0};
  std::array<std::atomic<std::uint64_t>, 12> words{};
};

struct NotaryDaemon::Shard {
  // Admission plane: the bounded queue. Locked by the event thread (push)
  // and this shard's worker (pop) only — observes never block admission.
  std::mutex queue_mutex;
  std::condition_variable cv;
  std::deque<Job> queue;

  // Observe plane: exclusive monitor access for the worker; checkpoint
  // aggregation and query serving take it briefly.
  std::mutex monitor_mutex;
  std::unique_ptr<tls::notary::PassiveMonitor> monitor;

  // Telemetry island, merged on demand.
  std::mutex telemetry_mutex;
  tls::telemetry::MetricsRegistry registry;
  tls::telemetry::Histogram* latency = nullptr;
  /// Wide-dynamic-range stage histograms (one per kStageNames entry),
  /// resolved once at start() so the hot path never does a map lookup.
  tls::telemetry::Histogram* stage[kStageCount] = {};
};

struct NotaryDaemon::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  CreditGate gate;
  std::vector<std::uint8_t> outbound;
  std::size_t out_off = 0;
  std::uint64_t last_progress_ms = 0;
  bool pending_close = false;
  /// Month of the last well-formed capture — the best anchor we have for
  /// quarantining this connection's later wire-level garbage.
  tls::core::Month last_month{2012, 1};

  Connection(int fd_, std::uint64_t id_, std::uint32_t max_frame,
             std::uint32_t window, std::uint64_t now)
      : fd(fd_), id(id_), decoder(max_frame), gate(window),
        last_progress_ms(now) {}
};

struct NotaryDaemon::JournalPlane {
  explicit JournalPlane(const std::string& dir) : backend(dir) {}
  tls::study::PosixJournalBackend backend;
  std::unique_ptr<tls::study::GroupCommitWriter> writer;
};

NotaryDaemon::NotaryDaemon(DaemonConfig config)
    : config_(std::move(config)),
      counters_(std::make_unique<AtomicCounters>()) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shard_queue_depth == 0) config_.shard_queue_depth = 1;
  if (config_.credit_window == 0) config_.credit_window = 1;
}

NotaryDaemon::~NotaryDaemon() {
  request_stop();
  join();
  if (crash_handler_installed_) {
    tls::telemetry::uninstall_flight_crash_handler();
    crash_handler_installed_ = false;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
}

bool NotaryDaemon::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad bind address: " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    last_error_ = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  wake_rx_ = pipefd[0];
  wake_tx_ = pipefd[1];

  if (!config_.checkpoint_dir.empty() && !open_journal()) return false;

  start_us_ = now_us();
  stats_seq_ = std::make_unique<StatsSeqlock>();
  if (config_.observability) {
    flight_ = std::make_unique<tls::telemetry::FlightRecorder>(
        1 + config_.shards, config_.flight_events);
    trace_ = std::make_unique<TracePlane>();
    trace_->window_start_ms = now_ms();
    ticker_ = std::make_unique<TickerPlane>();
    ticker_->last_sample_ms = now_ms();
    if (config_.crash_handler && !config_.checkpoint_dir.empty()) {
      tls::telemetry::install_flight_crash_handler(
          flight_.get(), config_.checkpoint_dir + "/FLIGHT.bin");
      crash_handler_installed_ = true;
    }
  }

  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->monitor =
        std::make_unique<tls::notary::PassiveMonitor>(config_.database);
    shard->monitor->set_observe_cache_capacity(config_.observe_cache_entries);
    shard->latency = &shard->registry.histogram(
        "tls_repro_daemon_ingest_latency_us",
        tls::telemetry::duration_buckets_us(), {},
        "Admission-to-observe latency of ingested captures", true);
    if (config_.observability) {
      for (std::size_t s = 0; s < kStageCount; ++s) {
        std::string labels = "shard=\"" + std::to_string(i) + "\",stage=\"";
        labels += kStageNames[s];
        labels += "\"";
        shard->stage[s] = &shard->registry.histogram(
            "tls_repro_daemon_stage_us",
            tls::telemetry::wide_latency_buckets_us(), labels,
            "Per-stage frame latency (log-linear wide-range buckets)", true);
      }
    }
    shards_.push_back(std::move(shard));
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
  return true;
}

bool NotaryDaemon::open_journal() {
  journal_ = std::make_unique<JournalPlane>(config_.checkpoint_dir);
  auto segments = journal_->backend.list_segments();
  std::sort(segments.begin(), segments.end());
  std::uint32_t next_segment = 1;
  if (!segments.empty()) next_segment = segments.back() + 1;

  if (config_.resume) {
    // Scan-is-ground-truth replay: every checksummed group in every
    // segment is a candidate; the newest valid epoch frame wins. Torn
    // tails and foreign frames are simply skipped — worst case the daemon
    // falls back one epoch and the sensors re-send.
    std::vector<std::uint8_t> best_payload;
    std::uint64_t best_slot = 0;
    bool found = false;
    for (auto id : segments) {
      std::vector<std::uint8_t> bytes;
      if (!journal_->backend.read_segment(id, bytes)) continue;
      auto scan = tls::study::scan_segment(bytes);
      for (const auto& frame_bytes : scan.frames) {
        try {
          auto frame = tls::study::decode_frame(frame_bytes);
          if (frame.options_digest != kDaemonOptionsDigest) continue;
          if (frame.header.kind != tls::study::FrameKind::kPassiveShard)
            continue;
          if (!found || frame.header.slot >= best_slot) {
            best_slot = frame.header.slot;
            best_payload = std::move(frame.payload);
            found = true;
          }
        } catch (const tls::wire::ParseError&) {
          // Corrupt frame inside a valid group: skip, older epochs remain.
        }
      }
    }
    if (found) {
      try {
        baseline_ = std::make_unique<tls::notary::PassiveMonitor>(
            tls::notary::decode_monitor_state(best_payload, config_.database));
        resumed_epoch_ = best_slot;
        epoch_ = best_slot;
      } catch (const tls::wire::ParseError&) {
        baseline_.reset();
      }
    }
  } else {
    for (auto id : segments) journal_->backend.remove_segment(id);
    journal_->backend.clear_index();
    next_segment = 1;
  }

  tls::study::GroupCommitWriter::Config wcfg;
  wcfg.group_frames = config_.journal_group_frames;
  wcfg.group_ms = config_.journal_group_ms;
  wcfg.options_digest = kDaemonOptionsDigest;
  wcfg.first_segment_id = next_segment;
  wcfg.fallback_dir = config_.checkpoint_dir + "/fallback";
  journal_->writer = std::make_unique<tls::study::GroupCommitWriter>(
      &journal_->backend, wcfg, nullptr);
  return true;
}

void NotaryDaemon::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void NotaryDaemon::wake() {
  if (wake_tx_ < 0) return;
  const std::uint8_t byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] auto n = ::write(wake_tx_, &byte, 1);
}

void NotaryDaemon::join() {
  if (event_thread_.joinable()) event_thread_.join();
}

DaemonCounters NotaryDaemon::counters() const {
  DaemonCounters c;
  c.offered = counters_->offered.load(std::memory_order_relaxed);
  c.admitted = counters_->admitted.load(std::memory_order_relaxed);
  c.ingested = counters_->ingested.load(std::memory_order_relaxed);
  c.shed = counters_->shed.load(std::memory_order_relaxed);
  c.malformed = counters_->malformed.load(std::memory_order_relaxed);
  c.credit_violations =
      counters_->credit_violations.load(std::memory_order_relaxed);
  c.frame_errors = counters_->frame_errors.load(std::memory_order_relaxed);
  c.idle_timeouts = counters_->idle_timeouts.load(std::memory_order_relaxed);
  c.connections_accepted =
      counters_->connections_accepted.load(std::memory_order_relaxed);
  c.connections_closed =
      counters_->connections_closed.load(std::memory_order_relaxed);
  c.sslv2 = counters_->sslv2.load(std::memory_order_relaxed);
  c.checkpoint_epochs =
      counters_->checkpoint_epochs.load(std::memory_order_relaxed);
  return c;
}

void NotaryDaemon::publish_stats_snapshot() {
  if (!stats_seq_) return;
  // Read the worker-written counters FIRST: every ingested capture's
  // offered/admitted increments happened-before its ingest (the handoff
  // goes through the shard queue mutex), so reading offered/admitted
  // afterwards can only observe values >= the ones implied by `ingested`.
  // Combined with shed/malformed being event-thread-owned (and this runs
  // on the event thread), the published snapshot always satisfies
  //   offered >= ingested + shed + malformed   and   admitted >= ingested.
  DaemonCounters c;
  c.ingested = counters_->ingested.load(std::memory_order_acquire);
  c.sslv2 = counters_->sslv2.load(std::memory_order_relaxed);
  c.offered = counters_->offered.load(std::memory_order_relaxed);
  c.admitted = counters_->admitted.load(std::memory_order_relaxed);
  c.shed = counters_->shed.load(std::memory_order_relaxed);
  c.malformed = counters_->malformed.load(std::memory_order_relaxed);
  c.credit_violations =
      counters_->credit_violations.load(std::memory_order_relaxed);
  c.frame_errors = counters_->frame_errors.load(std::memory_order_relaxed);
  c.idle_timeouts = counters_->idle_timeouts.load(std::memory_order_relaxed);
  c.connections_accepted =
      counters_->connections_accepted.load(std::memory_order_relaxed);
  c.connections_closed =
      counters_->connections_closed.load(std::memory_order_relaxed);
  c.checkpoint_epochs =
      counters_->checkpoint_epochs.load(std::memory_order_relaxed);

  StatsSeqlock& s = *stats_seq_;
  const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);  // odd: write in flight
  const std::uint64_t words[12] = {
      c.offered,        c.admitted,       c.ingested,
      c.shed,           c.malformed,      c.credit_violations,
      c.frame_errors,   c.idle_timeouts,  c.connections_accepted,
      c.connections_closed, c.sslv2,      c.checkpoint_epochs};
  for (std::size_t i = 0; i < 12; ++i) {
    s.words[i].store(words[i], std::memory_order_relaxed);
  }
  s.seq.store(seq + 2, std::memory_order_release);  // even: stable
}

DaemonCounters NotaryDaemon::snapshot_counters() const {
  if (!stats_seq_ || stats_seq_->seq.load(std::memory_order_acquire) == 0) {
    // Never published (start() not reached): the raw read is all there is.
    return counters();
  }
  const StatsSeqlock& s = *stats_seq_;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // publish in flight
    std::uint64_t words[12];
    for (std::size_t i = 0; i < 12; ++i) {
      words[i] = s.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    DaemonCounters c;
    c.offered = words[0];
    c.admitted = words[1];
    c.ingested = words[2];
    c.shed = words[3];
    c.malformed = words[4];
    c.credit_violations = words[5];
    c.frame_errors = words[6];
    c.idle_timeouts = words[7];
    c.connections_accepted = words[8];
    c.connections_closed = words[9];
    c.sslv2 = words[10];
    c.checkpoint_epochs = words[11];
    return c;
  }
  return counters();  // pathological contention; raw read beats livelock
}

namespace {

/// Upper-bound quantile from histogram buckets: the smallest bucket bound
/// covering fraction `q` of the samples (conservative — never understates).
std::uint64_t bucket_quantile(const tls::telemetry::Histogram& h, double q) {
  if (h.count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (seen >= target) {
      return i < h.bounds.size() ? h.bounds[i] : h.max;
    }
  }
  return h.max;
}

}  // namespace

std::string NotaryDaemon::stats_text() {
  // Seqlock snapshot, not the raw atomics: a query racing a worker must
  // never see a ledger that transiently violates closure.
  const DaemonCounters c = snapshot_counters();
  std::uint64_t quarantined = 0;
  {
    std::lock_guard<std::mutex> lock(wire_mutex_);
    quarantined = wire_quarantine_.total_pushed();
  }
  tls::telemetry::Histogram latency;
  latency.bounds = tls::telemetry::duration_buckets_us();
  latency.counts.assign(latency.bounds.size() + 1, 0);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->telemetry_mutex);
    latency.merge(*shard->latency);
  }
  std::ostringstream out;
  out << "admitted=" << c.admitted << '\n'
      << "checkpoint_epochs=" << c.checkpoint_epochs << '\n'
      << "connections_accepted=" << c.connections_accepted << '\n'
      << "connections_closed=" << c.connections_closed << '\n'
      << "credit_violations=" << c.credit_violations << '\n'
      << "frame_errors=" << c.frame_errors << '\n'
      << "idle_timeouts=" << c.idle_timeouts << '\n'
      << "ingest_p50_us=" << bucket_quantile(latency, 0.50) << '\n'
      << "ingest_p99_us=" << bucket_quantile(latency, 0.99) << '\n'
      << "ingest_p999_us=" << bucket_quantile(latency, 0.999) << '\n'
      << "ingested=" << c.ingested << '\n'
      << "malformed=" << c.malformed << '\n'
      << "offered=" << c.offered << '\n'
      << "resumed_epoch=" << resumed_epoch_ << '\n'
      << "shed=" << c.shed << '\n'
      << "sslv2=" << c.sslv2 << '\n'
      << "wire_quarantined=" << quarantined << '\n';
  return out.str();
}

tls::telemetry::MetricsRegistry NotaryDaemon::merged_metrics() {
  tls::telemetry::MetricsRegistry reg;
  const DaemonCounters c = snapshot_counters();
  const auto add = [&reg](const char* name, const char* help,
                          std::uint64_t value) {
    reg.counter(name, {}, help).add(value);
  };
  add("tls_repro_daemon_offered_total", "Captures offered by clients",
      c.offered);
  add("tls_repro_daemon_admitted_total", "Captures admitted to a shard queue",
      c.admitted);
  add("tls_repro_daemon_ingested_total", "Captures observed by a shard",
      c.ingested);
  add("tls_repro_daemon_shed_total",
      "Captures refused admission (queue full or credit violation)", c.shed);
  add("tls_repro_daemon_malformed_total",
      "Checksum-valid frames whose capture payload failed to parse",
      c.malformed);
  add("tls_repro_daemon_credit_violations_total",
      "Captures sent past the granted credit window", c.credit_violations);
  add("tls_repro_daemon_frame_errors_total",
      "Connections dropped for wire-framing violations", c.frame_errors);
  add("tls_repro_daemon_idle_timeouts_total",
      "Connections dropped mid-frame by the slow-loris guard",
      c.idle_timeouts);
  add("tls_repro_daemon_connections_total", "Connections accepted",
      c.connections_accepted);
  add("tls_repro_daemon_checkpoint_epochs_total",
      "Aggregate checkpoint epochs committed to the journal",
      c.checkpoint_epochs);
  {
    std::lock_guard<std::mutex> lock(wire_mutex_);
    for (std::size_t s = 0; s < tls::notary::kIngestStageCount; ++s) {
      for (std::size_t e = 0; e < tls::wire::kParseErrorCodeCount; ++e) {
        const auto stage = static_cast<tls::notary::IngestStage>(s);
        const auto code = static_cast<tls::wire::ParseErrorCode>(e);
        const std::uint64_t n = wire_errors_.count(stage, code);
        if (n == 0) continue;
        std::string labels = "stage=\"";
        labels += tls::notary::ingest_stage_name(stage);
        labels += "\",code=\"";
        labels += tls::wire::parse_error_code_name(code);
        labels += "\"";
        reg.counter("tls_repro_daemon_wire_errors_total", labels,
                    "Wire-level decode failures by stage and code")
            .add(n);
      }
    }
    reg.gauge("tls_repro_daemon_quarantine_pushed", {},
              "Total wire-level records quarantined")
        .set(wire_quarantine_.total_pushed());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto& shard = *shards_[i];
    {
      std::lock_guard<std::mutex> lock(shard.telemetry_mutex);
      reg.merge(shard.registry);
    }
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      depth = shard.queue.size();
    }
    reg.gauge("tls_repro_daemon_queue_depth",
              "shard=\"" + std::to_string(i) + "\"",
              "Shard ingest-queue occupancy at scrape time", true)
        .set(depth);
  }
  if (ticker_) {
    std::lock_guard<std::mutex> lock(ticker_->mutex);
    reg.merge(ticker_->registry);
  }
  if (flight_) {
    std::uint64_t recorded = 0, dropped = 0;
    for (std::size_t i = 0; i < flight_->lanes(); ++i) {
      recorded += flight_->lane(i).total();
      dropped += flight_->lane(i).dropped();
    }
    reg.gauge("tls_repro_daemon_flight_events", {},
              "Flight-recorder events recorded across all lanes", true)
        .set(recorded);
    reg.gauge("tls_repro_daemon_flight_dropped", {},
              "Flight-recorder events lost to drop-oldest", true)
        .set(dropped);
  }
  return reg;
}

// ---------------------------------------------------------------------------
// Observability plane
// ---------------------------------------------------------------------------

void NotaryDaemon::flight(std::size_t lane,
                          tls::telemetry::FlightEventKind kind,
                          std::uint32_t a, std::uint64_t b) {
  if (!flight_) return;
  flight_->lane(lane).record(kind, a, b, now_us() - start_us_);
}

std::vector<std::uint8_t> NotaryDaemon::flight_bytes() const {
  if (!flight_) return {};
  return flight_->serialize();
}

void NotaryDaemon::finalize_completion(const Completion& done,
                                       std::uint64_t complete_us,
                                       std::uint64_t grant_us) {
  // Stage durations; saturating subtraction guards the (clock-monotonic,
  // but stamped on two threads) edges against zero-length inversions.
  std::uint64_t stage_us[kStageCount];
  stage_us[0] = sub_sat(done.at.decode, done.at.ingress);
  stage_us[1] = sub_sat(done.at.enqueue, done.at.decode);
  stage_us[2] = sub_sat(done.at.dequeue, done.at.enqueue);
  stage_us[3] = sub_sat(done.at.observe, done.at.dequeue);
  stage_us[4] = sub_sat(complete_us, done.at.observe);
  stage_us[5] = sub_sat(grant_us, complete_us);
  stage_us[6] = sub_sat(grant_us, done.at.ingress);  // total

  auto& shard = *shards_[done.shard];
  {
    std::lock_guard<std::mutex> lock(shard.telemetry_mutex);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      shard.stage[s]->record(stage_us[s]);
    }
  }

  std::lock_guard<std::mutex> lock(trace_->mutex);
  const std::uint64_t now = now_ms();
  if (now - trace_->window_start_ms >= config_.trace_window_ms) {
    trace_->previous.swap(trace_->current);
    trace_->prev_window_events = trace_->window_events;
    trace_->current.clear();
    trace_->window_events = 0;
    trace_->window_start_ms = now;
  }
  ++trace_->window_events;
  Exemplar ex;
  ex.conn_id = done.conn_id;
  ex.shard = done.shard;
  ex.ts_us = sub_sat(done.at.ingress, start_us_);
  ex.total_us = stage_us[6];
  for (std::size_t s = 0; s + 1 < kStageCount; ++s) ex.stage_us[s] = stage_us[s];
  if (trace_->current.size() < config_.trace_exemplars) {
    trace_->current.push_back(ex);
    return;
  }
  // Reservoir of the K slowest: evict the fastest resident if slower.
  std::size_t min_i = 0;
  for (std::size_t i = 1; i < trace_->current.size(); ++i) {
    if (trace_->current[i].total_us < trace_->current[min_i].total_us) {
      min_i = i;
    }
  }
  if (ex.total_us > trace_->current[min_i].total_us) {
    trace_->current[min_i] = ex;
  }
}

std::string NotaryDaemon::trace_text() {
  if (!trace_) return "observability=off\n";
  // Merge each stage's histogram across shards for the percentile lines.
  std::array<tls::telemetry::Histogram, kStageCount> merged;
  for (auto& h : merged) {
    h.bounds = tls::telemetry::wide_latency_buckets_us();
    h.counts.assign(h.bounds.size() + 1, 0);
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->telemetry_mutex);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (shard->stage[s] != nullptr) merged[s].merge(*shard->stage[s]);
    }
  }
  std::vector<Exemplar> exemplars;
  std::uint64_t window_events = 0, prev_window_events = 0;
  {
    std::lock_guard<std::mutex> lock(trace_->mutex);
    exemplars = trace_->current;
    exemplars.insert(exemplars.end(), trace_->previous.begin(),
                     trace_->previous.end());
    window_events = trace_->window_events;
    prev_window_events = trace_->prev_window_events;
  }
  std::sort(exemplars.begin(), exemplars.end(),
            [](const Exemplar& a, const Exemplar& b) {
              return a.total_us > b.total_us;
            });
  if (exemplars.size() > config_.trace_exemplars) {
    exemplars.resize(config_.trace_exemplars);
  }
  std::ostringstream out;
  out << "trace window_ms=" << config_.trace_window_ms
      << " exemplars=" << config_.trace_exemplars
      << " window_events=" << window_events
      << " prev_window_events=" << prev_window_events << '\n';
  for (std::size_t s = 0; s < kStageCount; ++s) {
    out << "stage " << kStageNames[s] << " count=" << merged[s].count
        << " p50_us=" << bucket_quantile(merged[s], 0.50)
        << " p99_us=" << bucket_quantile(merged[s], 0.99)
        << " p999_us=" << bucket_quantile(merged[s], 0.999)
        << " max_us=" << merged[s].max << '\n';
  }
  for (std::size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& ex = exemplars[i];
    out << "exemplar rank=" << (i + 1) << " shard=" << ex.shard
        << " conn=" << ex.conn_id << " ts_us=" << ex.ts_us
        << " total_us=" << ex.total_us;
    for (std::size_t s = 0; s + 1 < kStageCount; ++s) {
      out << ' ' << kStageNames[s] << "_us=" << ex.stage_us[s];
    }
    out << '\n';
  }
  return out.str();
}

std::string NotaryDaemon::trace_chrome() {
  tls::telemetry::TraceRecorder rec;
  if (!trace_) return rec.to_json();
  std::vector<Exemplar> exemplars;
  {
    std::lock_guard<std::mutex> lock(trace_->mutex);
    exemplars = trace_->current;
    exemplars.insert(exemplars.end(), trace_->previous.begin(),
                     trace_->previous.end());
  }
  std::sort(exemplars.begin(), exemplars.end(),
            [](const Exemplar& a, const Exemplar& b) {
              return a.total_us > b.total_us;
            });
  if (exemplars.size() > config_.trace_exemplars) {
    exemplars.resize(config_.trace_exemplars);
  }
  for (std::size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& ex = exemplars[i];
    std::uint64_t cursor = ex.ts_us;
    for (std::size_t s = 0; s + 1 < kStageCount; ++s) {
      tls::telemetry::TraceEvent event;
      event.name = kStageNames[s];
      event.category = "frame";
      event.ts_us = cursor;
      event.dur_us = ex.stage_us[s];
      event.tid = static_cast<std::uint32_t>(i + 1);
      event.args.emplace_back("conn", ex.conn_id);
      event.args.emplace_back("shard", ex.shard);
      event.args.emplace_back("total_us", ex.total_us);
      rec.add(std::move(event));
      cursor += ex.stage_us[s];
    }
  }
  return rec.to_json();
}

void NotaryDaemon::sample_gauges(std::uint64_t now) {
  if (!ticker_) return;
  if (now - ticker_->last_sample_ms < config_.gauge_sample_ms) return;
  const std::uint64_t elapsed_ms = now - ticker_->last_sample_ms;
  ticker_->last_sample_ms = now;

  std::vector<std::size_t> depths(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->queue_mutex);
    depths[i] = shards_[i]->queue.size();
  }
  std::uint64_t outstanding = 0;
  for (auto& [id, conn] : conns_) outstanding += conn->gate.outstanding();
  const std::uint64_t shed = counters_->shed.load(std::memory_order_relaxed);
  const std::uint64_t shed_delta = sub_sat(shed, ticker_->last_shed);
  ticker_->last_shed = shed;
  const std::uint64_t shed_per_s =
      elapsed_ms == 0 ? 0 : shed_delta * 1000 / elapsed_ms;

  std::lock_guard<std::mutex> lock(ticker_->mutex);
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const std::string label = "shard=\"" + std::to_string(i) + "\"";
    auto& peak = ticker_->registry.gauge(
        "tls_repro_daemon_queue_depth_peak", label,
        "High-water shard queue occupancy across ticker samples", true);
    peak.set(std::max<std::uint64_t>(peak.value, depths[i]));
  }
  ticker_->registry
      .gauge("tls_repro_daemon_credits_outstanding", {},
             "Credits spent by clients and not yet resolved", true)
      .set(outstanding);
  ticker_->registry
      .gauge("tls_repro_daemon_shed_rate_per_s", {},
             "Sheds per second over the last ticker interval", true)
      .set(shed_per_s);
}

void NotaryDaemon::write_flight_files() {
  if (!flight_ || config_.checkpoint_dir.empty()) return;
  flight(0, tls::telemetry::FlightEventKind::kFlightDump, /*a=*/1, 0);
  const auto bytes = flight_->serialize();
  tls::study::write_file_durable(config_.checkpoint_dir + "/FLIGHT.bin",
                                 bytes);
  const std::string text = tls::telemetry::render_flight(bytes);
  const std::span<const std::uint8_t> text_bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  tls::study::write_file_durable(config_.checkpoint_dir + "/FLIGHT.txt",
                                 text_bytes);
}

tls::notary::PassiveMonitor NotaryDaemon::aggregate_locked() {
  tls::notary::PassiveMonitor aggregate(config_.database);
  if (baseline_) aggregate.absorb(*baseline_);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->monitor_mutex);
    aggregate.absorb(*shard->monitor);
  }
  return aggregate;
}

tls::notary::PassiveMonitor NotaryDaemon::aggregate_monitor() {
  return aggregate_locked();
}

void NotaryDaemon::checkpoint_epoch(bool final_epoch) {
  if (!journal_ || !journal_->writer) return;
  auto aggregate = aggregate_locked();
  const auto state = tls::notary::encode_monitor_state(aggregate);
  ++epoch_;
  tls::study::FrameHeader header;
  header.kind = tls::study::FrameKind::kPassiveShard;
  header.month_index = 0;
  header.slot = static_cast<std::uint32_t>(epoch_);
  auto frame = tls::study::encode_frame(kDaemonOptionsDigest, header, state);
  journal_->writer->enqueue("epoch_" + std::to_string(epoch_) + ".frame",
                            std::move(frame));
  journal_->writer->flush();
  counters_->checkpoint_epochs.fetch_add(1, std::memory_order_relaxed);
  flight(0, tls::telemetry::FlightEventKind::kCheckpointEpoch,
         static_cast<std::uint32_t>(epoch_),
         counters_->ingested.load(std::memory_order_relaxed));
  last_checkpoint_ingested_ =
      counters_->ingested.load(std::memory_order_relaxed);
  if (final_epoch) journal_->writer->stop();
}

void NotaryDaemon::write_snapshot_files() {
  if (config_.checkpoint_dir.empty()) return;
  auto aggregate = aggregate_locked();
  const auto state = tls::notary::encode_monitor_state(aggregate);
  tls::study::FrameHeader header;
  header.kind = tls::study::FrameKind::kPassiveShard;
  header.month_index = 0;
  header.slot = static_cast<std::uint32_t>(epoch_);
  const auto frame =
      tls::study::encode_frame(kDaemonOptionsDigest, header, state);
  tls::study::write_file_durable(config_.checkpoint_dir + "/SNAPSHOT.bin",
                                 frame);
  std::string text = stats_text();
  text += "clean_drain=1\n";
  const std::span<const std::uint8_t> text_bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  tls::study::write_file_durable(config_.checkpoint_dir + "/SNAPSHOT.txt",
                                 text_bytes);
}

// ---------------------------------------------------------------------------
// Worker plane
// ---------------------------------------------------------------------------

void NotaryDaemon::worker_loop(std::size_t shard_index) {
  auto& shard = *shards_[shard_index];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      shard.cv.wait(lock, [&] {
        return workers_stop_.load(std::memory_order_acquire) ||
               !shard.queue.empty();
      });
      if (shard.queue.empty()) {
        if (workers_stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (config_.observability) job.at.dequeue = now_us();
    if (config_.observe_delay_us_for_test != 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.observe_delay_us_for_test));
    }
    const auto month = month_from_index(job.capture.month_index);
    {
      std::lock_guard<std::mutex> lock(shard.monitor_mutex);
      if (job.capture.sslv2) {
        shard.monitor->observe_sslv2(month);
        counters_->sslv2.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.monitor->observe_wire(month, job.capture.day,
                                    job.capture.client, job.capture.server,
                                    job.capture.ske, job.capture.success,
                                    job.capture.used_fallback,
                                    job.capture.alert,
                                    /*cacheable=*/true);
      }
    }
    const std::uint64_t observed_at = now_us();
    if (config_.observability) job.at.observe = observed_at;
    const std::uint64_t latency = observed_at - job.admit_us;
    {
      std::lock_guard<std::mutex> lock(shard.telemetry_mutex);
      shard.latency->record(latency);
    }
    // This lane's ring belongs to this worker alone (lane 1 + shard).
    flight(1 + shard_index, tls::telemetry::FlightEventKind::kIngest,
           static_cast<std::uint32_t>(shard_index), latency);
    counters_->ingested.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      Completion done;
      done.conn_id = job.conn_id;
      done.shard = static_cast<std::uint32_t>(shard_index);
      done.at = job.at;
      completions_.push_back(done);
    }
    wake();
  }
}

// ---------------------------------------------------------------------------
// Event plane
// ---------------------------------------------------------------------------

void NotaryDaemon::queue_frame(Connection& conn, FrameType type,
                               std::span<const std::uint8_t> payload) {
  const auto bytes = encode_frame(type, payload);
  conn.outbound.insert(conn.outbound.end(), bytes.begin(), bytes.end());
}

bool NotaryDaemon::flush_outbound(Connection& conn) {
  while (conn.out_off < conn.outbound.size()) {
    const auto n =
        ::send(conn.fd, conn.outbound.data() + conn.out_off,
               conn.outbound.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.out_off == conn.outbound.size()) {
    conn.outbound.clear();
    conn.out_off = 0;
  } else if (conn.out_off > 65536) {
    conn.outbound.erase(conn.outbound.begin(),
                        conn.outbound.begin() +
                            static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  return true;
}

void NotaryDaemon::close_connection(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  counters_->connections_closed.fetch_add(1, std::memory_order_relaxed);
  flight(0, tls::telemetry::FlightEventKind::kConnClose,
         static_cast<std::uint32_t>(id), 0);
}

void NotaryDaemon::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        fd, id, config_.max_frame_bytes, config_.credit_window, now_ms());
    counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    flight(0, tls::telemetry::FlightEventKind::kConnAccept,
           static_cast<std::uint32_t>(id), 0);
    // Open the credit window immediately: the client may not send a
    // capture before it holds credit.
    const auto grant = encode_credit_grant(config_.credit_window);
    queue_frame(*conn, FrameType::kCreditGrant, grant);
    auto* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    if (!flush_outbound(*raw)) close_connection(id);
  }
}

void NotaryDaemon::handle_capture(Connection& conn,
                                  std::vector<std::uint8_t> payload) {
  const std::uint64_t ingress_us = config_.observability ? now_us() : 0;
  const auto conn_a = static_cast<std::uint32_t>(conn.id);
  counters_->offered.fetch_add(1, std::memory_order_relaxed);
  if (!conn.gate.consume()) {
    // Protocol violation: the client overran its window. The capture is
    // refused admission (a shed, honestly counted) and the connection
    // goes away — a sensor that ignores backpressure cannot be reasoned
    // about.
    counters_->credit_violations.fetch_add(1, std::memory_order_relaxed);
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    flight(0, tls::telemetry::FlightEventKind::kCreditViolation, conn_a, 0);
    close_connection(conn.id);  // erases conn — caller must not touch it
    return;
  }
  CapturePayload capture;
  try {
    capture = decode_capture(payload);
  } catch (const tls::wire::ParseError& err) {
    counters_->malformed.fetch_add(1, std::memory_order_relaxed);
    flight(0, tls::telemetry::FlightEventKind::kMalformed, conn_a,
           static_cast<std::uint64_t>(err.code()));
    {
      std::lock_guard<std::mutex> lock(wire_mutex_);
      wire_errors_.record(tls::notary::IngestStage::kClientHello, err.code());
      wire_quarantine_.push(tls::notary::IngestStage::kClientHello, err.code(),
                            conn.last_month, payload);
    }
    conn.gate.complete();
    return;
  }
  const std::uint64_t decode_us = config_.observability ? now_us() : 0;
  conn.last_month = month_from_index(capture.month_index);
  const std::size_t shard_index =
      capture.client.empty()
          ? capture.month_index % shards_.size()
          : tls::notary::ObserveCache::fnv1a64(capture.client) %
                shards_.size();
  auto& shard = *shards_[shard_index];
  bool admitted = false;
  std::size_t depth_at_refusal = 0;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    if (shard.queue.size() < config_.shard_queue_depth) {
      Job job;
      job.capture = std::move(capture);
      job.conn_id = conn.id;
      job.admit_us = now_us();
      if (config_.observability) {
        job.at.ingress = ingress_us;
        job.at.decode = decode_us;
        job.at.enqueue = job.admit_us;
      }
      shard.queue.push_back(std::move(job));
      admitted = true;
    } else {
      depth_at_refusal = shard.queue.size();
    }
  }
  if (admitted) {
    counters_->admitted.fetch_add(1, std::memory_order_relaxed);
    flight(0, tls::telemetry::FlightEventKind::kAdmit, conn_a, shard_index);
    shard.cv.notify_one();
  } else {
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    flight(0, tls::telemetry::FlightEventKind::kShed, conn_a,
           depth_at_refusal);
    conn.gate.complete();
  }
}

bool NotaryDaemon::process_frame(Connection& conn, Frame frame) {
  if (!is_client_frame(frame.type)) {
    counters_->frame_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  switch (frame.type) {
    case FrameType::kHello:
      break;
    case FrameType::kCapture: {
      const std::uint64_t id = conn.id;
      handle_capture(conn, std::move(frame.payload));
      // handle_capture may have erased the connection (credit violation);
      // `conn` is dangling in that case, so re-resolve by id.
      return conns_.find(id) != conns_.end();
    }
    case FrameType::kQueryStats: {
      // Re-publish before serving so the reply reflects every capture that
      // arrived earlier on this ordered connection (read-your-writes), not
      // the snapshot from the previous loop iteration.
      publish_stats_snapshot();
      const std::string text = stats_text();
      queue_frame(conn, FrameType::kStats,
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
      break;
    }
    case FrameType::kQueryMetrics: {
      publish_stats_snapshot();  // same read-your-writes contract as kStats
      const auto registry = merged_metrics();
      const std::string text = tls::telemetry::to_prometheus(registry);
      queue_frame(conn, FrameType::kMetrics,
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
      break;
    }
    case FrameType::kQueryTrace: {
      const std::string text = trace_text();
      queue_frame(conn, FrameType::kTrace,
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
      break;
    }
    case FrameType::kQueryFlight: {
      flight(0, tls::telemetry::FlightEventKind::kFlightDump, /*a=*/2, 0);
      const auto bytes = flight_bytes();
      queue_frame(conn, FrameType::kFlight, bytes);
      break;
    }
    case FrameType::kGoodbye:
      conn.pending_close = true;
      break;
    default:
      break;
  }
  return true;
}

bool NotaryDaemon::read_ready(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::uint8_t buf[65536];
  for (;;) {
    const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    auto frames = conn.decoder.feed({buf, static_cast<std::size_t>(n)});
    for (auto& frame : frames) {
      conn.last_progress_ms = now_ms();
      if (!process_frame(conn, std::move(frame))) return false;
      if (conns_.find(id) == conns_.end()) return true;  // closed inside
    }
    if (conn.decoder.poisoned()) {
      counters_->frame_errors.fetch_add(1, std::memory_order_relaxed);
      flight(0, tls::telemetry::FlightEventKind::kFramePoison,
             static_cast<std::uint32_t>(conn.id),
             static_cast<std::uint64_t>(conn.decoder.error()));
      {
        std::lock_guard<std::mutex> lock(wire_mutex_);
        const auto code = parse_code_for(conn.decoder.error());
        wire_errors_.record(tls::notary::IngestStage::kClientFlight, code);
        wire_quarantine_.push(tls::notary::IngestStage::kClientFlight, code,
                              conn.last_month, conn.decoder.poison_prefix());
      }
      return false;
    }
  }
  return true;
}

void NotaryDaemon::drain_completions() {
  std::vector<Completion> resolved;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    resolved.swap(completions_);
  }
  const std::uint64_t complete_us =
      config_.observability && !resolved.empty() ? now_us() : 0;
  for (const auto& done : resolved) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection already gone
    it->second->gate.complete();
  }
  // Batch the resolved credits into one grant frame per connection.
  std::vector<std::uint64_t> to_close;
  for (auto& [id, conn] : conns_) {
    const std::uint32_t grant = conn->gate.take_grant();
    if (grant > 0) {
      const auto payload = encode_credit_grant(grant);
      queue_frame(*conn, FrameType::kCreditGrant, payload);
      flight(0, tls::telemetry::FlightEventKind::kCreditGrant,
             static_cast<std::uint32_t>(id), grant);
    }
    if (!conn->outbound.empty() && !flush_outbound(*conn)) {
      to_close.push_back(id);
      continue;
    }
    if (conn->pending_close && conn->outbound.empty() &&
        conn->gate.outstanding() == 0) {
      to_close.push_back(id);
    }
  }
  for (const auto id : to_close) close_connection(id);
  if (config_.observability && !resolved.empty()) {
    // The batch's grant frames are all queued by now; one stamp closes the
    // `grant` edge for every completion in the batch (documented
    // approximation — grants are batched, so the edge is batch-grained).
    const std::uint64_t grant_us = now_us();
    for (const auto& done : resolved) {
      finalize_completion(done, complete_us, grant_us);
    }
  }
}

void NotaryDaemon::sweep_idle(std::uint64_t now) {
  std::vector<std::uint64_t> to_close;
  for (auto& [id, conn] : conns_) {
    if (conn->decoder.buffered_bytes() == 0) continue;
    if (now - conn->last_progress_ms > config_.idle_timeout_ms) {
      counters_->idle_timeouts.fetch_add(1, std::memory_order_relaxed);
      flight(0, tls::telemetry::FlightEventKind::kIdleTimeout,
             static_cast<std::uint32_t>(id), 0);
      to_close.push_back(id);
    }
  }
  for (const auto id : to_close) close_connection(id);
}

void NotaryDaemon::event_loop() {
  bool draining = false;
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;
  for (;;) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_rx_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (!draining && listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    if (!draining) {
      for (auto& [id, conn] : conns_) {
        short events = POLLIN;
        if (!conn->outbound.empty()) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
        pfd_conn.push_back(id);
      }
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);

    if (pfds[0].revents & POLLIN) {
      std::uint8_t scratch[256];
      while (::read(wake_rx_, scratch, sizeof(scratch)) > 0) {
      }
    }
    drain_completions();

    std::size_t index = 1;
    if (!draining && listen_fd_ >= 0) {
      if (pfds[index].revents & POLLIN) accept_ready();
      ++index;
    }
    if (!draining) {
      for (; index < pfds.size(); ++index) {
        const std::uint64_t id = pfd_conn[index];
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        auto& conn = *it->second;
        const short re = pfds[index].revents;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          close_connection(id);
          continue;
        }
        if ((re & POLLOUT) && !flush_outbound(conn)) {
          close_connection(id);
          continue;
        }
        if ((re & POLLIN) && !read_ready(conn)) {
          close_connection(id);
          continue;
        }
      }
      drain_completions();
      sweep_idle(now_ms());
    }

    publish_stats_snapshot();
    if (config_.observability) {
      const std::uint64_t now = now_ms();
      sample_gauges(now);
      if (journal_ && journal_->writer && !journal_degrade_booked_ &&
          journal_->writer->degraded()) {
        journal_degrade_booked_ = true;
        flight(0, tls::telemetry::FlightEventKind::kJournalDegrade, 0, 0);
      }
      if (flight_ && config_.flight_autodump_ms > 0 &&
          !config_.checkpoint_dir.empty() &&
          now - last_flight_dump_ms_ >= config_.flight_autodump_ms) {
        last_flight_dump_ms_ = now;
        flight(0, tls::telemetry::FlightEventKind::kFlightDump, /*a=*/0, 0);
        flight_->write_file(config_.checkpoint_dir + "/FLIGHT.bin");
      }
    }

    if (config_.checkpoint_every > 0 && journal_) {
      const auto ingested =
          counters_->ingested.load(std::memory_order_relaxed);
      if (ingested - last_checkpoint_ingested_ >= config_.checkpoint_every) {
        checkpoint_epoch(false);
      }
    }

    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      flight(0, tls::telemetry::FlightEventKind::kDrainStart, 0, 0);
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Admission stops here; already-admitted work drains below. The
      // sockets close now — sensors reconnect after the restart.
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, conn] : conns_) ids.push_back(id);
      for (const auto id : ids) close_connection(id);
    }
    if (draining) {
      const auto admitted =
          counters_->admitted.load(std::memory_order_relaxed);
      const auto ingested =
          counters_->ingested.load(std::memory_order_relaxed);
      if (admitted == ingested) break;
    }
  }

  workers_stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  if (journal_) checkpoint_epoch(true);
  publish_stats_snapshot();  // final: readers after join() see the ledger
  write_snapshot_files();
  write_flight_files();
  running_.store(false, std::memory_order_release);
}

}  // namespace tls::daemon
