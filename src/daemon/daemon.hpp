// NotaryDaemon — the live-ingestion service (DESIGN.md §16).
//
// A resident process that accepts checksummed capture frames
// (daemon/protocol.hpp) over TCP from many concurrent sensor clients and
// feeds them through the existing PassiveMonitor + ObserveCache fast path
// on a sharded worker pool. The batch study pipeline stays the reference
// implementation; the daemon is the serving story for the ROADMAP's
// "heavy traffic from millions of users" north star, engineered so that
// OVERLOAD DEGRADES GRACEFULLY instead of OOMing:
//
//   * bounded per-shard ingest queues — admission control happens at
//     enqueue time; a full queue sheds the capture instead of growing
//   * credit-based backpressure — clients learn "slow down" through
//     kCreditGrant frames instead of the kernel buffering forever
//   * honest loss accounting — every offered capture ends up in exactly
//     one of {ingested, shed, malformed}; sheds and wire-level parse
//     failures are booked through the PR 1 ErrorTaxonomy/QuarantineRing
//     machinery, so the loss is measurable, not silent
//   * slow-loris defense — a connection stalled mid-frame past
//     idle_timeout_ms is booked and dropped
//   * clean SIGTERM drain — stop accepting, quiesce the queues, flush
//     the group-commit journal (core/journal.hpp), emit a final
//     checksummed snapshot, exit 0; kill -9 at any point still resumes
//     from the last durable journal group (scan-is-ground-truth replay)
//
// Threading model: one event-loop thread owns every socket (poll(2),
// non-blocking IO, per-connection outbound buffers); `shards` worker
// threads own one PassiveMonitor each and drain their bounded queue.
// Captures are routed to a shard by FNV-1a-64 of the ClientHello record,
// so identical hellos land on the same shard's ObserveCache. Workers
// report completions back through a wake pipe; the event loop batches the
// resolved credits into grant frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.hpp"
#include "notary/monitor.hpp"
#include "telemetry/metrics.hpp"

namespace tls::fp {
class FingerprintDatabase;
}

namespace tls::telemetry {
class FlightRecorder;
enum class FlightEventKind : std::uint8_t;
}

namespace tls::daemon {

struct DaemonConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  std::uint16_t port = 0;
  /// Worker threads / monitor shards. Shard routing is content-hashed, so
  /// the shard count changes cache locality but never any aggregate byte
  /// (absorb is arrival-order-invariant over integer counters).
  std::size_t shards = 4;
  /// Bounded depth of each shard's ingest queue — the admission-control
  /// knob. A capture arriving at a full queue is shed (and counted).
  std::size_t shard_queue_depth = 1024;
  /// Credits granted to each connection on accept; the client may have at
  /// most this many unresolved captures in flight.
  std::uint32_t credit_window = 64;
  /// Declared-length cap enforced before any payload allocation.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A connection stalled mid-frame longer than this is dropped.
  std::uint64_t idle_timeout_ms = 10000;
  std::size_t max_connections = 256;
  /// Per-side ObserveCache capacity for each shard monitor (0 disables).
  std::size_t observe_cache_entries = 1024;
  /// Labeled-coverage database for the shard monitors (nullable).
  const tls::fp::FingerprintDatabase* database = nullptr;

  /// Test seam: artificial per-capture observe cost (microseconds). Lets
  /// the overload tests pin the sustainable rate low enough that a modest
  /// loadgen reliably drives the daemon past capacity.
  std::uint64_t observe_delay_us_for_test = 0;

  // ---- durability (empty checkpoint_dir disables) ----
  /// Group-commit journal directory; periodic checkpoint epochs and the
  /// drain snapshot live here.
  std::string checkpoint_dir{};
  /// Replay an existing journal: the newest valid epoch frame becomes the
  /// aggregate baseline instead of starting from zero.
  bool resume = false;
  std::size_t journal_group_frames = 8;
  std::uint64_t journal_group_ms = 50;
  /// Write a checkpoint epoch every N ingested captures (0 = only at
  /// drain). Epochs are full aggregate snapshots — the newest valid one
  /// wins on resume, so torn tails just fall back one epoch.
  std::uint64_t checkpoint_every = 0;

  // ---- observability (DESIGN.md §17) ----
  /// Stage-latency attribution + flight recorder. On by default; turning
  /// it off must leave monitor aggregates byte-identical (tested) — it
  /// only removes the telemetry, never changes an outcome.
  bool observability = true;
  /// Flight-ring capacity per lane (lane 0 = event loop, one per shard).
  std::size_t flight_events = 4096;
  /// Periodic FLIGHT.bin autodump cadence (0 disables; needs
  /// checkpoint_dir). This is what makes a kill -9 leave a post-mortem:
  /// the file on disk is at most one interval stale.
  std::uint64_t flight_autodump_ms = 0;
  /// Install SIGSEGV/SIGABRT/SIGBUS handlers that dump the rings to
  /// checkpoint_dir/FLIGHT.bin (async-signal-safe). Process-global state,
  /// so off by default — embedding tests keep their signal dispositions.
  bool crash_handler = false;
  /// Exemplar reservoir: the K slowest frames kept per trace window.
  std::size_t trace_exemplars = 8;
  std::uint64_t trace_window_ms = 5000;
  /// Queue-depth / outstanding-credit / shed-rate gauge sampling cadence.
  std::uint64_t gauge_sample_ms = 200;
};

/// Monotonic outcome ledger. Invariant (after drain):
///   offered == ingested + shed + malformed
/// `shed` includes queue-full rejects AND credit violations (both are
/// refused admission); `malformed` is checksum-valid frames whose capture
/// payload failed to parse. Wire-level framing failures poison the whole
/// connection and are counted in frame_errors, not per capture.
struct DaemonCounters {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t malformed = 0;
  std::uint64_t credit_violations = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t idle_timeouts = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t sslv2 = 0;
  std::uint64_t checkpoint_epochs = 0;
};

/// Pins daemon journal frames to the daemon's epoch format (they carry
/// aggregate snapshots, not per-(month,shard) study tasks, so a study
/// journal can never be mistaken for a daemon journal or vice versa).
inline constexpr std::uint64_t kDaemonOptionsDigest = 0xdae302e9a11dull;

class NotaryDaemon {
 public:
  explicit NotaryDaemon(DaemonConfig config);
  ~NotaryDaemon();

  NotaryDaemon(const NotaryDaemon&) = delete;
  NotaryDaemon& operator=(const NotaryDaemon&) = delete;

  /// Binds, listens, replays the journal when resuming, and spawns the
  /// event loop + workers. Returns false (with a message in last_error())
  /// on bind/listen failure.
  bool start();

  /// The bound port (valid after start(); useful with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Begins a graceful drain: stop accepting, stop reading, quiesce the
  /// shard queues, flush the journal, write the final snapshot, exit the
  /// loop. Safe to call from a signal-watcher thread; idempotent.
  void request_stop();

  /// Blocks until the drain completes and all threads are joined.
  void join();

  /// Atomic snapshot of the outcome ledger.
  [[nodiscard]] DaemonCounters counters() const;

  /// The kStats body: sorted `key=value` lines (parseable by the CI gate).
  [[nodiscard]] std::string stats_text();

  /// Daemon + per-shard telemetry folded into one registry (counters,
  /// ingest-latency histogram, queue gauges, wire-error taxonomy).
  [[nodiscard]] tls::telemetry::MetricsRegistry merged_metrics();

  /// The live aggregate: resume baseline + every shard monitor absorbed
  /// in shard order. Stalls admission briefly (locks each shard monitor).
  [[nodiscard]] tls::notary::PassiveMonitor aggregate_monitor();

  /// Epoch index restored from the journal (0 when starting fresh).
  [[nodiscard]] std::uint64_t resumed_epoch() const { return resumed_epoch_; }

  /// The kTrace body: stage-percentile lines followed by the slowest-frame
  /// exemplar waterfall (parseable text; `observability=off` when off).
  [[nodiscard]] std::string trace_text();
  /// Chrome trace_event JSON of the current exemplar set: one lane per
  /// exemplar, one complete span per stage (loads in Perfetto directly).
  [[nodiscard]] std::string trace_chrome();
  /// Serialized FLIGHT.bin bytes (empty when observability is off).
  [[nodiscard]] std::vector<std::uint8_t> flight_bytes() const;

 private:
  struct Connection;
  struct Shard;
  struct Job;
  struct StageStamps;
  struct Completion;
  struct Exemplar;
  struct TracePlane;
  struct TickerPlane;
  struct StatsSeqlock;

  void event_loop();
  void worker_loop(std::size_t shard_index);
  void accept_ready();
  bool read_ready(Connection& conn);
  bool process_frame(Connection& conn, Frame frame);
  void handle_capture(Connection& conn, std::vector<std::uint8_t> payload);
  void queue_frame(Connection& conn, FrameType type,
                   std::span<const std::uint8_t> payload);
  bool flush_outbound(Connection& conn);
  void close_connection(std::uint64_t id);
  void drain_completions();
  void sweep_idle(std::uint64_t now_ms);
  void wake();

  // Observability plane (all no-ops when config_.observability is off).
  void flight(std::size_t lane, tls::telemetry::FlightEventKind kind,
              std::uint32_t a, std::uint64_t b);
  void finalize_completion(const Completion& done, std::uint64_t complete_us,
                           std::uint64_t grant_us);
  void sample_gauges(std::uint64_t now_ms);
  void write_flight_files();

  // Consistent stats snapshot (event thread publishes; any thread reads).
  void publish_stats_snapshot();
  [[nodiscard]] DaemonCounters snapshot_counters() const;

  bool open_journal();
  void checkpoint_epoch(bool final_epoch);
  void write_snapshot_files();
  [[nodiscard]] tls::notary::PassiveMonitor aggregate_locked();

  DaemonConfig config_;
  std::uint16_t port_ = 0;
  std::string last_error_;
  int listen_fd_ = -1;
  int wake_rx_ = -1;
  int wake_tx_ = -1;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> workers_stop_{false};

  std::thread event_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;

  // Worker -> event loop completion channel (resolved captures with their
  // stage timelines; credits resolve and stage attribution finalizes when
  // the event loop drains these).
  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  // Observability plane.
  std::unique_ptr<tls::telemetry::FlightRecorder> flight_;
  std::unique_ptr<TracePlane> trace_;
  std::unique_ptr<TickerPlane> ticker_;
  std::unique_ptr<StatsSeqlock> stats_seq_;
  std::uint64_t start_us_ = 0;
  std::uint64_t last_flight_dump_ms_ = 0;
  bool journal_degrade_booked_ = false;
  bool crash_handler_installed_ = false;

  // Wire-level loss accounting (event thread writes; stats readers lock).
  std::mutex wire_mutex_;
  tls::notary::ErrorTaxonomy wire_errors_;
  tls::notary::QuarantineRing wire_quarantine_{64, 48};

  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> counters_;

  // Durability plane (created by open_journal when checkpoint_dir set).
  struct JournalPlane;
  std::unique_ptr<JournalPlane> journal_;
  std::unique_ptr<tls::notary::PassiveMonitor> baseline_;
  std::uint64_t resumed_epoch_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_checkpoint_ingested_ = 0;
};

}  // namespace tls::daemon
