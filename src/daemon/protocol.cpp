#include "daemon/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "wire/buffer.hpp"

namespace tls::daemon {
namespace {

/// Quarantine booking only needs the offending prefix, not the payload.
constexpr std::size_t kPoisonPrefixCap = 64;

std::uint32_t load_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

bool is_client_frame(FrameType type) {
  switch (type) {
    case FrameType::kHello:
    case FrameType::kCapture:
    case FrameType::kQueryStats:
    case FrameType::kQueryMetrics:
    case FrameType::kQueryTrace:
    case FrameType::kQueryFlight:
    case FrameType::kGoodbye:
      return true;
    case FrameType::kCreditGrant:
    case FrameType::kStats:
    case FrameType::kMetrics:
    case FrameType::kTrace:
    case FrameType::kFlight:
      return false;
  }
  return false;
}

std::uint64_t frame_checksum(FrameType type,
                             std::span<const std::uint8_t> payload) {
  // FNV-1a-64 over (type ++ payload) without concatenating: run the type
  // byte through one round, then continue over the payload by seeding the
  // shared primitive's algorithm manually.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  h ^= static_cast<std::uint64_t>(type);
  h *= kPrime;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= kPrime;
  }
  return h;
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  tls::wire::ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  w.u64(frame_checksum(type, payload));
  return w.take();
}

std::vector<std::uint8_t> encode_capture(const CapturePayload& capture) {
  tls::wire::ByteWriter w;
  w.u32(capture.month_index);
  w.u16(static_cast<std::uint16_t>(capture.day.year()));
  w.u8(static_cast<std::uint8_t>(capture.day.month()));
  w.u8(static_cast<std::uint8_t>(capture.day.day()));
  std::uint8_t flags = 0;
  if (capture.success) flags |= 0x01;
  if (capture.used_fallback) flags |= 0x02;
  if (capture.sslv2) flags |= 0x04;
  w.u8(flags);
  for (const auto* field :
       {&capture.client, &capture.server, &capture.ske, &capture.alert}) {
    w.u32(static_cast<std::uint32_t>(field->size()));
    w.bytes(*field);
  }
  return w.take();
}

CapturePayload decode_capture(std::span<const std::uint8_t> payload) {
  tls::wire::ByteReader r(payload);
  CapturePayload capture;
  capture.month_index = r.u32();
  const int year = static_cast<int>(r.u16());
  const int month = static_cast<int>(r.u8());
  const int day = static_cast<int>(r.u8());
  const std::uint8_t flags = r.u8();
  if ((flags & ~0x07u) != 0) {
    throw tls::wire::ParseError(tls::wire::ParseErrorCode::kBadValue,
                                "capture: unknown flag bits");
  }
  capture.success = (flags & 0x01) != 0;
  capture.used_fallback = (flags & 0x02) != 0;
  capture.sslv2 = (flags & 0x04) != 0;
  try {
    capture.day = tls::core::Date(year, month, day);
  } catch (const std::invalid_argument&) {
    throw tls::wire::ParseError(tls::wire::ParseErrorCode::kBadValue,
                                "capture: invalid civil date");
  }
  for (auto* field :
       {&capture.client, &capture.server, &capture.ske, &capture.alert}) {
    const std::uint32_t len = r.u32();
    if (len > r.remaining()) {
      throw tls::wire::ParseError(tls::wire::ParseErrorCode::kBadLength,
                                  "capture: field length exceeds payload");
    }
    auto span = r.bytes(len);
    field->assign(span.begin(), span.end());
  }
  r.expect_empty("capture payload");
  return capture;
}

tls::wire::ParseErrorCode parse_code_for(DecodeError error) {
  switch (error) {
    case DecodeError::kBadMagic:
      return tls::wire::ParseErrorCode::kBadValue;
    case DecodeError::kBadType:
      return tls::wire::ParseErrorCode::kUnsupported;
    case DecodeError::kOversized:
      return tls::wire::ParseErrorCode::kBadLength;
    case DecodeError::kBadChecksum:
      return tls::wire::ParseErrorCode::kBadValue;
    case DecodeError::kNone:
      break;
  }
  return tls::wire::ParseErrorCode::kBadValue;
}

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kBadMagic: return "bad_magic";
    case DecodeError::kBadType: return "bad_type";
    case DecodeError::kOversized: return "oversized";
    case DecodeError::kBadChecksum: return "bad_checksum";
  }
  return "unknown";
}

void FrameDecoder::poison(DecodeError error, std::size_t prefix_at) {
  error_ = error;
  const std::size_t avail = buffer_.size() - prefix_at;
  const std::size_t take = std::min(avail, kPoisonPrefixCap);
  poison_prefix_.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(prefix_at),
                        buffer_.begin() +
                            static_cast<std::ptrdiff_t>(prefix_at + take));
  buffer_.clear();
  consumed_ = 0;
}

std::vector<Frame> FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  std::vector<Frame> out;
  if (poisoned()) return out;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  for (;;) {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes) break;
    const std::uint8_t* head = buffer_.data() + consumed_;
    // Header validation happens the moment 9 bytes exist — magic, type,
    // and the declared length are all checked BEFORE the payload is
    // buffered, so an oversized length can never cause an allocation.
    if (load_u32(head) != kFrameMagic) {
      poison(DecodeError::kBadMagic, consumed_);
      return out;
    }
    const std::uint8_t type_byte = head[4];
    if (type_byte < static_cast<std::uint8_t>(FrameType::kHello) ||
        type_byte > static_cast<std::uint8_t>(FrameType::kFlight)) {
      poison(DecodeError::kBadType, consumed_);
      return out;
    }
    const std::uint32_t payload_len = load_u32(head + 5);
    if (payload_len > max_frame_bytes_) {
      poison(DecodeError::kOversized, consumed_);
      return out;
    }
    const std::size_t frame_len =
        kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
    if (avail < frame_len) break;
    const std::uint8_t* payload = head + kFrameHeaderBytes;
    const std::uint64_t declared = load_u64(payload + payload_len);
    const auto type = static_cast<FrameType>(type_byte);
    if (frame_checksum(type, {payload, payload_len}) != declared) {
      poison(DecodeError::kBadChecksum, consumed_);
      return out;
    }
    Frame frame;
    frame.type = type;
    frame.payload.assign(payload, payload + payload_len);
    out.push_back(std::move(frame));
    consumed_ += frame_len;
    // Compact once the dead prefix dominates, amortizing the memmove.
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
  }
  return out;
}

bool CreditGate::consume() {
  // Credits the daemon has resolved but not yet granted back (returnable_)
  // are still accounted against the window: an honest client cannot spend
  // them because it has not received them yet, so a capture that would push
  // outstanding + returnable past the window is a protocol violation, not a
  // race. Counting both keeps "returnable + outstanding <= window" a hard
  // invariant rather than a comment.
  if (outstanding_ + returnable_ >= window_) return false;
  ++outstanding_;
  return true;
}

void CreditGate::complete() {
  // complete() without a matching consume() is a daemon-side programming
  // error; clamping (instead of wrapping) keeps the invariant
  // "returnable + outstanding <= window" unconditionally true.
  if (outstanding_ == 0) return;
  --outstanding_;
  if (returnable_ < window_) ++returnable_;
}

std::uint32_t CreditGate::take_grant() {
  const std::uint32_t grant = returnable_;
  returnable_ = 0;
  return grant;
}

void CreditClient::on_grant(std::uint32_t credits) {
  const std::uint64_t next =
      static_cast<std::uint64_t>(available_) + credits;
  available_ = next > UINT32_MAX ? UINT32_MAX
                                 : static_cast<std::uint32_t>(next);
}

bool CreditClient::try_send() {
  if (available_ == 0) return false;
  --available_;
  return true;
}

std::vector<std::uint8_t> encode_credit_grant(std::uint32_t credits) {
  tls::wire::ByteWriter w;
  w.u32(credits);
  return w.take();
}

std::optional<std::uint32_t> decode_credit_grant(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != 4) return std::nullopt;
  return load_u32(payload.data());
}

}  // namespace tls::daemon
