// Wire protocol for the live-ingestion daemon (DESIGN.md §16).
//
// Transport framing: every message is one length-prefixed, checksummed
// frame —
//
//   magic      u32  'TLSN' (0x544C534E)
//   type       u8   FrameType
//   payload    u32  payload length in bytes
//   payload    ...  type-specific body
//   checksum   u64  FNV-1a-64 over (type byte ++ payload bytes)
//
// The 9-byte header is parsed as soon as it is complete, and the declared
// payload length is validated against the decoder's configurable
// `max_frame_bytes` limit BEFORE any payload allocation happens — a
// hostile 4 GiB length field costs the attacker a closed connection, not
// the daemon a 4 GiB allocation. The checksum is verified once the whole
// frame is buffered; a mismatch poisons the connection (one bad client
// cannot desynchronize the stream into plausible-looking garbage).
//
// Credit-based backpressure: the daemon grants each connection a credit
// window on accept (kCreditGrant). Every kCapture frame spends one
// credit; credits are replenished (batched into further kCreditGrant
// frames) only after the capture is resolved — ingested OR shed. A client
// with zero credits must hold its captures (the loadgen counts these as
// client-side backpressure drops; a well-behaved sensor would buffer).
// Sending without credit is a protocol violation: the daemon books it,
// sheds the capture, and closes the connection. This moves queueing to
// the edge where it can be counted, instead of the kernel socket buffer
// where it cannot.
//
// Everything here is deliberately transport-agnostic (pure byte-span in,
// byte-vector out) so the fuzzers in tests/test_fuzz.cpp can drive the
// decoder and the credit state machines without sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tlscore/dates.hpp"
#include "wire/errors.hpp"

namespace tls::daemon {

inline constexpr std::uint32_t kFrameMagic = 0x544C534E;  // "TLSN"
/// Fixed bytes before the payload: magic u32 + type u8 + length u32.
inline constexpr std::size_t kFrameHeaderBytes = 9;
/// Fixed bytes after the payload: FNV-1a-64 checksum.
inline constexpr std::size_t kFrameTrailerBytes = 8;
/// Default cap on a frame's declared payload length. Generous for a
/// capture (four TLS records plus ~20 bytes of framing) yet small enough
/// that even a fully buffered frame per connection stays cheap.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;  // 1 MiB

enum class FrameType : std::uint8_t {
  kHello = 1,        // client -> daemon: version + client name
  kCapture = 2,      // client -> daemon: one serialized wire capture
  kCreditGrant = 3,  // daemon -> client: u32 credits added to the window
  kQueryStats = 4,   // client -> daemon: request live aggregate counters
  kStats = 5,        // daemon -> client: key=value aggregate text
  kQueryMetrics = 6, // client -> daemon: request Prometheus exposition
  kMetrics = 7,      // daemon -> client: text/plain exposition body
  kGoodbye = 8,      // either direction: clean half-close announcement
  kQueryTrace = 9,   // client -> daemon: request stage-latency waterfall
  kTrace = 10,       // daemon -> client: text waterfall + exemplar lines
  kQueryFlight = 11, // client -> daemon: request flight-recorder dump
  kFlight = 12,      // daemon -> client: FLIGHT.bin bytes (may be empty
                     //   when observability is disabled)
};

/// True for the types a client may legally send.
[[nodiscard]] bool is_client_frame(FrameType type);

/// One decoded frame: the type plus its owned payload bytes.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a-64 over (type byte ++ payload) — the frame checksum.
[[nodiscard]] std::uint64_t frame_checksum(
    FrameType type, std::span<const std::uint8_t> payload);

/// Serializes one frame (header + payload + checksum).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Capture payload codec
// ---------------------------------------------------------------------------

/// The body of a kCapture frame: exactly the arguments of one
/// PassiveMonitor::observe_wire call (or an SSLv2 tally when `sslv2`).
///
///   month   u32   linear month index (year*12 + month-1)
///   year    u16 | month u8 | day u8    civil date of the connection
///   flags   u8    bit0 success, bit1 used_fallback, bit2 sslv2
///   client  u32-length-prefixed bytes  ClientHello record
///   server  u32-length-prefixed bytes  ServerHello record (may be empty)
///   ske     u32-length-prefixed bytes  ServerKeyExchange record (may be empty)
///   alert   u32-length-prefixed bytes  Alert record (may be empty)
struct CapturePayload {
  std::uint32_t month_index = 0;
  tls::core::Date day{};
  bool success = false;
  bool used_fallback = false;
  bool sslv2 = false;
  std::vector<std::uint8_t> client;
  std::vector<std::uint8_t> server;
  std::vector<std::uint8_t> ske;
  std::vector<std::uint8_t> alert;
};

[[nodiscard]] std::vector<std::uint8_t> encode_capture(
    const CapturePayload& capture);

/// Parses a kCapture payload. Throws tls::wire::ParseError on malformed
/// input (truncated, trailing bytes, invalid civil date) — callers book
/// the failure in the taxonomy; the daemon never lets it propagate.
[[nodiscard]] CapturePayload decode_capture(
    std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Incremental frame decoder
// ---------------------------------------------------------------------------

/// Why a decoder poisoned itself. Each maps onto a ParseErrorCode for
/// taxonomy booking (see `parse_code_for`).
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kBadMagic,       // stream desync or garbage bytes
  kBadType,        // unknown FrameType
  kOversized,      // declared length exceeds max_frame_bytes
  kBadChecksum,    // frame buffered fully but the trailer does not match
};

[[nodiscard]] tls::wire::ParseErrorCode parse_code_for(DecodeError error);
[[nodiscard]] const char* decode_error_name(DecodeError error);

/// Incremental, never-throwing frame decoder. Feed it arbitrary chunks
/// (as read(2) returns them); completed frames pop out in order. The
/// first malformed byte poisons the decoder permanently — after a framing
/// error nothing later in the stream can be trusted, so the connection
/// must be dropped. Oversized declared lengths are rejected at
/// header-parse time, before any payload buffer is allocated.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends `bytes` to the internal buffer and decodes as many complete
  /// frames as possible. Returns the frames completed by this feed (empty
  /// on partial input). Once poisoned, feeds are ignored and return
  /// nothing.
  std::vector<Frame> feed(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool poisoned() const { return error_ != DecodeError::kNone; }
  [[nodiscard]] DecodeError error() const { return error_; }
  /// The raw prefix that triggered the poison (header bytes or the whole
  /// frame for checksum failures), capped for quarantine booking.
  [[nodiscard]] const std::vector<std::uint8_t>& poison_prefix() const {
    return poison_prefix_;
  }
  /// Bytes currently buffered awaiting frame completion.
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - consumed_;
  }
  [[nodiscard]] std::uint32_t max_frame_bytes() const {
    return max_frame_bytes_;
  }

 private:
  void poison(DecodeError error, std::size_t prefix_at);

  std::uint32_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  /// Prefix of buffer_ already emitted as frames; compacted lazily so a
  /// slow-loris byte-at-a-time writer does not trigger O(n^2) memmoves.
  std::size_t consumed_ = 0;
  DecodeError error_ = DecodeError::kNone;
  std::vector<std::uint8_t> poison_prefix_;
};

// ---------------------------------------------------------------------------
// Credit state machines
// ---------------------------------------------------------------------------

/// Daemon-side credit accounting for one connection. `window` credits are
/// granted on accept; each admitted capture consumes one; each resolved
/// capture (ingested or shed) returns one, and returned credits are
/// flushed to the client in batches via take_grant() so a grant frame is
/// not written per capture.
class CreditGate {
 public:
  explicit CreditGate(std::uint32_t window = 64) : window_(window) {}

  [[nodiscard]] std::uint32_t window() const { return window_; }
  /// Credits currently spent by the client and not yet returned.
  [[nodiscard]] std::uint32_t outstanding() const { return outstanding_; }
  /// Resolved credits awaiting a grant frame.
  [[nodiscard]] std::uint32_t returnable() const { return returnable_; }

  /// Client sent a capture: spend one credit. Returns false on a credit
  /// violation (client overran its window) — the caller books the
  /// violation and closes the connection.
  [[nodiscard]] bool consume();

  /// A previously consumed capture was resolved (ingested or shed); its
  /// credit becomes returnable.
  void complete();

  /// Drains the returnable credits (for one kCreditGrant frame), or 0 if
  /// nothing is pending.
  [[nodiscard]] std::uint32_t take_grant();

 private:
  std::uint32_t window_;
  std::uint32_t outstanding_ = 0;
  std::uint32_t returnable_ = 0;
};

/// Client-side mirror: tracks how many captures may be sent right now.
/// Hostile/buggy grant frames must never wedge or overflow the counter —
/// grants saturate instead of wrapping (fuzzed in tests/test_fuzz.cpp).
class CreditClient {
 public:
  [[nodiscard]] std::uint32_t available() const { return available_; }

  /// Applies a kCreditGrant. Saturates at UINT32_MAX.
  void on_grant(std::uint32_t credits);

  /// Spend one credit for a capture about to be sent. Returns false when
  /// no credit is available (the open-loop loadgen counts this as a
  /// backpressure drop).
  [[nodiscard]] bool try_send();

 private:
  std::uint32_t available_ = 0;
};

// ---------------------------------------------------------------------------
// Small payload helpers
// ---------------------------------------------------------------------------

/// kCreditGrant payload: a single u32.
[[nodiscard]] std::vector<std::uint8_t> encode_credit_grant(
    std::uint32_t credits);
/// Parses a grant payload; nullopt on malformed input (wrong size).
[[nodiscard]] std::optional<std::uint32_t> decode_credit_grant(
    std::span<const std::uint8_t> payload);

}  // namespace tls::daemon
