#include "faults/injector.hpp"

#include <algorithm>

namespace tls::faults {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kLengthCorrupt: return "length_corrupt";
    case FaultKind::kTrailingGarbage: return "trailing_garbage";
    case FaultKind::kRecordSplit: return "record_split";
    case FaultKind::kRecordCoalesce: return "record_coalesce";
    case FaultKind::kDropFlight: return "drop_flight";
    case FaultKind::kOneSided: return "one_sided";
    case FaultKind::kFrameTruncate: return "frame_truncate";
    case FaultKind::kFrameBitFlip: return "frame_bit_flip";
    case FaultKind::kFrameDuplicate: return "frame_duplicate";
    case FaultKind::kGroupTornTail: return "group_torn_tail";
    case FaultKind::kGroupBitFlip: return "group_bit_flip";
    case FaultKind::kSegmentTruncate: return "segment_truncate";
    case FaultKind::kIndexStale: return "index_stale";
  }
  return "?";
}

FaultConfig FaultConfig::uniform(double rate) {
  const double r = rate / 8.0;
  FaultConfig c;
  c.truncate = c.bit_flip = c.length_corrupt = c.trailing_garbage =
      c.record_split = c.record_coalesce = c.drop_flight = c.one_sided = r;
  return c;
}

FaultConfig FaultConfig::bytes_only(double rate) {
  const double r = rate / 6.0;
  FaultConfig c;
  c.truncate = c.bit_flip = c.length_corrupt = c.trailing_garbage =
      c.record_split = c.record_coalesce = r;
  return c;
}

FaultConfig FaultConfig::frames_only(double rate) {
  const double r = rate / 3.0;
  FaultConfig c;
  c.frame_truncate = c.frame_bit_flip = c.frame_duplicate = r;
  return c;
}

FaultConfig FaultConfig::groups_only(double rate) {
  const double r = rate / 4.0;
  FaultConfig c;
  c.group_torn_tail = c.group_bit_flip = c.segment_truncate = c.index_stale = r;
  return c;
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

FaultKind FaultInjector::roll() {
  double u = rng_.uniform();
  const std::pair<FaultKind, double> weights[] = {
      {FaultKind::kTruncate, config_.truncate},
      {FaultKind::kBitFlip, config_.bit_flip},
      {FaultKind::kLengthCorrupt, config_.length_corrupt},
      {FaultKind::kTrailingGarbage, config_.trailing_garbage},
      {FaultKind::kRecordSplit, config_.record_split},
      {FaultKind::kRecordCoalesce, config_.record_coalesce},
      {FaultKind::kDropFlight, config_.drop_flight},
      {FaultKind::kOneSided, config_.one_sided},
  };
  for (const auto& [kind, w] : weights) {
    if (u < w) return kind;
    u -= w;
  }
  return FaultKind::kNone;
}

void FaultInjector::apply_bytes(FaultKind kind,
                                std::vector<std::uint8_t>& stream) {
  switch (kind) {
    case FaultKind::kTruncate:
      truncate_at(stream, stream.empty() ? 0 : rng_.below(stream.size()));
      break;
    case FaultKind::kBitFlip:
      flip_bits(stream, rng_, 1 + static_cast<int>(rng_.below(8)));
      break;
    case FaultKind::kLengthCorrupt:
      corrupt_record_length(stream, rng_);
      break;
    case FaultKind::kTrailingGarbage:
      append_garbage(stream, rng_);
      break;
    case FaultKind::kRecordSplit:
      if (!split_record(stream, rng_)) flip_bits(stream, rng_, 1);
      break;
    case FaultKind::kRecordCoalesce:
      if (!coalesce_records(stream)) flip_bits(stream, rng_, 1);
      break;
    case FaultKind::kDropFlight:
    case FaultKind::kOneSided:
      stream.clear();
      break;
    case FaultKind::kNone:
    case FaultKind::kFrameTruncate:
    case FaultKind::kFrameBitFlip:
    case FaultKind::kFrameDuplicate:
    case FaultKind::kGroupTornTail:
    case FaultKind::kGroupBitFlip:
    case FaultKind::kSegmentTruncate:
    case FaultKind::kIndexStale:
      break;  // journal kinds are handled by corrupt_frame/corrupt_group
  }
}

FaultKind FaultInjector::corrupt_stream(std::vector<std::uint8_t>& stream) {
  ++stats_.streams_seen;
  const FaultKind kind = roll();
  if (kind != FaultKind::kNone) {
    apply_bytes(kind, stream);
    ++stats_.applied[static_cast<std::size_t>(kind)];
  }
  return kind;
}

FaultKind FaultInjector::roll_capture() {
  ++stats_.captures_seen;
  return roll();
}

void FaultInjector::apply_capture(FaultKind kind,
                                  std::vector<std::uint8_t>& client,
                                  std::vector<std::uint8_t>& server) {
  switch (kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kDropFlight:
      client.clear();
      server.clear();
      break;
    case FaultKind::kOneSided:
      (rng_.next() & 1 ? client : server).clear();
      break;
    default:
      apply_bytes(kind, rng_.next() & 1 ? client : server);
      break;
  }
  ++stats_.applied[static_cast<std::size_t>(kind)];
}

FaultKind FaultInjector::corrupt_capture(std::vector<std::uint8_t>& client,
                                         std::vector<std::uint8_t>& server) {
  const FaultKind kind = roll_capture();
  apply_capture(kind, client, server);
  return kind;
}

FaultKind FaultInjector::corrupt_frame(std::vector<std::uint8_t>& frame) {
  ++stats_.frames_seen;
  double u = rng_.uniform();
  const std::pair<FaultKind, double> weights[] = {
      {FaultKind::kFrameTruncate, config_.frame_truncate},
      {FaultKind::kFrameBitFlip, config_.frame_bit_flip},
      {FaultKind::kFrameDuplicate, config_.frame_duplicate},
  };
  FaultKind kind = FaultKind::kNone;
  for (const auto& [k, w] : weights) {
    if (u < w) {
      kind = k;
      break;
    }
    u -= w;
  }
  switch (kind) {
    case FaultKind::kFrameTruncate:
      truncate_at(frame, frame.empty() ? 0 : rng_.below(frame.size()));
      break;
    case FaultKind::kFrameBitFlip:
      // One byte XORed with a non-zero mask: guaranteed to change the
      // frame (flip_bits may revisit a bit and cancel itself out), which
      // the checksum-detection contract relies on.
      if (!frame.empty()) {
        frame[rng_.below(frame.size())] ^=
            static_cast<std::uint8_t>(1 + rng_.below(255));
      }
      break;
    case FaultKind::kFrameDuplicate:
      break;  // no mutation: the journal writes the frame twice
    default:
      break;
  }
  if (kind != FaultKind::kNone) {
    ++stats_.applied[static_cast<std::size_t>(kind)];
  }
  return kind;
}

FaultKind FaultInjector::corrupt_group(std::vector<std::uint8_t>& group) {
  ++stats_.groups_seen;
  double u = rng_.uniform();
  const std::pair<FaultKind, double> weights[] = {
      {FaultKind::kGroupTornTail, config_.group_torn_tail},
      {FaultKind::kGroupBitFlip, config_.group_bit_flip},
      {FaultKind::kSegmentTruncate, config_.segment_truncate},
      {FaultKind::kIndexStale, config_.index_stale},
  };
  FaultKind kind = FaultKind::kNone;
  for (const auto& [k, w] : weights) {
    if (u < w) {
      kind = k;
      break;
    }
    u -= w;
  }
  switch (kind) {
    case FaultKind::kGroupTornTail:
      // Cut strictly inside the record: the scan must find a torn tail.
      truncate_at(group, group.empty() ? 0 : rng_.below(group.size()));
      break;
    case FaultKind::kGroupBitFlip:
      // One byte XORed with a non-zero mask (see corrupt_frame): the group
      // checksum is guaranteed to notice.
      if (!group.empty()) {
        group[rng_.below(group.size())] ^=
            static_cast<std::uint8_t>(1 + rng_.below(255));
      }
      break;
    case FaultKind::kSegmentTruncate:
    case FaultKind::kIndexStale:
      break;  // decisions only; the journal writer executes them
    default:
      break;
  }
  if (kind != FaultKind::kNone) {
    ++stats_.applied[static_cast<std::size_t>(kind)];
  }
  return kind;
}

std::vector<std::size_t> record_offsets(
    const std::vector<std::uint8_t>& stream) {
  std::vector<std::size_t> offsets;
  std::size_t at = 0;
  while (at + 5 <= stream.size()) {
    const std::size_t frag_len =
        (static_cast<std::size_t>(stream[at + 3]) << 8) | stream[at + 4];
    if (at + 5 + frag_len > stream.size()) break;
    offsets.push_back(at);
    at += 5 + frag_len;
  }
  return offsets;
}

void truncate_at(std::vector<std::uint8_t>& stream, std::size_t offset) {
  stream.resize(std::min(offset, stream.size()));
}

void flip_bits(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
               int flips) {
  if (stream.empty()) return;
  for (int i = 0; i < flips; ++i) {
    stream[rng.below(stream.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
  }
}

void corrupt_record_length(std::vector<std::uint8_t>& stream,
                           tls::core::Rng& rng) {
  const auto offsets = record_offsets(stream);
  if (offsets.empty()) {
    flip_bits(stream, rng, 1);
    return;
  }
  const std::size_t at = offsets[rng.below(offsets.size())];
  const std::uint16_t bogus = static_cast<std::uint16_t>(rng.next());
  stream[at + 3] = static_cast<std::uint8_t>(bogus >> 8);
  stream[at + 4] = static_cast<std::uint8_t>(bogus & 0xff);
}

void append_garbage(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
                    std::size_t max_bytes) {
  const std::size_t n = 1 + rng.below(max_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back(static_cast<std::uint8_t>(rng.next()));
  }
}

bool split_record(std::vector<std::uint8_t>& stream, tls::core::Rng& rng) {
  const auto offsets = record_offsets(stream);
  // Candidates: records whose fragment has >= 2 bytes to split.
  std::vector<std::size_t> candidates;
  for (const auto at : offsets) {
    const std::size_t frag_len =
        (static_cast<std::size_t>(stream[at + 3]) << 8) | stream[at + 4];
    if (frag_len >= 2) candidates.push_back(at);
  }
  if (candidates.empty()) return false;
  const std::size_t at = candidates[rng.below(candidates.size())];
  const std::size_t frag_len =
      (static_cast<std::size_t>(stream[at + 3]) << 8) | stream[at + 4];
  const std::size_t cut = 1 + rng.below(frag_len - 1);  // in [1, frag_len-1]

  std::vector<std::uint8_t> out;
  out.reserve(stream.size() + 5);
  out.insert(out.end(), stream.begin(),
             stream.begin() + static_cast<std::ptrdiff_t>(at));
  // First half: original header with patched length.
  out.push_back(stream[at]);
  out.push_back(stream[at + 1]);
  out.push_back(stream[at + 2]);
  out.push_back(static_cast<std::uint8_t>(cut >> 8));
  out.push_back(static_cast<std::uint8_t>(cut & 0xff));
  out.insert(out.end(), stream.begin() + static_cast<std::ptrdiff_t>(at + 5),
             stream.begin() + static_cast<std::ptrdiff_t>(at + 5 + cut));
  // Second half: a fresh header for the remainder.
  const std::size_t rest = frag_len - cut;
  out.push_back(stream[at]);
  out.push_back(stream[at + 1]);
  out.push_back(stream[at + 2]);
  out.push_back(static_cast<std::uint8_t>(rest >> 8));
  out.push_back(static_cast<std::uint8_t>(rest & 0xff));
  out.insert(out.end(),
             stream.begin() + static_cast<std::ptrdiff_t>(at + 5 + cut),
             stream.end());
  stream = std::move(out);
  return true;
}

bool coalesce_records(std::vector<std::uint8_t>& stream) {
  const auto offsets = record_offsets(stream);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    const std::size_t a = offsets[i];
    const std::size_t b = offsets[i + 1];
    const std::size_t a_len =
        (static_cast<std::size_t>(stream[a + 3]) << 8) | stream[a + 4];
    const std::size_t b_len =
        (static_cast<std::size_t>(stream[b + 3]) << 8) | stream[b + 4];
    if (stream[a] != stream[b] || stream[a + 1] != stream[b + 1] ||
        stream[a + 2] != stream[b + 2]) {
      continue;
    }
    const std::size_t merged = a_len + b_len;
    if (merged > 0x3fff) continue;  // keep the merged record legal
    stream[a + 3] = static_cast<std::uint8_t>(merged >> 8);
    stream[a + 4] = static_cast<std::uint8_t>(merged & 0xff);
    // Erase the second header; fragments become contiguous.
    stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(b),
                 stream.begin() + static_cast<std::ptrdiff_t>(b + 5));
    return true;
  }
  return false;
}

}  // namespace tls::faults
