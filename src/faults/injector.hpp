// Chaos tap: seeded, deterministic fault injection for the measurement
// planes. The real Notary saw truncated flows, one-sided captures and
// malformed hellos; Censys-style scans saw resets and timeouts. The
// FaultInjector reproduces those degradations on demand so the ingestion
// pipeline can be soak-tested at sweep-able fault rates: every mutation is
// drawn from an explicitly seeded tls::core::Rng, so a (config, seed) pair
// always yields the same corrupted byte stream.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tlscore/rng.hpp"

namespace tls::faults {

enum class FaultKind : std::uint8_t {
  kNone,             // stream passed through untouched
  kTruncate,         // cut at an arbitrary byte offset
  kBitFlip,          // 1..8 random bit flips
  kLengthCorrupt,    // randomize a record header's length field
  kTrailingGarbage,  // random bytes appended after the last record
  kRecordSplit,      // one record re-framed as two fragments
  kRecordCoalesce,   // two adjacent records merged into one
  kDropFlight,       // the whole capture lost (both directions)
  kOneSided,         // one direction of the capture lost

  // Checkpoint-journal frame faults (corrupt_frame only; never rolled by
  // the capture/stream paths, so adding them left every existing RNG
  // stream untouched).
  kFrameTruncate,    // journal frame cut short (simulated torn write)
  kFrameBitFlip,     // 1..8 bit flips inside a journal frame
  kFrameDuplicate,   // frame written twice (replayed append)

  // Segment-level journal faults (group-commit path only; rolled by
  // corrupt_group / roll_segment, so existing RNG streams are untouched).
  kGroupTornTail,    // group record cut mid-write (power cut during append)
  kGroupBitFlip,     // one byte corrupted inside a committed group
  kSegmentTruncate,  // whole segment tail lost after the group landed
  kIndexStale,       // INDEX entry pointing at a wrong (offset, length)
};

inline constexpr std::size_t kFaultKindCount = 16;

std::string_view fault_kind_name(FaultKind kind);

/// Per-kind injection probabilities (independent of each other only in the
/// sense that at most ONE fault is applied per stream/capture; the rates
/// are selection weights and their sum is the total fault rate, <= 1).
struct FaultConfig {
  double truncate = 0;
  double bit_flip = 0;
  double length_corrupt = 0;
  double trailing_garbage = 0;
  double record_split = 0;
  double record_coalesce = 0;
  double drop_flight = 0;
  double one_sided = 0;

  // Journal-frame fault rates, drawn only by corrupt_frame. Kept out of
  // total()/uniform() so capture fault baselines are unchanged.
  double frame_truncate = 0;
  double frame_bit_flip = 0;
  double frame_duplicate = 0;

  // Segment-level journal fault rates, drawn only by corrupt_group /
  // roll_segment on the group-commit path.
  double group_torn_tail = 0;
  double group_bit_flip = 0;
  double segment_truncate = 0;
  double index_stale = 0;

  /// Total capture/stream fault rate (probability any fault fires per
  /// capture). Frame rates are separate; see frame_total().
  [[nodiscard]] double total() const {
    return truncate + bit_flip + length_corrupt + trailing_garbage +
           record_split + record_coalesce + drop_flight + one_sided;
  }

  /// Total journal-frame fault rate (probability corrupt_frame acts).
  [[nodiscard]] double frame_total() const {
    return frame_truncate + frame_bit_flip + frame_duplicate;
  }

  /// Total segment-level fault rate (probability corrupt_group or
  /// roll_segment acts per committed group).
  [[nodiscard]] double group_total() const {
    return group_torn_tail + group_bit_flip + segment_truncate + index_stale;
  }

  /// Splits `rate` evenly over all eight capture fault kinds.
  static FaultConfig uniform(double rate);
  /// Byte-level faults only (no capture loss): even split over truncate,
  /// bit_flip, length_corrupt, trailing_garbage, record_split, coalesce.
  static FaultConfig bytes_only(double rate);
  /// Journal-frame faults only: even split over frame_truncate,
  /// frame_bit_flip, frame_duplicate.
  static FaultConfig frames_only(double rate);
  /// Segment-level faults only: even split over group_torn_tail,
  /// group_bit_flip, segment_truncate, index_stale.
  static FaultConfig groups_only(double rate);
};

/// Counts of what the injector actually did — the ground truth a soak test
/// compares the monitor's error taxonomy against.
struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> applied{};
  std::uint64_t streams_seen = 0;
  std::uint64_t captures_seen = 0;
  std::uint64_t frames_seen = 0;
  std::uint64_t groups_seen = 0;

  [[nodiscard]] std::uint64_t total_faults() const {
    std::uint64_t n = 0;
    for (std::size_t i = 1; i < kFaultKindCount; ++i) n += applied[i];
    return n;
  }
  [[nodiscard]] std::uint64_t count(FaultKind k) const {
    return applied[static_cast<std::size_t>(k)];
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config, std::uint64_t seed = 0xfa11);

  /// Possibly applies one byte-level fault to a single record stream,
  /// in place. Capture-level kinds (kDropFlight, kOneSided) degrade to
  /// clearing the stream. Returns what was done.
  FaultKind corrupt_stream(std::vector<std::uint8_t>& stream);

  /// Possibly applies one fault to a two-direction capture: kDropFlight
  /// clears both streams, kOneSided clears one (coin-flip which), and the
  /// byte-level kinds hit one direction (coin-flip which).
  FaultKind corrupt_capture(std::vector<std::uint8_t>& client,
                            std::vector<std::uint8_t>& server);

  /// Decision half of corrupt_capture: counts the capture and draws the
  /// capture-fault roll (exactly one uniform), applying nothing. Lets the
  /// monitor decide *before* serializing whether this event can take the
  /// struct fast path (kNone) while consuming the identical RNG stream.
  FaultKind roll_capture();
  /// Mutation half of corrupt_capture: applies `kind` (as returned by
  /// roll_capture) to the capture and books the stat. roll_capture followed
  /// by apply_capture is byte-for-byte equivalent to corrupt_capture.
  void apply_capture(FaultKind kind, std::vector<std::uint8_t>& client,
                     std::vector<std::uint8_t>& server);

  /// Possibly applies one journal-frame fault in place, drawing from the
  /// frame_* rates only. kFrameDuplicate performs no mutation — the caller
  /// is responsible for writing the frame twice.
  FaultKind corrupt_frame(std::vector<std::uint8_t>& frame);

  /// Possibly applies one segment-level fault to an encoded group record,
  /// drawing from the group_*/segment_*/index_* rates only.
  /// kGroupTornTail cuts the record short and kGroupBitFlip corrupts one
  /// byte, both in place; kSegmentTruncate and kIndexStale perform no
  /// mutation here — they are decisions the journal writer executes
  /// (dropping the segment tail / corrupting the INDEX entry).
  FaultKind corrupt_group(std::vector<std::uint8_t>& group);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] tls::core::Rng& rng() { return rng_; }

 private:
  FaultKind roll();
  void apply_bytes(FaultKind kind, std::vector<std::uint8_t>& stream);

  FaultConfig config_;
  tls::core::Rng rng_;
  FaultStats stats_;
};

// ---- deterministic mutation primitives (exposed for fuzz tests) ----

/// Offsets of the record headers in a serialized record stream, walking the
/// declared length fields; stops at the first malformed header.
std::vector<std::size_t> record_offsets(
    const std::vector<std::uint8_t>& stream);

void truncate_at(std::vector<std::uint8_t>& stream, std::size_t offset);
void flip_bits(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
               int flips);
/// Randomizes the u16 length field of a randomly chosen record header.
/// Falls back to a bit flip when no header is found.
void corrupt_record_length(std::vector<std::uint8_t>& stream,
                           tls::core::Rng& rng);
void append_garbage(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
                    std::size_t max_bytes = 32);
/// Re-frames one record as two records carrying the split fragment
/// (legal TLS fragmentation). Returns false when no record can be split.
bool split_record(std::vector<std::uint8_t>& stream, tls::core::Rng& rng);
/// Merges the first two adjacent records with equal type+version into one
/// record (legal coalescing). Returns false when no such pair exists.
bool coalesce_records(std::vector<std::uint8_t>& stream);

}  // namespace tls::faults
