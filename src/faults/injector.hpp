// Chaos tap: seeded, deterministic fault injection for the measurement
// planes. The real Notary saw truncated flows, one-sided captures and
// malformed hellos; Censys-style scans saw resets and timeouts. The
// FaultInjector reproduces those degradations on demand so the ingestion
// pipeline can be soak-tested at sweep-able fault rates: every mutation is
// drawn from an explicitly seeded tls::core::Rng, so a (config, seed) pair
// always yields the same corrupted byte stream.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tlscore/rng.hpp"

namespace tls::faults {

enum class FaultKind : std::uint8_t {
  kNone,             // stream passed through untouched
  kTruncate,         // cut at an arbitrary byte offset
  kBitFlip,          // 1..8 random bit flips
  kLengthCorrupt,    // randomize a record header's length field
  kTrailingGarbage,  // random bytes appended after the last record
  kRecordSplit,      // one record re-framed as two fragments
  kRecordCoalesce,   // two adjacent records merged into one
  kDropFlight,       // the whole capture lost (both directions)
  kOneSided,         // one direction of the capture lost
};

inline constexpr std::size_t kFaultKindCount = 9;

std::string_view fault_kind_name(FaultKind kind);

/// Per-kind injection probabilities (independent of each other only in the
/// sense that at most ONE fault is applied per stream/capture; the rates
/// are selection weights and their sum is the total fault rate, <= 1).
struct FaultConfig {
  double truncate = 0;
  double bit_flip = 0;
  double length_corrupt = 0;
  double trailing_garbage = 0;
  double record_split = 0;
  double record_coalesce = 0;
  double drop_flight = 0;
  double one_sided = 0;

  /// Total fault rate (probability any fault fires per capture).
  [[nodiscard]] double total() const {
    return truncate + bit_flip + length_corrupt + trailing_garbage +
           record_split + record_coalesce + drop_flight + one_sided;
  }

  /// Splits `rate` evenly over all eight fault kinds.
  static FaultConfig uniform(double rate);
  /// Byte-level faults only (no capture loss): even split over truncate,
  /// bit_flip, length_corrupt, trailing_garbage, record_split, coalesce.
  static FaultConfig bytes_only(double rate);
};

/// Counts of what the injector actually did — the ground truth a soak test
/// compares the monitor's error taxonomy against.
struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> applied{};
  std::uint64_t streams_seen = 0;
  std::uint64_t captures_seen = 0;

  [[nodiscard]] std::uint64_t total_faults() const {
    std::uint64_t n = 0;
    for (std::size_t i = 1; i < kFaultKindCount; ++i) n += applied[i];
    return n;
  }
  [[nodiscard]] std::uint64_t count(FaultKind k) const {
    return applied[static_cast<std::size_t>(k)];
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config, std::uint64_t seed = 0xfa11);

  /// Possibly applies one byte-level fault to a single record stream,
  /// in place. Capture-level kinds (kDropFlight, kOneSided) degrade to
  /// clearing the stream. Returns what was done.
  FaultKind corrupt_stream(std::vector<std::uint8_t>& stream);

  /// Possibly applies one fault to a two-direction capture: kDropFlight
  /// clears both streams, kOneSided clears one (coin-flip which), and the
  /// byte-level kinds hit one direction (coin-flip which).
  FaultKind corrupt_capture(std::vector<std::uint8_t>& client,
                            std::vector<std::uint8_t>& server);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] tls::core::Rng& rng() { return rng_; }

 private:
  FaultKind roll();
  void apply_bytes(FaultKind kind, std::vector<std::uint8_t>& stream);

  FaultConfig config_;
  tls::core::Rng rng_;
  FaultStats stats_;
};

// ---- deterministic mutation primitives (exposed for fuzz tests) ----

/// Offsets of the record headers in a serialized record stream, walking the
/// declared length fields; stops at the first malformed header.
std::vector<std::size_t> record_offsets(
    const std::vector<std::uint8_t>& stream);

void truncate_at(std::vector<std::uint8_t>& stream, std::size_t offset);
void flip_bits(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
               int flips);
/// Randomizes the u16 length field of a randomly chosen record header.
/// Falls back to a bit flip when no header is found.
void corrupt_record_length(std::vector<std::uint8_t>& stream,
                           tls::core::Rng& rng);
void append_garbage(std::vector<std::uint8_t>& stream, tls::core::Rng& rng,
                    std::size_t max_bytes = 32);
/// Re-frames one record as two records carrying the split fragment
/// (legal TLS fragmentation). Returns false when no record can be split.
bool split_record(std::vector<std::uint8_t>& stream, tls::core::Rng& rng);
/// Merges the first two adjacent records with equal type+version into one
/// record (legal coalescing). Returns false when no such pair exists.
bool coalesce_records(std::vector<std::uint8_t>& stream);

}  // namespace tls::faults
