#include "faults/network.hpp"

#include <algorithm>

namespace tls::faults {

std::string_view probe_outcome_name(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kOk: return "ok";
    case ProbeOutcome::kTimeout: return "timeout";
    case ProbeOutcome::kReset: return "reset";
    case ProbeOutcome::kUnreachable: return "unreachable";
  }
  return "?";
}

NetworkProfile NetworkProfile::lossy(double level) {
  NetworkProfile p;
  p.unreachable = 0.5 * level;
  p.timeout = 0.2 * level;
  p.reset = 0.1 * level;
  p.flaky_hosts = 0.1 * level;
  return p;
}

ProbeTrace run_probe(const NetworkProfile& profile, const RetryPolicy& policy,
                     tls::core::Rng& rng) {
  ProbeTrace trace;
  const bool host_dead = rng.chance(profile.unreachable);
  const bool host_flaky = rng.chance(profile.flaky_hosts);
  const double penalty = host_flaky ? profile.flaky_penalty : 1.0;
  const double p_timeout = std::min(1.0, profile.timeout * penalty);
  const double p_reset = std::min(1.0, profile.reset * penalty);

  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  for (std::uint32_t i = 0; i < attempts; ++i) {
    if (i > 0) {
      double backoff = policy.base_backoff_ms;
      for (std::uint32_t k = 1; k < i; ++k) backoff *= policy.backoff_factor;
      backoff *= 1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0);
      trace.backoffs_ms.push_back(backoff);
      trace.elapsed_ms += backoff;
    }
    ProbeOutcome outcome;
    if (host_dead) {
      outcome = ProbeOutcome::kUnreachable;
      trace.elapsed_ms += policy.attempt_timeout_ms;
    } else {
      const double u = rng.uniform();
      if (u < p_timeout) {
        outcome = ProbeOutcome::kTimeout;
        trace.elapsed_ms += policy.attempt_timeout_ms;
      } else if (u < p_timeout + p_reset) {
        outcome = ProbeOutcome::kReset;
        // A reset comes back fast; charge a token cost.
        trace.elapsed_ms += policy.attempt_timeout_ms * 0.05;
      } else {
        outcome = ProbeOutcome::kOk;
      }
    }
    trace.attempts.push_back(outcome);
    if (outcome == ProbeOutcome::kOk) {
      trace.reached = true;
      return trace;
    }
    if (policy.total_budget_ms > 0 &&
        trace.elapsed_ms >= policy.total_budget_ms) {
      trace.abandoned = i + 1 < attempts;
      return trace;
    }
  }
  return trace;
}

}  // namespace tls::faults
