// Scan-plane fault model: the failure modes a Censys-style scanner meets on
// the open internet (dead hosts, RSTs, timeouts, flaky middleboxes) plus a
// deterministic retry/backoff engine. Everything is driven by an explicit
// tls::core::Rng so a fixed seed reproduces the exact same probe schedule —
// attempts, backoff delays and final outcome.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "tlscore/rng.hpp"

namespace tls::faults {

enum class ProbeOutcome : std::uint8_t {
  kOk,           // handshake bytes flowed
  kTimeout,      // no answer within the per-attempt timeout
  kReset,        // TCP RST / ICMP unreachable mid-attempt
  kUnreachable,  // host dead for the whole scan (no retry helps)
};

std::string_view probe_outcome_name(ProbeOutcome outcome);

/// Per-host/per-attempt failure probabilities. All zero = ideal network
/// (the default everywhere, keeping the fault-free path bit-identical).
struct NetworkProfile {
  /// Fraction of hosts that are down for the entire sweep.
  double unreachable = 0;
  /// Per-attempt probability of a timeout on a live host.
  double timeout = 0;
  /// Per-attempt probability of a connection reset on a live host.
  double reset = 0;
  /// Fraction of live hosts that are flaky: their per-attempt timeout and
  /// reset probabilities are multiplied by `flaky_penalty`.
  double flaky_hosts = 0;
  double flaky_penalty = 10.0;

  [[nodiscard]] bool ideal() const {
    return unreachable == 0 && timeout == 0 && reset == 0 && flaky_hosts == 0;
  }

  /// A plausibly-shaped lossy profile scaled by `level` in [0, 1]:
  /// level 0.1 ~ a bad day on a campus uplink, 1.0 ~ a hostile network.
  static NetworkProfile lossy(double level);
};

/// Retry/backoff policy for one probe: capped exponential backoff with
/// deterministic jitter, bounded by attempts and a total time budget.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;
  double attempt_timeout_ms = 1000;
  double base_backoff_ms = 50;
  double backoff_factor = 2.0;
  /// Jitter fraction: each backoff is scaled by (1 +/- jitter * u), with u
  /// drawn from the probe's Rng — deterministic for a fixed seed.
  double jitter = 0.25;
  /// Abandon the probe once total elapsed (timeouts + backoffs) exceeds
  /// this; <= 0 means no budget.
  double total_budget_ms = 10000;
};

/// What one probe did, attempt by attempt.
struct ProbeTrace {
  std::vector<ProbeOutcome> attempts;
  std::vector<double> backoffs_ms;  // delay before attempt i+1
  bool reached = false;
  bool abandoned = false;  // gave up on budget before exhausting attempts
  double elapsed_ms = 0;

  [[nodiscard]] std::uint32_t retries() const {
    return attempts.empty() ? 0
                            : static_cast<std::uint32_t>(attempts.size() - 1);
  }
};

/// Runs one probe against a host drawn from `profile` under `policy`,
/// consuming randomness only from `rng`.
ProbeTrace run_probe(const NetworkProfile& profile, const RetryPolicy& policy,
                     tls::core::Rng& rng);

}  // namespace tls::faults
