#include "fingerprint/database.hpp"

namespace tls::fp {

std::string_view software_class_name(SoftwareClass c) {
  switch (c) {
    case SoftwareClass::kLibrary: return "Libraries";
    case SoftwareClass::kBrowser: return "Browsers";
    case SoftwareClass::kOsTool: return "OS Tools and Services";
    case SoftwareClass::kMobileApp: return "Mobile apps";
    case SoftwareClass::kDevTool: return "Dev. tools";
    case SoftwareClass::kAntivirus: return "AV";
    case SoftwareClass::kCloudStorage: return "Cloud Storage";
    case SoftwareClass::kEmail: return "Email";
    case SoftwareClass::kMalware: return "Malware & PUP";
  }
  return "?";
}

FingerprintDatabase::AddOutcome FingerprintDatabase::add(const Fingerprint& fp,
                                                         SoftwareLabel label) {
  return add(fp.hash(), std::move(label));
}

FingerprintDatabase::AddOutcome FingerprintDatabase::add(
    const std::string& hash, SoftwareLabel label) {
  if (removed_.contains(hash)) return AddOutcome::kAlreadyRemoved;

  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    entries_.emplace(hash, std::move(label));
    return AddOutcome::kAdded;
  }

  SoftwareLabel& existing = it->second;
  if (existing.software == label.software) {
    // Same software, wider version coverage.
    if (label.version_min < existing.version_min || existing.version_min.empty()) {
      existing.version_min = label.version_min;
    }
    if (label.version_max > existing.version_max) {
      existing.version_max = label.version_max;
    }
    return AddOutcome::kVersionExtended;
  }

  const bool existing_lib = existing.cls == SoftwareClass::kLibrary;
  const bool incoming_lib = label.cls == SoftwareClass::kLibrary;
  if (existing_lib != incoming_lib) {
    // Application vs library: the application is assumed to use the library,
    // so the library label wins (§4: Chrome on Android -> "Android SDK").
    if (incoming_lib) existing = std::move(label);
    return AddOutcome::kResolvedLibrary;
  }

  // Two distinct software packages (or two distinct libraries) share the
  // fingerprint: it cannot uniquely identify a client. Drop it permanently.
  entries_.erase(it);
  removed_.insert(hash);
  return AddOutcome::kRemoved;
}

const SoftwareLabel* FingerprintDatabase::lookup(
    const std::string& hash) const {
  const auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

std::map<SoftwareClass, std::size_t> FingerprintDatabase::count_by_class()
    const {
  std::map<SoftwareClass, std::size_t> counts;
  for (const auto& [hash, label] : entries_) ++counts[label.cls];
  return counts;
}

}  // namespace tls::fp
