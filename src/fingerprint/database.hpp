// The labeled fingerprint database of §4: maps fingerprint hashes to the
// program or library that produced them, with the paper's collision rules:
//   * collision between two different kinds of software  -> drop the entry
//     (it cannot uniquely identify a client);
//   * collision between an application and a library     -> keep the library
//     (assume the application links the library; e.g. Chrome-on-Android is
//     identified as "Android SDK").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fingerprint/fingerprint.hpp"

namespace tls::fp {

/// Software classes of paper Table 2.
enum class SoftwareClass : std::uint8_t {
  kLibrary,
  kBrowser,
  kOsTool,
  kMobileApp,
  kDevTool,
  kAntivirus,
  kCloudStorage,
  kEmail,
  kMalware,
};

std::string_view software_class_name(SoftwareClass c);

/// The label a fingerprint resolves to: software name plus the version range
/// the fingerprint covers (a fingerprint usually spans many versions).
struct SoftwareLabel {
  std::string software;
  SoftwareClass cls = SoftwareClass::kLibrary;
  std::string version_min;
  std::string version_max;
};

class FingerprintDatabase {
 public:
  enum class AddOutcome {
    kAdded,            // new fingerprint
    kVersionExtended,  // same software; version range widened
    kResolvedLibrary,  // app/library collision; library label kept
    kRemoved,          // cross-software collision; entry dropped for good
    kAlreadyRemoved,   // hash was previously dropped
  };

  /// Inserts a (fingerprint, label) pair applying the collision rules above.
  AddOutcome add(const Fingerprint& fp, SoftwareLabel label);
  AddOutcome add(const std::string& hash, SoftwareLabel label);

  /// Label for a hash; nullptr when unknown or removed by collision.
  [[nodiscard]] const SoftwareLabel* lookup(const std::string& hash) const;

  /// Number of live (labeled, non-removed) fingerprints.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t removed_count() const { return removed_.size(); }

  /// Live fingerprint count per class, ordered as Table 2.
  [[nodiscard]] std::map<SoftwareClass, std::size_t> count_by_class() const;

  [[nodiscard]] const std::unordered_map<std::string, SoftwareLabel>& entries()
      const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, SoftwareLabel> entries_;
  // Membership is the only question ever asked of dropped hashes.
  std::unordered_set<std::string> removed_;
};

}  // namespace tls::fp
