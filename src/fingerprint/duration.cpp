#include "fingerprint/duration.hpp"

#include <algorithm>
#include <cmath>

namespace tls::fp {

void DurationTracker::record(const std::string& hash,
                             const tls::core::Date& day,
                             std::uint64_t connections) {
  const std::int64_t d = day.to_days();
  auto [it, inserted] = lifetimes_.try_emplace(hash, Lifetime{d, d, 0});
  Lifetime& lt = it->second;
  lt.first_day = std::min(lt.first_day, d);
  lt.last_day = std::max(lt.last_day, d);
  lt.connections += connections;
}

void DurationTracker::merge(const DurationTracker& other) {
  for (const auto& [hash, lt] : other.lifetimes_) {
    auto [it, inserted] = lifetimes_.try_emplace(hash, lt);
    if (inserted) continue;
    Lifetime& mine = it->second;
    mine.first_day = std::min(mine.first_day, lt.first_day);
    mine.last_day = std::max(mine.last_day, lt.last_day);
    mine.connections += lt.connections;
  }
}

DurationTracker::Summary DurationTracker::summarize(
    std::int64_t long_lived_threshold) const {
  Summary s;
  s.fingerprint_count = lifetimes_.size();
  if (lifetimes_.empty()) return s;

  std::vector<std::int64_t> durations;
  durations.reserve(lifetimes_.size());
  for (const auto& [hash, lt] : lifetimes_) {
    durations.push_back(lt.duration_days());
    s.total_connections += lt.connections;
    // §4.1 single-day definition: first and last sighting fall on the same
    // civil day, i.e. duration_days() == 1 (its minimum — record() keeps
    // first_day <= last_day, so durations below 1 cannot occur).
    if (lt.duration_days() == 1) {
      ++s.single_day_count;
      s.single_day_connections += lt.connections;
    }
    if (lt.duration_days() > long_lived_threshold) {
      ++s.long_lived_count;
      s.long_lived_connections += lt.connections;
    }
  }
  std::sort(durations.begin(), durations.end());

  // Linear-interpolation quantile over the sorted durations (type-7, the
  // R/NumPy default). At size() == 1, pos == 0 for every q, so lo == hi
  // and the single duration is returned exactly — median and Q3 of a
  // one-fingerprint dataset are that fingerprint's lifetime.
  const auto quantile = [&](double q) {
    const double pos = q * (static_cast<double>(durations.size()) - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, durations.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<double>(durations[lo]) * (1 - frac) +
           static_cast<double>(durations[hi]) * frac;
  };

  s.median_days = quantile(0.5);
  s.q3_days = quantile(0.75);
  s.max_days = durations.back();

  double sum = 0;
  for (const auto d : durations) sum += static_cast<double>(d);
  s.mean_days = sum / static_cast<double>(durations.size());
  double var = 0;
  for (const auto d : durations) {
    const double delta = static_cast<double>(d) - s.mean_days;
    var += delta * delta;
  }
  s.stddev_days =
      std::sqrt(var / static_cast<double>(durations.size()));
  s.long_lived_connection_share =
      s.total_connections == 0
          ? 0
          : static_cast<double>(s.long_lived_connections) /
                static_cast<double>(s.total_connections);
  return s;
}

}  // namespace tls::fp
