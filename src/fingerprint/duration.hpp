// Fingerprint lifetime statistics (§4.1): for each observed fingerprint
// hash, the tracker records the first and last day it was seen and how many
// connections carried it. The paper reports: 69,874 usable fingerprints,
// median lifetime 1 day, mean 158.8 days, 3rd quartile 171 days, std-dev
// 302.31 days; 42,188 single-day fingerprints; 1,203 fingerprints seen
// > 1200 days carrying 21.75% of fingerprintable connections.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tlscore/dates.hpp"

namespace tls::fp {

class DurationTracker {
 public:
  /// Records `connections` observations of `hash` on `day`.
  void record(const std::string& hash, const tls::core::Date& day,
              std::uint64_t connections = 1);

  /// Shard merge: folds `other`'s lifetimes into this tracker. Per hash
  /// the merge is min(first)/max(last)/sum(connections) — commutative and
  /// associative, so the merged tracker equals one that observed both
  /// event streams in any interleaving.
  void merge(const DurationTracker& other);

  struct Lifetime {
    std::int64_t first_day = 0;  // days since epoch
    std::int64_t last_day = 0;
    std::uint64_t connections = 0;

    /// Inclusive duration in days (single-day fingerprints -> 1). Since
    /// last_day >= first_day always holds, this is >= 1, and §4.1's
    /// "single-day fingerprint" (first and last sighting on the same
    /// civil day) is exactly duration_days() == 1.
    [[nodiscard]] std::int64_t duration_days() const {
      return last_day - first_day + 1;
    }
  };

  struct Summary {
    std::size_t fingerprint_count = 0;
    std::uint64_t total_connections = 0;
    double median_days = 0;
    double mean_days = 0;
    double q3_days = 0;       // 3rd quartile
    double stddev_days = 0;
    std::int64_t max_days = 0;
    std::size_t single_day_count = 0;
    std::uint64_t single_day_connections = 0;
    std::size_t long_lived_count = 0;        // > long_lived_threshold days
    std::uint64_t long_lived_connections = 0;
    double long_lived_connection_share = 0;  // fraction of all connections
  };

  /// Folds one externally-reconstructed lifetime into the tracker (the
  /// snapshot-restore counterpart of merge): min(first)/max(last)/
  /// sum(connections), identical to absorbing a tracker holding only this
  /// entry.
  void add_lifetime(const std::string& hash, const Lifetime& life) {
    auto [it, inserted] = lifetimes_.try_emplace(hash, life);
    if (!inserted) {
      Lifetime& l = it->second;
      l.first_day = std::min(l.first_day, life.first_day);
      l.last_day = std::max(l.last_day, life.last_day);
      l.connections += life.connections;
    }
  }

  /// Computes the §4.1 statistics. `long_lived_threshold` defaults to the
  /// paper's 1200-day cut.
  [[nodiscard]] Summary summarize(std::int64_t long_lived_threshold = 1200) const;

  [[nodiscard]] std::size_t size() const { return lifetimes_.size(); }
  [[nodiscard]] const std::unordered_map<std::string, Lifetime>& lifetimes()
      const {
    return lifetimes_;
  }

 private:
  std::unordered_map<std::string, Lifetime> lifetimes_;
};

}  // namespace tls::fp
