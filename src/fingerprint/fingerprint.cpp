#include "fingerprint/fingerprint.hpp"

#include "fingerprint/md5.hpp"
#include "tlscore/grease.hpp"

namespace tls::fp {

namespace {

void append_list(std::string& out, const std::vector<std::uint16_t>& vals) {
  bool first = true;
  for (const auto v : vals) {
    if (!first) out.push_back('-');
    out += std::to_string(v);
    first = false;
  }
}

std::vector<std::uint16_t> strip_grease(std::vector<std::uint16_t> vals) {
  std::erase_if(vals, [](std::uint16_t v) { return tls::core::is_grease(v); });
  return vals;
}

}  // namespace

std::string Fingerprint::canonical() const {
  std::string out;
  // Each id renders as at most 5 digits plus a separator; reserving up front
  // keeps the hot fingerprint path to a single allocation.
  out.reserve(6 * (cipher_suites.size() + extensions.size() + groups.size() +
                   ec_point_formats.size()) +
              3);
  append_list(out, cipher_suites);
  out.push_back(',');
  append_list(out, extensions);
  out.push_back(',');
  append_list(out, groups);
  out.push_back(',');
  bool first = true;
  for (const auto f : ec_point_formats) {
    if (!first) out.push_back('-');
    out += std::to_string(f);
    first = false;
  }
  return out;
}

std::string Fingerprint::hash() const { return Md5::hex(canonical()); }

Fingerprint extract_fingerprint(const tls::wire::ClientHello& hello) {
  Fingerprint fp;
  fp.cipher_suites = strip_grease(hello.cipher_suites);
  fp.extensions.reserve(hello.extensions.size());
  for (const auto& e : hello.extensions) {
    if (!tls::core::is_grease(e.type)) fp.extensions.push_back(e.type);
  }
  if (auto groups = hello.supported_groups()) {
    fp.groups = strip_grease(std::move(*groups));
  }
  if (auto formats = hello.ec_point_formats()) {
    fp.ec_point_formats = std::move(*formats);
  }
  return fp;
}

std::string ja3_string(const tls::wire::ClientHello& hello) {
  const Fingerprint fp = extract_fingerprint(hello);
  std::string out;
  out.reserve(8 + 6 * (fp.cipher_suites.size() + fp.extensions.size() +
                       fp.groups.size() + fp.ec_point_formats.size()));
  out += std::to_string(hello.legacy_version);
  out.push_back(',');
  out += fp.canonical();
  return out;
}

std::string ja3_hash(const tls::wire::ClientHello& hello) {
  return Md5::hex(ja3_string(hello));
}

std::string extended_fingerprint_string(const tls::wire::ClientHello& hello) {
  std::string out = std::to_string(hello.legacy_version);
  out.push_back('|');
  out += extract_fingerprint(hello).canonical();
  out.push_back('|');
  bool first = true;
  for (const auto c : hello.compression_methods) {
    if (!first) out.push_back('-');
    out += std::to_string(c);
    first = false;
  }
  out.push_back('|');
  const auto* sig = tls::wire::find_extension(
      hello.extensions, tls::core::ExtensionType::kSignatureAlgorithms);
  if (sig != nullptr) {
    first = true;
    for (const auto v : tls::wire::parse_signature_algorithms(sig->body)) {
      if (!first) out.push_back('-');
      out += std::to_string(v);
      first = false;
    }
  }
  return out;
}

std::string extended_fingerprint_hash(const tls::wire::ClientHello& hello) {
  return Md5::hex(extended_fingerprint_string(hello));
}

}  // namespace tls::fp
