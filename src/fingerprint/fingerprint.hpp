// TLS client fingerprinting per the paper's §4 methodology: a fingerprint is
// the concatenation of four ClientHello features, in the order they appear
// on the wire, with GREASE values removed:
//   (i)   the cipher-suite list,
//   (ii)  the extension-type list,
//   (iii) the supported groups (elliptic curves),
//   (iv)  the EC point formats.
// The canonical text form mirrors JA3's "field,field-field" layout so hashes
// are stable and human-diffable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wire/client_hello.hpp"

namespace tls::fp {

struct Fingerprint {
  std::vector<std::uint16_t> cipher_suites;
  std::vector<std::uint16_t> extensions;
  std::vector<std::uint16_t> groups;
  std::vector<std::uint8_t> ec_point_formats;

  /// Canonical text: "c1-c2-...,e1-e2-...,g1-...,f1-..." (decimal values).
  [[nodiscard]] std::string canonical() const;

  /// MD5 of canonical(), lowercase hex — the database key.
  [[nodiscard]] std::string hash() const;

  /// True if any (registered, non-SCSV) offered suite satisfies pred —
  /// the Fig. 4 "fingerprints with support for X" relation.
  template <typename Pred>
  [[nodiscard]] bool offers(Pred&& pred) const {
    for (const auto id : cipher_suites) {
      const auto* info = tls::core::find_cipher_suite(id);
      if (info != nullptr && !info->scsv && pred(*info)) return true;
    }
    return false;
  }

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Extracts the fingerprint from a parsed ClientHello, stripping GREASE
/// from every field (§4). SCSVs are kept: they are stable client signals.
Fingerprint extract_fingerprint(const tls::wire::ClientHello& hello);

/// JA3 string (adds the client version and keeps JA3's field order) — for
/// interoperability with external fingerprint corpora. GREASE stripped.
std::string ja3_string(const tls::wire::ClientHello& hello);
std::string ja3_hash(const tls::wire::ClientHello& hello);

/// The richer fingerprint of prior work ([22, 45] in the paper): the §4
/// features plus client version, compression methods, and signature
/// algorithms. §4 quantifies the cost of the restricted feature set:
/// prior-work fingerprints collide at 2.4%; restricted to the paper's
/// features the rate rises to 7.3%. extended_fingerprint_string() is the
/// canonical form of the richer variant; see bench_sec4_collisions.
std::string extended_fingerprint_string(const tls::wire::ClientHello& hello);
std::string extended_fingerprint_hash(const tls::wire::ClientHello& hello);

}  // namespace tls::fp
