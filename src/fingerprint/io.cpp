#include "fingerprint/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tls::fp {

namespace {

constexpr std::pair<SoftwareClass, std::string_view> kTokens[] = {
    {SoftwareClass::kLibrary, "library"},
    {SoftwareClass::kBrowser, "browser"},
    {SoftwareClass::kOsTool, "os-tool"},
    {SoftwareClass::kMobileApp, "mobile-app"},
    {SoftwareClass::kDevTool, "dev-tool"},
    {SoftwareClass::kAntivirus, "antivirus"},
    {SoftwareClass::kCloudStorage, "cloud-storage"},
    {SoftwareClass::kEmail, "email"},
    {SoftwareClass::kMalware, "malware"},
};

}  // namespace

std::string_view software_class_token(SoftwareClass cls) {
  for (const auto& [c, token] : kTokens) {
    if (c == cls) return token;
  }
  return "library";
}

SoftwareClass software_class_from_token(std::string_view token) {
  for (const auto& [c, t] : kTokens) {
    if (t == token) return c;
  }
  throw std::runtime_error("unknown software class token: " +
                           std::string(token));
}

void save_database(std::ostream& out, const FingerprintDatabase& db) {
  out << "# TLS client fingerprint database (" << db.size() << " entries)\n";
  out << "# hash\tclass\tsoftware\tversion_min\tversion_max\n";
  std::vector<std::pair<std::string, const SoftwareLabel*>> rows;
  rows.reserve(db.size());
  for (const auto& [hash, label] : db.entries()) {
    rows.emplace_back(hash, &label);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [hash, label] : rows) {
    out << hash << '\t' << software_class_token(label->cls) << '\t'
        << label->software << '\t' << label->version_min << '\t'
        << label->version_max << '\n';
  }
}

void save_database_file(const std::string& path,
                        const FingerprintDatabase& db) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_database(out, db);
  if (!out) throw std::runtime_error("write failed: " + path);
}

FingerprintDatabase load_database(std::istream& in) {
  FingerprintDatabase db;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const auto tab = line.find('\t', start);
      fields.push_back(line.substr(start, tab - start));
      if (tab == std::string::npos) break;
      start = tab + 1;
    }
    if (fields.size() != 5) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": expected 5 tab-separated fields, got " +
                               std::to_string(fields.size()));
    }
    if (fields[0].size() != 32 ||
        fields[0].find_first_not_of("0123456789abcdef") != std::string::npos) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": malformed hash '" + fields[0] + "'");
    }
    SoftwareLabel label;
    label.cls = software_class_from_token(fields[1]);
    label.software = fields[2];
    label.version_min = fields[3];
    label.version_max = fields[4];
    db.add(fields[0], std::move(label));
  }
  return db;
}

FingerprintDatabase load_database_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_database(in);
}

}  // namespace tls::fp
