// Save/load for the labeled fingerprint database — the release format for
// the corpus the paper published after acceptance (github.com/platonK/
// tls_fingerprints). One record per line, tab-separated:
//   <md5-hash>\t<class>\t<software>\t<version_min>\t<version_max>
// Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "fingerprint/database.hpp"

namespace tls::fp {

/// Serializes all live entries, sorted by hash for stable diffs.
void save_database(std::ostream& out, const FingerprintDatabase& db);
void save_database_file(const std::string& path,
                        const FingerprintDatabase& db);

/// Parses a database dump; malformed lines raise std::runtime_error with
/// the line number. Entries pass through FingerprintDatabase::add, so the
/// §4 collision rules apply on load as well.
FingerprintDatabase load_database(std::istream& in);
FingerprintDatabase load_database_file(const std::string& path);

/// Class <-> token mapping used by the file format.
std::string_view software_class_token(SoftwareClass cls);
SoftwareClass software_class_from_token(std::string_view token);

}  // namespace tls::fp
