// Self-contained MD5 (RFC 1321), used to produce JA3-compatible hash digests
// of fingerprint strings. MD5 is used here purely as a non-cryptographic
// identifier, exactly as the JA3 ecosystem does.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace tls::fp {

class Md5 {
 public:
  Md5();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalizes and returns the 16-byte digest. The object must not be
  /// updated afterwards.
  std::array<std::uint8_t, 16> digest();

  /// One-shot helpers.
  static std::array<std::uint8_t, 16> hash(std::span<const std::uint8_t> data);
  static std::string hex(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace tls::fp
