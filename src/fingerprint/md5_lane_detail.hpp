// Internal contract between the md5_batch driver (md5_multilane.cpp) and
// the SIMD lane kernels (same file for SSE2, md5_multilane_avx2.cpp for
// AVX2, which needs its own -mavx2 translation unit). Not installed; do not
// include outside src/fingerprint.
//
// Lane layout: state is kept as structure-of-arrays — one vector register
// per MD5 word (a, b, c, d), lane l of each register belonging to message
// l. Each round gathers m[g] across lanes with scalar 32-bit loads (the
// transpose cost) and runs the 64-step compression once for all lanes.
// Lanes finish at different block counts: a lane whose blocks are exhausted
// reads the shared zero block and its state update is masked off, so
// uneven batches stay bit-exact (the driver sorts messages by padded block
// count before laning, keeping the masked waste small).
#pragma once

#include <cstdint>
#include <cstddef>

namespace tls::fp::detail {

/// One message, pre-split by the driver into whole blocks read directly
/// from the source plus a padded tail (RFC 1321 §3.1-3.2: 0x80, zeros,
/// 64-bit little-endian bit length) of one or two blocks.
struct Md5LaneJob {
  const std::uint8_t* data = nullptr;  // source bytes (full blocks)
  std::size_t full_blocks = 0;
  std::uint8_t tail[128] = {};
  std::size_t tail_blocks = 0;         // 1, or 2 when len % 64 >= 56
  std::size_t total_blocks = 0;        // full_blocks + tail_blocks
  /// Receives the final a, b, c, d words for this lane.
  std::uint32_t out_state[4] = {};
};

inline constexpr std::uint32_t kMd5Init[4] = {0x67452301u, 0xefcdab89u,
                                              0x98badcfeu, 0x10325476u};

inline constexpr std::uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline constexpr int kMd5S[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

/// Message-word index for round i (the RFC's per-round g schedule).
inline constexpr int md5_g(int i) {
  return i < 16 ? i
         : i < 32 ? (5 * i + 1) % 16
         : i < 48 ? (3 * i + 5) % 16
                  : (7 * i) % 16;
}

/// All-lanes-shared block read for exhausted lanes (their update is masked
/// off, so the contents never reach a digest).
inline constexpr std::uint8_t kMd5ZeroBlock[64] = {};

/// Runs up to 4 jobs through the SSE2 kernel (x86-64 baseline). Jobs may
/// have different total_blocks. Only defined when the build enables SIMD.
void md5_lanes_sse2(Md5LaneJob* jobs, std::size_t n);

/// Runs up to 8 jobs through the AVX2 kernel. Only defined when the build
/// enables AVX2 (TLS_MD5_HAVE_AVX2); callers must runtime-check the CPU.
void md5_lanes_avx2(Md5LaneJob* jobs, std::size_t n);

}  // namespace tls::fp::detail
