#include "fingerprint/md5_multilane.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "fingerprint/md5.hpp"
#include "fingerprint/md5_lane_detail.hpp"

// SIMD kernels are x86-only; every other build runs the scalar fallback.
#if defined(TLS_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define TLS_MD5_SIMD_X86 1
#include <immintrin.h>
#endif

namespace tls::fp {

namespace {

/// Process-wide dispatch pin (md5_force_backend). Plain static: the seam is
/// for single-threaded test/CI setup, not concurrent flipping.
std::optional<Md5Backend> g_forced_backend;

std::optional<Md5Backend> parse_backend(const char* name) {
  if (name == nullptr) return std::nullopt;
  if (std::strcmp(name, "scalar") == 0) return Md5Backend::kScalar;
  if (std::strcmp(name, "sse2") == 0) return Md5Backend::kSse2;
  if (std::strcmp(name, "avx2") == 0) return Md5Backend::kAvx2;
  return std::nullopt;
}

Md5Backend clamp_to_best(Md5Backend b) {
  const Md5Backend best = md5_best_backend();
  return static_cast<std::uint8_t>(b) <= static_cast<std::uint8_t>(best)
             ? b
             : best;
}

std::optional<Md5Backend> env_forced_backend() {
  static const std::optional<Md5Backend> forced =
      parse_backend(std::getenv("TLS_MD5_FORCE"));
  return forced;
}

/// RFC 1321 padded size in 64-byte blocks: data, 0x80, zeros, 8-byte length.
std::size_t padded_blocks(std::size_t len) {
  return len / 64 + (len % 64 >= 56 ? 2 : 1);
}

void prepare_job(std::string_view msg, detail::Md5LaneJob& job) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(msg.data());
  const std::size_t len = msg.size();
  const std::size_t rem = len % 64;
  job.data = p;
  job.full_blocks = len / 64;
  std::memset(job.tail, 0, sizeof(job.tail));
  if (rem > 0) std::memcpy(job.tail, p + job.full_blocks * 64, rem);
  job.tail[rem] = 0x80;
  job.tail_blocks = rem >= 56 ? 2 : 1;
  job.total_blocks = job.full_blocks + job.tail_blocks;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  std::uint8_t* len_le = job.tail + job.tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) {
    len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
}

void job_digest(const detail::Md5LaneJob& job,
                std::array<std::uint8_t, 16>& out) {
  for (int w = 0; w < 4; ++w) {
    for (int b = 0; b < 4; ++b) {
      out[static_cast<std::size_t>(w * 4 + b)] =
          static_cast<std::uint8_t>(job.out_state[w] >> (8 * b));
    }
  }
}

std::array<std::uint8_t, 16> scalar_digest(std::string_view msg) {
  Md5 h;
  h.update(msg);
  return h.digest();
}

std::uint64_t fnv1a64_scalar(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(Md5Backend backend) {
  switch (backend) {
    case Md5Backend::kScalar: return "scalar";
    case Md5Backend::kSse2: return "sse2";
    case Md5Backend::kAvx2: return "avx2";
  }
  return "?";
}

Md5Backend md5_best_backend() {
#if defined(TLS_MD5_SIMD_X86)
#if defined(TLS_MD5_HAVE_AVX2) && defined(__GNUC__)
  static const bool avx2 = __builtin_cpu_supports("avx2") != 0;
  if (avx2) return Md5Backend::kAvx2;
#endif
  // SSE2 is architectural baseline on x86-64: no runtime check needed.
  return Md5Backend::kSse2;
#else
  return Md5Backend::kScalar;
#endif
}

Md5Backend md5_active_backend() {
  if (g_forced_backend.has_value()) return clamp_to_best(*g_forced_backend);
  if (const auto env = env_forced_backend()) return clamp_to_best(*env);
  return md5_best_backend();
}

void md5_force_backend(std::optional<Md5Backend> backend) {
  g_forced_backend = backend;
}

void md5_batch(std::span<const std::string_view> messages,
               std::span<std::array<std::uint8_t, 16>> digests) {
  assert(messages.size() == digests.size());
  const std::size_t n = messages.size();
  if (n == 0) return;
  const Md5Backend backend = md5_active_backend();
  if (backend == Md5Backend::kScalar || n == 1) {
    for (std::size_t i = 0; i < n; ++i) digests[i] = scalar_digest(messages[i]);
    return;
  }
#if defined(TLS_MD5_SIMD_X86)
  const std::size_t width = backend == Md5Backend::kAvx2 ? 8 : 4;
  // Co-scheduled lanes run in lockstep to the longest lane's block count
  // (shorter lanes mask off), so group messages of similar padded size:
  // sort indices by block count. Output order is untouched — digests land
  // at their original index.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    const std::size_t bx = padded_blocks(messages[x].size());
    const std::size_t by = padded_blocks(messages[y].size());
    return bx != by ? bx < by : x < y;
  });
  std::vector<detail::Md5LaneJob> jobs(width);
  for (std::size_t off = 0; off < n; off += width) {
    const std::size_t k = std::min(width, n - off);
    if (k == 1) {
      // A lone remainder message gains nothing from the vector transpose.
      digests[order[off]] = scalar_digest(messages[order[off]]);
      continue;
    }
    for (std::size_t l = 0; l < k; ++l) {
      prepare_job(messages[order[off + l]], jobs[l]);
    }
#if defined(TLS_MD5_HAVE_AVX2)
    if (backend == Md5Backend::kAvx2 && k > 4) {
      detail::md5_lanes_avx2(jobs.data(), k);
    } else {
      detail::md5_lanes_sse2(jobs.data(), k);
    }
#else
    detail::md5_lanes_sse2(jobs.data(), k);
#endif
    for (std::size_t l = 0; l < k; ++l) {
      job_digest(jobs[l], digests[order[off + l]]);
    }
  }
#else
  for (std::size_t i = 0; i < n; ++i) digests[i] = scalar_digest(messages[i]);
#endif
}

void fnv1a64_batch(std::span<const std::span<const std::uint8_t>> inputs,
                   std::span<std::uint64_t> out) {
  assert(inputs.size() == out.size());
  const std::size_t n = inputs.size();
  // FNV-1a is a serial xor+multiply chain per input, so a single stream is
  // latency-bound on the 64-bit multiply. Four independent chains
  // interleaved in one loop overlap those latencies and run ~1.2× faster
  // than back-to-back scalar passes. A true SIMD version loses: AVX2 has no
  // 64-bit low multiply, and emulating it from 32×32 partial products plus
  // the per-byte lane gather measures slower than this form (which also
  // needs no x86-specific code at all).
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* const d0 = inputs[i].data();
    const std::uint8_t* const d1 = inputs[i + 1].data();
    const std::uint8_t* const d2 = inputs[i + 2].data();
    const std::uint8_t* const d3 = inputs[i + 3].data();
    const std::size_t common =
        std::min(std::min(inputs[i].size(), inputs[i + 1].size()),
                 std::min(inputs[i + 2].size(), inputs[i + 3].size()));
    std::uint64_t h0 = kBasis, h1 = kBasis, h2 = kBasis, h3 = kBasis;
    for (std::size_t b = 0; b < common; ++b) {
      h0 = (h0 ^ d0[b]) * kPrime;
      h1 = (h1 ^ d1[b]) * kPrime;
      h2 = (h2 ^ d2[b]) * kPrime;
      h3 = (h3 ^ d3[b]) * kPrime;
    }
    std::uint64_t h[4] = {h0, h1, h2, h3};
    for (int l = 0; l < 4; ++l) {
      const auto in = inputs[i + l];
      for (std::size_t b = common; b < in.size(); ++b) {
        h[l] = (h[l] ^ in[b]) * kPrime;
      }
      out[i + l] = h[l];
    }
  }
  for (; i < n; ++i) out[i] = fnv1a64_scalar(inputs[i]);
}

#if defined(TLS_MD5_SIMD_X86)

namespace detail {

namespace {

inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);  // x86 is little-endian; this TU is x86-only
  return v;
}

inline __m128i rotl32_x4(__m128i x, int s) {
  return _mm_or_si128(_mm_slli_epi32(x, s), _mm_srli_epi32(x, 32 - s));
}

/// state = active ? updated : state, per 32-bit lane.
inline __m128i select_x4(__m128i mask, __m128i updated, __m128i state) {
  return _mm_or_si128(_mm_and_si128(mask, updated),
                      _mm_andnot_si128(mask, state));
}

}  // namespace

void md5_lanes_sse2(Md5LaneJob* jobs, std::size_t n) {
  assert(n >= 1 && n <= 4);
  std::size_t total[4];
  std::size_t max_blocks = 0;
  for (std::size_t l = 0; l < 4; ++l) {
    total[l] = l < n ? jobs[l].total_blocks : 0;
    max_blocks = std::max(max_blocks, total[l]);
  }
  __m128i a = _mm_set1_epi32(static_cast<int>(kMd5Init[0]));
  __m128i b = _mm_set1_epi32(static_cast<int>(kMd5Init[1]));
  __m128i c = _mm_set1_epi32(static_cast<int>(kMd5Init[2]));
  __m128i d = _mm_set1_epi32(static_cast<int>(kMd5Init[3]));
  const __m128i ones = _mm_set1_epi32(-1);

  for (std::size_t j = 0; j < max_blocks; ++j) {
    const std::uint8_t* blk[4];
    std::uint32_t active[4];
    for (std::size_t l = 0; l < 4; ++l) {
      if (j < total[l]) {
        blk[l] = j < jobs[l].full_blocks
                     ? jobs[l].data + 64 * j
                     : jobs[l].tail + 64 * (j - jobs[l].full_blocks);
        active[l] = 0xffffffffu;
      } else {
        blk[l] = kMd5ZeroBlock;
        active[l] = 0;
      }
    }
    const __m128i mask =
        _mm_set_epi32(static_cast<int>(active[3]), static_cast<int>(active[2]),
                      static_cast<int>(active[1]), static_cast<int>(active[0]));
    __m128i m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = _mm_set_epi32(static_cast<int>(load_le32(blk[3] + 4 * i)),
                           static_cast<int>(load_le32(blk[2] + 4 * i)),
                           static_cast<int>(load_le32(blk[1] + 4 * i)),
                           static_cast<int>(load_le32(blk[0] + 4 * i)));
    }
    __m128i aa = a, bb = b, cc = c, dd = d;
    int i = 0;
    for (; i < 16; ++i) {  // F = (b & c) | (~b & d)
      const __m128i f = _mm_or_si128(_mm_and_si128(bb, cc),
                                     _mm_andnot_si128(bb, dd));
      const __m128i sum = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(f, aa),
                        _mm_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm_add_epi32(bb, rotl32_x4(sum, kMd5S[i]));
    }
    for (; i < 32; ++i) {  // G = (d & b) | (~d & c)
      const __m128i f = _mm_or_si128(_mm_and_si128(dd, bb),
                                     _mm_andnot_si128(dd, cc));
      const __m128i sum = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(f, aa),
                        _mm_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm_add_epi32(bb, rotl32_x4(sum, kMd5S[i]));
    }
    for (; i < 48; ++i) {  // H = b ^ c ^ d
      const __m128i f = _mm_xor_si128(_mm_xor_si128(bb, cc), dd);
      const __m128i sum = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(f, aa),
                        _mm_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm_add_epi32(bb, rotl32_x4(sum, kMd5S[i]));
    }
    for (; i < 64; ++i) {  // I = c ^ (b | ~d)
      const __m128i f =
          _mm_xor_si128(cc, _mm_or_si128(bb, _mm_xor_si128(dd, ones)));
      const __m128i sum = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(f, aa),
                        _mm_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm_add_epi32(bb, rotl32_x4(sum, kMd5S[i]));
    }
    a = select_x4(mask, _mm_add_epi32(a, aa), a);
    b = select_x4(mask, _mm_add_epi32(b, bb), b);
    c = select_x4(mask, _mm_add_epi32(c, cc), c);
    d = select_x4(mask, _mm_add_epi32(d, dd), d);
  }

  alignas(16) std::uint32_t oa[4], ob[4], oc[4], od[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(oa), a);
  _mm_store_si128(reinterpret_cast<__m128i*>(ob), b);
  _mm_store_si128(reinterpret_cast<__m128i*>(oc), c);
  _mm_store_si128(reinterpret_cast<__m128i*>(od), d);
  for (std::size_t l = 0; l < n; ++l) {
    jobs[l].out_state[0] = oa[l];
    jobs[l].out_state[1] = ob[l];
    jobs[l].out_state[2] = oc[l];
    jobs[l].out_state[3] = od[l];
  }
}

}  // namespace detail

#endif  // TLS_MD5_SIMD_X86

}  // namespace tls::fp
