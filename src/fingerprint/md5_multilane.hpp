// Multi-lane MD5 (RFC 1321) for batched fingerprint hashing. The paper's §4
// methodology digests one canonical ClientHello string per observed
// connection; on every ObserveCache miss that digest dominates the observe
// path. md5_batch() hashes independently-lengthed messages in parallel SIMD
// lanes — 4 per SSE2 vector, 8 per AVX2 vector — and is bit-exact with the
// scalar Md5 class for every lane, which remains the always-correct
// fallback (and the differential oracle for the lane kernels).
//
// Dispatch: the widest kernel the build enabled (TLS_SIMD cmake option) AND
// the CPU supports at runtime. Tests and CI can pin the choice via
// md5_force_backend() or the TLS_MD5_FORCE environment variable
// ("scalar" | "sse2" | "avx2", read once at first use); forcing wider than
// the host supports clamps down, so a forced run can never execute an
// unsupported instruction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace tls::fp {

enum class Md5Backend : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* to_string(Md5Backend backend);

/// Widest backend this build + this CPU can run (TLS_SIMD=OFF → kScalar).
[[nodiscard]] Md5Backend md5_best_backend();

/// Backend md5_batch() will actually use: the forced backend clamped to
/// md5_best_backend(), or md5_best_backend() when nothing is forced.
[[nodiscard]] Md5Backend md5_active_backend();

/// Test/CI seam: pin dispatch to `backend` (clamped to what the host
/// supports); nullopt restores automatic dispatch. Process-wide; intended
/// for single-threaded test setup, not concurrent flipping.
void md5_force_backend(std::optional<Md5Backend> backend);

/// digests[i] = MD5(messages[i]). Lengths are independent per lane (0 and
/// block-boundary lengths included); any batch size works — lanes are
/// filled in groups of the vector width and the remainder masks off.
/// Bit-exact with Md5::hash per message under every backend.
void md5_batch(std::span<const std::string_view> messages,
               std::span<std::array<std::uint8_t, 16>> digests);

/// out[i] = FNV-1a-64(inputs[i]) — the ObserveCache bucket hash, computed
/// as four interleaved scalar chains (the byte-serial multiply chain has no
/// profitable AVX2 mapping; see md5_multilane.cpp). Bit-identical to
/// ObserveCache::fnv1a64 per input.
void fnv1a64_batch(std::span<const std::span<const std::uint8_t>> inputs,
                   std::span<std::uint64_t> out);

}  // namespace tls::fp
