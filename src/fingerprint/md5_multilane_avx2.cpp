// 8-lane AVX2 MD5 kernel + 4-lane FNV-1a-64 kernel. This translation unit
// is compiled with -mavx2 (see src/fingerprint/CMakeLists.txt) and is only
// added to the build when the toolchain supports that flag; callers must
// runtime-check the CPU (md5_best_backend) before dispatching here.
#include <cstring>

#include "fingerprint/md5_lane_detail.hpp"

#if defined(TLS_MD5_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cassert>

namespace tls::fp::detail {

namespace {

inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);  // x86 is little-endian; this TU is x86-only
  return v;
}

inline __m256i rotl32_x8(__m256i x, int s) {
  return _mm256_or_si256(_mm256_slli_epi32(x, s), _mm256_srli_epi32(x, 32 - s));
}

inline __m256i select_x8(__m256i mask, __m256i updated, __m256i state) {
  return _mm256_or_si256(_mm256_and_si256(mask, updated),
                         _mm256_andnot_si256(mask, state));
}

}  // namespace

void md5_lanes_avx2(Md5LaneJob* jobs, std::size_t n) {
  assert(n >= 1 && n <= 8);
  std::size_t total[8];
  std::size_t max_blocks = 0;
  for (std::size_t l = 0; l < 8; ++l) {
    total[l] = l < n ? jobs[l].total_blocks : 0;
    max_blocks = std::max(max_blocks, total[l]);
  }
  __m256i a = _mm256_set1_epi32(static_cast<int>(kMd5Init[0]));
  __m256i b = _mm256_set1_epi32(static_cast<int>(kMd5Init[1]));
  __m256i c = _mm256_set1_epi32(static_cast<int>(kMd5Init[2]));
  __m256i d = _mm256_set1_epi32(static_cast<int>(kMd5Init[3]));
  const __m256i ones = _mm256_set1_epi32(-1);

  for (std::size_t j = 0; j < max_blocks; ++j) {
    const std::uint8_t* blk[8];
    std::uint32_t active[8];
    for (std::size_t l = 0; l < 8; ++l) {
      if (j < total[l]) {
        blk[l] = j < jobs[l].full_blocks
                     ? jobs[l].data + 64 * j
                     : jobs[l].tail + 64 * (j - jobs[l].full_blocks);
        active[l] = 0xffffffffu;
      } else {
        blk[l] = kMd5ZeroBlock;
        active[l] = 0;
      }
    }
    const __m256i mask = _mm256_set_epi32(
        static_cast<int>(active[7]), static_cast<int>(active[6]),
        static_cast<int>(active[5]), static_cast<int>(active[4]),
        static_cast<int>(active[3]), static_cast<int>(active[2]),
        static_cast<int>(active[1]), static_cast<int>(active[0]));
    __m256i m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = _mm256_set_epi32(static_cast<int>(load_le32(blk[7] + 4 * i)),
                              static_cast<int>(load_le32(blk[6] + 4 * i)),
                              static_cast<int>(load_le32(blk[5] + 4 * i)),
                              static_cast<int>(load_le32(blk[4] + 4 * i)),
                              static_cast<int>(load_le32(blk[3] + 4 * i)),
                              static_cast<int>(load_le32(blk[2] + 4 * i)),
                              static_cast<int>(load_le32(blk[1] + 4 * i)),
                              static_cast<int>(load_le32(blk[0] + 4 * i)));
    }
    __m256i aa = a, bb = b, cc = c, dd = d;
    int i = 0;
    for (; i < 16; ++i) {  // F = (b & c) | (~b & d)
      const __m256i f = _mm256_or_si256(_mm256_and_si256(bb, cc),
                                        _mm256_andnot_si256(bb, dd));
      const __m256i sum = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(f, aa),
                           _mm256_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm256_add_epi32(bb, rotl32_x8(sum, kMd5S[i]));
    }
    for (; i < 32; ++i) {  // G = (d & b) | (~d & c)
      const __m256i f = _mm256_or_si256(_mm256_and_si256(dd, bb),
                                        _mm256_andnot_si256(dd, cc));
      const __m256i sum = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(f, aa),
                           _mm256_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm256_add_epi32(bb, rotl32_x8(sum, kMd5S[i]));
    }
    for (; i < 48; ++i) {  // H = b ^ c ^ d
      const __m256i f = _mm256_xor_si256(_mm256_xor_si256(bb, cc), dd);
      const __m256i sum = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(f, aa),
                           _mm256_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm256_add_epi32(bb, rotl32_x8(sum, kMd5S[i]));
    }
    for (; i < 64; ++i) {  // I = c ^ (b | ~d)
      const __m256i f = _mm256_xor_si256(
          cc, _mm256_or_si256(bb, _mm256_xor_si256(dd, ones)));
      const __m256i sum = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(f, aa),
                           _mm256_set1_epi32(static_cast<int>(kMd5K[i]))),
          m[md5_g(i)]);
      aa = dd;
      dd = cc;
      cc = bb;
      bb = _mm256_add_epi32(bb, rotl32_x8(sum, kMd5S[i]));
    }
    a = select_x8(mask, _mm256_add_epi32(a, aa), a);
    b = select_x8(mask, _mm256_add_epi32(b, bb), b);
    c = select_x8(mask, _mm256_add_epi32(c, cc), c);
    d = select_x8(mask, _mm256_add_epi32(d, dd), d);
  }

  alignas(32) std::uint32_t oa[8], ob[8], oc[8], od[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(oa), a);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ob), b);
  _mm256_store_si256(reinterpret_cast<__m256i*>(oc), c);
  _mm256_store_si256(reinterpret_cast<__m256i*>(od), d);
  for (std::size_t l = 0; l < n; ++l) {
    jobs[l].out_state[0] = oa[l];
    jobs[l].out_state[1] = ob[l];
    jobs[l].out_state[2] = oc[l];
    jobs[l].out_state[3] = od[l];
  }
}

}  // namespace tls::fp::detail

#endif  // TLS_MD5_HAVE_AVX2 && __AVX2__
