#include "handshake/negotiate.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "tlscore/grease.hpp"
#include "tlscore/version.hpp"

namespace tls::handshake {

using tls::core::CipherSuiteInfo;
using tls::core::find_cipher_suite;
using tls::core::KeyExchange;
using tls::servers::ServerConfig;
using tls::servers::ServerQuirk;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

namespace {

bool is_tls13_wire(std::uint16_t v) {
  return v == 0x0304 || (v & 0xff00) == 0x7f00 || (v & 0xff00) == 0x7e00;
}

bool suite_needs_groups(const CipherSuiteInfo& s) {
  switch (s.kex) {
    case KeyExchange::kEcdh:
    case KeyExchange::kEcdhe:
    case KeyExchange::kEcdhAnon:
    case KeyExchange::kEcdhePsk:
      return true;
    default:
      return false;
  }
}

/// Server-preferred mutual group; 0 when none. Clients that predate the
/// supported_groups extension are treated as implicitly supporting the
/// P-256/P-384 defaults, matching deployed server behaviour.
std::uint16_t select_group(const ClientHello& hello,
                           const ServerConfig& server) {
  static const std::vector<std::uint16_t> kImplied{23, 24};
  auto client_groups = hello.supported_groups();
  const auto& cg = client_groups ? *client_groups : kImplied;
  for (const auto g : server.groups) {
    if (tls::core::is_grease(g)) continue;
    if (std::find(cg.begin(), cg.end(), g) != cg.end()) return g;
  }
  return 0;
}

bool client_offers(const ClientHello& hello, std::uint16_t id) {
  return std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                   id) != hello.cipher_suites.end();
}

/// First suite acceptable at `version` following `order`, where each
/// candidate must be present in `other`. nullopt when none fits (note that
/// 0x0000, TLS_NULL_WITH_NULL_NULL, is a valid selectable suite).
std::optional<std::uint16_t> pick_suite(
    const std::vector<std::uint16_t>& order,
    const std::vector<std::uint16_t>& other, std::uint16_t version,
    const ClientHello& hello, const ServerConfig& server,
    std::uint16_t* group_out) {
  for (const auto id : order) {
    if (tls::core::is_grease(id)) continue;
    const auto* info = find_cipher_suite(id);
    if (info == nullptr || info->scsv) continue;
    if (!suite_allowed_at_version(*info, version)) continue;
    if (std::find(other.begin(), other.end(), id) == other.end()) continue;
    std::uint16_t group = 0;
    if (suite_needs_groups(*info)) {
      group = select_group(hello, server);
      if (group == 0) continue;
    }
    if (group_out != nullptr) *group_out = group;
    return id;
  }
  return std::nullopt;
}

void echo_extensions(const ClientHello& hello, const ServerConfig& server,
                     bool tls13, ServerHello& sh, NegotiationResult& result) {
  using tls::core::ExtensionType;
  using namespace tls::wire;
  if (tls13) return;  // TLS 1.3 ServerHello carries its own extension set
  const auto* chosen = find_cipher_suite(sh.cipher_suite);
  const bool cbc_chosen = chosen != nullptr && tls::core::is_cbc(*chosen);
  if (server.supports_renegotiation_info &&
      (hello.has_extension(ExtensionType::kRenegotiationInfo) ||
       client_offers(hello, 0x00ff))) {
    sh.extensions.push_back(make_renegotiation_info());
  }
  if (server.supports_session_ticket &&
      hello.has_extension(ExtensionType::kSessionTicket)) {
    sh.extensions.push_back(make_session_ticket());
  }
  if (server.supports_ems &&
      hello.has_extension(ExtensionType::kExtendedMasterSecret)) {
    sh.extensions.push_back(make_extended_master_secret());
  }
  // RFC 7366: Encrypt-then-MAC only applies to CBC suites; servers omit
  // the extension when an AEAD or stream suite was selected.
  if (server.supports_etm && cbc_chosen &&
      hello.has_extension(ExtensionType::kEncryptThenMac)) {
    sh.extensions.push_back(make_encrypt_then_mac());
  }
  if (server.echo_heartbeat && hello.heartbeat_mode().has_value()) {
    sh.extensions.push_back(make_heartbeat(1));
    result.heartbeat_negotiated = true;
  }
}

}  // namespace

std::string_view failure_reason_name(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kNoCommonVersion: return "no-common-version";
    case FailureReason::kNoCommonCipher: return "no-common-cipher";
    case FailureReason::kClientRejectedUnofferedSuite:
      return "client-rejected-unoffered-suite";
  }
  return "?";
}

tls::wire::Alert alert_for(FailureReason reason) {
  tls::wire::Alert a;
  a.level = tls::wire::AlertLevel::kFatal;
  switch (reason) {
    case FailureReason::kNoCommonVersion:
      a.description = tls::wire::AlertDescription::kProtocolVersion;
      return a;
    case FailureReason::kNoCommonCipher:
      a.description = tls::wire::AlertDescription::kHandshakeFailure;
      return a;
    case FailureReason::kClientRejectedUnofferedSuite:
      a.description = tls::wire::AlertDescription::kIllegalParameter;
      return a;
    case FailureReason::kNone:
      break;
  }
  throw std::logic_error("no alert for a successful negotiation");
}

bool suite_allowed_at_version(const CipherSuiteInfo& suite,
                              std::uint16_t version) {
  const bool tls13 = is_tls13_wire(version);
  if (suite.kex == KeyExchange::kTls13) return tls13;
  if (tls13) return false;
  const bool needs_tls12 =
      tls::core::is_aead(suite) || suite.mac == tls::core::MacAlgorithm::kSha256 ||
      suite.mac == tls::core::MacAlgorithm::kSha384;
  if (needs_tls12 && version < 0x0303) return false;
  return true;
}

NegotiationPlan plan_negotiation(const ClientHello& hello,
                                 const ServerConfig& server,
                                 const NegotiateOptions& opts) {
  NegotiationPlan plan;
  NegotiationResult& result = plan.skeleton;

  // ---- version selection ----
  std::uint16_t version = 0;
  bool tls13 = false;
  if (server.supports_tls13()) {
    // Highest mutual entry of supported_versions (RFC 8446 §4.1.3; draft
    // and experiment code points compare by version_rank).
    if (const auto client_versions = hello.supported_versions()) {
      int best_rank = -1;
      for (const auto v : *client_versions) {
        if (tls::core::is_grease_version(v) || !is_tls13_wire(v)) continue;
        if (std::find(server.tls13_versions.begin(),
                      server.tls13_versions.end(),
                      v) == server.tls13_versions.end()) {
          continue;
        }
        const int rank = tls::core::version_rank(
            static_cast<tls::core::ProtocolVersion>(v));
        if (rank > best_rank) {
          best_rank = rank;
          version = v;
        }
      }
      tls13 = best_rank >= 0;
    }
  }
  if (!tls13) {
    if (server.version_intolerant && hello.legacy_version > server.max_version) {
      // Broken stack: drops the connection instead of negotiating down.
      result.failure = FailureReason::kNoCommonVersion;
      plan.version_fail = true;
      return plan;
    }
    version = std::min(hello.legacy_version, server.max_version);
    if (version < server.min_version) {
      result.failure = FailureReason::kNoCommonVersion;
      plan.version_fail = true;
      return plan;
    }
  }
  result.negotiated_version = version;
  plan.tls13 = tls13;
  // Pre-1.3 resumption: the server that still holds the session echoes the
  // presented id, signalling an abbreviated handshake. TLS 1.3 echoes the
  // id unconditionally (middlebox compatibility), which is NOT resumption.
  plan.draw_resumption =
      !tls13 && opts.attempt_resumption && !hello.session_id.empty();
  plan.resumption_rate = server.resumption_rate;

  ServerHello sh;
  sh.legacy_version = tls13 ? 0x0303 : version;
  // random and session id stay blank: complete_negotiation_into() draws
  // them per connection in the legacy order.

  // ---- quirks: servers answering with unoffered suites (§5.5, §7.3) ----
  std::uint16_t quirk_suite = 0;
  switch (server.quirk) {
    case ServerQuirk::kChooseExportRc4Unoffered: quirk_suite = 0x0003; break;
    case ServerQuirk::kChooseGostUnoffered: quirk_suite = 0x0081; break;
    case ServerQuirk::kChooseAnonNullUnoffered: quirk_suite = 0x0000; break;
    case ServerQuirk::kNone: break;
  }
  if (quirk_suite != 0 && !client_offers(hello, quirk_suite)) {
    sh.cipher_suite = quirk_suite;
    result.server_hello = std::move(sh);
    result.negotiated_cipher = quirk_suite;
    result.spec_violation = true;
    if (opts.accept_unoffered_suite) {
      result.success = true;
    } else {
      result.failure = FailureReason::kClientRejectedUnofferedSuite;
    }
    return plan;
  }

  // ---- cipher selection ----
  std::uint16_t group = 0;
  const std::optional<std::uint16_t> suite =
      server.prefer_server_order
          ? pick_suite(server.cipher_preference, hello.cipher_suites, version,
                       hello, server, &group)
          : pick_suite(hello.cipher_suites, server.cipher_preference, version,
                       hello, server, &group);
  if (!suite.has_value()) {
    // No server_hello, but completion still consumes the random /
    // resumption / session-id draws exactly as the monolith did before
    // reaching this point.
    result.failure = FailureReason::kNoCommonCipher;
    return plan;
  }
  sh.cipher_suite = *suite;
  result.negotiated_cipher = *suite;

  // TLS 1.3 key establishment always runs (EC)DHE over a negotiated group.
  if (tls13 && group == 0) {
    group = select_group(hello, server);
    if (group == 0) {
      result.failure = FailureReason::kNoCommonCipher;
      return plan;
    }
  }
  result.negotiated_group = group;

  if (tls13) {
    sh.extensions.push_back(
        tls::wire::make_supported_versions_server(version));
    sh.extensions.push_back(tls::wire::make_key_share_server(group));
  } else {
    echo_extensions(hello, server, tls13, sh, result);
  }

  result.server_hello = std::move(sh);
  result.success = true;
  return plan;
}

void complete_negotiation_into(const NegotiationPlan& plan,
                               const ClientHello& hello, tls::core::Rng& rng,
                               NegotiationResult& out) {
  const NegotiationResult& skel = plan.skeleton;
  out.success = skel.success;
  out.failure = skel.failure;
  out.negotiated_version = skel.negotiated_version;
  out.negotiated_cipher = skel.negotiated_cipher;
  out.negotiated_group = skel.negotiated_group;
  out.spec_violation = skel.spec_violation;
  out.heartbeat_negotiated = skel.heartbeat_negotiated;
  out.resumed = false;
  if (plan.version_fail) {
    // The monolith returned before its first draw; do the same.
    out.server_hello.reset();
    return;
  }

  ServerHello* sh = nullptr;
  if (skel.server_hello.has_value()) {
    if (!out.server_hello.has_value()) out.server_hello.emplace();
    sh = &*out.server_hello;
    const ServerHello& proto = *skel.server_hello;
    sh->legacy_version = proto.legacy_version;
    sh->cipher_suite = proto.cipher_suite;
    sh->compression_method = proto.compression_method;
    sh->extensions = proto.extensions;
    for (auto& b : sh->random) b = static_cast<std::uint8_t>(rng.next());
  } else {
    // Failure after the draws (no common cipher): the RNG still advances.
    out.server_hello.reset();
    for (int i = 0; i < 32; ++i) rng.next();
  }

  const bool resume = plan.draw_resumption && rng.chance(plan.resumption_rate);
  if (plan.tls13 || resume) {
    if (sh != nullptr) sh->session_id = hello.session_id;
    out.resumed = resume;
  } else if (sh != nullptr) {
    sh->session_id.resize(32);
    for (auto& b : sh->session_id) b = static_cast<std::uint8_t>(rng.next());
  } else {
    for (int i = 0; i < 32; ++i) rng.next();
  }
}

NegotiationResult negotiate(const ClientHello& hello, const ServerConfig& server,
                            tls::core::Rng& rng, const NegotiateOptions& opts) {
  NegotiationResult result;
  complete_negotiation_into(plan_negotiation(hello, server, opts), hello, rng,
                            result);
  return result;
}

}  // namespace tls::handshake
