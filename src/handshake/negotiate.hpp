// The negotiation engine: given a real ClientHello and a ServerConfig,
// produce the ServerHello a deployment of that configuration would send —
// version selection (including TLS 1.3 supported_versions), cipher selection
// under server- or client-preference, curve selection, extension echoing,
// and the spec-violating quirks of §5.5/§7.3. Every negotiated data point in
// the study's figures flows through this function.
#pragma once

#include <cstdint>
#include <optional>

#include "servers/config.hpp"
#include "tlscore/rng.hpp"
#include "wire/alert.hpp"
#include "wire/client_hello.hpp"
#include "wire/server_hello.hpp"

namespace tls::handshake {

enum class FailureReason : std::uint8_t {
  kNone,
  kNoCommonVersion,
  kNoCommonCipher,
  kClientRejectedUnofferedSuite,  // server violated the spec; client aborted
};

std::string_view failure_reason_name(FailureReason r);

struct NegotiationResult {
  bool success = false;
  FailureReason failure = FailureReason::kNone;
  /// Present whenever the server answered (even if the client then aborted).
  std::optional<tls::wire::ServerHello> server_hello;
  std::uint16_t negotiated_version = 0;
  std::uint16_t negotiated_cipher = 0;
  std::uint16_t negotiated_group = 0;  // 0 = no (EC)DH group involved
  /// Server selected a suite the client never offered (§5.5 Interwise,
  /// §7.3 GOST/anon-NULL choosers).
  bool spec_violation = false;
  /// Heartbeat extension offered by client and acknowledged (§5.4).
  bool heartbeat_negotiated = false;
  /// Abbreviated handshake: the server echoed the client's session id.
  bool resumed = false;
};

struct NegotiateOptions {
  /// Clients that tolerate a ServerHello carrying an unoffered suite
  /// (the Interwise client population of §5.5). Standard stacks abort.
  bool accept_unoffered_suite = false;
  /// The client is re-presenting hello.session_id from an earlier session
  /// with this server; the server accepts at its resumption_rate.
  bool attempt_resumption = false;
};

NegotiationResult negotiate(const tls::wire::ClientHello& hello,
                            const tls::servers::ServerConfig& server,
                            tls::core::Rng& rng,
                            const NegotiateOptions& opts = {});

/// The deterministic core of negotiate(), split out so callers that replay
/// the same (hello shape, server, options) triple many times — the
/// producer-side GenCache — can compute it once and memoize it. The plan
/// captures everything that does not depend on the per-connection RNG
/// draws: version selection, quirk handling, cipher/group selection and
/// the echoed extension set. It depends on the hello only through
/// template-stable content (legacy_version, cipher_suites, extension
/// bodies, session-id *emptiness*) — never through the random bytes or the
/// session-id value, which complete_negotiation_into() fills per
/// connection.
struct NegotiationPlan {
  /// Fully-negotiated result with server random / session id left blank.
  NegotiationResult skeleton;
  /// Version selection failed before the first RNG draw: completion copies
  /// the skeleton and returns without touching the RNG, matching the
  /// legacy early return.
  bool version_fail = false;
  bool tls13 = false;
  /// Whether completion must consume the resumption-acceptance draw
  /// (pre-1.3, client re-presented a session id, attempt_resumption set).
  bool draw_resumption = false;
  double resumption_rate = 0.0;
};

NegotiationPlan plan_negotiation(const tls::wire::ClientHello& hello,
                                 const tls::servers::ServerConfig& server,
                                 const NegotiateOptions& opts = {});

/// Completes a plan into `out`, drawing exactly the RNG sequence the
/// monolithic negotiate() would draw for the same inputs (server random,
/// resumption chance, fresh session id) so the stream stays bit-identical
/// whether or not the plan was cached. `hello` supplies the per-connection
/// session id to echo; `out` is reused capacity-preservingly.
void complete_negotiation_into(const NegotiationPlan& plan,
                               const tls::wire::ClientHello& hello,
                               tls::core::Rng& rng, NegotiationResult& out);

/// The alert a failed negotiation puts on the wire (RFC 5246 §7.2.2):
/// version mismatch -> protocol_version, no common cipher ->
/// handshake_failure, client abort on an unoffered suite ->
/// illegal_parameter. kNone has no alert (throws std::logic_error).
tls::wire::Alert alert_for(FailureReason reason);

/// True when `suite` may be used at `version` (AEAD and SHA-2 suites need
/// TLS 1.2; TLS 1.3 suites are exclusive to TLS 1.3).
bool suite_allowed_at_version(const tls::core::CipherSuiteInfo& suite,
                              std::uint16_t version);

}  // namespace tls::handshake
