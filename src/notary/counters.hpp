// Allocation-free counter containers for the monitor's hot path. The old
// MonthlyStats counters were std::map<Key, uint64_t>: every first-of-month
// increment allocated a red-black tree node and every increment chased
// pointers. The observe pipeline touches a handful of counters per
// connection, so these are replaced by:
//   * EnumCounterArray — a fixed-size array indexed by the enum value, for
//     keys with a small closed domain (cipher class, kex class, AEAD kind,
//     parse-error code);
//   * SmallCounterMap  — an unsorted vector of (key, count) pairs with
//     linear lookup, for sparse open domains (wire versions, named groups,
//     alert codes) that see at most a few dozen distinct keys per month.
// Both convert to a sorted std::map only at render/CSV time, so every
// exported artifact stays byte-identical to the std::map implementation;
// and both merge by commutative integer addition, preserving the sharded
// runner's any-thread-count determinism.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace tls::notary {

template <typename Enum, std::size_t N>
class EnumCounterArray {
 public:
  void add(Enum key, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(key)] += n;
  }

  [[nodiscard]] std::uint64_t count(Enum key) const {
    return counts_[static_cast<std::size_t>(key)];
  }

  void merge(const EnumCounterArray& other) {
    for (std::size_t i = 0; i < N; ++i) counts_[i] += other.counts_[i];
  }

  /// Sorted render-time view; zero entries are omitted, matching a map
  /// that was only ever written by increments.
  [[nodiscard]] std::map<Enum, std::uint64_t> to_map() const {
    std::map<Enum, std::uint64_t> out;
    for (std::size_t i = 0; i < N; ++i) {
      if (counts_[i] != 0) out.emplace(static_cast<Enum>(i), counts_[i]);
    }
    return out;
  }

 private:
  std::array<std::uint64_t, N> counts_{};
};

template <typename Key>
class SmallCounterMap {
 public:
  void add(Key key, std::uint64_t n = 1) {
    for (auto& [k, count] : items_) {
      if (k == key) {
        count += n;
        return;
      }
    }
    items_.emplace_back(key, n);
  }

  [[nodiscard]] std::uint64_t count(Key key) const {
    for (const auto& [k, n] : items_) {
      if (k == key) return n;
    }
    return 0;
  }

  void merge(const SmallCounterMap& other) {
    for (const auto& [k, n] : other.items_) add(k, n);
  }

  [[nodiscard]] std::map<Key, std::uint64_t> to_map() const {
    return {items_.begin(), items_.end()};
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  std::vector<std::pair<Key, std::uint64_t>> items_;
};

}  // namespace tls::notary
