#include "notary/monitor.hpp"

#include "fingerprint/fingerprint.hpp"
#include "tlscore/grease.hpp"
#include "wire/server_hello.hpp"
#include "wire/alert.hpp"
#include "wire/server_key_exchange.hpp"
#include "wire/transcript.hpp"
#include "handshake/negotiate.hpp"

namespace tls::notary {

using tls::core::CipherClass;
using tls::core::CipherSuiteInfo;
using tls::core::find_cipher_suite;
using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

namespace {

/// Relative position (0 = head, approaching 1 = tail) of the first offered
/// suite matching pred; nullopt when no suite matches. GREASE and SCSV
/// entries are skipped for both numerator and denominator, matching the
/// fingerprint normalization.
template <typename Pred>
std::optional<double> first_position(const ClientHello& hello, Pred&& pred) {
  std::size_t real_index = 0;
  std::optional<std::size_t> hit;
  for (const auto id : hello.cipher_suites) {
    if (tls::core::is_grease(id)) continue;
    const auto* info = find_cipher_suite(id);
    if (info != nullptr && info->scsv) continue;
    if (!hit && info != nullptr && pred(*info)) hit = real_index;
    ++real_index;
  }
  if (!hit || real_index == 0) return std::nullopt;
  return static_cast<double>(*hit) / static_cast<double>(real_index);
}

}  // namespace

const MonthlyStats* PassiveMonitor::month(Month m) const {
  const auto it = months_.find(m);
  return it == months_.end() ? nullptr : &it->second;
}

void PassiveMonitor::observe(const tls::population::ConnectionEvent& event) {
  if (event.sslv2) {
    observe_sslv2(event.month);
    return;
  }
  const auto client_record = event.hello.serialize_record();
  std::vector<std::uint8_t> server_record;
  std::vector<std::uint8_t> ske_record;
  if (event.result.server_hello.has_value()) {
    const auto& sh = *event.result.server_hello;
    server_record = sh.serialize_record();
    // Pre-1.3 EC handshakes carry the chosen curve in ServerKeyExchange.
    if (event.result.negotiated_group != 0 &&
        !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
      ske_record = tls::wire::EcdheServerKeyExchange::stub(
                       event.result.negotiated_group)
                       .serialize_record(sh.legacy_version);
    }
  }
  std::vector<std::uint8_t> alert_record;
  if (!event.result.success &&
      event.result.failure != tls::handshake::FailureReason::kNone) {
    alert_record = tls::handshake::alert_for(event.result.failure)
                       .serialize_record(0x0301);
  }
  observe_wire(event.month, event.day, client_record, server_record,
               ske_record, event.result.success, event.used_fallback,
               alert_record);
}

void PassiveMonitor::observe_flights(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_stream,
    std::span<const std::uint8_t> server_stream) {
  tls::wire::ParsedFlight cf, sf;
  try {
    cf = tls::wire::parse_flight(client_stream);
    sf = tls::wire::parse_flight(server_stream);
  } catch (const tls::wire::ParseError&) {
    ++malformed_;
    return;
  }
  if (!cf.client_hello.has_value()) {
    ++malformed_;
    return;
  }
  // §5.5: a session counts as established only when both directions carry
  // a ChangeCipherSpec.
  const bool established = cf.change_cipher_spec && sf.change_cipher_spec;
  std::vector<std::uint8_t> server_record;
  if (sf.server_hello.has_value()) {
    server_record = sf.server_hello->serialize_record();
  }
  std::vector<std::uint8_t> ske_record;
  if (sf.server_key_exchange.has_value()) {
    ske_record = sf.server_key_exchange->serialize_record(0x0303);
  }
  std::vector<std::uint8_t> alert_record;
  if (sf.alert.has_value()) {
    alert_record = sf.alert->serialize_record(0x0301);
  }
  observe_wire(m, day, cf.client_hello->serialize_record(), server_record,
               ske_record, established, /*used_fallback=*/false,
               alert_record);
}

void PassiveMonitor::observe_sslv2(Month m) {
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.successful;
  ++s.sslv2_connections;
  ++s.negotiated_version[0x0002];
  ++total_;
}

void PassiveMonitor::observe_wire(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_record,
    std::span<const std::uint8_t> server_record,
    std::span<const std::uint8_t> server_key_exchange_record, bool success,
    bool used_fallback, std::span<const std::uint8_t> alert_record) {
  ClientHello hello;
  try {
    hello = ClientHello::parse_record(client_record);
  } catch (const tls::wire::ParseError&) {
    ++malformed_;
    return;
  }

  MonthlyStats& s = stats(m);
  ++s.total;
  ++total_;
  if (used_fallback) ++s.fallbacks;

  // ---- client-advertised features ----
  using namespace tls::core;
  const bool rc4 = hello.offers([](const CipherSuiteInfo& i) { return is_rc4(i); });
  const bool des = hello.offers([](const CipherSuiteInfo& i) { return is_single_des(i); });
  const bool tdes = hello.offers([](const CipherSuiteInfo& i) { return is_3des(i); });
  const bool aead = hello.offers([](const CipherSuiteInfo& i) { return is_aead(i); });
  const bool cbc = hello.offers([](const CipherSuiteInfo& i) { return is_cbc(i); });
  s.adv_rc4 += rc4;
  s.adv_des += des;
  s.adv_3des += tdes;
  s.adv_aead += aead;
  s.adv_cbc += cbc;
  s.adv_export += hello.offers([](const CipherSuiteInfo& i) { return is_export(i); });
  s.adv_anon += hello.offers([](const CipherSuiteInfo& i) { return is_anonymous(i); });
  s.adv_null += hello.offers([](const CipherSuiteInfo& i) { return is_null_cipher(i); });
  s.adv_fs += hello.offers([](const CipherSuiteInfo& i) { return is_forward_secret(i); });
  s.adv_aes128gcm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAes128Gcm; });
  s.adv_aes256gcm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAes256Gcm; });
  s.adv_chacha += hello.offers([](const CipherSuiteInfo& i) {
    return aead_kind(i) == AeadKind::kChaCha20Poly1305;
  });
  s.adv_ccm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAesCcm; });

  if (const auto hb = hello.heartbeat_mode()) ++s.heartbeat_offered;
  s.reneg_info_offered +=
      hello.has_extension(ExtensionType::kRenegotiationInfo) ||
      std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                suites::TLS_EMPTY_RENEGOTIATION_INFO_SCSV) !=
          hello.cipher_suites.end();
  s.etm_offered += hello.has_extension(ExtensionType::kEncryptThenMac);
  s.ems_offered += hello.has_extension(ExtensionType::kExtendedMasterSecret);
  s.sni_offered += hello.has_extension(ExtensionType::kServerName);
  s.session_ticket_offered +=
      hello.has_extension(ExtensionType::kSessionTicket);

  if (const auto versions = hello.supported_versions()) {
    bool any13 = false;
    for (const auto v : *versions) {
      if (is_grease_version(v)) continue;
      if (v == 0x0304 || (v & 0xff00) == 0x7f00 || (v & 0xff00) == 0x7e00) {
        any13 = true;
        ++s.adv_tls13_versions[v];
      }
    }
    s.adv_tls13 += any13;
  }

  // ---- Fig. 5 relative positions ----
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_aead(i); })) s.pos_aead.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_cbc(i); })) s.pos_cbc.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_rc4(i); })) s.pos_rc4.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_single_des(i); })) s.pos_des.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_3des(i); })) s.pos_3des.add(*p);

  // ---- fingerprint stream (fields available from fp_start(), §4.0.1) ----
  if (m >= fp_start()) {
    const auto fp = tls::fp::extract_fingerprint(hello);
    const std::string hash = fp.hash();
    durations_.record(hash, day);
    ++fingerprintable_;
    std::uint8_t flags = 0;
    if (rc4) flags |= kFpRc4;
    if (des) flags |= kFpDes;
    if (tdes) flags |= kFp3Des;
    if (aead) flags |= kFpAead;
    if (cbc) flags |= kFpCbc;
    s.fingerprints[hash] |= flags;
    if (database_ != nullptr) {
      if (const auto* label = database_->lookup(hash)) {
        ++labeled_by_class_[label->cls];
      }
    }
  }

  // ---- alerts on failed handshakes ----
  if (!alert_record.empty()) {
    try {
      const auto alert = tls::wire::Alert::parse_record(alert_record);
      ++s.alerts[static_cast<std::uint8_t>(alert.description)];
    } catch (const tls::wire::ParseError&) {
      ++malformed_;
    }
  }

  // ---- server side ----
  if (server_record.empty()) {
    ++s.failures;
    return;
  }
  ServerHello sh;
  try {
    sh = ServerHello::parse_record(server_record);
  } catch (const tls::wire::ParseError&) {
    ++malformed_;
    ++s.failures;
    return;
  }

  // Spec check: did the server pick something the client never offered?
  const bool offered =
      std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                sh.cipher_suite) != hello.cipher_suites.end();
  if (!offered) ++s.spec_violations;

  if (!success) {
    ++s.failures;
    return;
  }
  ++s.successful;

  const std::uint16_t version = sh.negotiated_version();
  if (!hello.session_id.empty() && sh.session_id == hello.session_id &&
      !(version == 0x0304 || (version & 0xff00) == 0x7f00 ||
        (version & 0xff00) == 0x7e00)) {
    ++s.resumed;
  }
  ++s.negotiated_version[version];
  if (version == 0x0304 || (version & 0xff00) == 0x7f00 ||
      (version & 0xff00) == 0x7e00) {
    ++s.negotiated_tls13;
  }

  const auto* suite = find_cipher_suite(sh.cipher_suite);
  if (suite != nullptr) {
    if (is_rc4(*suite) && aead) ++s.rc4_despite_aead;
    ++s.negotiated_class[cipher_class(*suite)];
    ++s.negotiated_kex[kex_class(*suite)];
    if (is_aead(*suite)) ++s.negotiated_aead[aead_kind(*suite)];
    if (is_3des(*suite)) ++s.negotiated_3des;
    if (is_export(*suite)) ++s.negotiated_export;
    if (is_anonymous(*suite)) ++s.negotiated_anon;
    if (is_null_cipher(*suite)) ++s.negotiated_null;
    if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
  }

  if (const auto group = sh.key_share_group()) {
    ++s.negotiated_group[*group];
  } else if (!server_key_exchange_record.empty()) {
    try {
      const auto ske = tls::wire::EcdheServerKeyExchange::parse_record(
          server_key_exchange_record);
      ++s.negotiated_group[ske.named_curve];
    } catch (const tls::wire::ParseError&) {
      ++malformed_;
    }
  }

  if (sh.heartbeat_mode().has_value() && hello.heartbeat_mode().has_value()) {
    ++s.heartbeat_negotiated;
  }
  s.reneg_info_negotiated +=
      sh.has_extension(ExtensionType::kRenegotiationInfo);
  s.etm_negotiated += sh.has_extension(ExtensionType::kEncryptThenMac);
  s.ems_negotiated += sh.has_extension(ExtensionType::kExtendedMasterSecret);
}

}  // namespace tls::notary
