#include "notary/monitor.hpp"

#include "faults/injector.hpp"
#include "fingerprint/fingerprint.hpp"
#include "tlscore/grease.hpp"
#include "wire/server_hello.hpp"
#include "wire/alert.hpp"
#include "wire/server_key_exchange.hpp"
#include "wire/transcript.hpp"
#include "handshake/negotiate.hpp"

namespace tls::notary {

using tls::core::CipherClass;
using tls::core::CipherSuiteInfo;
using tls::core::find_cipher_suite;
using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

namespace {

/// Relative position (0 = head, approaching 1 = tail) of the first offered
/// suite matching pred; nullopt when no suite matches. GREASE and SCSV
/// entries are skipped for both numerator and denominator, matching the
/// fingerprint normalization.
template <typename Pred>
std::optional<double> first_position(const ClientHello& hello, Pred&& pred) {
  std::size_t real_index = 0;
  std::optional<std::size_t> hit;
  for (const auto id : hello.cipher_suites) {
    if (tls::core::is_grease(id)) continue;
    const auto* info = find_cipher_suite(id);
    if (info != nullptr && info->scsv) continue;
    if (!hit && info != nullptr && pred(*info)) hit = real_index;
    ++real_index;
  }
  if (!hit || real_index == 0) return std::nullopt;
  return static_cast<double>(*hit) / static_cast<double>(real_index);
}

}  // namespace

namespace {

template <typename Key>
void merge_map(std::map<Key, std::uint64_t>& into,
               const std::map<Key, std::uint64_t>& from) {
  for (const auto& [key, n] : from) into[key] += n;
}

}  // namespace

void MonthlyStats::merge(const MonthlyStats& other) {
  total += other.total;
  successful += other.successful;
  failures += other.failures;
  quarantined += other.quarantined;
  one_sided_client += other.one_sided_client;
  one_sided_server += other.one_sided_server;
  merge_map(parse_errors, other.parse_errors);
  fallbacks += other.fallbacks;
  spec_violations += other.spec_violations;
  sslv2_connections += other.sslv2_connections;

  merge_map(negotiated_version, other.negotiated_version);
  merge_map(negotiated_class, other.negotiated_class);
  merge_map(negotiated_aead, other.negotiated_aead);
  merge_map(negotiated_kex, other.negotiated_kex);
  merge_map(negotiated_group, other.negotiated_group);

  adv_rc4 += other.adv_rc4;
  adv_des += other.adv_des;
  adv_3des += other.adv_3des;
  adv_aead += other.adv_aead;
  adv_cbc += other.adv_cbc;
  adv_export += other.adv_export;
  adv_anon += other.adv_anon;
  adv_null += other.adv_null;
  adv_fs += other.adv_fs;
  adv_aes128gcm += other.adv_aes128gcm;
  adv_aes256gcm += other.adv_aes256gcm;
  adv_chacha += other.adv_chacha;
  adv_ccm += other.adv_ccm;

  adv_tls13 += other.adv_tls13;
  merge_map(adv_tls13_versions, other.adv_tls13_versions);
  negotiated_tls13 += other.negotiated_tls13;

  heartbeat_offered += other.heartbeat_offered;
  heartbeat_negotiated += other.heartbeat_negotiated;

  reneg_info_offered += other.reneg_info_offered;
  reneg_info_negotiated += other.reneg_info_negotiated;
  etm_offered += other.etm_offered;
  etm_negotiated += other.etm_negotiated;
  ems_offered += other.ems_offered;
  ems_negotiated += other.ems_negotiated;
  sni_offered += other.sni_offered;
  session_ticket_offered += other.session_ticket_offered;
  resumed += other.resumed;

  merge_map(alerts, other.alerts);
  rc4_despite_aead += other.rc4_despite_aead;

  negotiated_3des += other.negotiated_3des;
  negotiated_export += other.negotiated_export;
  negotiated_anon += other.negotiated_anon;
  negotiated_null += other.negotiated_null;
  negotiated_null_with_null_null += other.negotiated_null_with_null_null;

  pos_aead.merge(other.pos_aead);
  pos_cbc.merge(other.pos_cbc);
  pos_rc4.merge(other.pos_rc4);
  pos_des.merge(other.pos_des);
  pos_3des.merge(other.pos_3des);

  // Flag OR is commutative: the merged flag-map is the same set no matter
  // how the observations were split across shards.
  for (const auto& [hash, flags] : other.fingerprints) {
    fingerprints[hash] |= flags;
  }
}

void PassiveMonitor::absorb(const PassiveMonitor& other) {
  for (const auto& [m, s] : other.months_) {
    months_[m].merge(s);
  }
  durations_.merge(other.durations_);
  total_ += other.total_;
  fingerprintable_ += other.fingerprintable_;
  for (const auto& [cls, n] : other.labeled_by_class_) {
    labeled_by_class_[cls] += n;
  }
  taxonomy_.merge(other.taxonomy_);
  quarantine_.absorb(other.quarantine_);
}

const MonthlyStats* PassiveMonitor::month(Month m) const {
  const auto it = months_.find(m);
  return it == months_.end() ? nullptr : &it->second;
}

void PassiveMonitor::observe(const tls::population::ConnectionEvent& event) {
  if (event.sslv2) {
    observe_sslv2(event.month);
    return;
  }
  auto client_record = event.hello.serialize_record();
  std::vector<std::uint8_t> server_record;
  std::vector<std::uint8_t> ske_record;
  if (event.result.server_hello.has_value()) {
    const auto& sh = *event.result.server_hello;
    server_record = sh.serialize_record();
    // Pre-1.3 EC handshakes carry the chosen curve in ServerKeyExchange.
    if (event.result.negotiated_group != 0 &&
        !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
      ske_record = tls::wire::EcdheServerKeyExchange::stub(
                       event.result.negotiated_group)
                       .serialize_record(sh.legacy_version);
    }
  }
  std::vector<std::uint8_t> alert_record;
  if (!event.result.success &&
      event.result.failure != tls::handshake::FailureReason::kNone) {
    alert_record = tls::handshake::alert_for(event.result.failure)
                       .serialize_record(0x0301);
  }
  bool client_only = false;
  if (injector_ != nullptr) {
    using tls::faults::FaultKind;
    const FaultKind kind =
        injector_->corrupt_capture(client_record, server_record);
    // SKE and alert records travel in the server direction: when that
    // direction is lost, they are lost with it.
    if (server_record.empty() &&
        (kind == FaultKind::kDropFlight || kind == FaultKind::kOneSided)) {
      ske_record.clear();
      alert_record.clear();
      client_only = kind == FaultKind::kOneSided && !client_record.empty();
    }
  }
  observe_wire(event.month, event.day, client_record, server_record,
               ske_record, event.result.success, event.used_fallback,
               alert_record);
  if (client_only) ++stats(event.month).one_sided_client;
}

void PassiveMonitor::observe_flights(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_stream,
    std::span<const std::uint8_t> server_stream) {
  const tls::wire::ParsedFlight cf =
      tls::wire::parse_flight_lenient(client_stream);
  const tls::wire::ParsedFlight sf =
      tls::wire::parse_flight_lenient(server_stream);
  if (cf.stream_error.has_value()) {
    note_error(m, IngestStage::kClientFlight, *cf.stream_error,
               client_stream);
  }
  if (sf.stream_error.has_value()) {
    note_error(m, IngestStage::kServerFlight, *sf.stream_error,
               server_stream);
  }

  if (!cf.client_hello.has_value()) {
    if (sf.server_hello.has_value()) {
      // One-sided capture, server direction only: harvest what the
      // ServerHello alone supports instead of discarding the flow.
      observe_server_only(m, sf);
      return;
    }
    // No usable hello in either direction: the capture is quarantined.
    quarantine_capture(m);
    return;
  }

  // §5.5: a session counts as established only when both directions carry
  // a ChangeCipherSpec.
  const bool established = cf.change_cipher_spec && sf.change_cipher_spec;
  std::vector<std::uint8_t> server_record;
  if (sf.server_hello.has_value()) {
    server_record = sf.server_hello->serialize_record();
  }
  std::vector<std::uint8_t> ske_record;
  if (sf.server_key_exchange.has_value()) {
    ske_record = sf.server_key_exchange->serialize_record(0x0303);
  }
  std::vector<std::uint8_t> alert_record;
  if (sf.alert.has_value()) {
    alert_record = sf.alert->serialize_record(0x0301);
  }
  const bool server_side_seen = !sf.records.empty();
  observe_wire(m, day, cf.client_hello->serialize_record(), server_record,
               ske_record, established, /*used_fallback=*/false,
               alert_record);
  if (!server_side_seen) ++stats(m).one_sided_client;
}

void PassiveMonitor::observe_sslv2(Month m) {
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.successful;
  ++s.sslv2_connections;
  ++s.negotiated_version[0x0002];
  ++total_;
}

void PassiveMonitor::observe_wire(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_record,
    std::span<const std::uint8_t> server_record,
    std::span<const std::uint8_t> server_key_exchange_record, bool success,
    bool used_fallback, std::span<const std::uint8_t> alert_record) {
  ClientHello hello;
  try {
    hello = ClientHello::parse_record(client_record);
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kClientHello, e.code(), client_record);
    quarantine_capture(m);
    return;
  }

  MonthlyStats& s = stats(m);
  ++s.total;
  ++total_;
  if (used_fallback) ++s.fallbacks;

  // ---- client-advertised features ----
  using namespace tls::core;
  const bool rc4 = hello.offers([](const CipherSuiteInfo& i) { return is_rc4(i); });
  const bool des = hello.offers([](const CipherSuiteInfo& i) { return is_single_des(i); });
  const bool tdes = hello.offers([](const CipherSuiteInfo& i) { return is_3des(i); });
  const bool aead = hello.offers([](const CipherSuiteInfo& i) { return is_aead(i); });
  const bool cbc = hello.offers([](const CipherSuiteInfo& i) { return is_cbc(i); });
  s.adv_rc4 += rc4;
  s.adv_des += des;
  s.adv_3des += tdes;
  s.adv_aead += aead;
  s.adv_cbc += cbc;
  s.adv_export += hello.offers([](const CipherSuiteInfo& i) { return is_export(i); });
  s.adv_anon += hello.offers([](const CipherSuiteInfo& i) { return is_anonymous(i); });
  s.adv_null += hello.offers([](const CipherSuiteInfo& i) { return is_null_cipher(i); });
  s.adv_fs += hello.offers([](const CipherSuiteInfo& i) { return is_forward_secret(i); });
  s.adv_aes128gcm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAes128Gcm; });
  s.adv_aes256gcm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAes256Gcm; });
  s.adv_chacha += hello.offers([](const CipherSuiteInfo& i) {
    return aead_kind(i) == AeadKind::kChaCha20Poly1305;
  });
  s.adv_ccm += hello.offers(
      [](const CipherSuiteInfo& i) { return aead_kind(i) == AeadKind::kAesCcm; });

  // Typed extension accessors parse opaque bodies lazily, so corrupted
  // captures can surface ParseErrors here long after the structural parse
  // succeeded; each harvest is guarded to keep observe_wire never-throw.
  try {
    if (const auto hb = hello.heartbeat_mode()) ++s.heartbeat_offered;
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kClientHello, e.code(), client_record);
  }
  s.reneg_info_offered +=
      hello.has_extension(ExtensionType::kRenegotiationInfo) ||
      std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                suites::TLS_EMPTY_RENEGOTIATION_INFO_SCSV) !=
          hello.cipher_suites.end();
  s.etm_offered += hello.has_extension(ExtensionType::kEncryptThenMac);
  s.ems_offered += hello.has_extension(ExtensionType::kExtendedMasterSecret);
  s.sni_offered += hello.has_extension(ExtensionType::kServerName);
  s.session_ticket_offered +=
      hello.has_extension(ExtensionType::kSessionTicket);

  try {
    if (const auto versions = hello.supported_versions()) {
      bool any13 = false;
      for (const auto v : *versions) {
        if (is_grease_version(v)) continue;
        if (v == 0x0304 || (v & 0xff00) == 0x7f00 || (v & 0xff00) == 0x7e00) {
          any13 = true;
          ++s.adv_tls13_versions[v];
        }
      }
      s.adv_tls13 += any13;
    }
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kClientHello, e.code(), client_record);
  }

  // ---- Fig. 5 relative positions ----
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_aead(i); })) s.pos_aead.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_cbc(i); })) s.pos_cbc.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_rc4(i); })) s.pos_rc4.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_single_des(i); })) s.pos_des.add(*p);
  if (const auto p = first_position(hello, [](const CipherSuiteInfo& i) { return is_3des(i); })) s.pos_3des.add(*p);

  // ---- fingerprint stream (fields available from fp_start(), §4.0.1) ----
  if (m >= fp_start()) {
    try {
      const auto fp = tls::fp::extract_fingerprint(hello);
      const std::string hash = fp.hash();
      durations_.record(hash, day);
      ++fingerprintable_;
      std::uint8_t flags = 0;
      if (rc4) flags |= kFpRc4;
      if (des) flags |= kFpDes;
      if (tdes) flags |= kFp3Des;
      if (aead) flags |= kFpAead;
      if (cbc) flags |= kFpCbc;
      s.fingerprints[hash] |= flags;
      if (database_ != nullptr) {
        if (const auto* label = database_->lookup(hash)) {
          ++labeled_by_class_[label->cls];
        }
      }
    } catch (const tls::wire::ParseError& e) {
      // Corrupt extension bodies make the hello unfingerprintable, nothing
      // more; the connection itself stays in the partition.
      note_error(m, IngestStage::kClientHello, e.code(), client_record);
    }
  }

  // ---- alerts on failed handshakes ----
  if (!alert_record.empty()) {
    try {
      const auto alert = tls::wire::Alert::parse_record(alert_record);
      ++s.alerts[static_cast<std::uint8_t>(alert.description)];
    } catch (const tls::wire::ParseError& e) {
      note_error(m, IngestStage::kAlert, e.code(), alert_record);
    }
  }

  // ---- server side ----
  if (server_record.empty()) {
    ++s.failures;
    return;
  }
  ServerHello sh;
  try {
    sh = ServerHello::parse_record(server_record);
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kServerHello, e.code(), server_record);
    ++s.failures;
    return;
  }

  // Spec check: did the server pick something the client never offered?
  const bool offered =
      std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                sh.cipher_suite) != hello.cipher_suites.end();
  if (!offered) ++s.spec_violations;

  if (!success) {
    ++s.failures;
    return;
  }
  ++s.successful;

  try {
    const std::uint16_t version = sh.negotiated_version();
    if (!hello.session_id.empty() && sh.session_id == hello.session_id &&
        !(version == 0x0304 || (version & 0xff00) == 0x7f00 ||
          (version & 0xff00) == 0x7e00)) {
      ++s.resumed;
    }
    ++s.negotiated_version[version];
    if (version == 0x0304 || (version & 0xff00) == 0x7f00 ||
        (version & 0xff00) == 0x7e00) {
      ++s.negotiated_tls13;
    }

    const auto* suite = find_cipher_suite(sh.cipher_suite);
    if (suite != nullptr) {
      if (is_rc4(*suite) && aead) ++s.rc4_despite_aead;
      ++s.negotiated_class[cipher_class(*suite)];
      ++s.negotiated_kex[kex_class(*suite)];
      if (is_aead(*suite)) ++s.negotiated_aead[aead_kind(*suite)];
      if (is_3des(*suite)) ++s.negotiated_3des;
      if (is_export(*suite)) ++s.negotiated_export;
      if (is_anonymous(*suite)) ++s.negotiated_anon;
      if (is_null_cipher(*suite)) ++s.negotiated_null;
      if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
    }

    if (const auto group = sh.key_share_group()) {
      ++s.negotiated_group[*group];
    } else if (!server_key_exchange_record.empty()) {
      try {
        const auto ske = tls::wire::EcdheServerKeyExchange::parse_record(
            server_key_exchange_record);
        ++s.negotiated_group[ske.named_curve];
      } catch (const tls::wire::ParseError& e) {
        note_error(m, IngestStage::kServerKeyExchange, e.code(),
                   server_key_exchange_record);
      }
    }

    if (sh.heartbeat_mode().has_value() &&
        hello.heartbeat_mode().has_value()) {
      ++s.heartbeat_negotiated;
    }
    s.reneg_info_negotiated +=
        sh.has_extension(ExtensionType::kRenegotiationInfo);
    s.etm_negotiated += sh.has_extension(ExtensionType::kEncryptThenMac);
    s.ems_negotiated += sh.has_extension(ExtensionType::kExtendedMasterSecret);
  } catch (const tls::wire::ParseError& e) {
    // A lazy ServerHello accessor hit a corrupt extension body: the
    // connection stays successful, the remaining server-side stats for it
    // are unharvestable.
    note_error(m, IngestStage::kServerHello, e.code(), server_record);
  }
}

void PassiveMonitor::note_error(Month m, IngestStage stage,
                                tls::wire::ParseErrorCode code,
                                std::span<const std::uint8_t> bytes) {
  taxonomy_.record(stage, code);
  ++stats(m).parse_errors[code];
  quarantine_.push(stage, code, m, bytes);
}

void PassiveMonitor::quarantine_capture(Month m) {
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.quarantined;
}

void PassiveMonitor::observe_server_only(Month m,
                                         const tls::wire::ParsedFlight& sf) {
  using namespace tls::core;
  const ServerHello& sh = *sf.server_hello;
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.one_sided_server;
  ++total_;

  // Without the client direction, the §5.5 two-sided criterion is out of
  // reach; the server's own ChangeCipherSpec is the best available proxy.
  if (!sf.change_cipher_spec) {
    ++s.failures;
    if (sf.alert.has_value()) {
      ++s.alerts[static_cast<std::uint8_t>(sf.alert->description)];
    }
    return;
  }
  ++s.successful;

  try {
    const std::uint16_t version = sh.negotiated_version();
    ++s.negotiated_version[version];
    if (version == 0x0304 || (version & 0xff00) == 0x7f00 ||
        (version & 0xff00) == 0x7e00) {
      ++s.negotiated_tls13;
    }
    const auto* suite = find_cipher_suite(sh.cipher_suite);
    if (suite != nullptr) {
      ++s.negotiated_class[cipher_class(*suite)];
      ++s.negotiated_kex[kex_class(*suite)];
      if (is_aead(*suite)) ++s.negotiated_aead[aead_kind(*suite)];
      if (is_3des(*suite)) ++s.negotiated_3des;
      if (is_export(*suite)) ++s.negotiated_export;
      if (is_anonymous(*suite)) ++s.negotiated_anon;
      if (is_null_cipher(*suite)) ++s.negotiated_null;
      if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
    }
    if (const auto group = sh.key_share_group()) {
      ++s.negotiated_group[*group];
    } else if (sf.server_key_exchange.has_value()) {
      ++s.negotiated_group[sf.server_key_exchange->named_curve];
    }
    s.reneg_info_negotiated +=
        sh.has_extension(ExtensionType::kRenegotiationInfo);
    s.etm_negotiated += sh.has_extension(ExtensionType::kEncryptThenMac);
    s.ems_negotiated +=
        sh.has_extension(ExtensionType::kExtendedMasterSecret);
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kServerHello, e.code(), {});
  }
  // Client-dependent stats (advertised classes, fingerprints, resumption,
  // heartbeat negotiation, spec checks) are unknowable from one side.
}

std::vector<tls::analysis::LossRow> loss_rows(const PassiveMonitor& monitor) {
  std::vector<tls::analysis::LossRow> rows;
  rows.reserve(monitor.months().size());
  for (const auto& [m, s] : monitor.months()) {
    tls::analysis::LossRow row;
    row.month = m.to_string();
    row.total = s.total;
    row.successful = s.successful;
    row.failures = s.failures;
    row.quarantined = s.quarantined;
    row.one_sided = s.one_sided_client + s.one_sided_server;
    for (const auto& [code, n] : s.parse_errors) {
      const auto i = static_cast<std::size_t>(code);
      if (i < row.by_code.size()) row.by_code[i] += n;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tls::notary
