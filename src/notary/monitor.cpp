#include "notary/monitor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "faults/injector.hpp"
#include "fingerprint/fingerprint.hpp"
#include "fingerprint/md5_multilane.hpp"
#include "telemetry/metrics.hpp"
#include "tlscore/grease.hpp"
#include "wire/server_hello.hpp"
#include "wire/alert.hpp"
#include "wire/server_key_exchange.hpp"
#include "wire/transcript.hpp"
#include "handshake/negotiate.hpp"

namespace tls::notary {

using tls::core::CipherClass;
using tls::core::CipherSuiteInfo;
using tls::core::find_cipher_suite;
using tls::core::Month;
using tls::wire::ClientHello;
using tls::wire::ServerHello;

namespace {

bool is_tls13_version(std::uint16_t version) {
  return version == 0x0304 || (version & 0xff00) == 0x7f00 ||
         (version & 0xff00) == 0x7e00;
}

}  // namespace

void MonthlyStats::merge(const MonthlyStats& other) {
  total += other.total;
  successful += other.successful;
  failures += other.failures;
  quarantined += other.quarantined;
  one_sided_client += other.one_sided_client;
  one_sided_server += other.one_sided_server;
  parse_error_counts_.merge(other.parse_error_counts_);
  fallbacks += other.fallbacks;
  spec_violations += other.spec_violations;
  sslv2_connections += other.sslv2_connections;

  version_counts_.merge(other.version_counts_);
  class_counts_.merge(other.class_counts_);
  aead_counts_.merge(other.aead_counts_);
  kex_counts_.merge(other.kex_counts_);
  group_counts_.merge(other.group_counts_);

  adv_rc4 += other.adv_rc4;
  adv_des += other.adv_des;
  adv_3des += other.adv_3des;
  adv_aead += other.adv_aead;
  adv_cbc += other.adv_cbc;
  adv_export += other.adv_export;
  adv_anon += other.adv_anon;
  adv_null += other.adv_null;
  adv_fs += other.adv_fs;
  adv_aes128gcm += other.adv_aes128gcm;
  adv_aes256gcm += other.adv_aes256gcm;
  adv_chacha += other.adv_chacha;
  adv_ccm += other.adv_ccm;

  adv_tls13 += other.adv_tls13;
  tls13_version_counts_.merge(other.tls13_version_counts_);
  negotiated_tls13 += other.negotiated_tls13;

  heartbeat_offered += other.heartbeat_offered;
  heartbeat_negotiated += other.heartbeat_negotiated;

  reneg_info_offered += other.reneg_info_offered;
  reneg_info_negotiated += other.reneg_info_negotiated;
  etm_offered += other.etm_offered;
  etm_negotiated += other.etm_negotiated;
  ems_offered += other.ems_offered;
  ems_negotiated += other.ems_negotiated;
  sni_offered += other.sni_offered;
  session_ticket_offered += other.session_ticket_offered;
  resumed += other.resumed;

  alert_counts_.merge(other.alert_counts_);
  rc4_despite_aead += other.rc4_despite_aead;

  negotiated_3des += other.negotiated_3des;
  negotiated_export += other.negotiated_export;
  negotiated_anon += other.negotiated_anon;
  negotiated_null += other.negotiated_null;
  negotiated_null_with_null_null += other.negotiated_null_with_null_null;

  pos_aead.merge(other.pos_aead);
  pos_cbc.merge(other.pos_cbc);
  pos_rc4.merge(other.pos_rc4);
  pos_des.merge(other.pos_des);
  pos_3des.merge(other.pos_3des);

  // Flag OR is commutative: the merged flag-map is the same set no matter
  // how the observations were split across shards.
  for (const auto& [hash, flags] : other.fingerprints) {
    fingerprints[hash] |= flags;
  }
}

void PassiveMonitor::absorb(const PassiveMonitor& other) {
  for (const auto& [m, s] : other.months_) {
    months_[m].merge(s);
  }
  durations_.merge(other.durations_);
  total_ += other.total_;
  fingerprintable_ += other.fingerprintable_;
  for (const auto& [cls, n] : other.labeled_by_class_) {
    labeled_by_class_[cls] += n;
  }
  taxonomy_.merge(other.taxonomy_);
  quarantine_.absorb(other.quarantine_);
  cache_.stats().merge(other.cache_.stats());
}

const MonthlyStats* PassiveMonitor::month(Month m) const {
  const auto it = months_.find(m);
  return it == months_.end() ? nullptr : &it->second;
}

void PassiveMonitor::observe(const tls::population::ConnectionEvent& event) {
  if (event.sslv2) {
    observe_sslv2(event.month);
    return;
  }
  using tls::faults::FaultKind;
  // With a chaos tap attached, draw the capture-fault roll BEFORE
  // serializing: the roll consumes exactly the one uniform the old
  // corrupt_capture drew, so the injector's RNG stream is unchanged, and
  // events the tap leaves untouched (kNone — the overwhelming majority at
  // realistic fault rates) are known untouched up front.
  const FaultKind kind = injector_ == nullptr
                             ? FaultKind::kNone
                             : injector_->roll_capture();
  // Fast path: for untouched events the serialized records are
  // byte-for-byte what the structs would produce (the codecs are
  // inverses), so the serialize→parse round trip is pure overhead.
  // observe_event_fast harvests the structs directly and declines
  // (recording nothing) on any event the byte path would treat specially —
  // which then falls through to serialization below.
  if (kind == FaultKind::kNone && fast_observe_ && observe_event_fast(event)) {
    if (tel_fast_ != nullptr) tel_fast_->add();
    return;
  }
  // The GenCache ships the hello's record bytes with the event; copy them
  // (the injector mutates this buffer in place) instead of re-serializing.
  if (!event.client_record.empty()) {
    buf_client_.assign(event.client_record.begin(), event.client_record.end());
  } else {
    event.hello.serialize_record_into(buf_client_);
  }
  buf_server_.clear();
  buf_ske_.clear();
  buf_alert_.clear();
  if (event.result.server_hello.has_value()) {
    const auto& sh = *event.result.server_hello;
    sh.serialize_record_into(buf_server_);
    // Pre-1.3 EC handshakes carry the chosen curve in ServerKeyExchange.
    if (event.result.negotiated_group != 0 &&
        !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
      tls::wire::EcdheServerKeyExchange::stub(event.result.negotiated_group)
          .serialize_record_into(sh.legacy_version, buf_ske_);
    }
  }
  if (!event.result.success &&
      event.result.failure != tls::handshake::FailureReason::kNone) {
    tls::handshake::alert_for(event.result.failure)
        .serialize_record_into(0x0301, buf_alert_);
  }
  bool client_only = false;
  // Anything the tap touched must bypass the cache: the quarantine and
  // error-taxonomy paths have to run for every corrupted repetition.
  const bool cacheable = kind == FaultKind::kNone;
  if (kind != FaultKind::kNone) {
    injector_->apply_capture(kind, buf_client_, buf_server_);
    // SKE and alert records travel in the server direction: when that
    // direction is lost, they are lost with it.
    if (buf_server_.empty() &&
        (kind == FaultKind::kDropFlight || kind == FaultKind::kOneSided)) {
      buf_ske_.clear();
      buf_alert_.clear();
      client_only = kind == FaultKind::kOneSided && !buf_client_.empty();
    }
  }
  observe_wire(event.month, event.day, buf_client_, buf_server_, buf_ske_,
               event.result.success, event.used_fallback, buf_alert_,
               cacheable);
  if (client_only) ++stats(event.month).one_sided_client;
}

void PassiveMonitor::observe_span(
    std::span<const tls::population::ConnectionEvent> events) {
  // The injector's roll/apply calls must stay adjacent per event in stream
  // order — batching would reorder its RNG draws — so chaos runs take the
  // per-event path. Tiny spans aren't worth the phase bookkeeping.
  if (injector_ != nullptr || events.size() < 2) {
    for (const auto& event : events) observe(event);
    return;
  }

  // Phase A — route every event and build features without mutating any
  // aggregate. Fingerprint digests are deferred into span_canonicals_.
  span_slots_.clear();
  span_wire_.clear();
  span_canonicals_.clear();
  if (span_cf_.size() < events.size()) {
    span_cf_.resize(events.size());
    span_sf_.resize(events.size());
  }
  std::string canonical;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    SpanSlot slot;
    if (event.sslv2) {
      slot.kind = SpanSlotKind::kSslv2;
      span_slots_.push_back(slot);
      continue;
    }
    if (fast_observe_ &&
        fast_build(event, span_cf_[i], span_sf_[i], &canonical)) {
      slot.kind = SpanSlotKind::kFast;
      if (span_cf_[i].fingerprint_computed) {
        slot.canon = static_cast<std::ptrdiff_t>(span_canonicals_.size());
        span_canonicals_.push_back(std::move(canonical));
      }
      span_slots_.push_back(slot);
      continue;
    }
    // Fast path declined (or disabled): serialize for the byte path,
    // exactly as observe() does for an untouched (kNone) event.
    slot.kind = SpanSlotKind::kWire;
    span_slots_.push_back(slot);
    WireCapture cap;
    cap.month = event.month;
    cap.day = event.day;
    if (!event.client_record.empty()) {
      cap.client = event.client_record;  // pre-serialized by the GenCache
    } else {
      event.hello.serialize_record_into(cap.client);
    }
    if (event.result.server_hello.has_value()) {
      const auto& sh = *event.result.server_hello;
      sh.serialize_record_into(cap.server);
      if (event.result.negotiated_group != 0 &&
          !sh.has_extension(tls::core::ExtensionType::kSupportedVersions)) {
        tls::wire::EcdheServerKeyExchange::stub(event.result.negotiated_group)
            .serialize_record_into(sh.legacy_version, cap.ske);
      }
    }
    if (!event.result.success &&
        event.result.failure != tls::handshake::FailureReason::kNone) {
      tls::handshake::alert_for(event.result.failure)
          .serialize_record_into(0x0301, cap.alert);
    }
    cap.success = event.result.success;
    cap.used_fallback = event.used_fallback;
    span_wire_.push_back(std::move(cap));
  }

  // Phase B — one multi-lane digest pass over the generation.
  span_canonical_views_.clear();
  for (const auto& c : span_canonicals_) span_canonical_views_.push_back(c);
  span_digests_.resize(span_canonicals_.size());
  tls::fp::md5_batch(span_canonical_views_, span_digests_);

  // Phase C — apply per event in the original order. Byte-path events are
  // applied after the fast ones (in order among themselves); the only
  // cross-path reordering is over commutative folds, so exports match the
  // per-event path bit for bit.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanSlot& slot = span_slots_[i];
    switch (slot.kind) {
      case SpanSlotKind::kSslv2:
        observe_sslv2(events[i].month);
        break;
      case SpanSlotKind::kFast:
        if (slot.canon >= 0) {
          finalize_client_fingerprint(span_cf_[i], database_,
                                      span_digests_[slot.canon]);
        }
        if (tel_fast_ != nullptr) tel_fast_->add();
        fast_apply(events[i], span_cf_[i], span_sf_[i]);
        break;
      case SpanSlotKind::kWire:
        break;
    }
  }
  if (!span_wire_.empty()) observe_wire_batch(span_wire_);
}

void PassiveMonitor::observe_wire_batch(std::span<const WireCapture> caps) {
  if (caps.empty()) return;
  const bool cache_on = cache_.enabled();

  // Lane-hash the bucket keys of every cacheable record (client and server
  // sides in one batch) while the cache runs its production FNV-1a hash.
  batch_hash_inputs_.clear();
  if (cache_on && cache_.uses_default_hash()) {
    for (const auto& cap : caps) {
      if (!cap.cacheable) continue;
      batch_hash_inputs_.push_back(cap.client);
      if (!cap.server.empty()) batch_hash_inputs_.push_back(cap.server);
    }
    batch_hashes_.resize(batch_hash_inputs_.size());
    tls::fp::fnv1a64_batch(batch_hash_inputs_, batch_hashes_);
  }

  // The find phase below hands out pointers into cache entries that must
  // survive until each capture's apply completes; pre-flushing guarantees
  // the insert phase cannot trigger a mid-batch generation flush.
  if (cache_on) cache_.ensure_client_headroom(caps.size());

  // Phase A — resolve every client record: lookup, or parse + feature
  // build with the fingerprint digest deferred into wire_canonicals_.
  wire_slots_.resize(caps.size());
  wire_canonicals_.clear();
  std::size_t hash_cursor = 0;
  const bool laned_hashes = !batch_hash_inputs_.empty();
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const WireCapture& cap = caps[i];
    WireSlot& slot = wire_slots_[i];
    slot.hello = nullptr;
    slot.feats = nullptr;
    slot.errors.clear();
    slot.canon = -1;
    slot.has_server_hash = false;
    if (tel_byte_ != nullptr) tel_byte_->add();
    slot.use_cache = cap.cacheable && cache_on;
    if (!cap.cacheable && cache_on) cache_.count_bypass();
    if (slot.use_cache) {
      if (laned_hashes) {
        slot.client_hash = batch_hashes_[hash_cursor++];
        if (!cap.server.empty()) {
          slot.server_hash = batch_hashes_[hash_cursor++];
          slot.has_server_hash = true;
        }
      } else {
        slot.client_hash = cache_.hash_bytes(cap.client);
      }
    }
    const bool want_fp = cap.month >= fp_start();
    if (slot.use_cache) {
      if (const auto hit = cache_.find_client_hashed(
              cap.client, slot.client_hash, want_fp)) {
        slot.kind = WireSlot::Kind::kHit;
        slot.hello = hit->hello;
        slot.feats = hit->features;
        continue;
      }
    }
    try {
      slot.owned_hello = ClientHello::parse_record(cap.client);
    } catch (const tls::wire::ParseError& e) {
      slot.kind = WireSlot::Kind::kQuarantine;
      slot.parse_error = e.code();
      continue;
    }
    slot.kind = WireSlot::Kind::kMiss;
    std::string canonical;
    build_client_features(slot.owned_hello, database_, want_fp,
                          slot.owned_feats, slot.errors, &canonical);
    if (slot.owned_feats.fingerprint_computed) {
      slot.canon = static_cast<std::ptrdiff_t>(wire_canonicals_.size());
      wire_canonicals_.push_back(std::move(canonical));
    }
  }

  // Phase B — digest the generation's miss canonicals in SIMD lanes.
  wire_canonical_views_.clear();
  for (const auto& c : wire_canonicals_) wire_canonical_views_.push_back(c);
  wire_digests_.resize(wire_canonicals_.size());
  tls::fp::md5_batch(wire_canonical_views_, wire_digests_);

  // Phase C — complete label/insert and ingest per capture in the original
  // order; each capture's mutation sequence is exactly observe_wire's.
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const WireCapture& cap = caps[i];
    WireSlot& slot = wire_slots_[i];
    bool client_clean = true;
    switch (slot.kind) {
      case WireSlot::Kind::kQuarantine:
        note_error(cap.month, IngestStage::kClientHello, slot.parse_error,
                   cap.client);
        quarantine_capture(cap.month);
        continue;
      case WireSlot::Kind::kMiss: {
        if (slot.canon >= 0) {
          finalize_client_fingerprint(slot.owned_feats, database_,
                                      wire_digests_[slot.canon]);
        }
        for (const auto code : slot.errors) {
          note_error(cap.month, IngestStage::kClientHello, code, cap.client);
        }
        client_clean = slot.errors.empty();
        if (slot.use_cache && client_clean) {
          const auto inserted = cache_.insert_client_hashed(
              cap.client, slot.client_hash, std::move(slot.owned_hello),
              std::move(slot.owned_feats));
          slot.hello = inserted.hello;
          slot.feats = inserted.features;
        } else {
          if (slot.use_cache) cache_.count_uncacheable();
          slot.hello = &slot.owned_hello;
          slot.feats = &slot.owned_feats;
        }
        break;
      }
      case WireSlot::Kind::kHit:
        break;
    }
    ingest_resolved(cap.month, cap.day, *slot.hello, *slot.feats,
                    client_clean, cap.server, cap.ske, cap.success,
                    cap.used_fallback, cap.alert, slot.use_cache,
                    slot.has_server_hash ? &slot.server_hash : nullptr);
  }
}

void PassiveMonitor::observe_flights(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_stream,
    std::span<const std::uint8_t> server_stream) {
  const tls::wire::ParsedFlight cf =
      tls::wire::parse_flight_lenient(client_stream);
  const tls::wire::ParsedFlight sf =
      tls::wire::parse_flight_lenient(server_stream);
  if (cf.stream_error.has_value()) {
    note_error(m, IngestStage::kClientFlight, *cf.stream_error,
               client_stream);
  }
  if (sf.stream_error.has_value()) {
    note_error(m, IngestStage::kServerFlight, *sf.stream_error,
               server_stream);
  }

  if (!cf.client_hello.has_value()) {
    if (sf.server_hello.has_value()) {
      // One-sided capture, server direction only: harvest what the
      // ServerHello alone supports instead of discarding the flow.
      observe_server_only(m, sf);
      return;
    }
    // No usable hello in either direction: the capture is quarantined.
    quarantine_capture(m);
    return;
  }

  // §5.5: a session counts as established only when both directions carry
  // a ChangeCipherSpec.
  const bool established = cf.change_cipher_spec && sf.change_cipher_spec;
  std::vector<std::uint8_t> server_record;
  if (sf.server_hello.has_value()) {
    server_record = sf.server_hello->serialize_record();
  }
  std::vector<std::uint8_t> ske_record;
  if (sf.server_key_exchange.has_value()) {
    ske_record = sf.server_key_exchange->serialize_record(0x0303);
  }
  std::vector<std::uint8_t> alert_record;
  if (sf.alert.has_value()) {
    alert_record = sf.alert->serialize_record(0x0301);
  }
  const bool server_side_seen = !sf.records.empty();
  observe_wire(m, day, cf.client_hello->serialize_record(), server_record,
               ske_record, established, /*used_fallback=*/false,
               alert_record);
  if (!server_side_seen) ++stats(m).one_sided_client;
}

void PassiveMonitor::set_telemetry(tls::telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tel_fast_ = tel_byte_ = tel_sslv2_ = nullptr;
    return;
  }
  tel_fast_ = &registry->counter(
      "tls_repro_notary_fast_path_total", "",
      "Connections harvested via the struct-reuse fast path");
  tel_byte_ = &registry->counter(
      "tls_repro_notary_byte_path_total", "",
      "Connections ingested through the serialize/parse byte path");
  tel_sslv2_ = &registry->counter("tls_repro_notary_sslv2_total", "",
                                  "SSLv2 CLIENT-HELLO connections recorded");
}

void PassiveMonitor::observe_sslv2(Month m) {
  if (tel_sslv2_ != nullptr) tel_sslv2_->add();
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.successful;
  ++s.sslv2_connections;
  s.count_version(0x0002);
  ++total_;
}

void PassiveMonitor::apply_client_features(MonthlyStats& s, Month m,
                                           const tls::core::Date& day,
                                           const ClientHelloFeatures& f) {
  s.adv_rc4 += f.adv_rc4;
  s.adv_des += f.adv_des;
  s.adv_3des += f.adv_3des;
  s.adv_aead += f.adv_aead;
  s.adv_cbc += f.adv_cbc;
  s.adv_export += f.adv_export;
  s.adv_anon += f.adv_anon;
  s.adv_null += f.adv_null;
  s.adv_fs += f.adv_fs;
  s.adv_aes128gcm += f.adv_aes128gcm;
  s.adv_aes256gcm += f.adv_aes256gcm;
  s.adv_chacha += f.adv_chacha;
  s.adv_ccm += f.adv_ccm;

  s.heartbeat_offered += f.heartbeat_offered;
  s.reneg_info_offered += f.reneg_info_offered;
  s.etm_offered += f.etm_offered;
  s.ems_offered += f.ems_offered;
  s.sni_offered += f.sni_offered;
  s.session_ticket_offered += f.session_ticket_offered;

  for (const auto v : f.tls13_versions) s.count_adv_tls13_version(v);
  s.adv_tls13 += f.adv_tls13;

  if (f.pos_aead) s.pos_aead.add(*f.pos_aead);
  if (f.pos_cbc) s.pos_cbc.add(*f.pos_cbc);
  if (f.pos_rc4) s.pos_rc4.add(*f.pos_rc4);
  if (f.pos_des) s.pos_des.add(*f.pos_des);
  if (f.pos_3des) s.pos_3des.add(*f.pos_3des);

  if (m >= fp_start() && f.fingerprint_computed) {
    durations_.record(f.fp_hash, day);
    ++fingerprintable_;
    s.fingerprints[f.fp_hash] |= f.fp_flags;
    if (f.label_cls) ++labeled_by_class_[*f.label_cls];
  }
}

void PassiveMonitor::apply_server_features(
    MonthlyStats& s, const ClientHello& hello, const ClientHelloFeatures& cf,
    const ServerHello& sh, const ServerHelloFeatures& sf,
    std::optional<std::uint16_t> ske_group) {
  using namespace tls::core;
  const std::uint16_t version = sf.version;
  if (!hello.session_id.empty() && sh.session_id == hello.session_id &&
      !is_tls13_version(version)) {
    ++s.resumed;
  }
  s.count_version(version);
  if (is_tls13_version(version)) ++s.negotiated_tls13;

  const auto* suite = sf.suite;
  if (suite != nullptr) {
    if (is_rc4(*suite) && cf.adv_aead) ++s.rc4_despite_aead;
    s.count_class(cipher_class(*suite));
    s.count_kex(kex_class(*suite));
    if (is_aead(*suite)) s.count_aead(aead_kind(*suite));
    if (is_3des(*suite)) ++s.negotiated_3des;
    if (is_export(*suite)) ++s.negotiated_export;
    if (is_anonymous(*suite)) ++s.negotiated_anon;
    if (is_null_cipher(*suite)) ++s.negotiated_null;
    if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
  }

  if (sf.key_share_group) {
    s.count_group(*sf.key_share_group);
  } else if (ske_group) {
    s.count_group(*ske_group);
  }

  if (sf.heartbeat_present && cf.heartbeat_offered) ++s.heartbeat_negotiated;
  s.reneg_info_negotiated += sf.reneg;
  s.etm_negotiated += sf.etm;
  s.ems_negotiated += sf.ems;
}

bool PassiveMonitor::observe_event_fast(
    const tls::population::ConnectionEvent& event) {
  if (!fast_build(event, scratch_features_, scratch_server_features_,
                  /*fp_canonical=*/nullptr)) {
    return false;
  }
  fast_apply(event, scratch_features_, scratch_server_features_);
  return true;
}

bool PassiveMonitor::fast_build(const tls::population::ConnectionEvent& event,
                                ClientHelloFeatures& cf,
                                ServerHelloFeatures& sf,
                                std::string* fp_canonical) {
  const ClientHello& hello = event.hello;
  // The byte path quarantines hellos that fail the structural parse; the
  // only struct states that can trigger that are rejected here.
  if (hello.cipher_suites.empty() || hello.compression_methods.empty()) {
    return false;
  }
  // Precompute everything that could throw, before any state mutation, so
  // declining is always clean. Self-generated events never carry corrupt
  // extension bodies, but the guard keeps the fast path byte-identical to
  // the slow path even if one did.
  scratch_errors_.clear();
  build_client_features(hello, database_, event.month >= fp_start(), cf,
                        scratch_errors_, fp_canonical);
  if (!scratch_errors_.empty()) return false;

  if (event.result.server_hello.has_value() &&
      !build_server_features(*event.result.server_hello, sf)) {
    return false;
  }
  return true;
}

void PassiveMonitor::fast_apply(const tls::population::ConnectionEvent& event,
                                const ClientHelloFeatures& cf,
                                const ServerHelloFeatures& sf) {
  using namespace tls::core;
  const ClientHello& hello = event.hello;
  const Month m = event.month;
  const ServerHello* sh = event.result.server_hello.has_value()
                              ? &*event.result.server_hello
                              : nullptr;

  // Mutate, mirroring observe_wire's order exactly.
  MonthlyStats& s = stats(m);
  ++s.total;
  ++total_;
  if (event.used_fallback) ++s.fallbacks;

  apply_client_features(s, m, event.day, cf);

  // observe() synthesizes an alert record only for failed handshakes with
  // a concrete failure reason; alert_for's output always parses back.
  if (!event.result.success &&
      event.result.failure != tls::handshake::FailureReason::kNone) {
    const auto alert = tls::handshake::alert_for(event.result.failure);
    s.count_alert(static_cast<std::uint8_t>(alert.description));
  }

  if (sh == nullptr) {
    ++s.failures;
    return;
  }

  const bool offered =
      std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                sh->cipher_suite) != hello.cipher_suites.end();
  if (!offered) ++s.spec_violations;

  if (!event.result.success) {
    ++s.failures;
    return;
  }
  ++s.successful;

  // The byte path sees the curve via the synthesized ServerKeyExchange
  // record, emitted only for pre-1.3 handshakes; stub(group) round-trips
  // the group value exactly.
  std::optional<std::uint16_t> ske_group;
  if (!sf.key_share_group && event.result.negotiated_group != 0 &&
      !sh->has_extension(ExtensionType::kSupportedVersions)) {
    ske_group = event.result.negotiated_group;
  }
  apply_server_features(s, hello, cf, *sh, sf, ske_group);
}

void PassiveMonitor::observe_wire(
    Month m, const tls::core::Date& day,
    std::span<const std::uint8_t> client_record,
    std::span<const std::uint8_t> server_record,
    std::span<const std::uint8_t> server_key_exchange_record, bool success,
    bool used_fallback, std::span<const std::uint8_t> alert_record,
    bool cacheable) {
  if (tel_byte_ != nullptr) tel_byte_->add();
  using namespace tls::core;
  const bool use_cache = cacheable && cache_.enabled();
  if (!cacheable && cache_.enabled()) cache_.count_bypass();
  const bool want_fp = m >= fp_start();

  // ---- client side: memoized feature extraction ----
  const ClientHello* hello = nullptr;
  const ClientHelloFeatures* feats = nullptr;
  bool client_clean = true;
  if (use_cache) {
    if (const auto hit = cache_.find_client(client_record, want_fp)) {
      hello = hit->hello;
      feats = hit->features;
    }
  }
  if (feats == nullptr) {
    try {
      scratch_hello_ = ClientHello::parse_record(client_record);
    } catch (const tls::wire::ParseError& e) {
      note_error(m, IngestStage::kClientHello, e.code(), client_record);
      quarantine_capture(m);
      return;
    }
    scratch_errors_.clear();
    build_client_features(scratch_hello_, database_, want_fp,
                          scratch_features_, scratch_errors_);
    for (const auto code : scratch_errors_) {
      note_error(m, IngestStage::kClientHello, code, client_record);
    }
    client_clean = scratch_errors_.empty();
    if (use_cache && client_clean) {
      // Only error-free extractions are memoized: repetitions of a record
      // that produces errors must replay the taxonomy/quarantine writes.
      const auto inserted =
          cache_.insert_client(client_record, scratch_hello_,
                               scratch_features_);
      hello = inserted.hello;
      feats = inserted.features;
    } else {
      if (use_cache) cache_.count_uncacheable();
      hello = &scratch_hello_;
      feats = &scratch_features_;
    }
  }

  ingest_resolved(m, day, *hello, *feats, client_clean, server_record,
                  server_key_exchange_record, success, used_fallback,
                  alert_record, use_cache, /*server_hash=*/nullptr);
}

void PassiveMonitor::ingest_resolved(
    Month m, const tls::core::Date& day, const ClientHello& hello_ref,
    const ClientHelloFeatures& feats_ref, bool client_clean,
    std::span<const std::uint8_t> server_record,
    std::span<const std::uint8_t> server_key_exchange_record, bool success,
    bool used_fallback, std::span<const std::uint8_t> alert_record,
    bool use_cache, const std::uint64_t* server_hash) {
  using namespace tls::core;
  const ClientHello* hello = &hello_ref;
  const ClientHelloFeatures* feats = &feats_ref;
  MonthlyStats& s = stats(m);
  ++s.total;
  ++total_;
  if (used_fallback) ++s.fallbacks;

  apply_client_features(s, m, day, *feats);

  // ---- alerts on failed handshakes ----
  if (!alert_record.empty()) {
    try {
      const auto alert = tls::wire::Alert::parse_record(alert_record);
      s.count_alert(static_cast<std::uint8_t>(alert.description));
    } catch (const tls::wire::ParseError& e) {
      note_error(m, IngestStage::kAlert, e.code(), alert_record);
    }
  }

  // ---- server side ----
  if (server_record.empty()) {
    ++s.failures;
    return;
  }
  const ServerHello* sh = nullptr;
  const ServerHelloFeatures* sfeats = nullptr;
  const std::uint64_t sh_hash =
      use_cache ? (server_hash != nullptr ? *server_hash
                                          : cache_.hash_bytes(server_record))
                : 0;
  if (use_cache) {
    if (const auto hit = cache_.find_server_hashed(server_record, sh_hash)) {
      sh = hit->hello;
      sfeats = hit->features;
    }
  }
  if (sh == nullptr) {
    try {
      scratch_server_hello_ = ServerHello::parse_record(server_record);
    } catch (const tls::wire::ParseError& e) {
      note_error(m, IngestStage::kServerHello, e.code(), server_record);
      ++s.failures;
      return;
    }
    // Records whose lazy accessors throw are never memoized — every
    // repetition must replay the guarded harvest below with its partial
    // counting and error notes.
    const bool derived =
        build_server_features(scratch_server_hello_, scratch_server_features_);
    sh = &scratch_server_hello_;
    if (derived) {
      if (use_cache) {
        // Move the parsed hello into the entry (scratch is reassigned on
        // its next use); the hash computed for the lookup is reused.
        const auto inserted = cache_.insert_server_hashed(
            server_record, sh_hash, std::move(scratch_server_hello_),
            scratch_server_features_);
        sh = inserted.hello;
        sfeats = inserted.features;
      } else {
        sfeats = &scratch_server_features_;
      }
    } else if (use_cache) {
      cache_.count_uncacheable();
    }
  }

  // Spec check: did the server pick something the client never offered?
  const bool offered =
      std::find(hello->cipher_suites.begin(), hello->cipher_suites.end(),
                sh->cipher_suite) != hello->cipher_suites.end();
  if (!offered) ++s.spec_violations;

  if (!success) {
    ++s.failures;
    return;
  }
  ++s.successful;

  if (sfeats != nullptr && client_clean) {
    // Both sides extracted error-free: no accessor can throw, so the
    // memoized mirror of the guarded block below applies.
    std::optional<std::uint16_t> ske_group;
    if (!sfeats->key_share_group && !server_key_exchange_record.empty()) {
      try {
        ske_group = tls::wire::EcdheServerKeyExchange::parse_record(
                        server_key_exchange_record)
                        .named_curve;
      } catch (const tls::wire::ParseError& e) {
        note_error(m, IngestStage::kServerKeyExchange, e.code(),
                   server_key_exchange_record);
      }
    }
    apply_server_features(s, *hello, *feats, *sh, *sfeats, ske_group);
    return;
  }

  try {
    const std::uint16_t version = sh->negotiated_version();
    if (!hello->session_id.empty() && sh->session_id == hello->session_id &&
        !is_tls13_version(version)) {
      ++s.resumed;
    }
    s.count_version(version);
    if (is_tls13_version(version)) ++s.negotiated_tls13;

    const auto* suite = find_cipher_suite(sh->cipher_suite);
    if (suite != nullptr) {
      if (is_rc4(*suite) && feats->adv_aead) ++s.rc4_despite_aead;
      s.count_class(cipher_class(*suite));
      s.count_kex(kex_class(*suite));
      if (is_aead(*suite)) s.count_aead(aead_kind(*suite));
      if (is_3des(*suite)) ++s.negotiated_3des;
      if (is_export(*suite)) ++s.negotiated_export;
      if (is_anonymous(*suite)) ++s.negotiated_anon;
      if (is_null_cipher(*suite)) ++s.negotiated_null;
      if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
    }

    if (const auto group = sh->key_share_group()) {
      s.count_group(*group);
    } else if (!server_key_exchange_record.empty()) {
      try {
        const auto ske = tls::wire::EcdheServerKeyExchange::parse_record(
            server_key_exchange_record);
        s.count_group(ske.named_curve);
      } catch (const tls::wire::ParseError& e) {
        note_error(m, IngestStage::kServerKeyExchange, e.code(),
                   server_key_exchange_record);
      }
    }

    if (sh->heartbeat_mode().has_value() &&
        hello->heartbeat_mode().has_value()) {
      ++s.heartbeat_negotiated;
    }
    s.reneg_info_negotiated +=
        sh->has_extension(ExtensionType::kRenegotiationInfo);
    s.etm_negotiated += sh->has_extension(ExtensionType::kEncryptThenMac);
    s.ems_negotiated += sh->has_extension(ExtensionType::kExtendedMasterSecret);
  } catch (const tls::wire::ParseError& e) {
    // A lazy ServerHello accessor hit a corrupt extension body: the
    // connection stays successful, the remaining server-side stats for it
    // are unharvestable.
    note_error(m, IngestStage::kServerHello, e.code(), server_record);
  }
}

void PassiveMonitor::note_error(Month m, IngestStage stage,
                                tls::wire::ParseErrorCode code,
                                std::span<const std::uint8_t> bytes) {
  taxonomy_.record(stage, code);
  stats(m).count_parse_error(code);
  quarantine_.push(stage, code, m, bytes);
}

void PassiveMonitor::quarantine_capture(Month m) {
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.quarantined;
}

void PassiveMonitor::observe_server_only(Month m,
                                         const tls::wire::ParsedFlight& sf) {
  using namespace tls::core;
  const ServerHello& sh = *sf.server_hello;
  MonthlyStats& s = stats(m);
  ++s.total;
  ++s.one_sided_server;
  ++total_;

  // Without the client direction, the §5.5 two-sided criterion is out of
  // reach; the server's own ChangeCipherSpec is the best available proxy.
  if (!sf.change_cipher_spec) {
    ++s.failures;
    if (sf.alert.has_value()) {
      s.count_alert(static_cast<std::uint8_t>(sf.alert->description));
    }
    return;
  }
  ++s.successful;

  try {
    const std::uint16_t version = sh.negotiated_version();
    s.count_version(version);
    if (is_tls13_version(version)) ++s.negotiated_tls13;
    const auto* suite = find_cipher_suite(sh.cipher_suite);
    if (suite != nullptr) {
      s.count_class(cipher_class(*suite));
      s.count_kex(kex_class(*suite));
      if (is_aead(*suite)) s.count_aead(aead_kind(*suite));
      if (is_3des(*suite)) ++s.negotiated_3des;
      if (is_export(*suite)) ++s.negotiated_export;
      if (is_anonymous(*suite)) ++s.negotiated_anon;
      if (is_null_cipher(*suite)) ++s.negotiated_null;
      if (is_null_with_null_null(*suite)) ++s.negotiated_null_with_null_null;
    }
    if (const auto group = sh.key_share_group()) {
      s.count_group(*group);
    } else if (sf.server_key_exchange.has_value()) {
      s.count_group(sf.server_key_exchange->named_curve);
    }
    s.reneg_info_negotiated +=
        sh.has_extension(ExtensionType::kRenegotiationInfo);
    s.etm_negotiated += sh.has_extension(ExtensionType::kEncryptThenMac);
    s.ems_negotiated +=
        sh.has_extension(ExtensionType::kExtendedMasterSecret);
  } catch (const tls::wire::ParseError& e) {
    note_error(m, IngestStage::kServerHello, e.code(), {});
  }
  // Client-dependent stats (advertised classes, fingerprints, resumption,
  // heartbeat negotiation, spec checks) are unknowable from one side.
}

std::vector<tls::analysis::LossRow> loss_rows(const PassiveMonitor& monitor) {
  std::vector<tls::analysis::LossRow> rows;
  rows.reserve(monitor.months().size());
  for (const auto& [m, s] : monitor.months()) {
    tls::analysis::LossRow row;
    row.month = m.to_string();
    row.total = s.total;
    row.successful = s.successful;
    row.failures = s.failures;
    row.quarantined = s.quarantined;
    row.one_sided = s.one_sided_client + s.one_sided_server;
    for (std::size_t i = 0;
         i < std::min(row.by_code.size(), tls::wire::kParseErrorCodeCount);
         ++i) {
      row.by_code[i] +=
          s.parse_error_count(static_cast<tls::wire::ParseErrorCode>(i));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tls::notary
