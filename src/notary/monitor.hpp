// The passive monitor — our ICSI-SSL-Notary equivalent. It consumes raw
// ClientHello/ServerHello record bytes (re-parsing what the generator
// serialized, so the analysis path is identical to one fed by live taps)
// and maintains the monthly aggregates behind every passive figure in the
// paper, plus the fingerprint stream of §4.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/render.hpp"
#include "fingerprint/database.hpp"
#include "fingerprint/duration.hpp"
#include "notary/counters.hpp"
#include "notary/observe_cache.hpp"
#include "notary/quarantine.hpp"
#include "population/traffic.hpp"
#include "tlscore/cipher_suites.hpp"
#include "tlscore/dates.hpp"
#include "wire/errors.hpp"

namespace tls::faults {
class FaultInjector;
}
namespace tls::telemetry {
class MetricsRegistry;
struct Counter;
}
namespace tls::wire {
struct ParsedFlight;
}

namespace tls::notary {

/// Snapshot codec's private-state gateway (defined in snapshot.cpp): the
/// checkpoint journal serializes and rebuilds the monitor's complete
/// absorb-state through this single friend.
struct MonitorSnapshotCodec;

/// Accumulator for the average relative position of the first offered
/// cipher of a class within the client's list (Fig. 5).
struct PositionAccumulator {
  double sum = 0;
  std::uint64_t n = 0;

  void add(double rel) {
    sum += rel;
    ++n;
  }
  /// Shard merge: one double addition per absorbed shard. Merging shards
  /// in a fixed order therefore yields a bit-identical sum regardless of
  /// which threads computed them.
  void merge(const PositionAccumulator& other) {
    sum += other.sum;
    n += other.n;
  }
  [[nodiscard]] double average() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

struct MonthlyStats {
  /// Every capture handed to the monitor this month lands in exactly one of
  /// successful / failures / quarantined; total is their sum.
  std::uint64_t total = 0;
  std::uint64_t successful = 0;
  std::uint64_t failures = 0;
  /// Captures whose ClientHello (or whole capture) was unusable; the bytes
  /// go to the quarantine ring, the code to parse_errors().
  std::uint64_t quarantined = 0;
  /// Captures where only one direction was seen (§3.1's one-sided flows):
  /// still harvested for whatever stats that direction supports.
  std::uint64_t one_sided_client = 0;
  std::uint64_t one_sided_server = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t spec_violations = 0;
  std::uint64_t sslv2_connections = 0;

  // Client-advertised support, counted per connection (Figs. 3, 6, 7, 10).
  std::uint64_t adv_rc4 = 0, adv_des = 0, adv_3des = 0, adv_aead = 0;
  std::uint64_t adv_cbc = 0, adv_export = 0, adv_anon = 0, adv_null = 0;
  std::uint64_t adv_fs = 0;
  std::uint64_t adv_aes128gcm = 0, adv_aes256gcm = 0, adv_chacha = 0,
                adv_ccm = 0;

  // TLS 1.3 deployment (§6.4).
  std::uint64_t adv_tls13 = 0;
  std::uint64_t negotiated_tls13 = 0;

  // Heartbeat (§5.4).
  std::uint64_t heartbeat_offered = 0;
  std::uint64_t heartbeat_negotiated = 0;

  // Extension-deployment tracking (§9: RIE as the renegotiation-attack
  // response, Encrypt-then-MAC as the Lucky-13 response).
  std::uint64_t reneg_info_offered = 0;
  std::uint64_t reneg_info_negotiated = 0;
  std::uint64_t etm_offered = 0;
  std::uint64_t etm_negotiated = 0;
  std::uint64_t ems_offered = 0;
  std::uint64_t ems_negotiated = 0;
  std::uint64_t sni_offered = 0;
  std::uint64_t session_ticket_offered = 0;
  /// Abbreviated (resumed) pre-1.3 handshakes: non-empty client session id
  /// echoed verbatim by the server.
  std::uint64_t resumed = 0;

  /// Server selected RC4 although the client offered AEAD suites — the
  /// bankmellat-style outdated-choice misconfiguration of §5.3/§7.3.
  std::uint64_t rc4_despite_aead = 0;

  // Weak-suite negotiation residuals (§5.5, §5.6, §6.1, §6.2).
  std::uint64_t negotiated_3des = 0;
  std::uint64_t negotiated_export = 0;
  std::uint64_t negotiated_anon = 0;
  std::uint64_t negotiated_null = 0;
  std::uint64_t negotiated_null_with_null_null = 0;

  // Fig. 5 accumulators.
  PositionAccumulator pos_aead, pos_cbc, pos_rc4, pos_des, pos_3des;

  /// Distinct fingerprints seen this month with class-support flags
  /// (Fig. 4). Bit 0: RC4, 1: DES, 2: 3DES, 3: AEAD, 4: CBC.
  std::unordered_map<std::string, std::uint8_t> fingerprints;

  // ---- hot-path counter increments (flat storage, see counters.hpp) ----
  void count_parse_error(tls::wire::ParseErrorCode code) {
    parse_error_counts_.add(code);
  }
  void count_version(std::uint16_t version) { version_counts_.add(version); }
  void count_class(tls::core::CipherClass cls) { class_counts_.add(cls); }
  void count_aead(tls::core::AeadKind kind) { aead_counts_.add(kind); }
  void count_kex(tls::core::KexClass cls) { kex_counts_.add(cls); }
  void count_group(std::uint16_t group) { group_counts_.add(group); }
  void count_adv_tls13_version(std::uint16_t v) { tls13_version_counts_.add(v); }
  void count_alert(std::uint8_t description) { alert_counts_.add(description); }

  // ---- render-time sorted-map views (byte-identical to the former
  //      std::map fields of the same names) ----
  /// Record-level parse failures observed this month, by code (includes
  /// non-fatal ones on otherwise-accepted connections).
  [[nodiscard]] std::map<tls::wire::ParseErrorCode, std::uint64_t>
  parse_errors() const {
    return parse_error_counts_.to_map();
  }
  /// Negotiated protocol versions (wire values; TLS 1.3 drafts collapse to
  /// their wire value; SSLv2 recorded as 0x0002).
  [[nodiscard]] std::map<std::uint16_t, std::uint64_t> negotiated_version()
      const {
    return version_counts_.to_map();
  }
  /// Negotiated cipher class (Fig. 2).
  [[nodiscard]] std::map<tls::core::CipherClass, std::uint64_t>
  negotiated_class() const {
    return class_counts_.to_map();
  }
  /// Negotiated AEAD breakdown (Fig. 9).
  [[nodiscard]] std::map<tls::core::AeadKind, std::uint64_t> negotiated_aead()
      const {
    return aead_counts_.to_map();
  }
  /// Negotiated key-exchange family (Fig. 8).
  [[nodiscard]] std::map<tls::core::KexClass, std::uint64_t> negotiated_kex()
      const {
    return kex_counts_.to_map();
  }
  /// Negotiated named group (§6.3.3).
  [[nodiscard]] std::map<std::uint16_t, std::uint64_t> negotiated_group()
      const {
    return group_counts_.to_map();
  }
  /// Advertised TLS 1.3 supported_versions values (§6.4).
  [[nodiscard]] std::map<std::uint16_t, std::uint64_t> adv_tls13_versions()
      const {
    return tls13_version_counts_.to_map();
  }
  /// Fatal alerts observed on failed handshakes, by description.
  [[nodiscard]] std::map<std::uint8_t, std::uint64_t> alerts() const {
    return alert_counts_.to_map();
  }

  // ---- point lookups (no map materialization) ----
  [[nodiscard]] std::uint64_t parse_error_count(
      tls::wire::ParseErrorCode code) const {
    return parse_error_counts_.count(code);
  }
  [[nodiscard]] std::uint64_t negotiated_version_count(
      std::uint16_t version) const {
    return version_counts_.count(version);
  }
  [[nodiscard]] std::uint64_t negotiated_class_count(
      tls::core::CipherClass cls) const {
    return class_counts_.count(cls);
  }
  [[nodiscard]] std::uint64_t negotiated_aead_count(
      tls::core::AeadKind kind) const {
    return aead_counts_.count(kind);
  }
  [[nodiscard]] std::uint64_t negotiated_kex_count(
      tls::core::KexClass cls) const {
    return kex_counts_.count(cls);
  }
  [[nodiscard]] std::uint64_t negotiated_group_count(
      std::uint16_t group) const {
    return group_counts_.count(group);
  }
  [[nodiscard]] std::uint64_t adv_tls13_version_count(
      std::uint16_t version) const {
    return tls13_version_counts_.count(version);
  }
  [[nodiscard]] std::uint64_t alert_count(std::uint8_t description) const {
    return alert_counts_.count(description);
  }

  /// Connections whose ClientHello parsed — the denominator for every
  /// client-advertised percentage. Quarantined captures carry no features,
  /// so excluding them keeps aggregates unbiased under unbiased loss (and
  /// equal to total when nothing was quarantined).
  [[nodiscard]] std::uint64_t accepted() const { return successful + failures; }

  [[nodiscard]] double pct(std::uint64_t x) const {
    return accepted() == 0 ? 0.0
                           : 100.0 * static_cast<double>(x) /
                                 static_cast<double>(accepted());
  }

  /// Shard merge: adds every counter, folds every keyed counter per key,
  /// and ORs fingerprint flag-maps. All integer/flag folds are commutative;
  /// the only floating-point state (PositionAccumulators) merges with one
  /// addition per shard, so merging in a fixed shard order reproduces the
  /// serial-sharded result bit for bit.
  void merge(const MonthlyStats& other);

 private:
  friend struct MonitorSnapshotCodec;

  EnumCounterArray<tls::wire::ParseErrorCode, tls::wire::kParseErrorCodeCount>
      parse_error_counts_;
  EnumCounterArray<tls::core::CipherClass, tls::core::kCipherClassCount>
      class_counts_;
  EnumCounterArray<tls::core::AeadKind, tls::core::kAeadKindCount>
      aead_counts_;
  EnumCounterArray<tls::core::KexClass, tls::core::kKexClassCount>
      kex_counts_;
  SmallCounterMap<std::uint16_t> version_counts_;
  SmallCounterMap<std::uint16_t> group_counts_;
  SmallCounterMap<std::uint16_t> tls13_version_counts_;
  SmallCounterMap<std::uint8_t> alert_counts_;
};

class PassiveMonitor {
 public:
  /// `database` (optional) enables labeled-coverage accounting (Table 2).
  explicit PassiveMonitor(const tls::fp::FingerprintDatabase* database = nullptr)
      : database_(database) {}

  /// Convenience wrapper: feeds one generated connection to the monitor.
  /// With no fault injector attached, a documented fast path harvests the
  /// already-built structs directly — serializing and re-parsing them would
  /// be a pure round trip (the codecs are inverses; proven byte-identical
  /// by test). With an injector attached, the event is serialized, run
  /// through the chaos tap, and ingested via observe_wire; records the tap
  /// touched bypass the observe cache.
  void observe(const tls::population::ConnectionEvent& event);

  /// Batch entry point used by the sharded study runner. With a fault
  /// injector attached it degrades to calling observe per event (the
  /// injector's roll/apply RNG adjacency forbids reordering); otherwise it
  /// runs the batched pipeline: per-event feature builds with deferred
  /// fingerprint digests, one SIMD md5_batch over the generation's
  /// canonical strings, then per-event application in the original order.
  /// Exported aggregates are byte-identical to the per-event path — every
  /// event contributes exactly the same increments, and the only
  /// reordering is across commutative folds (counters, min/max lifetimes,
  /// flag ORs).
  void observe_span(std::span<const tls::population::ConnectionEvent> events);

  /// One pre-serialized capture for observe_wire_batch — the fields of an
  /// observe_wire call, owned.
  struct WireCapture {
    tls::core::Month month;
    tls::core::Date day;
    std::vector<std::uint8_t> client;
    std::vector<std::uint8_t> server;
    std::vector<std::uint8_t> ske;
    std::vector<std::uint8_t> alert;
    bool success = false;
    bool used_fallback = false;
    bool cacheable = true;
  };

  /// Batched byte path: equivalent to calling observe_wire per capture, but
  /// the cache-miss captures of the whole batch are resolved in phases —
  /// lane-hashed bucket lookups (fnv1a64_batch), parse + feature build with
  /// deferred digests, one md5_batch over the miss canonicals, then
  /// parse/label/insert completed per capture in the original order. The
  /// per-capture mutation sequence is identical to observe_wire's, so
  /// exports stay byte-identical; only cache statistics may differ (a
  /// within-batch duplicate counts as a second miss instead of a hit, and
  /// generation flushes happen at batch boundaries).
  void observe_wire_batch(std::span<const WireCapture> captures);

  /// The raw-tap entry point. `server_key_exchange_record` may be empty
  /// (RSA key transport, TLS 1.3, or failed handshakes). Never throws on
  /// hostile input: unparseable ClientHellos quarantine the capture, and
  /// record-level failures elsewhere are counted per stage and code.
  /// `cacheable=false` routes the capture around the observe cache (used
  /// for fault-injected records).
  void observe_wire(tls::core::Month month, const tls::core::Date& day,
                    std::span<const std::uint8_t> client_hello_record,
                    std::span<const std::uint8_t> server_hello_record,
                    std::span<const std::uint8_t> server_key_exchange_record,
                    bool success, bool used_fallback = false,
                    std::span<const std::uint8_t> alert_record = {},
                    bool cacheable = true);

  /// Full-transcript entry point: parses both directions' record streams
  /// (hellos, ServerKeyExchange, alerts, ChangeCipherSpec) and applies the
  /// §5.5 establishment criterion — both sides sent ChangeCipherSpec.
  /// Never throws on hostile input: corrupt streams are salvaged up to the
  /// first bad record, one-sided captures are partially harvested, and
  /// captures with no usable hello are quarantined.
  void observe_flights(tls::core::Month month, const tls::core::Date& day,
                       std::span<const std::uint8_t> client_stream,
                       std::span<const std::uint8_t> server_stream);

  /// Attaches a chaos tap: observe() runs every serialized record through
  /// `injector` before ingesting it. nullptr (default) detaches; the
  /// fault-free path is untouched either way.
  void set_fault_injector(tls::faults::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Records an SSLv2 CLIENT-HELLO connection (§5.1 residue).
  void observe_sslv2(tls::core::Month month);

  /// Attaches a telemetry registry: the monitor resolves counter handles
  /// for its ingest-path split (fast/byte/sslv2) and bumps them per event.
  /// nullptr (default) detaches; the disabled path costs one null check
  /// per event and never reads a clock, so attaching telemetry cannot
  /// perturb any aggregate the monitor exports.
  void set_telemetry(tls::telemetry::MetricsRegistry* registry);

  /// Shard merge: folds another monitor's entire state (monthly stats,
  /// duration tracker, dataset tallies, error taxonomy, quarantine ring,
  /// observe-cache statistics) into this one. Absorbing per-shard monitors
  /// in a fixed (month, shard) order makes the result independent of which
  /// threads ran the shards — the determinism contract of the parallel
  /// study runner.
  void absorb(const PassiveMonitor& other);

  [[nodiscard]] const std::map<tls::core::Month, MonthlyStats>& months()
      const {
    return months_;
  }
  [[nodiscard]] const MonthlyStats* month(tls::core::Month m) const;

  /// §4.1 fingerprint lifetime stream (active from fp_start()).
  [[nodiscard]] const tls::fp::DurationTracker& durations() const {
    return durations_;
  }

  /// Month the monitor's fingerprint features became available (§4.0.1:
  /// the Notary gained the fields in Feb 2014; usable from Oct 2014).
  [[nodiscard]] static tls::core::Month fp_start() {
    return tls::core::Month(2014, 10);
  }

  // ---- observe-cache control / observability ----
  /// Per-direction entry budget; 0 disables memoization. Any setting
  /// yields identical aggregates — the cache memoizes a pure function of
  /// the record bytes.
  void set_observe_cache_capacity(std::size_t entries) {
    cache_.set_capacity(entries);
  }
  [[nodiscard]] const ObserveCacheStats& observe_cache_stats() const {
    return cache_.stats();
  }
  /// Test seam: disabling forces observe() onto the serialize→parse byte
  /// path even without a fault injector.
  void set_fast_observe(bool enabled) { fast_observe_ = enabled; }
  /// Test seam: degenerate hash functions force 64-bit key collisions.
  void set_observe_cache_hash_for_test(ObserveCache::HashFn hash) {
    cache_.set_hash_for_test(hash);
  }

  // ---- dataset-wide tallies ----
  [[nodiscard]] std::uint64_t total_connections() const { return total_; }
  [[nodiscard]] std::uint64_t fingerprintable_connections() const {
    return fingerprintable_;
  }
  [[nodiscard]] const std::map<tls::fp::SoftwareClass, std::uint64_t>&
  labeled_connections_by_class() const {
    return labeled_by_class_;
  }
  [[nodiscard]] std::uint64_t labeled_connections() const {
    std::uint64_t n = 0;
    for (const auto& [cls, c] : labeled_by_class_) n += c;
    return n;
  }
  /// Total record parse failures across all stages (legacy name; equals
  /// errors().total()).
  [[nodiscard]] std::uint64_t malformed_hellos() const {
    return taxonomy_.total();
  }

  // ---- error observability ----
  [[nodiscard]] const ErrorTaxonomy& errors() const { return taxonomy_; }
  [[nodiscard]] const QuarantineRing& quarantine() const {
    return quarantine_;
  }

 private:
  friend struct MonitorSnapshotCodec;

  MonthlyStats& stats(tls::core::Month m) { return months_[m]; }

  /// Records one parse failure: taxonomy counters, the month's per-code
  /// counters, and the offending bytes into the quarantine ring.
  void note_error(tls::core::Month m, IngestStage stage,
                  tls::wire::ParseErrorCode code,
                  std::span<const std::uint8_t> bytes);
  /// Counts a capture rejected outright into the month's partition
  /// (total = successful + failures + quarantined stays exact).
  void quarantine_capture(tls::core::Month m);
  /// Partial harvest of a server-direction-only capture.
  void observe_server_only(tls::core::Month m,
                           const tls::wire::ParsedFlight& flight);

  /// Struct-reuse fast path for observe(); returns false — having recorded
  /// nothing — when the event needs the byte path (structurally
  /// unparseable hello, or any lazy accessor that would throw mid-harvest).
  bool observe_event_fast(const tls::population::ConnectionEvent& event);

  /// Pure half of the fast path: builds both feature sets without mutating
  /// any aggregate; returns false when the event must take the byte path.
  /// `fp_canonical` (optional) defers the fingerprint digest exactly like
  /// build_client_features.
  bool fast_build(const tls::population::ConnectionEvent& event,
                  ClientHelloFeatures& cf, ServerHelloFeatures& sf,
                  std::string* fp_canonical);
  /// Mutating half: applies a fast_build result, mirroring observe_wire's
  /// mutation order. `cf` must have its fingerprint finalized.
  void fast_apply(const tls::population::ConnectionEvent& event,
                  const ClientHelloFeatures& cf,
                  const ServerHelloFeatures& sf);

  /// Shared ingest tail of observe_wire / observe_wire_batch: everything
  /// after the client record is resolved to (hello, features, clean).
  /// `server_hash` optionally carries a lane-precomputed bucket hash for
  /// the server record.
  void ingest_resolved(tls::core::Month m, const tls::core::Date& day,
                       const tls::wire::ClientHello& hello,
                       const ClientHelloFeatures& feats, bool client_clean,
                       std::span<const std::uint8_t> server_record,
                       std::span<const std::uint8_t> ske_record, bool success,
                       bool used_fallback,
                       std::span<const std::uint8_t> alert_record,
                       bool use_cache, const std::uint64_t* server_hash);

  /// Applies memoized client features to the month (pure increments).
  void apply_client_features(MonthlyStats& s, tls::core::Month m,
                             const tls::core::Date& day,
                             const ClientHelloFeatures& f);
  /// Applies memoized server features; only valid when both sides' feature
  /// extraction was error-free (no accessor can throw then).
  void apply_server_features(MonthlyStats& s,
                             const tls::wire::ClientHello& hello,
                             const ClientHelloFeatures& cf,
                             const tls::wire::ServerHello& sh,
                             const ServerHelloFeatures& sf,
                             std::optional<std::uint16_t> ske_group);

  const tls::fp::FingerprintDatabase* database_;
  std::map<tls::core::Month, MonthlyStats> months_;
  tls::fp::DurationTracker durations_;
  std::uint64_t total_ = 0;
  std::uint64_t fingerprintable_ = 0;
  std::map<tls::fp::SoftwareClass, std::uint64_t> labeled_by_class_;
  ErrorTaxonomy taxonomy_;
  QuarantineRing quarantine_;
  tls::faults::FaultInjector* injector_ = nullptr;

  ObserveCache cache_;
  bool fast_observe_ = true;
  // Telemetry counter handles (null = telemetry detached). Registry map
  // nodes have stable addresses, so caching the pointers is safe.
  tls::telemetry::Counter* tel_fast_ = nullptr;
  tls::telemetry::Counter* tel_byte_ = nullptr;
  tls::telemetry::Counter* tel_sslv2_ = nullptr;
  // Reusable scratch for the per-connection hot path (a monitor is
  // single-threaded; shard parallelism uses one monitor per shard).
  tls::wire::ClientHello scratch_hello_;
  tls::wire::ServerHello scratch_server_hello_;
  ClientHelloFeatures scratch_features_;
  ServerHelloFeatures scratch_server_features_;
  std::vector<tls::wire::ParseErrorCode> scratch_errors_;
  std::vector<std::uint8_t> buf_client_, buf_server_, buf_ske_, buf_alert_;

  // ---- batch scratch (allocations reused across generations) ----
  // observe_span slots: how each event of the current batch is routed.
  enum class SpanSlotKind : std::uint8_t { kSslv2, kFast, kWire };
  struct SpanSlot {
    SpanSlotKind kind = SpanSlotKind::kWire;
    std::ptrdiff_t canon = -1;  // index into span_canonicals_ (kFast)
  };
  // observe_wire_batch slots: per-capture client-record resolution.
  struct WireSlot {
    enum class Kind : std::uint8_t { kQuarantine, kHit, kMiss };
    Kind kind = Kind::kMiss;
    tls::wire::ParseErrorCode parse_error{};  // kQuarantine
    const tls::wire::ClientHello* hello = nullptr;
    const ClientHelloFeatures* feats = nullptr;
    tls::wire::ClientHello owned_hello;  // kMiss
    ClientHelloFeatures owned_feats;
    std::vector<tls::wire::ParseErrorCode> errors;
    std::ptrdiff_t canon = -1;  // index into wire_canonicals_
    std::uint64_t client_hash = 0;
    std::uint64_t server_hash = 0;
    bool has_server_hash = false;
    bool use_cache = false;
  };
  std::vector<SpanSlot> span_slots_;
  std::vector<ClientHelloFeatures> span_cf_;
  std::vector<ServerHelloFeatures> span_sf_;
  std::vector<WireCapture> span_wire_;
  std::vector<std::string> span_canonicals_;
  std::vector<std::string_view> span_canonical_views_;
  std::vector<std::array<std::uint8_t, 16>> span_digests_;
  std::vector<WireSlot> wire_slots_;
  std::vector<std::string> wire_canonicals_;
  std::vector<std::string_view> wire_canonical_views_;
  std::vector<std::array<std::uint8_t, 16>> wire_digests_;
  std::vector<std::span<const std::uint8_t>> batch_hash_inputs_;
  std::vector<std::uint64_t> batch_hashes_;
};

/// Flattens the monitor's per-month partition + parse-error counters into
/// rows for tls::analysis::render_loss_table (one row per observed month,
/// chronological).
[[nodiscard]] std::vector<tls::analysis::LossRow> loss_rows(
    const PassiveMonitor& monitor);

}  // namespace tls::notary
