// The passive monitor — our ICSI-SSL-Notary equivalent. It consumes raw
// ClientHello/ServerHello record bytes (re-parsing what the generator
// serialized, so the analysis path is identical to one fed by live taps)
// and maintains the monthly aggregates behind every passive figure in the
// paper, plus the fingerprint stream of §4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "analysis/render.hpp"
#include "fingerprint/database.hpp"
#include "fingerprint/duration.hpp"
#include "notary/quarantine.hpp"
#include "population/traffic.hpp"
#include "tlscore/cipher_suites.hpp"
#include "tlscore/dates.hpp"
#include "wire/errors.hpp"

namespace tls::faults {
class FaultInjector;
}
namespace tls::wire {
struct ParsedFlight;
}

namespace tls::notary {

/// Accumulator for the average relative position of the first offered
/// cipher of a class within the client's list (Fig. 5).
struct PositionAccumulator {
  double sum = 0;
  std::uint64_t n = 0;

  void add(double rel) {
    sum += rel;
    ++n;
  }
  /// Shard merge: one double addition per absorbed shard. Merging shards
  /// in a fixed order therefore yields a bit-identical sum regardless of
  /// which threads computed them.
  void merge(const PositionAccumulator& other) {
    sum += other.sum;
    n += other.n;
  }
  [[nodiscard]] double average() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

struct MonthlyStats {
  /// Every capture handed to the monitor this month lands in exactly one of
  /// successful / failures / quarantined; total is their sum.
  std::uint64_t total = 0;
  std::uint64_t successful = 0;
  std::uint64_t failures = 0;
  /// Captures whose ClientHello (or whole capture) was unusable; the bytes
  /// go to the quarantine ring, the code to parse_errors.
  std::uint64_t quarantined = 0;
  /// Captures where only one direction was seen (§3.1's one-sided flows):
  /// still harvested for whatever stats that direction supports.
  std::uint64_t one_sided_client = 0;
  std::uint64_t one_sided_server = 0;
  /// Record-level parse failures observed this month, by code (includes
  /// non-fatal ones on otherwise-accepted connections).
  std::map<tls::wire::ParseErrorCode, std::uint64_t> parse_errors;
  std::uint64_t fallbacks = 0;
  std::uint64_t spec_violations = 0;
  std::uint64_t sslv2_connections = 0;

  /// Negotiated protocol versions (wire values; TLS 1.3 drafts collapse to
  /// their wire value; SSLv2 recorded as 0x0002).
  std::map<std::uint16_t, std::uint64_t> negotiated_version;
  /// Negotiated cipher class (Fig. 2).
  std::map<tls::core::CipherClass, std::uint64_t> negotiated_class;
  /// Negotiated AEAD breakdown (Fig. 9).
  std::map<tls::core::AeadKind, std::uint64_t> negotiated_aead;
  /// Negotiated key-exchange family (Fig. 8).
  std::map<tls::core::KexClass, std::uint64_t> negotiated_kex;
  /// Negotiated named group (§6.3.3).
  std::map<std::uint16_t, std::uint64_t> negotiated_group;

  // Client-advertised support, counted per connection (Figs. 3, 6, 7, 10).
  std::uint64_t adv_rc4 = 0, adv_des = 0, adv_3des = 0, adv_aead = 0;
  std::uint64_t adv_cbc = 0, adv_export = 0, adv_anon = 0, adv_null = 0;
  std::uint64_t adv_fs = 0;
  std::uint64_t adv_aes128gcm = 0, adv_aes256gcm = 0, adv_chacha = 0,
                adv_ccm = 0;

  // TLS 1.3 deployment (§6.4).
  std::uint64_t adv_tls13 = 0;
  std::map<std::uint16_t, std::uint64_t> adv_tls13_versions;
  std::uint64_t negotiated_tls13 = 0;

  // Heartbeat (§5.4).
  std::uint64_t heartbeat_offered = 0;
  std::uint64_t heartbeat_negotiated = 0;

  // Extension-deployment tracking (§9: RIE as the renegotiation-attack
  // response, Encrypt-then-MAC as the Lucky-13 response).
  std::uint64_t reneg_info_offered = 0;
  std::uint64_t reneg_info_negotiated = 0;
  std::uint64_t etm_offered = 0;
  std::uint64_t etm_negotiated = 0;
  std::uint64_t ems_offered = 0;
  std::uint64_t ems_negotiated = 0;
  std::uint64_t sni_offered = 0;
  std::uint64_t session_ticket_offered = 0;
  /// Abbreviated (resumed) pre-1.3 handshakes: non-empty client session id
  /// echoed verbatim by the server.
  std::uint64_t resumed = 0;

  /// Fatal alerts observed on failed handshakes, by description.
  std::map<std::uint8_t, std::uint64_t> alerts;

  /// Server selected RC4 although the client offered AEAD suites — the
  /// bankmellat-style outdated-choice misconfiguration of §5.3/§7.3.
  std::uint64_t rc4_despite_aead = 0;

  // Weak-suite negotiation residuals (§5.5, §5.6, §6.1, §6.2).
  std::uint64_t negotiated_3des = 0;
  std::uint64_t negotiated_export = 0;
  std::uint64_t negotiated_anon = 0;
  std::uint64_t negotiated_null = 0;
  std::uint64_t negotiated_null_with_null_null = 0;

  // Fig. 5 accumulators.
  PositionAccumulator pos_aead, pos_cbc, pos_rc4, pos_des, pos_3des;

  /// Distinct fingerprints seen this month with class-support flags
  /// (Fig. 4). Bit 0: RC4, 1: DES, 2: 3DES, 3: AEAD, 4: CBC.
  std::unordered_map<std::string, std::uint8_t> fingerprints;

  /// Connections whose ClientHello parsed — the denominator for every
  /// client-advertised percentage. Quarantined captures carry no features,
  /// so excluding them keeps aggregates unbiased under unbiased loss (and
  /// equal to total when nothing was quarantined).
  [[nodiscard]] std::uint64_t accepted() const { return successful + failures; }

  [[nodiscard]] double pct(std::uint64_t x) const {
    return accepted() == 0 ? 0.0
                           : 100.0 * static_cast<double>(x) /
                                 static_cast<double>(accepted());
  }

  /// Shard merge: adds every counter, folds every keyed map per key, and
  /// ORs fingerprint flag-maps. All integer/flag folds are commutative;
  /// the only floating-point state (PositionAccumulators) merges with one
  /// addition per shard, so merging in a fixed shard order reproduces the
  /// serial-sharded result bit for bit.
  void merge(const MonthlyStats& other);
};

/// Fingerprint support-flag bits used in MonthlyStats::fingerprints.
inline constexpr std::uint8_t kFpRc4 = 1;
inline constexpr std::uint8_t kFpDes = 2;
inline constexpr std::uint8_t kFp3Des = 4;
inline constexpr std::uint8_t kFpAead = 8;
inline constexpr std::uint8_t kFpCbc = 16;

class PassiveMonitor {
 public:
  /// `database` (optional) enables labeled-coverage accounting (Table 2).
  explicit PassiveMonitor(const tls::fp::FingerprintDatabase* database = nullptr)
      : database_(database) {}

  /// Convenience wrapper: serializes the event's hellos to records, then
  /// feeds observe_wire — keeping the byte-level path honest. When a fault
  /// injector is attached, the serialized records pass through it first
  /// (the chaos tap sits between the wire and the monitor).
  void observe(const tls::population::ConnectionEvent& event);

  /// The raw-tap entry point. `server_key_exchange_record` may be empty
  /// (RSA key transport, TLS 1.3, or failed handshakes). Never throws on
  /// hostile input: unparseable ClientHellos quarantine the capture, and
  /// record-level failures elsewhere are counted per stage and code.
  void observe_wire(tls::core::Month month, const tls::core::Date& day,
                    std::span<const std::uint8_t> client_hello_record,
                    std::span<const std::uint8_t> server_hello_record,
                    std::span<const std::uint8_t> server_key_exchange_record,
                    bool success, bool used_fallback = false,
                    std::span<const std::uint8_t> alert_record = {});

  /// Full-transcript entry point: parses both directions' record streams
  /// (hellos, ServerKeyExchange, alerts, ChangeCipherSpec) and applies the
  /// §5.5 establishment criterion — both sides sent ChangeCipherSpec.
  /// Never throws on hostile input: corrupt streams are salvaged up to the
  /// first bad record, one-sided captures are partially harvested, and
  /// captures with no usable hello are quarantined.
  void observe_flights(tls::core::Month month, const tls::core::Date& day,
                       std::span<const std::uint8_t> client_stream,
                       std::span<const std::uint8_t> server_stream);

  /// Attaches a chaos tap: observe() runs every serialized record through
  /// `injector` before ingesting it. nullptr (default) detaches; the
  /// fault-free path is untouched either way.
  void set_fault_injector(tls::faults::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Records an SSLv2 CLIENT-HELLO connection (§5.1 residue).
  void observe_sslv2(tls::core::Month month);

  /// Shard merge: folds another monitor's entire state (monthly stats,
  /// duration tracker, dataset tallies, error taxonomy, quarantine ring)
  /// into this one. Absorbing per-shard monitors in a fixed (month,
  /// shard) order makes the result independent of which threads ran the
  /// shards — the determinism contract of the parallel study runner.
  void absorb(const PassiveMonitor& other);

  [[nodiscard]] const std::map<tls::core::Month, MonthlyStats>& months()
      const {
    return months_;
  }
  [[nodiscard]] const MonthlyStats* month(tls::core::Month m) const;

  /// §4.1 fingerprint lifetime stream (active from fp_start()).
  [[nodiscard]] const tls::fp::DurationTracker& durations() const {
    return durations_;
  }

  /// Month the monitor's fingerprint features became available (§4.0.1:
  /// the Notary gained the fields in Feb 2014; usable from Oct 2014).
  [[nodiscard]] static tls::core::Month fp_start() {
    return tls::core::Month(2014, 10);
  }

  // ---- dataset-wide tallies ----
  [[nodiscard]] std::uint64_t total_connections() const { return total_; }
  [[nodiscard]] std::uint64_t fingerprintable_connections() const {
    return fingerprintable_;
  }
  [[nodiscard]] const std::map<tls::fp::SoftwareClass, std::uint64_t>&
  labeled_connections_by_class() const {
    return labeled_by_class_;
  }
  [[nodiscard]] std::uint64_t labeled_connections() const {
    std::uint64_t n = 0;
    for (const auto& [cls, c] : labeled_by_class_) n += c;
    return n;
  }
  /// Total record parse failures across all stages (legacy name; equals
  /// errors().total()).
  [[nodiscard]] std::uint64_t malformed_hellos() const {
    return taxonomy_.total();
  }

  // ---- error observability ----
  [[nodiscard]] const ErrorTaxonomy& errors() const { return taxonomy_; }
  [[nodiscard]] const QuarantineRing& quarantine() const {
    return quarantine_;
  }

 private:
  MonthlyStats& stats(tls::core::Month m) { return months_[m]; }

  /// Records one parse failure: taxonomy counters, the month's per-code
  /// map, and the offending bytes into the quarantine ring.
  void note_error(tls::core::Month m, IngestStage stage,
                  tls::wire::ParseErrorCode code,
                  std::span<const std::uint8_t> bytes);
  /// Counts a capture rejected outright into the month's partition
  /// (total = successful + failures + quarantined stays exact).
  void quarantine_capture(tls::core::Month m);
  /// Partial harvest of a server-direction-only capture.
  void observe_server_only(tls::core::Month m,
                           const tls::wire::ParsedFlight& flight);

  const tls::fp::FingerprintDatabase* database_;
  std::map<tls::core::Month, MonthlyStats> months_;
  tls::fp::DurationTracker durations_;
  std::uint64_t total_ = 0;
  std::uint64_t fingerprintable_ = 0;
  std::map<tls::fp::SoftwareClass, std::uint64_t> labeled_by_class_;
  ErrorTaxonomy taxonomy_;
  QuarantineRing quarantine_;
  tls::faults::FaultInjector* injector_ = nullptr;
};

/// Flattens the monitor's per-month partition + parse-error counters into
/// rows for tls::analysis::render_loss_table (one row per observed month,
/// chronological).
[[nodiscard]] std::vector<tls::analysis::LossRow> loss_rows(
    const PassiveMonitor& monitor);

}  // namespace tls::notary
