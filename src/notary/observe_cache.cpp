#include "notary/observe_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "fingerprint/md5.hpp"
#include "tlscore/grease.hpp"
#include "wire/extension_codec.hpp"

namespace tls::notary {

using tls::core::CipherSuiteInfo;
using tls::core::ExtensionType;
using tls::wire::ClientHello;
using tls::wire::ParseError;
using tls::wire::ServerHello;

void ClientHelloFeatures::reset() {
  adv_rc4 = adv_des = adv_3des = adv_aead = adv_cbc = false;
  adv_export = adv_anon = adv_null = adv_fs = false;
  adv_aes128gcm = adv_aes256gcm = adv_chacha = adv_ccm = false;
  heartbeat_offered = false;
  reneg_info_offered = etm_offered = ems_offered = false;
  sni_offered = session_ticket_offered = false;
  adv_tls13 = false;
  tls13_versions.clear();
  pos_aead.reset();
  pos_cbc.reset();
  pos_rc4.reset();
  pos_des.reset();
  pos_3des.reset();
  fingerprint_computed = false;
  fp.cipher_suites.clear();
  fp.extensions.clear();
  fp.groups.clear();
  fp.ec_point_formats.clear();
  fp_hash.clear();
  fp_flags = 0;
  label_cls.reset();
}

void build_client_features(const ClientHello& hello,
                           const tls::fp::FingerprintDatabase* db,
                           bool want_fingerprint, ClientHelloFeatures& out,
                           std::vector<tls::wire::ParseErrorCode>& errors,
                           std::string* fp_canonical_out) {
  using namespace tls::core;
  out.reset();

  // ---- one pass over the cipher-suite list ----
  // Replaces the 13 offers() scans, the 5 first_position() scans, the SCSV
  // membership test and the fingerprint's GREASE strip of the byte path.
  // Semantics match exactly: offers() only sees registered non-SCSV suites
  // (GREASE ids are unregistered), positions skip GREASE entries and SCSVs
  // but count unknown ids in the denominator, and the fingerprint keeps
  // every non-GREASE id (SCSVs included).
  std::size_t real_index = 0;
  std::optional<std::size_t> first_aead, first_cbc, first_rc4, first_des,
      first_3des;
  bool scsv_reneg = false;
  for (const auto id : hello.cipher_suites) {
    if (id == suites::TLS_EMPTY_RENEGOTIATION_INFO_SCSV) scsv_reneg = true;
    if (is_grease(id)) continue;
    out.fp.cipher_suites.push_back(id);
    const auto* info = find_cipher_suite(id);
    if (info == nullptr) {
      ++real_index;
      continue;
    }
    if (info->scsv) continue;
    if (is_rc4(*info)) {
      out.adv_rc4 = true;
      if (!first_rc4) first_rc4 = real_index;
    }
    if (is_single_des(*info)) {
      out.adv_des = true;
      if (!first_des) first_des = real_index;
    }
    if (is_3des(*info)) {
      out.adv_3des = true;
      if (!first_3des) first_3des = real_index;
    }
    if (is_aead(*info)) {
      out.adv_aead = true;
      if (!first_aead) first_aead = real_index;
      switch (aead_kind(*info)) {
        case AeadKind::kAes128Gcm: out.adv_aes128gcm = true; break;
        case AeadKind::kAes256Gcm: out.adv_aes256gcm = true; break;
        case AeadKind::kChaCha20Poly1305: out.adv_chacha = true; break;
        case AeadKind::kAesCcm: out.adv_ccm = true; break;
        default: break;
      }
    }
    if (is_cbc(*info)) {
      out.adv_cbc = true;
      if (!first_cbc) first_cbc = real_index;
    }
    if (is_export(*info)) out.adv_export = true;
    if (is_anonymous(*info)) out.adv_anon = true;
    if (is_null_cipher(*info)) out.adv_null = true;
    if (is_forward_secret(*info)) out.adv_fs = true;
    ++real_index;
  }
  if (real_index > 0) {
    const auto rel = [real_index](std::size_t i) {
      return static_cast<double>(i) / static_cast<double>(real_index);
    };
    if (first_aead) out.pos_aead = rel(*first_aead);
    if (first_cbc) out.pos_cbc = rel(*first_cbc);
    if (first_rc4) out.pos_rc4 = rel(*first_rc4);
    if (first_des) out.pos_des = rel(*first_des);
    if (first_3des) out.pos_3des = rel(*first_3des);
  }

  // ---- one pass over the extension list ----
  // find_extension returns the first match, so only the first occurrence of
  // each typed extension is kept for the lazy parses below.
  const tls::wire::Extension* ext_groups = nullptr;
  const tls::wire::Extension* ext_formats = nullptr;
  const tls::wire::Extension* ext_sv = nullptr;
  const tls::wire::Extension* ext_hb = nullptr;
  for (const auto& e : hello.extensions) {
    if (!is_grease(e.type)) out.fp.extensions.push_back(e.type);
    if (e.type == wire_value(ExtensionType::kRenegotiationInfo)) {
      out.reneg_info_offered = true;
    } else if (e.type == wire_value(ExtensionType::kEncryptThenMac)) {
      out.etm_offered = true;
    } else if (e.type == wire_value(ExtensionType::kExtendedMasterSecret)) {
      out.ems_offered = true;
    } else if (e.type == wire_value(ExtensionType::kServerName)) {
      out.sni_offered = true;
    } else if (e.type == wire_value(ExtensionType::kSessionTicket)) {
      out.session_ticket_offered = true;
    } else if (e.type == wire_value(ExtensionType::kSupportedGroups)) {
      if (ext_groups == nullptr) ext_groups = &e;
    } else if (e.type == wire_value(ExtensionType::kEcPointFormats)) {
      if (ext_formats == nullptr) ext_formats = &e;
    } else if (e.type == wire_value(ExtensionType::kSupportedVersions)) {
      if (ext_sv == nullptr) ext_sv = &e;
    } else if (e.type == wire_value(ExtensionType::kHeartbeat)) {
      if (ext_hb == nullptr) ext_hb = &e;
    }
  }
  out.reneg_info_offered = out.reneg_info_offered || scsv_reneg;

  // Lazy-accessor parses, in the byte path's error order: heartbeat,
  // supported_versions, fingerprint extraction.
  if (ext_hb != nullptr) {
    try {
      tls::wire::parse_heartbeat(ext_hb->body);
      out.heartbeat_offered = true;
    } catch (const ParseError& e) {
      errors.push_back(e.code());
    }
  }

  if (ext_sv != nullptr) {
    try {
      for (const auto v :
           tls::wire::parse_supported_versions_client(ext_sv->body)) {
        if (is_grease_version(v)) continue;
        if (v == 0x0304 || (v & 0xff00) == 0x7f00 ||
            (v & 0xff00) == 0x7e00) {
          out.adv_tls13 = true;
          out.tls13_versions.push_back(v);
        }
      }
    } catch (const ParseError& e) {
      errors.push_back(e.code());
    }
  }

  if (want_fingerprint) {
    try {
      if (ext_groups != nullptr) {
        out.fp.groups = tls::wire::parse_supported_groups(ext_groups->body);
        std::erase_if(out.fp.groups,
                      [](std::uint16_t v) { return is_grease(v); });
      }
      if (ext_formats != nullptr) {
        out.fp.ec_point_formats =
            tls::wire::parse_ec_point_formats(ext_formats->body);
      }
      // Past this point nothing can throw, so deferring the digest (batch
      // callers hash many canonicals in SIMD lanes) cannot change which
      // errors the record produces.
      if (fp_canonical_out != nullptr) {
        *fp_canonical_out = out.fp.canonical();
      } else {
        out.fp_hash = tls::fp::Md5::hex(out.fp.canonical());
      }
      out.fingerprint_computed = true;
      if (out.adv_rc4) out.fp_flags |= kFpRc4;
      if (out.adv_des) out.fp_flags |= kFpDes;
      if (out.adv_3des) out.fp_flags |= kFp3Des;
      if (out.adv_aead) out.fp_flags |= kFpAead;
      if (out.adv_cbc) out.fp_flags |= kFpCbc;
      if (fp_canonical_out == nullptr && db != nullptr) {
        if (const auto* label = db->lookup(out.fp_hash)) {
          out.label_cls = label->cls;
        }
      }
    } catch (const ParseError& e) {
      out.fingerprint_computed = false;
      errors.push_back(e.code());
    }
  }
}

void finalize_client_fingerprint(ClientHelloFeatures& out,
                                 const tls::fp::FingerprintDatabase* db,
                                 const std::array<std::uint8_t, 16>& digest) {
  out.fp_hash = tls::fp::to_hex(digest);
  if (db != nullptr) {
    if (const auto* label = db->lookup(out.fp_hash)) {
      out.label_cls = label->cls;
    }
  }
}

bool build_server_features(const ServerHello& hello,
                           ServerHelloFeatures& out) {
  try {
    out.version = hello.negotiated_version();
    out.key_share_group = hello.key_share_group();
    out.heartbeat_present = hello.heartbeat_mode().has_value();
  } catch (const ParseError&) {
    return false;
  }
  out.suite = tls::core::find_cipher_suite(hello.cipher_suite);
  out.reneg = hello.has_extension(ExtensionType::kRenegotiationInfo);
  out.etm = hello.has_extension(ExtensionType::kEncryptThenMac);
  out.ems = hello.has_extension(ExtensionType::kExtendedMasterSecret);
  return true;
}

void CacheSideStats::merge(const CacheSideStats& other) {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  flushes += other.flushes;
  collisions += other.collisions;
}

void ObserveCacheStats::merge(const ObserveCacheStats& other) {
  client.merge(other.client);
  server.merge(other.server);
  bypasses += other.bypasses;
  uncacheable += other.uncacheable;
}

std::uint64_t ObserveCache::fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

bool same_bytes(const std::vector<std::uint8_t>& key,
                std::span<const std::uint8_t> record) {
  return key.size() == record.size() &&
         (key.empty() ||
          std::memcmp(key.data(), record.data(), key.size()) == 0);
}

std::size_t probe_table_size(std::size_t capacity) {
  // Power of two ≥ 2× capacity: load factor ≤ 1/2, so linear probing always
  // finds an empty cell.
  return std::bit_ceil(std::max<std::size_t>(16, capacity * 2));
}

}  // namespace

void ObserveCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  client_slots_.clear();
  server_slots_.clear();
  client_size_ = 0;
  server_size_ = 0;
  const std::size_t cells = probe_table_size(capacity_);
  index_mask_ = cells - 1;
  client_index_.assign(cells, IndexCell{});
  server_index_.assign(cells, IndexCell{});
}

void ObserveCache::flush_client() {
  // Deterministic generation flush: drop everything, start over. No
  // recency bookkeeping means no scheduling-dependent state. Only the
  // probe table is cleared; the slot slab keeps its buffers for reuse.
  stats_.client.evictions += client_size_;
  ++stats_.client.flushes;
  std::fill(client_index_.begin(), client_index_.end(), IndexCell{});
  client_size_ = 0;
}

void ObserveCache::flush_server() {
  stats_.server.evictions += server_size_;
  ++stats_.server.flushes;
  std::fill(server_index_.begin(), server_index_.end(), IndexCell{});
  server_size_ = 0;
}

void ObserveCache::ensure_client_headroom(std::size_t n) {
  if (!enabled() || client_size_ == 0 || client_size_ + n <= capacity_) {
    return;
  }
  flush_client();
}

std::optional<CachedClient> ObserveCache::find_client(
    std::span<const std::uint8_t> record, bool require_fingerprint) {
  if (!enabled()) return std::nullopt;
  return find_client_hashed(record, hash_(record), require_fingerprint);
}

std::optional<CachedClient> ObserveCache::find_client_hashed(
    std::span<const std::uint8_t> record, std::uint64_t hash,
    bool require_fingerprint) {
  if (!enabled()) return std::nullopt;
  const auto tag = static_cast<std::uint32_t>(hash >> 32);
  std::size_t pos = static_cast<std::size_t>(hash) & index_mask_;
  while (client_index_[pos].head1 != 0) {
    if (client_index_[pos].tag == tag) {
      // Chains mix every key that shares this tag and probe path; only
      // entries whose full 64-bit hash matches belong to this key.
      bool saw_hash = false;
      bool byte_match = false;
      for (std::uint32_t idx = client_index_[pos].head1 - 1; idx != kNilSlot;
           idx = client_slots_[idx].next) {
        const auto& entry = client_slots_[idx];
        if (entry.hash != hash) continue;
        saw_hash = true;
        if (!same_bytes(entry.key, record)) continue;
        byte_match = true;
        if (require_fingerprint && !entry.features.fingerprint_computed) {
          // Memoized before the fingerprint era: treat as a miss so the
          // caller rebuilds with the fingerprint and upgrades the entry.
          break;
        }
        ++stats_.client.hits;
        return CachedClient{&entry.hello, &entry.features};
      }
      if (saw_hash && !byte_match) ++stats_.client.collisions;
      break;
    }
    pos = (pos + 1) & index_mask_;
  }
  ++stats_.client.misses;
  return std::nullopt;
}

CachedClient ObserveCache::insert_client(std::span<const std::uint8_t> record,
                                         const tls::wire::ClientHello& hello,
                                         const ClientHelloFeatures& features) {
  return insert_client_hashed(record, hash_(record),
                              tls::wire::ClientHello(hello),
                              ClientHelloFeatures(features));
}

CachedClient ObserveCache::insert_client_hashed(
    std::span<const std::uint8_t> record, std::uint64_t hash,
    tls::wire::ClientHello&& hello, ClientHelloFeatures&& features) {
  const auto tag = static_cast<std::uint32_t>(hash >> 32);
  std::size_t pos = static_cast<std::size_t>(hash) & index_mask_;
  while (client_index_[pos].head1 != 0 && client_index_[pos].tag != tag) {
    pos = (pos + 1) & index_mask_;
  }
  if (client_index_[pos].head1 != 0) {
    for (std::uint32_t idx = client_index_[pos].head1 - 1; idx != kNilSlot;
         idx = client_slots_[idx].next) {
      auto& entry = client_slots_[idx];
      if (entry.hash != hash || !same_bytes(entry.key, record)) continue;
      // Fingerprint-era upgrade of a pre-era entry.
      entry.hello = std::move(hello);
      entry.features = std::move(features);
      return CachedClient{&entry.hello, &entry.features};
    }
  }
  if (client_size_ >= capacity_) {
    flush_client();
    pos = static_cast<std::size_t>(hash) & index_mask_;
    // Freshly flushed table: the first probe cell is free.
  }
  const auto idx = static_cast<std::uint32_t>(client_size_);
  const std::uint32_t next =
      client_index_[pos].head1 == 0 ? kNilSlot : client_index_[pos].head1 - 1;
  if (idx < client_slots_.size()) {
    // Reuse the retired generation's slot. The hello moves (the parse that
    // produced it allocates fresh buffers every record, so copying it here
    // would be pure extra work); the features copy-assign into the slot's
    // retained vector capacity because their producer reuses its scratch
    // buffers and must keep them.
    auto& slot = client_slots_[idx];
    slot.key.assign(record.begin(), record.end());
    slot.hello = std::move(hello);
    slot.features = features;
    slot.hash = hash;
    slot.next = next;
  } else {
    client_slots_.push_back(ClientSlot{{record.begin(), record.end()},
                                       std::move(hello), std::move(features),
                                       hash, next});
  }
  client_index_[pos] = IndexCell{tag, idx + 1};
  ++client_size_;
  ++stats_.client.inserts;
  auto& slot = client_slots_[idx];
  return CachedClient{&slot.hello, &slot.features};
}

std::optional<CachedServer> ObserveCache::find_server(
    std::span<const std::uint8_t> record) {
  if (!enabled()) return std::nullopt;
  return find_server_hashed(record, hash_(record));
}

std::optional<CachedServer> ObserveCache::find_server_hashed(
    std::span<const std::uint8_t> record, std::uint64_t hash) {
  if (!enabled()) return std::nullopt;
  const auto tag = static_cast<std::uint32_t>(hash >> 32);
  std::size_t pos = static_cast<std::size_t>(hash) & index_mask_;
  while (server_index_[pos].head1 != 0) {
    if (server_index_[pos].tag == tag) {
      bool saw_hash = false;
      for (std::uint32_t idx = server_index_[pos].head1 - 1; idx != kNilSlot;
           idx = server_slots_[idx].next) {
        const auto& entry = server_slots_[idx];
        if (entry.hash != hash) continue;
        saw_hash = true;
        if (!same_bytes(entry.key, record)) continue;
        ++stats_.server.hits;
        return CachedServer{&entry.hello, &entry.features};
      }
      if (saw_hash) ++stats_.server.collisions;
      break;
    }
    pos = (pos + 1) & index_mask_;
  }
  ++stats_.server.misses;
  return std::nullopt;
}

CachedServer ObserveCache::insert_server(std::span<const std::uint8_t> record,
                                         const tls::wire::ServerHello& hello,
                                         const ServerHelloFeatures& features) {
  return insert_server_hashed(record, hash_(record),
                              tls::wire::ServerHello(hello), features);
}

CachedServer ObserveCache::insert_server_hashed(
    std::span<const std::uint8_t> record, std::uint64_t hash,
    tls::wire::ServerHello&& hello, const ServerHelloFeatures& features) {
  if (server_size_ >= capacity_) {
    flush_server();
  }
  const auto tag = static_cast<std::uint32_t>(hash >> 32);
  std::size_t pos = static_cast<std::size_t>(hash) & index_mask_;
  while (server_index_[pos].head1 != 0 && server_index_[pos].tag != tag) {
    pos = (pos + 1) & index_mask_;
  }
  const auto idx = static_cast<std::uint32_t>(server_size_);
  const std::uint32_t next =
      server_index_[pos].head1 == 0 ? kNilSlot : server_index_[pos].head1 - 1;
  if (idx < server_slots_.size()) {
    auto& slot = server_slots_[idx];
    slot.key.assign(record.begin(), record.end());
    slot.hello = std::move(hello);
    slot.features = features;
    slot.hash = hash;
    slot.next = next;
  } else {
    server_slots_.push_back(ServerSlot{{record.begin(), record.end()},
                                       std::move(hello), features, hash,
                                       next});
  }
  server_index_[pos] = IndexCell{tag, idx + 1};
  ++server_size_;
  ++stats_.server.inserts;
  auto& slot = server_slots_[idx];
  return CachedServer{&slot.hello, &slot.features};
}

}  // namespace tls::notary
