// Heavy-hitter memoization for the observe pipeline. The paper's central
// empirical fact is extreme skew — 319.3B Notary connections collapse onto
// ~70k distinct fingerprints — so a real tap sees the same ClientHello
// bytes over and over. The ObserveCache exploits that: it memoizes, per
// distinct record, everything observe_wire derives from the bytes alone
// (the parse result, the advertised-feature flags, the Fig. 5 positions,
// the extracted fingerprint + MD5 hash, and the FingerprintDatabase label
// lookup), so repeated records cost one hash + one byte comparison instead
// of a full parse → canonical-string → MD5 → database-lookup pipeline.
//
// Correctness rules (the determinism contract of DESIGN.md §10):
//   * Keys are the raw record bytes. Lookup hashes with a fast 64-bit FNV-1a
//     and then verifies the FULL bytes against every candidate — a 64-bit
//     collision can never alias two distinct records (it just costs a miss,
//     counted in stats().client.collisions).
//   * Only records whose feature extraction produced zero ParseErrors are
//     memoized, so the error-taxonomy and quarantine paths replay
//     identically on every repetition.
//   * Captures touched by a FaultInjector bypass the cache entirely
//     (PassiveMonitor passes cacheable=false; counted in stats().bypasses).
//   * Eviction is a deterministic whole-generation flush when the side
//     reaches capacity — no recency/frequency state that could depend on
//     thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fingerprint/database.hpp"
#include "fingerprint/fingerprint.hpp"
#include "tlscore/cipher_suites.hpp"
#include "wire/client_hello.hpp"
#include "wire/errors.hpp"
#include "wire/server_hello.hpp"

namespace tls::notary {

/// Fingerprint support-flag bits used in MonthlyStats::fingerprints.
/// Bit 0: RC4, 1: DES, 2: 3DES, 3: AEAD, 4: CBC.
inline constexpr std::uint8_t kFpRc4 = 1;
inline constexpr std::uint8_t kFpDes = 2;
inline constexpr std::uint8_t kFp3Des = 4;
inline constexpr std::uint8_t kFpAead = 8;
inline constexpr std::uint8_t kFpCbc = 16;

/// Everything the monitor harvests from a ClientHello record that is a pure
/// function of the bytes (plus the immutable fingerprint database).
struct ClientHelloFeatures {
  // Advertised cipher classes (Figs. 3, 6, 7, 10).
  bool adv_rc4 = false, adv_des = false, adv_3des = false, adv_aead = false;
  bool adv_cbc = false, adv_export = false, adv_anon = false,
       adv_null = false;
  bool adv_fs = false;
  bool adv_aes128gcm = false, adv_aes256gcm = false, adv_chacha = false,
       adv_ccm = false;

  bool heartbeat_offered = false;
  bool reneg_info_offered = false, etm_offered = false, ems_offered = false;
  bool sni_offered = false, session_ticket_offered = false;

  // TLS 1.3 advertisement (§6.4); one entry per matching supported_versions
  // element, duplicates preserved.
  bool adv_tls13 = false;
  std::vector<std::uint16_t> tls13_versions;

  // Fig. 5 relative first positions.
  std::optional<double> pos_aead, pos_cbc, pos_rc4, pos_des, pos_3des;

  // Fingerprint stream (§4). Computed only when the observation month is in
  // the fingerprintable era; fingerprint_computed distinguishes "not
  // requested" from "extraction failed" (the latter also records an error).
  bool fingerprint_computed = false;
  tls::fp::Fingerprint fp;
  std::string fp_hash;
  std::uint8_t fp_flags = 0;
  std::optional<tls::fp::SoftwareClass> label_cls;

  /// Clears to the freshly-constructed state while keeping vector/string
  /// capacity — the monitor reuses one instance as build scratch.
  void reset();
};

/// The memoizable server-side derivations. Only built when every lazy
/// accessor succeeds (`build_server_features` returns true); records whose
/// accessors throw stay on the original guarded harvest path so the error
/// bookkeeping replays unchanged.
struct ServerHelloFeatures {
  std::uint16_t version = 0;
  std::optional<std::uint16_t> key_share_group;
  bool heartbeat_present = false;
  bool reneg = false, etm = false, ems = false;
  /// Registry entry for the negotiated suite (static storage; stable).
  const tls::core::CipherSuiteInfo* suite = nullptr;
};

/// Derives every client-side feature from one parsed hello. Lazy-accessor
/// ParseErrors are appended to `errors` in the same order the byte path
/// notes them (heartbeat, supported_versions, fingerprint extraction); a
/// non-empty `errors` marks the record uncacheable. Single pass over the
/// cipher-suite and extension lists.
///
/// `fp_canonical_out` (optional) defers the MD5 digest for batch hashing:
/// when non-null and the fingerprint extracts cleanly, the canonical string
/// is written there and `out` is left with fingerprint_computed=true but an
/// empty fp_hash and no label — the caller must digest the canonical (e.g.
/// via tls::fp::md5_batch) and call finalize_client_fingerprint before the
/// features are applied or cached. Nothing after the canonical is built can
/// throw, so deferral never changes the error stream.
void build_client_features(const tls::wire::ClientHello& hello,
                           const tls::fp::FingerprintDatabase* db,
                           bool want_fingerprint, ClientHelloFeatures& out,
                           std::vector<tls::wire::ParseErrorCode>& errors,
                           std::string* fp_canonical_out = nullptr);

/// Completes a deferred fingerprint (see build_client_features): sets
/// fp_hash from the digest of the canonical string and resolves the
/// database label. Byte-identical to the non-deferred path.
void finalize_client_fingerprint(ClientHelloFeatures& out,
                                 const tls::fp::FingerprintDatabase* db,
                                 const std::array<std::uint8_t, 16>& digest);

/// Derives the server-side feature set; returns false (out unspecified)
/// when any lazy accessor throws — such records are never memoized.
bool build_server_features(const tls::wire::ServerHello& hello,
                           ServerHelloFeatures& out);

/// Hit/miss accounting for one cache side, merged across shards with the
/// same commutative-add contract as every other monitor counter.
struct CacheSideStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t flushes = 0;
  /// 64-bit key matches whose full bytes differed (distinct records forced
  /// onto one key) — proof the verification layer is load-bearing.
  std::uint64_t collisions = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  void merge(const CacheSideStats& other);
};

struct ObserveCacheStats {
  CacheSideStats client;
  CacheSideStats server;
  /// Captures routed around the cache because a FaultInjector touched them.
  std::uint64_t bypasses = 0;
  /// Records that produced ParseErrors during feature extraction and were
  /// therefore not memoized.
  std::uint64_t uncacheable = 0;

  void merge(const ObserveCacheStats& other);
};

struct CachedClient {
  const tls::wire::ClientHello* hello = nullptr;
  const ClientHelloFeatures* features = nullptr;
};

struct CachedServer {
  const tls::wire::ServerHello* hello = nullptr;
  const ServerHelloFeatures* features = nullptr;
};

class ObserveCache {
 public:
  /// Injectable for tests that force 64-bit collisions.
  using HashFn = std::uint64_t (*)(std::span<const std::uint8_t>);

  /// Sized so one generation's slab (~600B/entry/side) stays resident in a
  /// modest last-level cache: in the all-miss regime every insert writes a
  /// full entry, and a slab that spills to DRAM costs more than the parse it
  /// replaces. The paper's skew concentrates real traffic on a few hundred
  /// distinct records, comfortably inside 1024; workloads with wider working
  /// sets can raise StudyOptions::observe_cache_entries.
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit ObserveCache(std::size_t capacity = kDefaultCapacity) {
    set_capacity(capacity);
  }

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Live entries (client + server sides).
  [[nodiscard]] std::size_t size() const {
    return client_size_ + server_size_;
  }

  /// Capacity applies per side; 0 disables the cache. Changing the capacity
  /// drops all entries (without touching eviction stats) and resizes the
  /// probe tables.
  void set_capacity(std::size_t capacity);
  void set_hash_for_test(HashFn hash) { hash_ = hash; }

  /// Looks up a client record. `require_fingerprint` demands an entry whose
  /// fingerprint era matches the observation month: an entry memoized in
  /// the pre-fingerprint era reads as a miss so the caller rebuilds (and
  /// insert_client upgrades it in place).
  [[nodiscard]] std::optional<CachedClient> find_client(
      std::span<const std::uint8_t> record, bool require_fingerprint);
  CachedClient insert_client(std::span<const std::uint8_t> record,
                             const tls::wire::ClientHello& hello,
                             const ClientHelloFeatures& features);

  [[nodiscard]] std::optional<CachedServer> find_server(
      std::span<const std::uint8_t> record);
  CachedServer insert_server(std::span<const std::uint8_t> record,
                             const tls::wire::ServerHello& hello,
                             const ServerHelloFeatures& features);

  // ---- batched-path variants ----
  // The batch observe path hashes a whole generation of records in SIMD
  // lanes up front (tls::fp::fnv1a64_batch) and hands the hash back in, so
  // each record is hashed exactly once across find + insert; the insert
  // overloads take ownership instead of deep-copying the parsed hello.

  /// True while the cache runs its production hash — the precondition for
  /// feeding it hashes from fnv1a64_batch (tests may inject another HashFn).
  [[nodiscard]] bool uses_default_hash() const { return hash_ == &fnv1a64; }
  [[nodiscard]] std::uint64_t hash_bytes(
      std::span<const std::uint8_t> bytes) const {
    return hash_(bytes);
  }

  /// Pre-flushes the client side so that up to `n` subsequent inserts
  /// cannot trigger a generation flush. Batch callers hold CachedClient
  /// pointers from a find phase across an insert phase; a flush between the
  /// two would dangle them. (If the flush leaves the side empty and `n`
  /// still exceeds capacity, every batched find misses, so no pointer can
  /// outlive a later flush either way.)
  void ensure_client_headroom(std::size_t n);

  [[nodiscard]] std::optional<CachedClient> find_client_hashed(
      std::span<const std::uint8_t> record, std::uint64_t hash,
      bool require_fingerprint);
  CachedClient insert_client_hashed(std::span<const std::uint8_t> record,
                                    std::uint64_t hash,
                                    tls::wire::ClientHello&& hello,
                                    ClientHelloFeatures&& features);

  [[nodiscard]] std::optional<CachedServer> find_server_hashed(
      std::span<const std::uint8_t> record, std::uint64_t hash);
  CachedServer insert_server_hashed(std::span<const std::uint8_t> record,
                                    std::uint64_t hash,
                                    tls::wire::ServerHello&& hello,
                                    const ServerHelloFeatures& features);

  void count_bypass() { ++stats_.bypasses; }
  void count_uncacheable() { ++stats_.uncacheable; }

  [[nodiscard]] const ObserveCacheStats& stats() const { return stats_; }
  ObserveCacheStats& stats() { return stats_; }

  /// FNV-1a over the record bytes — fast, deterministic, seedless.
  static std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

 private:
  // Storage layout, tuned for the whole-generation-flush lifecycle. Entries
  // live in a slot slab (std::deque — pointers into slots stay valid while
  // the slab grows) and are addressed through a flat open-addressed probe
  // table of (hash, head) cells; distinct records sharing a 64-bit key form
  // an intrusive chain via ClientSlot::next, and every chain hit is still
  // verified against the full record bytes before use. A generation flush
  // just zeroes the probe table and resets the live count: the slabs keep
  // their slots, and the next generation reuses them index-for-index by
  // assigning into the retained vector/string capacity. In the
  // all-miss regime (every record distinct) this makes insert + flush
  // nearly allocation-free instead of ~10 heap round-trips per record.
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct ClientSlot {
    std::vector<std::uint8_t> key;
    tls::wire::ClientHello hello;
    ClientHelloFeatures features;
    std::uint64_t hash = 0;
    std::uint32_t next = kNilSlot;
  };
  struct ServerSlot {
    std::vector<std::uint8_t> key;
    tls::wire::ServerHello hello;
    ServerHelloFeatures features;
    std::uint64_t hash = 0;
    std::uint32_t next = kNilSlot;
  };
  /// One probe-table cell: head1 is the 1-based head slot of a chain
  /// (0 == empty cell). The cell stores only the high 32 bits of the 64-bit
  /// key as a tag — 8-byte cells keep both tables L2-resident — and chains
  /// are walked comparing the full hash stored in each slot, so distinct
  /// keys that share a tag and a probe path just share a chain. Probe
  /// position comes from the low hash bits; table size is a power of two
  /// ≥ 2× capacity, so the load factor never exceeds 1/2 and linear probing
  /// terminates.
  struct IndexCell {
    std::uint32_t tag = 0;
    std::uint32_t head1 = 0;
  };

  void flush_client();
  void flush_server();

  std::deque<ClientSlot> client_slots_;
  std::deque<ServerSlot> server_slots_;
  std::vector<IndexCell> client_index_;
  std::vector<IndexCell> server_index_;
  std::size_t index_mask_ = 0;
  std::size_t client_size_ = 0;
  std::size_t server_size_ = 0;
  std::size_t capacity_ = 0;
  HashFn hash_ = &fnv1a64;
  ObserveCacheStats stats_;
};

}  // namespace tls::notary
