#include "notary/quarantine.hpp"

namespace tls::notary {

std::string_view ingest_stage_name(IngestStage stage) {
  switch (stage) {
    case IngestStage::kClientFlight: return "client_flight";
    case IngestStage::kServerFlight: return "server_flight";
    case IngestStage::kClientHello: return "client_hello";
    case IngestStage::kServerHello: return "server_hello";
    case IngestStage::kServerKeyExchange: return "server_key_exchange";
    case IngestStage::kAlert: return "alert";
  }
  return "?";
}

void QuarantineRing::push(IngestStage stage, tls::wire::ParseErrorCode code,
                          tls::core::Month month,
                          std::span<const std::uint8_t> bytes) {
  ++total_pushed_;
  if (capacity_ == 0) return;
  QuarantinedRecord rec;
  rec.stage = stage;
  rec.code = code;
  rec.month = month;
  const std::size_t n = std::min(bytes.size(), prefix_limit_);
  rec.prefix.assign(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n));
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(rec));
  } else {
    entries_[head_] = std::move(rec);
    head_ = (head_ + 1) % entries_.size();
  }
}

void QuarantineRing::absorb(const QuarantineRing& other) {
  const std::size_t n = other.size();
  for (std::size_t i = 0; i < n; ++i) {
    const QuarantinedRecord& rec = other[i];
    push(rec.stage, rec.code, rec.month, rec.prefix);
  }
  // push() counted the re-pushed entries; add only what `other` pushed
  // beyond the entries it still retained.
  total_pushed_ += other.total_pushed_ - n;
}

}  // namespace tls::notary
