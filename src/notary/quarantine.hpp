// Error observability for the passive monitor: a per-stage × per-code
// taxonomy of parse failures (replacing the old single "malformed" scalar)
// and a bounded quarantine ring keeping the first bytes of the most recent
// offending records for post-mortem inspection — the loss-accounting side
// of a credible longitudinal measurement.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tlscore/dates.hpp"
#include "wire/errors.hpp"

namespace tls::notary {

/// Where in the ingestion pipeline a record failed to parse.
enum class IngestStage : std::uint8_t {
  kClientFlight,       // client-direction record stream (record layer)
  kServerFlight,       // server-direction record stream (record layer)
  kClientHello,
  kServerHello,
  kServerKeyExchange,
  kAlert,
};

inline constexpr std::size_t kIngestStageCount = 6;

std::string_view ingest_stage_name(IngestStage stage);

/// Per-stage × per-ParseErrorCode failure counters.
class ErrorTaxonomy {
 public:
  void record(IngestStage stage, tls::wire::ParseErrorCode code) {
    ++counts_[index(stage)][static_cast<std::size_t>(code)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t count(IngestStage stage,
                                    tls::wire::ParseErrorCode code) const {
    return counts_[index(stage)][static_cast<std::size_t>(code)];
  }
  [[nodiscard]] std::uint64_t stage_total(IngestStage stage) const {
    std::uint64_t n = 0;
    for (const auto c : counts_[index(stage)]) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t code_total(tls::wire::ParseErrorCode code) const {
    std::uint64_t n = 0;
    for (const auto& row : counts_) n += row[static_cast<std::size_t>(code)];
    return n;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Bulk fold (snapshot restore): n occurrences at once; equivalent to n
  /// record() calls.
  void add(IngestStage stage, tls::wire::ParseErrorCode code,
           std::uint64_t n) {
    counts_[index(stage)][static_cast<std::size_t>(code)] += n;
    total_ += n;
  }

  /// Adds another taxonomy's counters into this one (shard merge).
  void merge(const ErrorTaxonomy& other) {
    for (std::size_t s = 0; s < kIngestStageCount; ++s) {
      for (std::size_t c = 0; c < tls::wire::kParseErrorCodeCount; ++c) {
        counts_[s][c] += other.counts_[s][c];
      }
    }
    total_ += other.total_;
  }

 private:
  static std::size_t index(IngestStage s) {
    return static_cast<std::size_t>(s);
  }

  std::array<std::array<std::uint64_t, tls::wire::kParseErrorCodeCount>,
             kIngestStageCount>
      counts_{};
  std::uint64_t total_ = 0;
};

/// One quarantined record: where it failed, why, when, and its head bytes.
struct QuarantinedRecord {
  IngestStage stage = IngestStage::kClientHello;
  tls::wire::ParseErrorCode code = tls::wire::ParseErrorCode::kTruncated;
  tls::core::Month month{2012, 1};
  std::vector<std::uint8_t> prefix;  // first bytes of the offending input
};

/// Fixed-capacity ring of the most recent quarantined records. Memory is
/// bounded regardless of how hostile the tap gets: capacity entries of at
/// most prefix_limit bytes each.
class QuarantineRing {
 public:
  explicit QuarantineRing(std::size_t capacity = 64,
                          std::size_t prefix_limit = 48)
      : capacity_(capacity), prefix_limit_(prefix_limit) {}

  void push(IngestStage stage, tls::wire::ParseErrorCode code,
            tls::core::Month month, std::span<const std::uint8_t> bytes);

  /// Shard merge: re-pushes `other`'s retained entries into this ring,
  /// oldest first, and folds its total_pushed. The merged ring is a
  /// deterministic function of the absorb call order (callers absorb
  /// shards in (month, shard) order), not of thread scheduling. Entries
  /// evicted from `other` before the merge stay evicted — the ring is a
  /// bounded sample, not a ledger.
  void absorb(const QuarantineRing& other);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total records ever quarantined (>= size() once the ring wraps).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// Snapshot restore: accounts for records that were pushed but already
  /// evicted when the ring was serialized (re-pushing the retained entries
  /// only restores size() of them).
  void add_unretained(std::uint64_t n) { total_pushed_ += n; }

  /// Entries oldest-first; index 0 is the oldest still retained.
  [[nodiscard]] const QuarantinedRecord& operator[](std::size_t i) const {
    return entries_[(head_ + i) % entries_.size()];
  }

 private:
  std::size_t capacity_;
  std::size_t prefix_limit_;
  std::vector<QuarantinedRecord> entries_;
  std::size_t head_ = 0;  // oldest entry once full
  std::uint64_t total_pushed_ = 0;
};

}  // namespace tls::notary
