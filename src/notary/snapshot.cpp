#include "notary/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <string>

#include "wire/buffer.hpp"

namespace tls::notary {

namespace {

using tls::wire::ByteReader;
using tls::wire::ByteWriter;
using tls::wire::ParseError;
using tls::wire::ParseErrorCode;

// One past the largest SoftwareClass value (kMalware).
constexpr std::uint8_t kSoftwareClassCount = 9;
// Rejects month indices outside any plausible study window before they
// turn into absurd map keys.
constexpr std::uint32_t kMaxMonthIndex = 12u * 3000u;

std::uint32_t checked_month_index(ByteReader& r) {
  const std::uint32_t index = r.u32();
  if (index > kMaxMonthIndex) {
    throw ParseError(ParseErrorCode::kBadValue,
                     "snapshot month index " + std::to_string(index));
  }
  return index;
}

tls::core::Month month_from_index(std::uint32_t index) {
  return tls::core::Month(static_cast<int>(index / 12),
                          static_cast<int>(index % 12) + 1);
}

template <typename Enum>
Enum checked_enum(ByteReader& r, std::size_t count, const char* what) {
  const std::uint8_t v = r.u8();
  if (v >= count) {
    throw ParseError(ParseErrorCode::kBadValue,
                     std::string("snapshot ") + what + " value " +
                         std::to_string(v));
  }
  return static_cast<Enum>(v);
}

// The fixed u64 counters of MonthlyStats in declaration order. Shared by
// encode and decode so the two sides can never disagree on the layout.
template <typename Stats, typename Fn>
void for_each_counter(Stats& s, Fn&& fn) {
  for (auto* p :
       {&s.total, &s.successful, &s.failures, &s.quarantined,
        &s.one_sided_client, &s.one_sided_server, &s.fallbacks,
        &s.spec_violations, &s.sslv2_connections, &s.adv_rc4, &s.adv_des,
        &s.adv_3des, &s.adv_aead, &s.adv_cbc, &s.adv_export, &s.adv_anon,
        &s.adv_null, &s.adv_fs, &s.adv_aes128gcm, &s.adv_aes256gcm,
        &s.adv_chacha, &s.adv_ccm, &s.adv_tls13, &s.negotiated_tls13,
        &s.heartbeat_offered, &s.heartbeat_negotiated, &s.reneg_info_offered,
        &s.reneg_info_negotiated, &s.etm_offered, &s.etm_negotiated,
        &s.ems_offered, &s.ems_negotiated, &s.sni_offered,
        &s.session_ticket_offered, &s.resumed, &s.rc4_despite_aead,
        &s.negotiated_3des, &s.negotiated_export, &s.negotiated_anon,
        &s.negotiated_null, &s.negotiated_null_with_null_null}) {
    fn(*p);
  }
}

template <typename Stats, typename Fn>
void for_each_position(Stats& s, Fn&& fn) {
  for (auto* p : {&s.pos_aead, &s.pos_cbc, &s.pos_rc4, &s.pos_des,
                  &s.pos_3des}) {
    fn(*p);
  }
}

void write_hash(ByteWriter& w, const std::string& hash) {
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(hash.size(), 255)));
  w.bytes({reinterpret_cast<const std::uint8_t*>(hash.data()),
           std::min<std::size_t>(hash.size(), 255)});
}

std::string read_hash(ByteReader& r) {
  const auto raw = r.length_prefixed_u8();
  return {reinterpret_cast<const char*>(raw.data()), raw.size()};
}

template <typename Key, typename WriteKey>
void write_counts(ByteWriter& w, const std::map<Key, std::uint64_t>& counts,
                  WriteKey&& write_key) {
  w.u32(static_cast<std::uint32_t>(counts.size()));
  for (const auto& [key, n] : counts) {
    write_key(key);
    w.u64(n);
  }
}

}  // namespace

struct MonitorSnapshotCodec {
  static void encode_stats(ByteWriter& w, const MonthlyStats& s) {
    for_each_counter(s, [&](const std::uint64_t& v) { w.u64(v); });
    for_each_position(s, [&](const PositionAccumulator& p) {
      w.u64(std::bit_cast<std::uint64_t>(p.sum));
      w.u64(p.n);
    });

    // Sorted emission keeps the encoding a pure function of the state even
    // though the flag map is an unordered container.
    std::vector<const std::string*> hashes;
    hashes.reserve(s.fingerprints.size());
    for (const auto& [hash, flags] : s.fingerprints) hashes.push_back(&hash);
    std::sort(hashes.begin(), hashes.end(),
              [](const auto* a, const auto* b) { return *a < *b; });
    w.u32(static_cast<std::uint32_t>(hashes.size()));
    for (const auto* hash : hashes) {
      write_hash(w, *hash);
      w.u8(s.fingerprints.at(*hash));
    }

    write_counts(w, s.parse_errors(),
                 [&](ParseErrorCode c) { w.u8(static_cast<std::uint8_t>(c)); });
    write_counts(w, s.negotiated_version(), [&](std::uint16_t v) { w.u16(v); });
    write_counts(w, s.negotiated_class(), [&](tls::core::CipherClass c) {
      w.u8(static_cast<std::uint8_t>(c));
    });
    write_counts(w, s.negotiated_aead(), [&](tls::core::AeadKind k) {
      w.u8(static_cast<std::uint8_t>(k));
    });
    write_counts(w, s.negotiated_kex(), [&](tls::core::KexClass k) {
      w.u8(static_cast<std::uint8_t>(k));
    });
    write_counts(w, s.negotiated_group(), [&](std::uint16_t g) { w.u16(g); });
    write_counts(w, s.adv_tls13_versions(), [&](std::uint16_t v) { w.u16(v); });
    write_counts(w, s.alerts(), [&](std::uint8_t a) { w.u8(a); });
  }

  static void decode_stats(ByteReader& r, MonthlyStats& s) {
    for_each_counter(s, [&](std::uint64_t& v) { v = r.u64(); });
    for_each_position(s, [&](PositionAccumulator& p) {
      p.sum = std::bit_cast<double>(r.u64());
      p.n = r.u64();
    });

    const std::uint32_t fp_count = r.u32();
    for (std::uint32_t i = 0; i < fp_count; ++i) {
      const std::string hash = read_hash(r);
      s.fingerprints[hash] |= r.u8();
    }

    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto code = checked_enum<ParseErrorCode>(
          r, tls::wire::kParseErrorCodeCount, "parse error code");
      s.parse_error_counts_.add(code, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const std::uint16_t v = r.u16();
      s.version_counts_.add(v, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto c = checked_enum<tls::core::CipherClass>(
          r, tls::core::kCipherClassCount, "cipher class");
      s.class_counts_.add(c, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto k = checked_enum<tls::core::AeadKind>(
          r, tls::core::kAeadKindCount, "aead kind");
      s.aead_counts_.add(k, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto k = checked_enum<tls::core::KexClass>(
          r, tls::core::kKexClassCount, "kex class");
      s.kex_counts_.add(k, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const std::uint16_t g = r.u16();
      s.group_counts_.add(g, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const std::uint16_t v = r.u16();
      s.tls13_version_counts_.add(v, r.u64());
    }
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const std::uint8_t a = r.u8();
      s.alert_counts_.add(a, r.u64());
    }
  }

  static void encode(const PassiveMonitor& mon, ByteWriter& w) {
    w.u32(kMonitorSnapshotVersion);

    w.u32(static_cast<std::uint32_t>(mon.months_.size()));
    for (const auto& [m, s] : mon.months_) {
      w.u32(static_cast<std::uint32_t>(m.index()));
      encode_stats(w, s);
    }

    const auto& lifetimes = mon.durations_.lifetimes();
    std::vector<const std::string*> hashes;
    hashes.reserve(lifetimes.size());
    for (const auto& [hash, life] : lifetimes) hashes.push_back(&hash);
    std::sort(hashes.begin(), hashes.end(),
              [](const auto* a, const auto* b) { return *a < *b; });
    w.u32(static_cast<std::uint32_t>(hashes.size()));
    for (const auto* hash : hashes) {
      const auto& life = lifetimes.at(*hash);
      write_hash(w, *hash);
      w.u64(static_cast<std::uint64_t>(life.first_day));
      w.u64(static_cast<std::uint64_t>(life.last_day));
      w.u64(life.connections);
    }

    w.u64(mon.total_);
    w.u64(mon.fingerprintable_);
    write_counts(w, mon.labeled_by_class_, [&](tls::fp::SoftwareClass c) {
      w.u8(static_cast<std::uint8_t>(c));
    });

    for (std::size_t stage = 0; stage < kIngestStageCount; ++stage) {
      for (std::size_t code = 0; code < tls::wire::kParseErrorCodeCount;
           ++code) {
        w.u64(mon.taxonomy_.count(static_cast<IngestStage>(stage),
                                  static_cast<ParseErrorCode>(code)));
      }
    }

    const auto& ring = mon.quarantine_;
    w.u32(static_cast<std::uint32_t>(ring.size()));
    for (std::size_t i = 0; i < ring.size(); ++i) {  // oldest-first
      const QuarantinedRecord& rec = ring[i];
      w.u8(static_cast<std::uint8_t>(rec.stage));
      w.u8(static_cast<std::uint8_t>(rec.code));
      w.u32(static_cast<std::uint32_t>(rec.month.index()));
      w.u8(static_cast<std::uint8_t>(rec.prefix.size()));
      w.bytes(rec.prefix);
    }
    w.u64(ring.total_pushed());

    const ObserveCacheStats& cs = mon.cache_.stats();
    for (const CacheSideStats* side : {&cs.client, &cs.server}) {
      w.u64(side->hits);
      w.u64(side->misses);
      w.u64(side->inserts);
      w.u64(side->evictions);
      w.u64(side->flushes);
      w.u64(side->collisions);
    }
    w.u64(cs.bypasses);
    w.u64(cs.uncacheable);
  }

  static PassiveMonitor decode(ByteReader& r,
                               const tls::fp::FingerprintDatabase* database) {
    const std::uint32_t version = r.u32();
    if (version != kMonitorSnapshotVersion) {
      throw ParseError(ParseErrorCode::kUnsupported,
                       "monitor snapshot version " + std::to_string(version));
    }
    PassiveMonitor mon(database);

    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto m = month_from_index(checked_month_index(r));
      decode_stats(r, mon.months_[m]);
    }

    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const std::string hash = read_hash(r);
      tls::fp::DurationTracker::Lifetime life;
      life.first_day = static_cast<std::int64_t>(r.u64());
      life.last_day = static_cast<std::int64_t>(r.u64());
      life.connections = r.u64();
      if (life.last_day < life.first_day) {
        throw ParseError(ParseErrorCode::kBadValue,
                         "snapshot lifetime ends before it starts");
      }
      mon.durations_.add_lifetime(hash, life);
    }

    mon.total_ = r.u64();
    mon.fingerprintable_ = r.u64();
    for (std::uint32_t i = r.u32(); i > 0; --i) {
      const auto cls = checked_enum<tls::fp::SoftwareClass>(
          r, kSoftwareClassCount, "software class");
      mon.labeled_by_class_[cls] += r.u64();
    }

    for (std::size_t stage = 0; stage < kIngestStageCount; ++stage) {
      for (std::size_t code = 0; code < tls::wire::kParseErrorCodeCount;
           ++code) {
        const std::uint64_t n = r.u64();
        if (n > 0) {
          mon.taxonomy_.add(static_cast<IngestStage>(stage),
                            static_cast<ParseErrorCode>(code), n);
        }
      }
    }

    const std::uint32_t ring_count = r.u32();
    for (std::uint32_t i = 0; i < ring_count; ++i) {
      const auto stage =
          checked_enum<IngestStage>(r, kIngestStageCount, "ingest stage");
      const auto code = checked_enum<ParseErrorCode>(
          r, tls::wire::kParseErrorCodeCount, "parse error code");
      const auto m = month_from_index(checked_month_index(r));
      const auto prefix = r.length_prefixed_u8();
      mon.quarantine_.push(stage, code, m, prefix);
    }
    const std::uint64_t total_pushed = r.u64();
    if (total_pushed < mon.quarantine_.total_pushed()) {
      throw ParseError(ParseErrorCode::kBadValue,
                       "snapshot ring total_pushed below retained count");
    }
    mon.quarantine_.add_unretained(total_pushed -
                                   mon.quarantine_.total_pushed());

    ObserveCacheStats& cs = mon.cache_.stats();
    for (CacheSideStats* side : {&cs.client, &cs.server}) {
      side->hits = r.u64();
      side->misses = r.u64();
      side->inserts = r.u64();
      side->evictions = r.u64();
      side->flushes = r.u64();
      side->collisions = r.u64();
    }
    cs.bypasses = r.u64();
    cs.uncacheable = r.u64();
    return mon;
  }
};

std::vector<std::uint8_t> encode_monitor_state(const PassiveMonitor& monitor) {
  ByteWriter w;
  MonitorSnapshotCodec::encode(monitor, w);
  return w.take();
}

PassiveMonitor decode_monitor_state(
    std::span<const std::uint8_t> bytes,
    const tls::fp::FingerprintDatabase* database) {
  ByteReader r(bytes);
  PassiveMonitor mon = MonitorSnapshotCodec::decode(r, database);
  r.expect_empty("monitor snapshot");
  return mon;
}

}  // namespace tls::notary
