// Snapshot codec for the passive monitor: serializes the complete
// absorb-state of one shard monitor — monthly stats (every counter, the
// Fig. 5 position accumulators bit-exactly, the fingerprint flag maps),
// the duration tracker, dataset tallies, the error taxonomy, the
// quarantine ring, and observe-cache statistics — into a deterministic
// byte string, and rebuilds a monitor whose absorb() behaviour is
// indistinguishable from the original's. This is the payload format of
// the crash-safe checkpoint journal (core/checkpoint.hpp): a journaled
// (month, shard) task is replayed by decoding its snapshot instead of
// regenerating its traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "notary/monitor.hpp"

namespace tls::notary {

/// Monitor-state wire format version. Bumped on any layout change; decode
/// rejects every other version with ParseError(kUnsupported), which the
/// journal treats as a corrupt frame (quarantine + recompute).
inline constexpr std::uint32_t kMonitorSnapshotVersion = 1;

/// Serializes `monitor`'s absorb-state. Deterministic: unordered
/// containers are emitted in sorted key order, doubles as their exact bit
/// patterns, so the same state always yields the same bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_monitor_state(
    const PassiveMonitor& monitor);

/// Rebuilds a monitor from encode_monitor_state bytes. Absorbing the
/// result is bit-identical to absorbing the original monitor (position
/// sums round-trip exactly). Throws tls::wire::ParseError on truncated,
/// malformed, or version-mismatched input — all reads are bounds-checked,
/// so hostile bytes can never read out of range.
[[nodiscard]] PassiveMonitor decode_monitor_state(
    std::span<const std::uint8_t> bytes,
    const tls::fp::FingerprintDatabase* database = nullptr);

}  // namespace tls::notary
