#include "population/market.hpp"

#include <cmath>
#include <stdexcept>

namespace tls::population {

using tls::clients::ClientProfile;
using tls::core::AnchorSeries;
using tls::core::Month;

double UpdateLagModel::updated_fraction(double months) const {
  if (months <= 0) return 0.0;
  return (1.0 - abandoned_fraction) *
             (1.0 - std::exp2(-months / half_life_months)) +
         abandoned_fraction *
             (1.0 - std::exp2(-months / retirement_half_life_months));
}

std::vector<double> version_shares(const ClientProfile& profile, Month m,
                                   const UpdateLagModel& lag) {
  const std::size_t n = profile.versions.size();
  std::vector<double> shares(n, 0.0);
  if (n == 0) return shares;

  const auto age_of = [&](const tls::core::Date& release) {
    return static_cast<double>(m - Month(release)) +
           // sub-month precision from the release day
           (15.0 - release.day()) / 30.0;
  };

  const double first_age = age_of(profile.versions.front().release);
  if (first_age < 0) return shares;  // nothing released yet

  // Version i serves users whose lag falls between the age of version i+1
  // and the age of version i.
  double assigned = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double this_age = age_of(profile.versions[i].release);
    if (this_age < 0) break;
    double next_age = 0.0;
    if (i + 1 < n) {
      next_age = age_of(profile.versions[i + 1].release);
      if (next_age < 0) next_age = 0.0;
    }
    const double share = lag.updated_fraction(this_age) -
                         lag.updated_fraction(next_age);
    shares[i] = std::max(0.0, share);
    assigned += shares[i];
  }
  // Abandoned installs (and the not-yet-updated remainder) stay on the
  // oldest version.
  shares[0] += std::max(0.0, 1.0 - assigned);
  return shares;
}

MarketModel::Pick MarketModel::sample(Month m, tls::core::Rng& rng) const {
  double total = 0;
  for (const auto& e : entries_) {
    if (e.profile->config_at(m.first_day()) != nullptr) {
      total += e.traffic_share.at(m);
    }
  }
  if (total <= 0) return {};
  double x = rng.uniform() * total;
  const MarketEntry* chosen = nullptr;
  for (const auto& e : entries_) {
    if (e.profile->config_at(m.first_day()) == nullptr) continue;
    x -= e.traffic_share.at(m);
    if (x <= 0) {
      chosen = &e;
      break;
    }
  }
  if (chosen == nullptr) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->profile->config_at(m.first_day()) != nullptr) {
        chosen = &*it;
        break;
      }
    }
  }
  if (chosen == nullptr) return {};

  const auto shares = version_shares(*chosen->profile, m, chosen->lag);
  double vx = rng.uniform();
  const tls::clients::ClientConfig* config = nullptr;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    vx -= shares[i];
    if (vx <= 0) {
      config = &chosen->profile->versions[i];
      break;
    }
  }
  if (config == nullptr) {
    config = chosen->profile->config_at(m.first_day());
  }
  return {chosen, config};
}

}  // namespace tls::population
