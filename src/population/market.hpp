// Client-side population model: which software generates traffic each
// month, and which version of it users actually run.
//
// The version mix uses an update-lag model: each user has a lag L drawn
// from a mixture of an exponential distribution (auto-/regular updaters,
// half-life per software class) and an atom at infinity (abandoned
// installs). A user with lag L runs the newest version released before
// (month - L); abandoned mass sticks to the oldest version. This one
// mechanism produces the paper's long tails: RC4 advertised well after
// browsers dropped it (§5.3), Android 2.3 persisting for years (§7.2), and
// fingerprints surviving > 1200 days (§4.1).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "clients/catalog.hpp"
#include "tlscore/rng.hpp"
#include "tlscore/series.hpp"

namespace tls::population {

struct UpdateLagModel {
  double half_life_months = 2.0;
  double abandoned_fraction = 0.05;
  /// Abandoned installs are not immortal: the device eventually retires and
  /// its replacement runs current software. This is the second component of
  /// the lag mixture; large values ≈ never-retiring abandonware.
  double retirement_half_life_months = 48.0;

  /// CDF of the lag mixture at age `months`: regular updaters decay with
  /// half_life_months, abandoned installs with retirement_half_life_months.
  [[nodiscard]] double updated_fraction(double months) const;
};

/// Share of each catalog version of `profile` in use at month m.
/// Returns one weight per profile.versions entry; sums to 1 when any
/// version has been released, all-zero before the first release.
std::vector<double> version_shares(const tls::clients::ClientProfile& profile,
                                   tls::core::Month m,
                                   const UpdateLagModel& lag);

struct MarketEntry {
  const tls::clients::ClientProfile* profile = nullptr;
  tls::core::AnchorSeries traffic_share;
  UpdateLagModel lag;
  /// Destination routing key: "" = general web; otherwise the special
  /// server population this client talks to ("grid", "nagios",
  /// "interwise", "splunk").
  std::string destination;
  /// Fraction of this client's connections spoken as SSLv2 CLIENT-HELLOs
  /// (the single-university Nagios residue of §5.1).
  double sslv2_fraction = 0.0;
};

class MarketModel {
 public:
  /// The study's standard market, including the long-tail share spread
  /// across the catalog's synthetic profiles.
  static MarketModel standard(const tls::clients::Catalog& catalog);

  [[nodiscard]] std::span<const MarketEntry> entries() const {
    return entries_;
  }

  struct Pick {
    const MarketEntry* entry = nullptr;
    const tls::clients::ClientConfig* config = nullptr;
  };

  /// Samples a (client, version) pair for one connection in month m.
  /// Returns a null pick only if no profile has released yet.
  [[nodiscard]] Pick sample(tls::core::Month m, tls::core::Rng& rng) const;

  void add(MarketEntry entry) { entries_.push_back(std::move(entry)); }

 private:
  std::vector<MarketEntry> entries_;
};

}  // namespace tls::population
