// The standard client market. Traffic-share anchors are coarse public
// market-share figures; the paper-facing calibration targets are the
// advertised-cipher curves (Figs. 3, 6, 7, 10), the TLS 1.3 advertising
// ramp of §6.4 (0.5% -> 9.8% -> 23.6% over Feb-Apr 2018), and the §6.1/§6.2
// NULL/anonymous shares, including the unexplained mid-2015 spike (modeled
// as a bundled security-app campaign, per the paper's hypothesis).
#include "population/market.hpp"

#include <stdexcept>

namespace tls::population {

using tls::core::AnchorSeries;
using tls::core::Month;

namespace {

// Update-lag models per software kind.
// Half-life in months / abandoned fraction. Browser auto-update converges
// in weeks; OS stacks in months-to-a-year; the abandoned atoms are what
// keep RC4/TLS1.0 advertising alive years after removal (§5.3, §7.2).
UpdateLagModel browser_lag() { return {0.9, 0.015, 30}; }
UpdateLagModel slow_browser_lag() { return {3.0, 0.03, 36}; }  // IE/Safari-style
UpdateLagModel library_lag() { return {8.0, 0.06, 40}; }
UpdateLagModel os_lag() { return {10.0, 0.05, 36}; }  // Android-style
UpdateLagModel frozen_lag() { return {24.0, 0.5, 120}; }  // abandonware

}  // namespace

MarketModel MarketModel::standard(const tls::clients::Catalog& catalog) {
  MarketModel m;

  const auto need = [&](std::string_view name) {
    const auto* p = catalog.find(name);
    if (p == nullptr) {
      throw std::invalid_argument("catalog missing profile: " +
                                  std::string(name));
    }
    return p;
  };

  const auto add = [&](std::string_view name, AnchorSeries share,
                       UpdateLagModel lag, std::string destination = "",
                       double sslv2 = 0.0) {
    MarketEntry e;
    e.profile = need(name);
    e.traffic_share = std::move(share);
    e.lag = lag;
    e.destination = std::move(destination);
    e.sslv2_fraction = sslv2;
    m.add(std::move(e));
  };

  // ---- browsers ----
  add("Chrome",
      AnchorSeries{{Month(2012, 1), 0.22}, {Month(2014, 1), 0.30},
                   {Month(2016, 1), 0.33}, {Month(2018, 4), 0.34}},
      browser_lag());
  add("Firefox",
      AnchorSeries{{Month(2012, 1), 0.16}, {Month(2014, 1), 0.13},
                   {Month(2016, 1), 0.10}, {Month(2018, 4), 0.08}},
      browser_lag());
  add("IE/Edge",
      AnchorSeries{{Month(2012, 1), 0.12}, {Month(2014, 1), 0.09},
                   {Month(2016, 1), 0.06}, {Month(2018, 4), 0.04}},
      slow_browser_lag());
  add("Safari",
      AnchorSeries{{Month(2012, 1), 0.08}, {Month(2016, 1), 0.08},
                   {Month(2018, 4), 0.08}},
      slow_browser_lag());
  add("Opera",
      AnchorSeries{{Month(2012, 1), 0.020}, {Month(2016, 1), 0.015},
                   {Month(2018, 4), 0.015}},
      browser_lag());

  // ---- libraries / OS stacks ----
  add("Android SDK",
      AnchorSeries{{Month(2012, 1), 0.12}, {Month(2014, 1), 0.12},
                   {Month(2016, 1), 0.15}, {Month(2018, 4), 0.17}},
      os_lag());
  add("Apple SecureTransport",
      AnchorSeries{{Month(2012, 1), 0.07}, {Month(2014, 1), 0.10},
                   {Month(2016, 1), 0.12}, {Month(2018, 4), 0.13}},
      os_lag());
  add("OpenSSL 0.9.x",
      AnchorSeries{{Month(2012, 1), 0.10}, {Month(2014, 1), 0.045},
                   {Month(2015, 6), 0.040}, {Month(2016, 1), 0.018},
                   {Month(2018, 4), 0.006}},
      frozen_lag());
  add("OpenSSL",
      AnchorSeries{{Month(2012, 3), 0.02}, {Month(2014, 1), 0.08},
                   {Month(2016, 1), 0.11}, {Month(2018, 4), 0.09}},
      UpdateLagModel{16.0, 0.10, 60});  // server-side libs update very slowly
  add("MS CryptoAPI XP",
      AnchorSeries{{Month(2012, 1), 0.07}, {Month(2014, 1), 0.025},
                   {Month(2016, 1), 0.008}, {Month(2018, 4), 0.003}},
      frozen_lag());
  add("MS CryptoAPI",
      AnchorSeries{{Month(2012, 1), 0.05}, {Month(2014, 1), 0.04},
                   {Month(2016, 1), 0.03}, {Month(2018, 4), 0.025}},
      os_lag());
  add("Java JSSE",
      AnchorSeries{{Month(2012, 1), 0.020}, {Month(2016, 1), 0.015},
                   {Month(2018, 4), 0.012}},
      library_lag());
  add("NSS",
      AnchorSeries{{Month(2012, 1), 0.010}, {Month(2018, 4), 0.006}},
      library_lag());
  add("IoT Gateway",
      AnchorSeries{{Month(2014, 6), 0.0005}, {Month(2016, 1), 0.003},
                   {Month(2018, 4), 0.004}},
      frozen_lag());

  // ---- OS tools ----
  add("Windows Update", AnchorSeries::constant(0.010), os_lag());
  add("Apple Spotlight", AnchorSeries::constant(0.002), os_lag());
  add("Splunk Forwarder",
      AnchorSeries{{Month(2013, 10), 0.004}, {Month(2017, 1), 0.002},
                   {Month(2017, 12), 0.0005}, {Month(2018, 2), 0.00002}},
      library_lag(), "splunk");
  add("Interwise", AnchorSeries::constant(0.0004), frozen_lag(), "interwise");

  // ---- dev tools ----
  add("curl", AnchorSeries::constant(0.008), library_lag());
  add("git", AnchorSeries::constant(0.003), library_lag());
  add("Flux", AnchorSeries::constant(0.0005), library_lag());
  add("Tor", AnchorSeries::constant(0.001), library_lag());
  add("Shodan", AnchorSeries::constant(0.0005), library_lag());
  // GRID transfers: ~2.84% of all connections across the dataset use NULL
  // ciphers (§6.1), concentrated early; 0.42% in 2018.
  add("GridFTP",
      AnchorSeries{{Month(2012, 1), 0.060}, {Month(2014, 1), 0.040},
                   {Month(2016, 1), 0.012}, {Month(2018, 4), 0.0042}},
      library_lag(), "grid");
  // Nagios checks: most successful anonymous-suite connections (§6.2:
  // 0.17% of the dataset, 0.60% in 2018); ~5% of this client's hellos are
  // SSLv2 CLIENT-HELLOs (§5.1's 1.2K residue).
  add("Nagios NRPE",
      AnchorSeries{{Month(2012, 1), 0.0012}, {Month(2015, 1), 0.0018},
                   {Month(2018, 4), 0.0062}},
      frozen_lag(), "nagios", /*sslv2=*/0.05);
  add("Nagios legacy check", AnchorSeries::constant(0.0001), frozen_lag(),
      "nagios-nullnull");
  // Nightly/beta Firefox population running TLS 1.3 draft-18 ahead of the
  // release rollout (the pre-March advertising trickle of §6.4).
  add("Firefox Nightly",
      AnchorSeries{{Month(2017, 3), 0.002}, {Month(2018, 1), 0.003},
                   {Month(2018, 4), 0.003}},
      browser_lag());

  // ---- AV / middleboxes ----
  add("Avast WebShield", AnchorSeries::constant(0.004), library_lag());
  add("Bluecoat Proxy", AnchorSeries::constant(0.002), library_lag());
  // Kaspersky + Lookout carry the mid-2015 anonymous/NULL advertising spike
  // (§6.2: 5.8% -> 12.9% within two months, then back).
  add("Kaspersky",
      AnchorSeries{{Month(2014, 8), 0.004}, {Month(2015, 5), 0.006},
                   {Month(2015, 6), 0.065}, {Month(2015, 8), 0.065},
                   {Month(2015, 9), 0.005}, {Month(2018, 4), 0.003}},
      library_lag());
  add("Lookout Personal",
      AnchorSeries{{Month(2014, 5), 0.002}, {Month(2015, 5), 0.003},
                   {Month(2015, 6), 0.045}, {Month(2015, 8), 0.045},
                   {Month(2015, 9), 0.003}, {Month(2018, 4), 0.0015}},
      os_lag());

  // ---- cloud / email / apps ----
  add("Dropbox", AnchorSeries::constant(0.006), library_lag());
  add("OneDrive", AnchorSeries::constant(0.004), os_lag());
  add("Thunderbird", AnchorSeries::constant(0.004), library_lag());
  add("Apple Mail", AnchorSeries::constant(0.006), os_lag());
  add("Facebook",
      AnchorSeries{{Month(2015, 2), 0.004}, {Month(2016, 1), 0.010},
                   {Month(2018, 4), 0.014}},
      browser_lag());
  add("Hola VPN", AnchorSeries::constant(0.002), frozen_lag());
  add("Craftar Image Recognition", AnchorSeries::constant(0.0003),
      frozen_lag());

  // ---- malware / PUP ----
  add("Zbot",
      AnchorSeries{{Month(2012, 1), 0.003}, {Month(2015, 1), 0.002},
                   {Month(2018, 4), 0.0008}},
      frozen_lag());
  add("InstallMoney",
      AnchorSeries{{Month(2014, 3), 0.002}, {Month(2016, 6), 0.001},
                   {Month(2018, 4), 0.0003}},
      frozen_lag());
  // ShuffleBot's share is set so the single-day fingerprint *count*
  // dominates the distribution as in §4.1; at the paper's 191.9G-connection
  // scale the same phenomenon needs only a 0.0004% connection share.
  add("ShuffleBot",
      AnchorSeries{{Month(2014, 10), 0.012}, {Month(2018, 4), 0.012}},
      frozen_lag());

  // ---- synthetic long tail ----
  // The remaining catalog profiles (the Table-2 expansion) share a small
  // collective slice, uniformly. Individually negligible; collectively they
  // are the unlabeled fingerprint mass of §4.
  double tail_profiles = 0;
  for (const auto& p : catalog.profiles()) {
    if (p.synthetic) ++tail_profiles;
  }
  if (tail_profiles > 0) {
    const double per_profile = 0.06 / tail_profiles;
    for (const auto& p : catalog.profiles()) {
      if (!p.synthetic) continue;
      MarketEntry e;
      e.profile = &p;
      e.traffic_share = AnchorSeries::constant(per_profile);
      e.lag = frozen_lag();
      m.add(std::move(e));
    }
  }

  return m;
}

}  // namespace tls::population
