#include "population/traffic.hpp"

#include <algorithm>

#include "wire/transcript.hpp"
#include <stdexcept>

namespace tls::population {

using tls::core::Month;
using tls::servers::ServerSegment;

ConnectionFlights synthesize_flights(const ConnectionEvent& event) {
  ConnectionFlights flights;
  if (event.sslv2) return flights;  // pre-SSL3 framing; handled separately
  const auto& r = event.result;
  flights.client = tls::wire::client_flight(event.hello, r.success);
  if (!r.success) {
    std::optional<tls::wire::Alert> alert;
    if (r.failure != tls::handshake::FailureReason::kNone) {
      alert = tls::handshake::alert_for(r.failure);
    }
    flights.server = tls::wire::server_failure_flight(
        r.server_hello, alert.value_or(tls::wire::Alert{}));
    return flights;
  }
  std::optional<tls::wire::EcdheServerKeyExchange> ske;
  if (r.negotiated_group != 0 && r.server_hello.has_value() &&
      !r.server_hello->has_extension(
          tls::core::ExtensionType::kSupportedVersions)) {
    ske = tls::wire::EcdheServerKeyExchange::stub(r.negotiated_group);
  }
  flights.server =
      tls::wire::server_flight(*r.server_hello, ske, /*established=*/true);
  return flights;
}

TrafficGenerator::TrafficGenerator(
    const MarketModel& market, const tls::servers::ServerPopulation& servers,
    std::uint64_t seed)
    : market_(market), servers_(servers), rng_(seed) {}

const ServerSegment& TrafficGenerator::route(const MarketEntry& entry,
                                             Month m) {
  if (entry.destination.empty()) {
    return servers_.sample_by_traffic(m, rng_);
  }
  // Special destinations: sample among segments whose name starts with the
  // destination key, weighted by their (relative) traffic shares.
  double total = 0;
  for (const auto& s : servers_.segments()) {
    if (s.special_destination && s.name.starts_with(entry.destination)) {
      total += s.traffic_share.at(m);
    }
  }
  if (total <= 0) {
    throw std::logic_error("no server segment for destination " +
                           entry.destination);
  }
  double x = rng_.uniform() * total;
  const ServerSegment* last = nullptr;
  for (const auto& s : servers_.segments()) {
    if (!s.special_destination || !s.name.starts_with(entry.destination)) {
      continue;
    }
    last = &s;
    x -= s.traffic_share.at(m);
    if (x <= 0) return s;
  }
  return *last;
}

const TrafficGenerator::MonthCache& TrafficGenerator::cache_for(Month m) {
  const auto it = cache_.find(m.index());
  if (it != cache_.end()) return it->second;

  MonthCache c;
  const auto entries = market_.entries();
  c.entry_cum.reserve(entries.size());
  c.version_cum.reserve(entries.size());
  double cum = 0;
  for (const auto& e : entries) {
    const auto shares = version_shares(*e.profile, m, e.lag);
    double any = 0;
    for (const auto s : shares) any += s;
    if (any > 0) cum += e.traffic_share.at(m);
    c.entry_cum.push_back(cum);
    std::vector<double> vcum(shares.size());
    double v = 0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      v += shares[i];
      vcum[i] = v;
    }
    c.version_cum.push_back(std::move(vcum));
  }
  return cache_.emplace(m.index(), std::move(c)).first->second;
}

bool TrafficGenerator::generate_into(Month m, ConnectionEvent& ev) {
  const MonthCache& cache = cache_for(m);
  MarketModel::Pick pick;
  if (!cache.entry_cum.empty() && cache.entry_cum.back() > 0) {
    const double x = rng_.uniform() * cache.entry_cum.back();
    const auto eit =
        std::upper_bound(cache.entry_cum.begin(), cache.entry_cum.end(), x);
    const std::size_t ei = std::min(
        static_cast<std::size_t>(eit - cache.entry_cum.begin()),
        market_.entries().size() - 1);
    pick.entry = &market_.entries()[ei];
    const auto& vcum = cache.version_cum[ei];
    if (!vcum.empty() && vcum.back() > 0) {
      const double vx = rng_.uniform() * vcum.back();
      const auto vit = std::upper_bound(vcum.begin(), vcum.end(), vx);
      const std::size_t vi =
          std::min(static_cast<std::size_t>(vit - vcum.begin()),
                   vcum.size() - 1);
      pick.config = &pick.entry->profile->versions[vi];
    }
  }
  if (pick.entry == nullptr || pick.config == nullptr) return false;

  ev.month = m;
  ev.day = tls::core::Date(
      m.year(), m.month(),
      1 + static_cast<int>(rng_.below(
              static_cast<std::uint64_t>(
                  tls::core::days_in_month(m.year(), m.month())))));
  ev.client = pick.entry->profile;
  ev.config = pick.config;

  const ServerSegment& server = route(*pick.entry, m);
  ev.server = &server;

  if (pick.entry->sslv2_fraction > 0 &&
      rng_.chance(pick.entry->sslv2_fraction) &&
      server.config.min_version <= 0x0002) {
    ev.sslv2 = true;
    return true;
  }

  ev.hello = tls::clients::make_client_hello(*pick.config, rng_, "host.test");

  tls::handshake::NegotiateOptions opts;
  opts.accept_unoffered_suite = pick.entry->profile->name == "Interwise";
  // Roughly a third of revisits re-present a session id (clients that keep
  // session caches; pre-1.3 only — 1.3-capable stacks already send one).
  if (ev.hello.session_id.empty() && rng_.chance(0.33)) {
    ev.hello.session_id.resize(32);
    for (auto& b : ev.hello.session_id) {
      b = static_cast<std::uint8_t>(rng_.next());
    }
    opts.attempt_resumption = true;
  } else if (!ev.hello.session_id.empty()) {
    opts.attempt_resumption = false;  // TLS 1.3 compat id, not a cache hit
  }
  ev.result = tls::handshake::negotiate(ev.hello, server.config, rng_, opts);

  // The downgrade dance: clients that still perform insecure fallback
  // retry with a lower version field (adding TLS_FALLBACK_SCSV once it
  // existed) when the first attempt fails on version mismatch.
  if (!ev.result.success &&
      ev.result.failure == tls::handshake::FailureReason::kNoCommonVersion &&
      pick.config->version_fallback &&
      server.config.max_version < ev.hello.legacy_version &&
      server.config.max_version >= pick.config->min_version) {
    ev.hello.legacy_version = server.config.max_version;
    if (m >= Month(2015, 4)) {  // RFC 7507 deployment
      ev.hello.cipher_suites.push_back(
          tls::core::suites::TLS_FALLBACK_SCSV);
    }
    ev.result = tls::handshake::negotiate(ev.hello, server.config, rng_, opts);
    ev.used_fallback = true;
  }
  return true;
}

void TrafficGenerator::generate_one(Month m, const Sink& sink) {
  ConnectionEvent ev;
  if (generate_into(m, ev)) sink(ev);
}

void TrafficGenerator::generate_month(Month m, std::size_t count,
                                      const Sink& sink) {
  for (std::size_t i = 0; i < count; ++i) generate_one(m, sink);
}

void TrafficGenerator::generate_month_batched(Month m, std::size_t count,
                                              std::size_t batch_size,
                                              const SpanSink& sink) {
  if (batch_size == 0) batch_size = 1;
  if (batch_.size() < batch_size) batch_.resize(batch_size);
  std::size_t filled = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ConnectionEvent& ev = batch_[filled];
    ev = ConnectionEvent{};  // reset the reused slot
    if (generate_into(m, ev)) ++filled;
    if (filled == batch_size) {
      sink(std::span<const ConnectionEvent>(batch_.data(), filled));
      filled = 0;
    }
  }
  if (filled > 0) {
    sink(std::span<const ConnectionEvent>(batch_.data(), filled));
  }
}

void TrafficGenerator::generate_range(tls::core::MonthRange range,
                                      std::size_t per_month,
                                      const Sink& sink) {
  for (Month m = range.begin_month; m <= range.end_month; ++m) {
    generate_month(m, per_month, sink);
  }
}

}  // namespace tls::population
