#include "population/traffic.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "wire/transcript.hpp"

namespace tls::population {

using tls::core::Month;
using tls::servers::ServerSegment;

ConnectionFlights synthesize_flights(const ConnectionEvent& event) {
  ConnectionFlights flights;
  if (event.sslv2) return flights;  // pre-SSL3 framing; handled separately
  const auto& r = event.result;
  flights.client = tls::wire::client_flight(event.hello, r.success);
  if (!r.success) {
    std::optional<tls::wire::Alert> alert;
    if (r.failure != tls::handshake::FailureReason::kNone) {
      alert = tls::handshake::alert_for(r.failure);
    }
    flights.server = tls::wire::server_failure_flight(
        r.server_hello, alert.value_or(tls::wire::Alert{}));
    return flights;
  }
  std::optional<tls::wire::EcdheServerKeyExchange> ske;
  if (r.negotiated_group != 0 && r.server_hello.has_value() &&
      !r.server_hello->has_extension(
          tls::core::ExtensionType::kSupportedVersions)) {
    ske = tls::wire::EcdheServerKeyExchange::stub(r.negotiated_group);
  }
  flights.server =
      tls::wire::server_flight(*r.server_hello, ske, /*established=*/true);
  return flights;
}

TrafficGenerator::TrafficGenerator(
    const MarketModel& market, const tls::servers::ServerPopulation& servers,
    std::uint64_t seed)
    : market_(market), servers_(servers), rng_(seed) {
  accept_unoffered_.reserve(market_.entries().size());
  for (const auto& e : market_.entries()) {
    accept_unoffered_.push_back(e.profile->name == "Interwise" ? 1 : 0);
  }
}

void TrafficGenerator::ensure_template_table() {
  if (!gen_cache_enabled_ || !template_sets_.empty()) return;
  const auto entries = market_.entries();
  template_sets_.reserve(entries.size());
  for (const auto& e : entries) {
    std::vector<const GenCache::TemplateSet*> row;
    row.reserve(e.profile->versions.size());
    for (const auto& cfg : e.profile->versions) {
      row.push_back(&gen_cache_.templates(cfg));
    }
    template_sets_.push_back(std::move(row));
  }
}

const ServerSegment& TrafficGenerator::route(const MarketEntry& entry,
                                             const MonthCache& cache) {
  if (entry.destination.empty()) {
    // General web traffic: cached (segment, share-at-m) walk, arithmetic
    // bit-identical to ServerPopulation::sample_by_traffic (total summed in
    // segment order, same subtraction order, same last-segment fallback,
    // and the same throw-before-draw on zero weight).
    const MonthCache::DestTable& table = cache.general;
    if (table.total <= 0) {
      throw std::logic_error("no general-web traffic weight");
    }
    double x = rng_.uniform() * table.total;
    const ServerSegment* last = nullptr;
    for (const auto& [seg, share] : table.segments) {
      last = seg;
      x -= share;
      if (x <= 0) return *seg;
    }
    return *last;
  }
  // Special destinations: sample among segments whose name starts with the
  // destination key, weighted by their (relative) traffic shares. The
  // matching segments and their shares were collected once per month (in
  // segment order, total accumulated in that same order) so the pick walks
  // only the handful of matches with arithmetic bit-identical to the old
  // double full scan.
  const auto it = cache.dest_tables.find(entry.destination);
  if (it == cache.dest_tables.end() || it->second.total <= 0) {
    throw std::logic_error("no server segment for destination " +
                           entry.destination);
  }
  const MonthCache::DestTable& table = it->second;
  double x = rng_.uniform() * table.total;
  const ServerSegment* last = nullptr;
  for (const auto& [seg, share] : table.segments) {
    last = seg;
    x -= share;
    if (x <= 0) return *seg;
  }
  return *last;
}

const TrafficGenerator::MonthCache& TrafficGenerator::cache_for(Month m) {
  const auto it = cache_.find(m.index());
  if (it != cache_.end()) return it->second;

  MonthCache c;
  const auto entries = market_.entries();
  c.entry_cum.reserve(entries.size());
  c.version_cum.reserve(entries.size());
  double cum = 0;
  for (const auto& e : entries) {
    const auto shares = version_shares(*e.profile, m, e.lag);
    double any = 0;
    for (const auto s : shares) any += s;
    if (any > 0) cum += e.traffic_share.at(m);
    c.entry_cum.push_back(cum);
    std::vector<double> vcum(shares.size());
    double v = 0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      v += shares[i];
      vcum[i] = v;
    }
    c.version_cum.push_back(std::move(vcum));
  }
  if (!c.entry_cum.empty() && c.entry_cum.back() > 0) {
    const double total = c.entry_cum.back();
    c.inv_total = 1.0 / total;
    c.entry_buckets.resize(MonthCache::kEntryBuckets + 1);
    for (std::size_t k = 0; k <= MonthCache::kEntryBuckets; ++k) {
      const double t =
          total * (static_cast<double>(k) / MonthCache::kEntryBuckets);
      c.entry_buckets[k] = static_cast<std::uint32_t>(
          std::upper_bound(c.entry_cum.begin(), c.entry_cum.end(), t) -
          c.entry_cum.begin());
    }
  }
  for (const auto& e : entries) {
    if (e.destination.empty() || c.dest_tables.contains(e.destination)) {
      continue;
    }
    MonthCache::DestTable t;
    for (const auto& s : servers_.segments()) {
      if (s.special_destination && s.name.starts_with(e.destination)) {
        const double w = s.traffic_share.at(m);
        t.segments.emplace_back(&s, w);
        t.total += w;
      }
    }
    c.dest_tables.emplace(e.destination, std::move(t));
  }
  for (const auto& s : servers_.segments()) {
    if (s.special_destination) continue;
    const double w = s.traffic_share.at(m);
    c.general.segments.emplace_back(&s, w);
    c.general.total += w;
  }
  return cache_.emplace(m.index(), std::move(c)).first->second;
}

GenCache::TemplateSet GenCache::compile(const tls::clients::ClientConfig& cfg) {
  TemplateSet t;
  t.bypass = cfg.grease || cfg.randomizes_cipher_order;
  if (t.bypass) return t;
  // Any seed works: the RNG-filled fields are zeroed below. The SNI host
  // must match the one generate_into passes to make_client_hello.
  tls::core::Rng throwaway(0x7e3d);
  t.base.hello = tls::clients::make_client_hello(cfg, throwaway, "host.test");
  t.base.hello.random.fill(0);
  std::fill(t.base.hello.session_id.begin(), t.base.hello.session_id.end(),
            static_cast<std::uint8_t>(0));
  t.base.has_session_id = !t.base.hello.session_id.empty();
  t.base.hello.serialize_record_into(t.base.wire);
  if (!t.base.has_session_id) {
    // Empty-id configs may gain a 32-byte id on the resumption leg.
    t.resume.hello = t.base.hello;
    t.resume.hello.session_id.assign(32, 0);
    t.resume.has_session_id = true;
    t.resume.hello.serialize_record_into(t.resume.wire);
    t.has_resume = true;
  }
  // Structural sanity for the fixed patch offsets: the session-id length
  // byte sits right before kSessionIdOffset in the codec layout.
  const auto check = [](const WireTemplate& w) {
    if (w.wire.size() < kSessionIdOffset ||
        w.wire[kSessionIdOffset - 1] !=
            static_cast<std::uint8_t>(w.hello.session_id.size())) {
      throw std::logic_error("gen-cache template layout mismatch");
    }
  };
  check(t.base);
  if (t.has_resume) check(t.resume);
  return t;
}

const GenCache::TemplateSet& GenCache::templates(
    const tls::clients::ClientConfig& cfg) {
  const auto it = templates_.find(&cfg);
  if (it != templates_.end()) return it->second;
  ++stats.template_misses;
  TemplateSet t = compile(cfg);
  t.id = next_id_++;
  stats.template_bytes += t.base.wire.size() + t.resume.wire.size();
  return templates_.emplace(&cfg, std::move(t)).first->second;
}

const tls::handshake::NegotiationPlan& GenCache::plan(
    std::uint64_t key, const tls::wire::ClientHello& hello,
    const tls::servers::ServerConfig& server,
    const tls::handshake::NegotiateOptions& opts) {
  if (key >= plan_index_.size()) plan_index_.resize(key + 1, -1);
  std::int32_t& slot = plan_index_[key];
  if (slot >= 0) {
    ++stats.plan_hits;
    return *plan_store_[static_cast<std::size_t>(slot)];
  }
  ++stats.plan_misses;
  plan_store_.push_back(std::make_unique<tls::handshake::NegotiationPlan>(
      tls::handshake::plan_negotiation(hello, server, opts)));
  slot = static_cast<std::int32_t>(plan_store_.size() - 1);
  return *plan_store_.back();
}

bool TrafficGenerator::generate_into(Month m, const MonthCache& cache,
                                     ConnectionEvent& ev) {
  MarketModel::Pick pick;
  std::size_t ei = 0;
  std::size_t vi = 0;
  if (!cache.entry_cum.empty() && cache.entry_cum.back() > 0) {
    const double x = rng_.uniform() * cache.entry_cum.back();
    // Bucket-windowed upper_bound: identical result to a full-range
    // upper_bound (the window provably brackets the true position; see
    // MonthCache::entry_buckets), ~half the cost at ~1.5k entries.
    const std::size_t nb = MonthCache::kEntryBuckets;
    const std::size_t k =
        std::min(nb - 1, static_cast<std::size_t>(x * cache.inv_total *
                                                  static_cast<double>(nb)));
    const std::size_t lo = cache.entry_buckets[k > 0 ? k - 1 : 0];
    const std::size_t hi = std::min(cache.entry_cum.size(),
                                    static_cast<std::size_t>(
                                        cache.entry_buckets[std::min(
                                            nb, k + 2)]) +
                                        1);
    const auto eit = std::upper_bound(cache.entry_cum.begin() + lo,
                                      cache.entry_cum.begin() + hi, x);
    ei = std::min(static_cast<std::size_t>(eit - cache.entry_cum.begin()),
                  market_.entries().size() - 1);
    pick.entry = &market_.entries()[ei];
    const auto& vcum = cache.version_cum[ei];
    if (!vcum.empty() && vcum.back() > 0) {
      const double vx = rng_.uniform() * vcum.back();
      const auto vit = std::upper_bound(vcum.begin(), vcum.end(), vx);
      vi = std::min(static_cast<std::size_t>(vit - vcum.begin()),
                    vcum.size() - 1);
      pick.config = &pick.entry->profile->versions[vi];
    }
  }
  if (pick.entry == nullptr || pick.config == nullptr) return false;

  ev.month = m;
  ev.day = tls::core::Date(
      m.year(), m.month(),
      1 + static_cast<int>(rng_.below(
              static_cast<std::uint64_t>(
                  tls::core::days_in_month(m.year(), m.month())))));
  ev.client = pick.entry->profile;
  ev.config = pick.config;

  const ServerSegment& server = route(*pick.entry, cache);
  ev.server = &server;

  if (pick.entry->sslv2_fraction > 0 &&
      rng_.chance(pick.entry->sslv2_fraction) &&
      server.config.min_version <= 0x0002) {
    ev.sslv2 = true;
    return true;
  }

  tls::handshake::NegotiateOptions opts;
  opts.accept_unoffered_suite = accept_unoffered_[ei] != 0;

  const GenCache::TemplateSet* ts =
      gen_cache_enabled_ && !template_sets_.empty()
          ? template_sets_[ei][vi]
          : (gen_cache_enabled_ ? &gen_cache_.templates(*pick.config)
                                : nullptr);
  if (ts != nullptr && !ts->bypass) {
    // ---- template fast path: memcpy + patch, identical RNG stream ----
    ++gen_cache_.stats.template_hits;
    // The template working set (~1k scattered templates) misses cache on
    // nearly every pick; start the loads now so they overlap the 32-96
    // RNG draws below instead of stalling the copies.
    __builtin_prefetch(ts->base.wire.data());
    __builtin_prefetch(ts->base.hello.cipher_suites.data());
    __builtin_prefetch(ts->base.hello.extensions.data());
    if (ts->has_resume) __builtin_prefetch(ts->resume.wire.data());
    std::array<std::uint8_t, 32> random;
    for (auto& b : random) b = static_cast<std::uint8_t>(rng_.next());
    const GenCache::WireTemplate* tm = &ts->base;
    std::array<std::uint8_t, 32> sid;
    bool have_sid = false;
    if (ts->base.has_session_id) {
      // The config emits its own id (TLS 1.3 compat), drawn right after
      // the random inside make_client_hello; not a resumption attempt.
      for (auto& b : sid) b = static_cast<std::uint8_t>(rng_.next());
      have_sid = true;
    } else if (rng_.chance(0.33)) {
      // Roughly a third of revisits re-present a session id (clients that
      // keep session caches; pre-1.3 only).
      for (auto& b : sid) b = static_cast<std::uint8_t>(rng_.next());
      tm = &ts->resume;
      have_sid = true;
      opts.attempt_resumption = true;
    }
    ev.hello = tm->hello;
    ev.hello.random = random;
    ev.client_record = tm->wire;
    std::copy(random.begin(), random.end(),
              ev.client_record.begin() + GenCache::kRandomOffset);
    if (have_sid) {
      ev.hello.session_id.assign(sid.begin(), sid.end());
      std::copy(sid.begin(), sid.end(),
                ev.client_record.begin() + GenCache::kSessionIdOffset);
    }

    const auto seg_index =
        static_cast<std::uint64_t>(&server - servers_.segments().data());
    // Dense memo key: (template, segment) pairs are contiguous so the plan
    // cache can be a direct-indexed table. Low 4 bits = variant flags.
    std::uint64_t key =
        (static_cast<std::uint64_t>(ts->id) * servers_.segments().size() +
         seg_index)
        << 4;
    if (tm == &ts->resume) key |= 1u;
    if (opts.accept_unoffered_suite) key |= 2u;
    {
      const auto& plan = gen_cache_.plan(key, ev.hello, server.config, opts);
      tls::handshake::complete_negotiation_into(plan, ev.hello, rng_,
                                                ev.result);
    }
    if (!ev.result.success &&
        ev.result.failure ==
            tls::handshake::FailureReason::kNoCommonVersion &&
        pick.config->version_fallback &&
        server.config.max_version < ev.hello.legacy_version &&
        server.config.max_version >= pick.config->min_version) {
      ev.hello.legacy_version = server.config.max_version;
      const bool scsv = m >= Month(2015, 4);  // RFC 7507 deployment
      if (scsv) {
        ev.hello.cipher_suites.push_back(tls::core::suites::TLS_FALLBACK_SCSV);
      }
      // The SCSV (and version patch) change the record bytes; the fallback
      // leg is rare enough that a re-serialize beats splicing the buffer.
      ev.hello.serialize_record_into(ev.client_record);
      key |= 4u | (scsv ? 8u : 0u);
      const auto& fplan = gen_cache_.plan(key, ev.hello, server.config, opts);
      tls::handshake::complete_negotiation_into(fplan, ev.hello, rng_,
                                                ev.result);
      ev.used_fallback = true;
    }
    return true;
  }
  if (ts != nullptr) ++gen_cache_.stats.bypasses;

  ev.client_record.clear();
  ev.hello = tls::clients::make_client_hello(*pick.config, rng_, "host.test");

  // Roughly a third of revisits re-present a session id (clients that keep
  // session caches; pre-1.3 only — 1.3-capable stacks already send one).
  if (ev.hello.session_id.empty() && rng_.chance(0.33)) {
    ev.hello.session_id.resize(32);
    for (auto& b : ev.hello.session_id) {
      b = static_cast<std::uint8_t>(rng_.next());
    }
    opts.attempt_resumption = true;
  } else if (!ev.hello.session_id.empty()) {
    opts.attempt_resumption = false;  // TLS 1.3 compat id, not a cache hit
  }
  ev.result = tls::handshake::negotiate(ev.hello, server.config, rng_, opts);

  // The downgrade dance: clients that still perform insecure fallback
  // retry with a lower version field (adding TLS_FALLBACK_SCSV once it
  // existed) when the first attempt fails on version mismatch.
  if (!ev.result.success &&
      ev.result.failure == tls::handshake::FailureReason::kNoCommonVersion &&
      pick.config->version_fallback &&
      server.config.max_version < ev.hello.legacy_version &&
      server.config.max_version >= pick.config->min_version) {
    ev.hello.legacy_version = server.config.max_version;
    if (m >= Month(2015, 4)) {  // RFC 7507 deployment
      ev.hello.cipher_suites.push_back(
          tls::core::suites::TLS_FALLBACK_SCSV);
    }
    ev.result = tls::handshake::negotiate(ev.hello, server.config, rng_, opts);
    ev.used_fallback = true;
  }
  return true;
}

void TrafficGenerator::generate_one(Month m, const Sink& sink) {
  ensure_template_table();
  ConnectionEvent ev;
  if (generate_into(m, cache_for(m), ev)) sink(ev);
}

void TrafficGenerator::generate_month(Month m, std::size_t count,
                                      const Sink& sink) {
  ensure_template_table();
  const MonthCache& cache = cache_for(m);
  for (std::size_t i = 0; i < count; ++i) {
    ConnectionEvent ev;
    if (generate_into(m, cache, ev)) sink(ev);
  }
}

void TrafficGenerator::generate_month_batched(Month m, std::size_t count,
                                              std::size_t batch_size,
                                              const SpanSink& sink) {
  if (batch_size == 0) batch_size = 1;
  if (batch_.size() < batch_size) batch_.resize(batch_size);
  ensure_template_table();
  const MonthCache& cache = cache_for(m);
  std::size_t filled = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ConnectionEvent& ev = batch_[filled];
    ev.reset();  // capacity-preserving: hello/result/record buffers amortize
    if (generate_into(m, cache, ev)) ++filled;
    if (filled == batch_size) {
      sink(std::span<const ConnectionEvent>(batch_.data(), filled));
      filled = 0;
    }
  }
  if (filled > 0) {
    sink(std::span<const ConnectionEvent>(batch_.data(), filled));
  }
}

void TrafficGenerator::generate_range(tls::core::MonthRange range,
                                      std::size_t per_month,
                                      const Sink& sink) {
  for (Month m = range.begin_month; m <= range.end_month; ++m) {
    generate_month(m, per_month, sink);
  }
}

}  // namespace tls::population
