// The connection stream generator: samples (client version, server
// deployment) pairs month by month, emits a real ClientHello, runs the
// negotiation engine (with the historical fallback dance where the client
// still performs it), and hands each connection to a sink — the synthetic
// stand-in for the Notary's campus taps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "handshake/negotiate.hpp"
#include "population/market.hpp"
#include "servers/population.hpp"
#include "tlscore/rng.hpp"

namespace tls::population {

struct ConnectionEvent {
  tls::core::Month month;
  tls::core::Date day{2012, 1, 1};
  const tls::clients::ClientProfile* client = nullptr;
  const tls::clients::ClientConfig* config = nullptr;
  const tls::servers::ServerSegment* server = nullptr;
  tls::wire::ClientHello hello;  // the hello actually sent (post-fallback)
  tls::handshake::NegotiationResult result;
  /// Pre-serialized TLS record bytes of `hello`, filled by the GenCache
  /// template fast path (empty when the cache is off or the config takes
  /// the legacy path). When non-empty these are byte-identical to
  /// `hello.serialize_record()`; the passive monitor consumes them instead
  /// of re-serializing.
  std::vector<std::uint8_t> client_record;
  bool used_fallback = false;
  bool sslv2 = false;  // SSLv2 CLIENT-HELLO connection (hello is not set)

  /// Capacity-preserving slot reset for batched reuse. Fields that
  /// generate_into() always rewrites on success (month, day, hello,
  /// result) are left as-is so their heap buffers amortize; for sslv2
  /// events, hello/result/client_record are unspecified (callers already
  /// branch on `sslv2` first).
  void reset() {
    client = nullptr;
    config = nullptr;
    server = nullptr;
    client_record.clear();
    used_fallback = false;
    sslv2 = false;
  }
};

/// Synthesizes the per-direction record streams for a generated
/// connection — the full-transcript view of the same event.
struct ConnectionFlights {
  std::vector<std::uint8_t> client;
  std::vector<std::uint8_t> server;
};
ConnectionFlights synthesize_flights(const ConnectionEvent& event);

/// Producer-side template cache (the ObserveCache philosophy applied to
/// generation). Each live ClientConfig is compiled once into a **wire
/// template** — the ClientHello struct plus its serialized record bytes
/// with the RNG-filled fields zeroed — so a connection becomes a memcpy
/// plus patches at fixed offsets instead of a rebuild + reserialize.
/// Negotiation is memoized as NegotiationPlans keyed on (template,
/// variant, server segment, options, fallback/SCSV branch); completion
/// draws the identical RNG sequence per connection, so the event stream is
/// bit-exact with the cache off. Configs whose hello is not
/// connection-invariant (GREASE, cipher-order shuffling) are flagged
/// `bypass` and take the legacy path.
class GenCache {
 public:
  /// Fixed offsets of the RNG-patched fields inside a serialized
  /// ClientHello record: 5-byte record header + 4-byte handshake header +
  /// 2-byte legacy_version puts the 32-byte random at 11; the session-id
  /// length byte follows at 43, its bytes at 44. Defended by the
  /// template-patch fuzzer in tests/test_fuzz.cpp.
  static constexpr std::size_t kRandomOffset = 11;
  static constexpr std::size_t kSessionIdOffset = 44;

  struct WireTemplate {
    tls::wire::ClientHello hello;     // random (and session id) zeroed
    std::vector<std::uint8_t> wire;   // == hello.serialize_record()
    bool has_session_id = false;
  };
  struct TemplateSet {
    bool bypass = false;  // GREASE / shuffling: hello varies per connection
    std::uint32_t id = 0;
    WireTemplate base;
    /// base + a 32-byte session-id slot, for empty-id configs that draw
    /// the resumption leg (pre-1.3 session-cache re-presentation).
    WireTemplate resume;
    bool has_resume = false;
  };
  struct Stats {
    std::uint64_t template_hits = 0;    // connections filled from a template
    std::uint64_t template_misses = 0;  // template compilations
    std::uint64_t bypasses = 0;         // connections on the legacy path
    std::uint64_t plan_hits = 0;        // memoized negotiation plans reused
    std::uint64_t plan_misses = 0;      // plans computed
    std::uint64_t template_bytes = 0;   // compiled wire bytes resident
  };

  /// Compiles `cfg` into its template set (exposed for the differential
  /// fuzzer; the instance method `templates` memoizes per config).
  static TemplateSet compile(const tls::clients::ClientConfig& cfg);

  const TemplateSet& templates(const tls::clients::ClientConfig& cfg);
  /// Memoized plan_negotiation. `key` must uniquely encode every input the
  /// plan depends on: (template id, variant, server segment, options,
  /// fallback/SCSV branch). Keys are dense — (id * nseg + seg) * 16 | flags
  /// — so the memo is a direct-indexed table rather than a hash map (the
  /// lookup is on the per-connection fast path). hello/server/opts are
  /// only consulted on a miss. Returned references stay valid across later
  /// insertions (plans live in stable heap slots).
  const tls::handshake::NegotiationPlan& plan(
      std::uint64_t key, const tls::wire::ClientHello& hello,
      const tls::servers::ServerConfig& server,
      const tls::handshake::NegotiateOptions& opts);

  Stats stats;

 private:
  std::unordered_map<const tls::clients::ClientConfig*, TemplateSet>
      templates_;
  std::vector<std::int32_t> plan_index_;  // dense key -> plan_store_ slot
  std::vector<std::unique_ptr<tls::handshake::NegotiationPlan>> plan_store_;
  std::uint32_t next_id_ = 0;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const MarketModel& market,
                   const tls::servers::ServerPopulation& servers,
                   std::uint64_t seed = 42);

  using Sink = std::function<void(const ConnectionEvent&)>;
  using SpanSink = std::function<void(std::span<const ConnectionEvent>)>;

  /// Generates `count` connections during month m.
  void generate_month(tls::core::Month m, std::size_t count,
                      const Sink& sink);

  /// Batched variant: events are accumulated in an internal reusable buffer
  /// and delivered `batch_size` at a time (final batch may be short). Draws
  /// the exact same RNG stream as generate_month, so the event sequence is
  /// identical — only the delivery granularity changes. Pairs with
  /// PassiveMonitor::observe_span to amortize per-connection call overhead.
  void generate_month_batched(tls::core::Month m, std::size_t count,
                              std::size_t batch_size, const SpanSink& sink);

  /// Generates count-per-month connections over an inclusive month range.
  void generate_range(tls::core::MonthRange range, std::size_t per_month,
                      const Sink& sink);

  /// Re-seeds the RNG stream in place. Every cache the generator carries
  /// (month tables, templates, negotiation plans) is a pure function of
  /// the market/server models, so a re-seeded generator draws exactly the
  /// stream a freshly constructed one would — this is how the study runner
  /// reuses one generator per worker across shard tasks instead of
  /// recompiling every template per task.
  void reseed(std::uint64_t seed) { rng_ = tls::core::Rng(seed); }

  /// Toggles the GenCache template fast path (on by default). Off and on
  /// draw the same RNG stream and emit field-identical events — the toggle
  /// exists for benchmarking and for the byte-identity test matrix.
  void set_gen_cache(bool enabled) { gen_cache_enabled_ = enabled; }
  [[nodiscard]] bool gen_cache_enabled() const { return gen_cache_enabled_; }
  [[nodiscard]] const GenCache::Stats& gen_cache_stats() const {
    return gen_cache_.stats;
  }

 private:
  /// Per-month sampling tables: cumulative entry weights and per-entry
  /// cumulative version shares, built once per month (the market model is
  /// piecewise-linear in months, so this is exact, not an approximation).
  struct MonthCache {
    std::vector<double> entry_cum;                // cumulative traffic shares
    std::vector<std::vector<double>> version_cum; // per entry
    /// Bucket index over entry_cum: entry_buckets[k] =
    /// upper_bound(entry_cum, total * k / kEntryBuckets). The entry pick
    /// runs upper_bound over a one-bucket-wide window instead of all
    /// ~1.5k entries; the window is widened one bucket each side so a
    /// +-1 ulp disagreement in the bucket computation cannot exclude the
    /// true position. The pick itself stays exactly upper_bound(x).
    static constexpr std::size_t kEntryBuckets = 256;
    std::vector<std::uint32_t> entry_buckets;  // size kEntryBuckets + 1
    double inv_total = 0;                      // 1 / entry_cum.back()
    /// Per-destination routing table: the special-destination segments (in
    /// segment order) with their shares at this month, plus the total
    /// accumulated in the same order — so the pick is a single walk over
    /// the (few) matching segments instead of two scans over all of them,
    /// with bit-identical floating-point arithmetic.
    struct DestTable {
      std::vector<std::pair<const tls::servers::ServerSegment*, double>>
          segments;
      double total = 0;
    };
    std::unordered_map<std::string, DestTable> dest_tables;
    /// General-web routing table: the non-special segments with their
    /// shares at this month, same order/accumulation discipline as the
    /// destination tables. Replaces ServerPopulation::sample_by_traffic's
    /// per-connection double scan (each step an AnchorSeries
    /// interpolation) with a single cached walk.
    DestTable general;
  };

  const MonthCache& cache_for(tls::core::Month m);
  const tls::servers::ServerSegment& route(const MarketEntry& entry,
                                           const MonthCache& cache);
  /// Samples one connection into `ev` (which must be freshly reset);
  /// returns false when the month has no live traffic for the draw (the
  /// RNG advances identically either way). `cache` must be cache_for(m) —
  /// hoisted to the per-month loops so the hot path skips the map lookup.
  bool generate_into(tls::core::Month m, const MonthCache& cache,
                     ConnectionEvent& ev);
  void generate_one(tls::core::Month m, const Sink& sink);

  /// Builds template_sets_ (below) if the gen cache is on and it has not
  /// been built yet; compiles every catalog config's template eagerly so
  /// the per-connection path is a plain array deref.
  void ensure_template_table();

  const MarketModel& market_;
  const tls::servers::ServerPopulation& servers_;
  tls::core::Rng rng_;
  /// Per-entry `profile->name == "Interwise"` (the accept-unoffered-suite
  /// quirk), hoisted out of the per-connection path.
  std::vector<std::uint8_t> accept_unoffered_;
  /// template_sets_[entry][version] -> memoized GenCache::TemplateSet, so
  /// the fast path replaces the per-connection config-pointer hash lookup
  /// with two array indexes. Built lazily (first generated connection with
  /// the cache on); empty while the cache is off.
  std::vector<std::vector<const GenCache::TemplateSet*>> template_sets_;
  std::unordered_map<int, MonthCache> cache_;
  std::vector<ConnectionEvent> batch_;  // reused by generate_month_batched
  GenCache gen_cache_;
  bool gen_cache_enabled_ = true;
};

}  // namespace tls::population
