// The connection stream generator: samples (client version, server
// deployment) pairs month by month, emits a real ClientHello, runs the
// negotiation engine (with the historical fallback dance where the client
// still performs it), and hands each connection to a sink — the synthetic
// stand-in for the Notary's campus taps.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "handshake/negotiate.hpp"
#include "population/market.hpp"
#include "servers/population.hpp"
#include "tlscore/rng.hpp"

namespace tls::population {

struct ConnectionEvent {
  tls::core::Month month;
  tls::core::Date day{2012, 1, 1};
  const tls::clients::ClientProfile* client = nullptr;
  const tls::clients::ClientConfig* config = nullptr;
  const tls::servers::ServerSegment* server = nullptr;
  tls::wire::ClientHello hello;  // the hello actually sent (post-fallback)
  tls::handshake::NegotiationResult result;
  bool used_fallback = false;
  bool sslv2 = false;  // SSLv2 CLIENT-HELLO connection (hello is not set)
};

/// Synthesizes the per-direction record streams for a generated
/// connection — the full-transcript view of the same event.
struct ConnectionFlights {
  std::vector<std::uint8_t> client;
  std::vector<std::uint8_t> server;
};
ConnectionFlights synthesize_flights(const ConnectionEvent& event);

class TrafficGenerator {
 public:
  TrafficGenerator(const MarketModel& market,
                   const tls::servers::ServerPopulation& servers,
                   std::uint64_t seed = 42);

  using Sink = std::function<void(const ConnectionEvent&)>;
  using SpanSink = std::function<void(std::span<const ConnectionEvent>)>;

  /// Generates `count` connections during month m.
  void generate_month(tls::core::Month m, std::size_t count,
                      const Sink& sink);

  /// Batched variant: events are accumulated in an internal reusable buffer
  /// and delivered `batch_size` at a time (final batch may be short). Draws
  /// the exact same RNG stream as generate_month, so the event sequence is
  /// identical — only the delivery granularity changes. Pairs with
  /// PassiveMonitor::observe_span to amortize per-connection call overhead.
  void generate_month_batched(tls::core::Month m, std::size_t count,
                              std::size_t batch_size, const SpanSink& sink);

  /// Generates count-per-month connections over an inclusive month range.
  void generate_range(tls::core::MonthRange range, std::size_t per_month,
                      const Sink& sink);

 private:
  /// Per-month sampling tables: cumulative entry weights and per-entry
  /// cumulative version shares, built once per month (the market model is
  /// piecewise-linear in months, so this is exact, not an approximation).
  struct MonthCache {
    std::vector<double> entry_cum;                // cumulative traffic shares
    std::vector<std::vector<double>> version_cum; // per entry
  };

  const MonthCache& cache_for(tls::core::Month m);
  const tls::servers::ServerSegment& route(const MarketEntry& entry,
                                           tls::core::Month m);
  /// Samples one connection into `ev` (which must be freshly reset);
  /// returns false when the month has no live traffic for the draw (the
  /// RNG advances identically either way).
  bool generate_into(tls::core::Month m, ConnectionEvent& ev);
  void generate_one(tls::core::Month m, const Sink& sink);

  const MarketModel& market_;
  const tls::servers::ServerPopulation& servers_;
  tls::core::Rng rng_;
  std::unordered_map<int, MonthCache> cache_;
  std::vector<ConnectionEvent> batch_;  // reused by generate_month_batched
};

}  // namespace tls::population
