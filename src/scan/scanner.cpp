#include "scan/scanner.hpp"

#include <algorithm>

#include "clients/suite_pools.hpp"
#include "handshake/negotiate.hpp"
#include "tlscore/cipher_suites.hpp"
#include "wire/heartbeat.hpp"

namespace tls::scan {

using tls::core::Month;
using tls::wire::ClientHello;

namespace {

ClientHello base_hello(std::uint16_t version,
                       std::vector<std::uint16_t> suites) {
  ClientHello ch;
  ch.legacy_version = version;
  ch.random.fill(0x5c);
  ch.cipher_suites = std::move(suites);
  std::vector<std::uint16_t> groups{23, 24, 25, 29};
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  const std::uint8_t formats[] = {0};
  ch.extensions.push_back(tls::wire::make_ec_point_formats(formats));
  if (version >= 0x0303) {
    std::vector<std::uint16_t> sig{0x0403, 0x0401, 0x0503, 0x0501,
                                   0x0201, 0x0203};
    ch.extensions.push_back(tls::wire::make_signature_algorithms(sig));
  }
  return ch;
}

}  // namespace

ClientHello chrome2015_hello() {
  // Chrome 41-era list: ECDHE-GCM + ChaCha first, then CBC, RC4, 3DES.
  using namespace tls::clients;
  return base_hello(
      0x0303, compose({aead_pool(), prefix(cbc_pool(), 9), prefix(rc4_pool(), 4),
                       prefix(tdes_pool(), 1)}));
}

ClientHello ssl3_only_hello() {
  return base_hello(0x0300, {0x0005, 0x0004, 0x000a, 0x0009, 0x002f, 0x0035});
}

ClientHello export_only_hello() {
  using namespace tls::clients;
  const auto exp = export_pool();
  return base_hello(0x0301, {exp.begin(), exp.end()});
}

ClientHello tls13_draft_hello() {
  using namespace tls::clients;
  ClientHello ch = base_hello(
      0x0303, compose({tls13_pool(), aead_pool(), prefix(cbc_pool(), 9)}));
  std::vector<std::uint16_t> versions{0x7f1c, 0x7f17, 0x7f12, 0x7e02, 0x0304,
                                      0x0303};
  ch.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  std::vector<std::uint16_t> share_groups{29};
  ch.extensions.push_back(tls::wire::make_key_share_client(share_groups));
  return ch;
}

ScanSnapshot ActiveScanner::scan(Month m) const {
  return scan_weighted(m, /*by_traffic=*/false);
}

ScanSnapshot ActiveScanner::scan_popular(Month m) const {
  return scan_weighted(m, /*by_traffic=*/true);
}

ScanSnapshot ActiveScanner::scan_weighted(Month m, bool by_traffic) const {
  ScanSnapshot snap;
  snap.month = m;

  const ClientHello chrome = chrome2015_hello();
  const ClientHello ssl3 = ssl3_only_hello();
  const ClientHello expo = export_only_hello();
  const ClientHello tls13 = tls13_draft_hello();

  const bool ideal_network = policy_.network.ideal();
  double total = 0;        // reached weight: denominator for the fractions
  double population = 0;   // full target weight: denominator for coverage
  std::size_t segment_index = 0;
  for (const auto& seg : population_.segments()) {
    const std::size_t seg_i = segment_index++;
    if (by_traffic && seg.special_destination) continue;  // not web-facing
    const double w =
        by_traffic ? seg.traffic_share.at(m) : seg.host_share.at(m);
    if (w <= 0) continue;
    population += w;
    if (!ideal_network) {
      // Deterministic per (seed, month, segment): reordering segments or
      // months cannot change any host's fate.
      tls::core::Rng fault_rng(policy_.seed ^
                               (static_cast<std::uint64_t>(m.index()) << 20) ^
                               seg_i);
      const auto trace = tls::faults::run_probe(policy_.network,
                                                policy_.retry, fault_rng);
      snap.probe_attempts += trace.attempts.size();
      snap.probe_retries += trace.retries();
      if (trace.abandoned) ++snap.probes_abandoned;
      if (!trace.reached) {
        snap.unreachable += w;
        continue;
      }
    } else {
      ++snap.probe_attempts;
    }
    snap.scanned += w;
    total += w;
    tls::core::Rng rng(0xacce55);

    const auto chrome_result =
        tls::handshake::negotiate(chrome, seg.config, rng);
    if (chrome_result.success) {
      using namespace tls::core;
      switch (cipher_class(chrome_result.negotiated_cipher)) {
        case CipherClass::kRc4: snap.chooses_rc4 += w; break;
        case CipherClass::kCbc: snap.chooses_cbc += w; break;
        case CipherClass::kAead: snap.chooses_aead += w; break;
        default: break;
      }
      const auto* info = find_cipher_suite(chrome_result.negotiated_cipher);
      if (info != nullptr && is_3des(*info)) snap.chooses_3des += w;

      // Suite-support probes (SSL-Pulse style): which offered suites would
      // the server accept at all?
      bool any_rc4 = false;
      bool any_non_rc4 = false;
      for (const auto id : chrome.cipher_suites) {
        if (!seg.config.supports_suite(id)) continue;
        const auto* i = find_cipher_suite(id);
        if (i == nullptr) continue;
        if (is_rc4(*i)) {
          any_rc4 = true;
        } else {
          any_non_rc4 = true;
        }
      }
      if (any_rc4) snap.rc4_support += w;
      if (any_rc4 && !any_non_rc4) snap.rc4_only += w;
    }

    if (tls::handshake::negotiate(ssl3, seg.config, rng).success) {
      snap.ssl3_support += w;
    }
    if (tls::handshake::negotiate(expo, seg.config, rng).success) {
      snap.export_support += w;
    }
    const auto r13 = tls::handshake::negotiate(tls13, seg.config, rng);
    if (r13.success && r13.negotiated_version != 0x0303 &&
        r13.negotiated_version != 0x0301) {
      snap.tls13_support += w;
    }

    if (seg.config.echo_heartbeat) {
      snap.heartbeat_support += w;
      snap.heartbleed_vulnerable += w * seg.heartbleed_unpatched.at(m);
    }
  }

  if (total > 0) {
    for (double* f :
         {&snap.ssl3_support, &snap.export_support, &snap.chooses_rc4,
          &snap.chooses_cbc, &snap.chooses_aead, &snap.chooses_3des,
          &snap.rc4_support, &snap.rc4_only, &snap.heartbeat_support,
          &snap.heartbleed_vulnerable, &snap.tls13_support}) {
      *f /= total;
    }
  }
  // Coverage fractions over the full target population: together with the
  // results above, every figure can report how much of the population it
  // actually saw. scanned + unreachable == 1 by construction.
  if (population > 0) {
    snap.scanned /= population;
    snap.unreachable /= population;
  }
  return snap;
}

bool ActiveScanner::probe_heartbleed(
    const tls::servers::ServerSegment& segment, Month m,
    tls::core::Rng& rng) const {
  // Hosts without heartbeat support never answer heartbeat records.
  if (!segment.config.echo_heartbeat) return false;
  const bool host_unpatched = rng.chance(segment.heartbleed_unpatched.at(m));
  // Synthetic "process memory" — what an over-read would expose.
  std::vector<std::uint8_t> memory(256);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory[i] = static_cast<std::uint8_t>(rng.next());
  }
  const tls::wire::HeartbeatResponder responder(host_unpatched,
                                                std::move(memory));
  const auto probe = tls::wire::make_heartbleed_probe();
  const auto response = responder.respond(probe.serialize_record(0x0303));
  return tls::wire::probe_indicates_vulnerable(response);
}

double ActiveScanner::heartbleed_probe_fraction(Month m, std::size_t samples,
                                                tls::core::Rng& rng) const {
  // Sample hosts by host_share, probe each.
  double total = 0;
  for (const auto& seg : population_.segments()) total += seg.host_share.at(m);
  if (total <= 0 || samples == 0) return 0;
  std::size_t vulnerable = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    double x = rng.uniform() * total;
    const tls::servers::ServerSegment* chosen = nullptr;
    for (const auto& seg : population_.segments()) {
      chosen = &seg;
      x -= seg.host_share.at(m);
      if (x <= 0) break;
    }
    if (chosen != nullptr && probe_heartbleed(*chosen, m, rng)) ++vulnerable;
  }
  return static_cast<double>(vulnerable) / static_cast<double>(samples);
}

std::vector<ScanSnapshot> ActiveScanner::scan_range(
    tls::core::MonthRange range) const {
  std::vector<ScanSnapshot> out;
  out.reserve(static_cast<std::size_t>(range.size()));
  for (Month m = range.begin_month; m <= range.end_month; ++m) {
    out.push_back(scan(m));
  }
  return out;
}

}  // namespace tls::scan
