#include "scan/scanner.hpp"

#include <algorithm>

#include "clients/suite_pools.hpp"
#include "core/shard.hpp"
#include "handshake/negotiate.hpp"
#include "tlscore/cipher_suites.hpp"
#include "wire/heartbeat.hpp"

namespace tls::scan {

using tls::core::Month;
using tls::wire::ClientHello;

namespace {

ClientHello base_hello(std::uint16_t version,
                       std::vector<std::uint16_t> suites) {
  ClientHello ch;
  ch.legacy_version = version;
  ch.random.fill(0x5c);
  ch.cipher_suites = std::move(suites);
  std::vector<std::uint16_t> groups{23, 24, 25, 29};
  ch.extensions.push_back(tls::wire::make_supported_groups(groups));
  const std::uint8_t formats[] = {0};
  ch.extensions.push_back(tls::wire::make_ec_point_formats(formats));
  if (version >= 0x0303) {
    std::vector<std::uint16_t> sig{0x0403, 0x0401, 0x0503, 0x0501,
                                   0x0201, 0x0203};
    ch.extensions.push_back(tls::wire::make_signature_algorithms(sig));
  }
  return ch;
}

}  // namespace

ClientHello chrome2015_hello() {
  // Chrome 41-era list: ECDHE-GCM + ChaCha first, then CBC, RC4, 3DES.
  using namespace tls::clients;
  return base_hello(
      0x0303, compose({aead_pool(), prefix(cbc_pool(), 9), prefix(rc4_pool(), 4),
                       prefix(tdes_pool(), 1)}));
}

ClientHello ssl3_only_hello() {
  return base_hello(0x0300, {0x0005, 0x0004, 0x000a, 0x0009, 0x002f, 0x0035});
}

ClientHello export_only_hello() {
  using namespace tls::clients;
  const auto exp = export_pool();
  return base_hello(0x0301, {exp.begin(), exp.end()});
}

ClientHello tls13_draft_hello() {
  using namespace tls::clients;
  ClientHello ch = base_hello(
      0x0303, compose({tls13_pool(), aead_pool(), prefix(cbc_pool(), 9)}));
  std::vector<std::uint16_t> versions{0x7f1c, 0x7f17, 0x7f12, 0x7e02, 0x0304,
                                      0x0303};
  ch.extensions.push_back(
      tls::wire::make_supported_versions_client(versions));
  std::vector<std::uint16_t> share_groups{29};
  ch.extensions.push_back(tls::wire::make_key_share_client(share_groups));
  return ch;
}

const ScanProbeSet& scan_probe_set() {
  // Magic-static initialization is thread-safe; after the first probe the
  // hellos and their wire bytes are shared by every sweep on every thread.
  static const ScanProbeSet set = [] {
    ScanProbeSet s;
    s.chrome = chrome2015_hello();
    s.ssl3 = ssl3_only_hello();
    s.expo = export_only_hello();
    s.tls13 = tls13_draft_hello();
    s.chrome_record = s.chrome.serialize_record();
    s.ssl3_record = s.ssl3.serialize_record();
    s.expo_record = s.expo.serialize_record();
    s.tls13_record = s.tls13.serialize_record();
    return s;
  }();
  return set;
}

ScanSnapshot ActiveScanner::scan(Month m) const {
  return scan_weighted(m, /*by_traffic=*/false);
}

ScanSnapshot ActiveScanner::scan_popular(Month m) const {
  return scan_weighted(m, /*by_traffic=*/true);
}

SegmentProbe ActiveScanner::probe_segment(Month m, std::size_t segment_index,
                                          bool by_traffic) const {
  SegmentProbe probe;
  const auto& seg = population_.segments()[segment_index];
  if (by_traffic && seg.special_destination) return probe;  // not web-facing
  const double w =
      by_traffic ? seg.traffic_share.at(m) : seg.host_share.at(m);
  if (w <= 0) return probe;
  probe.included = true;
  probe.weight = w;

  if (!policy_.network.ideal()) {
    // Deterministic per (seed, month, segment): reordering segments or
    // months — or running them on different threads — cannot change any
    // host's fate.
    tls::core::Rng fault_rng(policy_.seed ^
                             (static_cast<std::uint64_t>(m.index()) << 20) ^
                             segment_index);
    const auto trace =
        tls::faults::run_probe(policy_.network, policy_.retry, fault_rng);
    probe.attempts = trace.attempts.size();
    probe.retries = trace.retries();
    probe.abandoned = trace.abandoned;
    if (!trace.reached) return probe;
  } else {
    probe.attempts = 1;
  }
  probe.reached = true;

  const ScanProbeSet& probes = scan_probe_set();
  const ClientHello& chrome = probes.chrome;
  tls::core::Rng rng(0xacce55);

  const auto chrome_result =
      tls::handshake::negotiate(chrome, seg.config, rng);
  if (chrome_result.success) {
    using namespace tls::core;
    switch (cipher_class(chrome_result.negotiated_cipher)) {
      case CipherClass::kRc4: probe.rc4 = w; break;
      case CipherClass::kCbc: probe.cbc = w; break;
      case CipherClass::kAead: probe.aead = w; break;
      default: break;
    }
    const auto* info = find_cipher_suite(chrome_result.negotiated_cipher);
    if (info != nullptr && is_3des(*info)) probe.tdes = w;

    // Suite-support probes (SSL-Pulse style): which offered suites would
    // the server accept at all?
    bool any_rc4 = false;
    bool any_non_rc4 = false;
    for (const auto id : chrome.cipher_suites) {
      if (!seg.config.supports_suite(id)) continue;
      const auto* i = find_cipher_suite(id);
      if (i == nullptr) continue;
      if (is_rc4(*i)) {
        any_rc4 = true;
      } else {
        any_non_rc4 = true;
      }
    }
    if (any_rc4) probe.rc4_support = w;
    if (any_rc4 && !any_non_rc4) probe.rc4_only = w;
  }

  if (tls::handshake::negotiate(probes.ssl3, seg.config, rng).success) {
    probe.ssl3 = w;
  }
  if (tls::handshake::negotiate(probes.expo, seg.config, rng).success) {
    probe.expo = w;
  }
  const auto r13 =
      tls::handshake::negotiate(probes.tls13, seg.config, rng);
  if (r13.success && r13.negotiated_version != 0x0303 &&
      r13.negotiated_version != 0x0301) {
    probe.tls13 = w;
  }

  if (seg.config.echo_heartbeat) {
    probe.heartbeat = w;
    probe.heartbleed = w * seg.heartbleed_unpatched.at(m);
  }
  return probe;
}

void ActiveScanner::fold_probe(ScanSnapshot& snap, const SegmentProbe& probe,
                               double& total, double& population) {
  if (!probe.included) return;
  population += probe.weight;
  snap.probe_attempts += probe.attempts;
  snap.probe_retries += probe.retries;
  if (probe.abandoned) ++snap.probes_abandoned;
  if (!probe.reached) {
    snap.unreachable += probe.weight;
    return;
  }
  snap.scanned += probe.weight;
  total += probe.weight;
  // Each field receives either 0.0 or exactly the weight the serial sweep
  // would have added; adding 0.0 to a non-negative sum is the identity, so
  // the fold reproduces the conditional serial additions bit for bit.
  snap.chooses_rc4 += probe.rc4;
  snap.chooses_cbc += probe.cbc;
  snap.chooses_aead += probe.aead;
  snap.chooses_3des += probe.tdes;
  snap.rc4_support += probe.rc4_support;
  snap.rc4_only += probe.rc4_only;
  snap.ssl3_support += probe.ssl3;
  snap.export_support += probe.expo;
  snap.tls13_support += probe.tls13;
  snap.heartbeat_support += probe.heartbeat;
  snap.heartbleed_vulnerable += probe.heartbleed;
}

void ActiveScanner::finalize(ScanSnapshot& snap, double total,
                             double population) {
  if (total > 0) {
    for (double* f :
         {&snap.ssl3_support, &snap.export_support, &snap.chooses_rc4,
          &snap.chooses_cbc, &snap.chooses_aead, &snap.chooses_3des,
          &snap.rc4_support, &snap.rc4_only, &snap.heartbeat_support,
          &snap.heartbleed_vulnerable, &snap.tls13_support}) {
      *f /= total;
    }
  }
  // Coverage fractions over the full target population: together with the
  // results above, every figure can report how much of the population it
  // actually saw. scanned + unreachable == 1 by construction.
  if (population > 0) {
    snap.scanned /= population;
    snap.unreachable /= population;
  }
}

ScanSnapshot ActiveScanner::scan_weighted(Month m, bool by_traffic) const {
  ScanSnapshot snap;
  snap.month = m;
  double total = 0;        // reached weight: denominator for the fractions
  double population = 0;   // full target weight: denominator for coverage
  const std::size_t n_segments = population_.segments().size();
  for (std::size_t i = 0; i < n_segments; ++i) {
    fold_probe(snap, probe_segment(m, i, by_traffic), total, population);
  }
  finalize(snap, total, population);
  return snap;
}

bool ActiveScanner::probe_heartbleed(
    const tls::servers::ServerSegment& segment, Month m,
    tls::core::Rng& rng) const {
  // Hosts without heartbeat support never answer heartbeat records.
  if (!segment.config.echo_heartbeat) return false;
  const bool host_unpatched = rng.chance(segment.heartbleed_unpatched.at(m));
  // Synthetic "process memory" — what an over-read would expose.
  std::vector<std::uint8_t> memory(256);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory[i] = static_cast<std::uint8_t>(rng.next());
  }
  const tls::wire::HeartbeatResponder responder(host_unpatched,
                                                std::move(memory));
  const auto probe = tls::wire::make_heartbleed_probe();
  const auto response = responder.respond(probe.serialize_record(0x0303));
  return tls::wire::probe_indicates_vulnerable(response);
}

double ActiveScanner::heartbleed_probe_fraction(Month m, std::size_t samples,
                                                tls::core::Rng& rng) const {
  // Sample hosts by host_share, probe each.
  double total = 0;
  for (const auto& seg : population_.segments()) total += seg.host_share.at(m);
  if (total <= 0 || samples == 0) return 0;
  std::size_t vulnerable = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    double x = rng.uniform() * total;
    const tls::servers::ServerSegment* chosen = nullptr;
    for (const auto& seg : population_.segments()) {
      chosen = &seg;
      x -= seg.host_share.at(m);
      if (x <= 0) break;
    }
    if (chosen != nullptr && probe_heartbleed(*chosen, m, rng)) ++vulnerable;
  }
  return static_cast<double>(vulnerable) / static_cast<double>(samples);
}

std::vector<ScanSnapshot> ActiveScanner::scan_range(
    tls::core::MonthRange range) const {
  std::vector<ScanSnapshot> out;
  out.reserve(static_cast<std::size_t>(range.size()));
  for (Month m = range.begin_month; m <= range.end_month; ++m) {
    out.push_back(scan(m));
  }
  return out;
}

std::vector<ScanSnapshot> ActiveScanner::scan_range(
    tls::core::MonthRange range, tls::core::ThreadPool& pool) const {
  const auto n_months = static_cast<std::size_t>(range.size());
  const std::size_t n_segments = population_.segments().size();
  if (n_months == 0 || n_segments == 0) return scan_range(range);

  // One task per (month, segment); every task writes only its own slot.
  std::vector<SegmentProbe> probes(n_months * n_segments);
  pool.run(probes.size(), [&](std::size_t i) {
    const auto mi = static_cast<int>(i / n_segments);
    probes[i] = probe_segment(range.begin_month + mi, i % n_segments,
                              /*by_traffic=*/false);
  });
  return fold_range(range, probes);
}

std::vector<ScanSnapshot> ActiveScanner::fold_range(
    tls::core::MonthRange range, std::span<const SegmentProbe> probes) const {
  const auto n_months = static_cast<std::size_t>(range.size());
  const std::size_t n_segments = population_.segments().size();
  // Fold in (month, segment) order — the serial sweep's order exactly.
  std::vector<ScanSnapshot> out;
  out.reserve(n_months);
  for (std::size_t mi = 0; mi < n_months; ++mi) {
    ScanSnapshot snap;
    snap.month = range.begin_month + static_cast<int>(mi);
    double total = 0;
    double population = 0;
    for (std::size_t si = 0; si < n_segments; ++si) {
      fold_probe(snap, probes[mi * n_segments + si], total, population);
    }
    finalize(snap, total, population);
    out.push_back(snap);
  }
  return out;
}

}  // namespace tls::scan
