// Active-scan layer — the Censys-equivalent view of the server population.
// Scans sweep hosts (host_share-weighted segments) with fixed ClientHellos:
//   * the 2015-Chrome suite list (strong GCM+FS, weaker CBC, RC4, 3DES —
//     §3.2), recording which class of suite each server selects;
//   * an SSL3-only hello (§5.1's weekly scans);
//   * an EXPORT-only hello (§5.5's FREAK/Logjam scans).
// It also reports Heartbeat support and the Heartbleed-vulnerable fraction
// (§5.4), and the SSL-Pulse-style RC4 support rates of §5.3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/network.hpp"
#include "servers/population.hpp"
#include "tlscore/dates.hpp"
#include "tlscore/rng.hpp"
#include "wire/client_hello.hpp"

namespace tls::core {
class ThreadPool;
}

namespace tls::scan {

/// The fixed scan hellos. Built once; byte-identical across calls.
tls::wire::ClientHello chrome2015_hello();
tls::wire::ClientHello ssl3_only_hello();
tls::wire::ClientHello export_only_hello();
tls::wire::ClientHello tls13_draft_hello();

/// The four scan hellos plus their serialized records, built exactly once
/// per process (the hellos are compile-time-fixed, so rebuilding suite
/// pools and extension vectors for every (month, segment) probe was pure
/// allocation churn). The structs are what negotiate() consumes; the
/// records are the bytes a real scanner would put on the wire, kept for
/// callers that need them.
struct ScanProbeSet {
  tls::wire::ClientHello chrome;
  tls::wire::ClientHello ssl3;
  tls::wire::ClientHello expo;
  tls::wire::ClientHello tls13;
  std::vector<std::uint8_t> chrome_record;
  std::vector<std::uint8_t> ssl3_record;
  std::vector<std::uint8_t> expo_record;
  std::vector<std::uint8_t> tls13_record;
};

/// Process-wide memoized probe set (thread-safe function-local static).
const ScanProbeSet& scan_probe_set();

/// How a sweep probes: the network it expects and the retry/backoff budget
/// it spends per host. The default is an ideal network — zero faults, no
/// retries consumed — keeping the fault-free sweep bit-identical.
struct ScanPolicy {
  tls::faults::NetworkProfile network{};
  tls::faults::RetryPolicy retry{};
  /// Seed for the fault/retry stream; sweeps are deterministic per
  /// (seed, month, segment), independent of evaluation order.
  std::uint64_t seed = 0x5ca4;
};

struct ScanSnapshot {
  tls::core::Month month{2015, 8};

  // Fractions of hosts (0..1), host_share-weighted. Support/selection
  // fractions are normalized over *reached* hosts, so unbiased loss leaves
  // them asymptotically unchanged.
  double ssl3_support = 0;      // completes the SSL3-only handshake
  double export_support = 0;    // completes the EXPORT-only handshake
  double chooses_rc4 = 0;       // given the 2015-Chrome hello
  double chooses_cbc = 0;
  double chooses_aead = 0;
  double chooses_3des = 0;
  double rc4_support = 0;       // RC4 anywhere in the server's list
  double rc4_only = 0;          // nothing but RC4 in common with the hello
  double heartbeat_support = 0;
  double heartbleed_vulnerable = 0;
  double tls13_support = 0;

  // ---- loss accounting (coverage reported alongside results) ----
  /// Host-share fractions over the whole target population;
  /// scanned + unreachable == 1 whenever any weight exists.
  double scanned = 0;
  double unreachable = 0;
  /// Probe bookkeeping: total attempts (incl. retries), retries alone, and
  /// probes abandoned on the retry/time budget.
  std::uint64_t probe_attempts = 0;
  std::uint64_t probe_retries = 0;
  std::uint64_t probes_abandoned = 0;
};

/// One (month, segment) probe result — the indivisible unit of scan work,
/// and therefore the unit of parallelism. A probe is a pure function of
/// (policy, month, segment): its fault stream is seeded per (seed, month,
/// segment) and its negotiation stream is a fixed per-segment constant, so
/// probes can run on any thread in any order. Folding probes into a
/// ScanSnapshot in segment order reproduces the serial sweep bit for bit:
/// every weight-valued field here is either 0 or the exact double the
/// serial loop would have added.
struct SegmentProbe {
  bool included = false;  // segment carries weight for this sweep
  bool reached = false;
  double weight = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  bool abandoned = false;
  double ssl3 = 0, expo = 0, rc4 = 0, cbc = 0, aead = 0, tdes = 0;
  double rc4_support = 0, rc4_only = 0;
  double heartbeat = 0, heartbleed = 0, tls13 = 0;
};

class ActiveScanner {
 public:
  explicit ActiveScanner(const tls::servers::ServerPopulation& population,
                         ScanPolicy policy = {})
      : population_(population), policy_(policy) {}

  /// One full IPv4-style sweep for month m (host_share-weighted).
  [[nodiscard]] ScanSnapshot scan(tls::core::Month m) const;

  /// Probes population_.segments()[segment_index] for month m.
  [[nodiscard]] SegmentProbe probe_segment(tls::core::Month m,
                                           std::size_t segment_index,
                                           bool by_traffic) const;

  /// SSL-Pulse-style sweep of *popular* sites: the same probes weighted by
  /// traffic_share instead of host_share (§5.3's Alexa-based numbers).
  [[nodiscard]] ScanSnapshot scan_popular(tls::core::Month m) const;

  /// Probes one simulated host of `segment` with a real RFC 6520
  /// Heartbleed probe (lying payload_length) against its heartbeat
  /// responder — the §5.4 scan mechanism, not the analytic shortcut.
  /// Whether this particular host is patched is drawn from the segment's
  /// heartbleed_unpatched share at m.
  [[nodiscard]] bool probe_heartbleed(
      const tls::servers::ServerSegment& segment, tls::core::Month m,
      tls::core::Rng& rng) const;

  /// Monte-Carlo estimate of the vulnerable-host fraction via
  /// probe_heartbleed over `samples` host draws; converges to the
  /// analytic value reported by scan().
  [[nodiscard]] double heartbleed_probe_fraction(tls::core::Month m,
                                                 std::size_t samples,
                                                 tls::core::Rng& rng) const;

  /// Monthly sweeps over an inclusive range (the Censys window by default).
  [[nodiscard]] std::vector<ScanSnapshot> scan_range(
      tls::core::MonthRange range) const;

  /// The same sweeps, fanned out per (month, segment) on `pool`. Returns
  /// snapshots byte-identical to the serial scan_range: probes are
  /// deterministic per (seed, month, segment) and are folded in (month,
  /// segment) order after the grid drains.
  [[nodiscard]] std::vector<ScanSnapshot> scan_range(
      tls::core::MonthRange range, tls::core::ThreadPool& pool) const;

  /// Folds an externally-computed month-major probe grid (size() months ×
  /// segments() entries, (month, segment) order) into monthly snapshots —
  /// byte-identical to scan_range over the same range. This is the
  /// aggregation half of scan_range(pool), split out so the checkpoint
  /// journal can replay persisted probes through the identical fold.
  [[nodiscard]] std::vector<ScanSnapshot> fold_range(
      tls::core::MonthRange range, std::span<const SegmentProbe> probes) const;

  [[nodiscard]] const ScanPolicy& policy() const { return policy_; }

 private:
  [[nodiscard]] ScanSnapshot scan_weighted(tls::core::Month m,
                                           bool by_traffic) const;
  /// Adds one probe into the sweep accumulator; `total` is the reached
  /// weight, `population` the full target weight.
  static void fold_probe(ScanSnapshot& snap, const SegmentProbe& probe,
                         double& total, double& population);
  /// Normalizes the accumulated sweep (support fractions over reached
  /// weight, coverage fractions over population weight).
  static void finalize(ScanSnapshot& snap, double total, double population);

  const tls::servers::ServerPopulation& population_;
  ScanPolicy policy_;
};

}  // namespace tls::scan
