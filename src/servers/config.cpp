#include "servers/config.hpp"

#include <algorithm>

namespace tls::servers {

bool ServerConfig::supports_suite(std::uint16_t id) const {
  return std::find(cipher_preference.begin(), cipher_preference.end(), id) !=
         cipher_preference.end();
}

}  // namespace tls::servers
