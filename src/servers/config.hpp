// Server-side TLS configuration model. A ServerConfig describes what one
// deployment supports and prefers; the handshake engine negotiates against
// it. Quirks model the spec-violating behaviours the paper observed in the
// wild (§5.5 Interwise export-RC4 selection, §7.3 GOST choosers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tlscore/cipher_suites.hpp"

namespace tls::servers {

enum class ServerQuirk : std::uint8_t {
  kNone,
  /// Responds with TLS_RSA_EXPORT_WITH_RC4_40_MD5 even though the client
  /// never offered it (Interwise, §5.5).
  kChooseExportRc4Unoffered,
  /// Chooses a GOST suite not offered by the client (§7.3).
  kChooseGostUnoffered,
  /// Chooses an anonymous NULL suite not offered by the client (§7.3).
  kChooseAnonNullUnoffered,
};

struct ServerConfig {
  std::uint16_t max_version = 0x0303;
  std::uint16_t min_version = 0x0300;  // <= 0x0300 means SSL3 still enabled
  /// Supported suites in the server's preference order.
  std::vector<std::uint16_t> cipher_preference;
  /// true: pick by server order; false: honor the client's order.
  bool prefer_server_order = true;
  /// TLS 1.3 wire versions accepted via supported_versions (draft values
  /// and/or 0x0304); empty = no TLS 1.3.
  std::vector<std::uint16_t> tls13_versions;
  /// Supported groups in preference order (empty = no EC support).
  std::vector<std::uint16_t> groups{23, 24};
  /// Echoes the heartbeat extension when the client offers it (§5.4).
  bool echo_heartbeat = false;
  /// Still running an unpatched OpenSSL 1.0.1[a-f] (Heartbleed, §5.4).
  bool heartbleed_vulnerable = false;
  /// Chokes on ClientHellos whose version field exceeds max_version instead
  /// of negotiating down — the broken stacks that made browsers implement
  /// the insecure fallback dance (§2.2 POODLE, Table 6).
  bool version_intolerant = false;
  bool supports_session_ticket = true;
  /// Accepts abbreviated handshakes for a session id it "remembers"
  /// (the simulator does not persist caches; acceptance is probabilistic
  /// at this rate when the client presents a session id).
  double resumption_rate = 0.6;
  bool supports_ems = false;
  bool supports_etm = false;
  bool supports_renegotiation_info = true;
  ServerQuirk quirk = ServerQuirk::kNone;

  /// True if the server has `id` in its preference list.
  [[nodiscard]] bool supports_suite(std::uint16_t id) const;
  /// True if the deployment still accepts SSL3 hellos.
  [[nodiscard]] bool supports_ssl3() const { return min_version <= 0x0300; }
  [[nodiscard]] bool supports_tls13() const { return !tls13_versions.empty(); }
};

}  // namespace tls::servers
