// Standard server population. Weight anchors are calibrated against the
// paper's reported server-side numbers:
//   * RC4 negotiated ~60% of connections in Aug 2013 -> ~0 in 2018 (Fig 2)
//   * servers choosing RC4 given a 2015-Chrome hello: 11.2% (2015-09) ->
//     3.4% (2018-05) of hosts (§5.3)
//   * servers choosing CBC: 54% -> 35% of hosts (§5.2)
//   * SSL3 support: >45% (2015-09) -> <25% (2018-05) of hosts (§5.1)
//   * 3DES chosen despite stronger options: 0.54% -> 0.25% of hosts (§5.6)
//   * Heartbleed: 23.7% vulnerable at disclosure, <2% a month later,
//     0.32% in May 2018; Heartbeat supported by 34% of hosts (§5.4)
//   * ECDHE overtaking RSA kex after the 2013-06 Snowden disclosures (Fig 8)
//   * TLS 1.3 negotiated in 1.3% of connections in Apr 2018 (§6.4)
#include "servers/population.hpp"

#include <stdexcept>

namespace tls::servers {

using tls::core::AnchorSeries;
using tls::core::Month;

namespace {

using V = std::vector<std::uint16_t>;

// ---- server-side suite preference orders ----

V legacy_rc4_first() {
  return {0x0005, 0x0004, 0x002f, 0x0035, 0x000a, 0x0009, 0x0003, 0x0008};
}

V legacy_cbc_first() {
  return {0x002f, 0x0035, 0x0033, 0x0039, 0x000a,
          0x0005, 0x0004, 0x0016, 0x0015, 0x0009};
}

V tls12_rc4_first() {
  return {0x0005, 0xc011, 0x0004, 0xc013, 0xc014, 0x002f, 0x0035,
          0x009c, 0x009d, 0xc02f, 0xc030, 0x000a};
}

V tls12_cbc_first() {
  // Older CBC-first configs: RC4 still present at the bottom of the list.
  return {0xc013, 0xc014, 0xc027, 0xc028, 0x0033, 0x0039, 0x002f,
          0x0035, 0x003c, 0x003d, 0xc02f, 0xc030, 0x009c, 0x009d,
          0x000a, 0x0005};
}

V tls12_cbc_first_norc4() {
  // Post-RFC-7465 cleanups: same preference, RC4 removed (§5.3's SSL-Pulse
  // support decline).
  return {0xc013, 0xc014, 0xc027, 0xc028, 0x0033, 0x0039, 0x002f,
          0x0035, 0x003c, 0x003d, 0xc02f, 0xc030, 0x009c, 0x009d,
          0x000a};
}

V dhe_fs_first() {
  return {0x0033, 0x0039, 0x0067, 0x006b, 0x009e, 0x009f,
          0x002f, 0x0035, 0x000a};
}

V rsa_gcm_first() {
  return {0x009d, 0x009c, 0x003d, 0x003c, 0x002f, 0x0035, 0x000a};
}

V ecdhe_gcm_first() {
  return {0xc02f, 0xc030, 0xc02b, 0xc02c, 0xc013, 0xc014, 0xc027,
          0xc028, 0x009c, 0x009d, 0x002f, 0x0035, 0x000a};
}

V cdn_pref() {
  return {0xc02b, 0xc02f, 0xcca9, 0xcca8, 0xc02c, 0xc030,
          0xc013, 0xc014, 0x002f, 0x0035};
}

V secp384_pref_suites() {
  return {0xc030, 0xc02c, 0xc028, 0xc024, 0xc014, 0xc00a,
          0x009d, 0x003d, 0x0035, 0x000a};
}

V tdes_first() {
  V v{0x000a};
  for (const auto id : ecdhe_gcm_first()) v.push_back(id);
  return v;
}

V ssl3_suites() { return {0x0005, 0x0004, 0x000a, 0x0009, 0x002f, 0x0035}; }

ServerSegment make(std::string name, ServerConfig cfg, AnchorSeries traffic,
                   AnchorSeries hosts, bool special = false) {
  ServerSegment s;
  s.name = std::move(name);
  s.config = std::move(cfg);
  s.traffic_share = std::move(traffic);
  s.host_share = std::move(hosts);
  s.special_destination = special;
  return s;
}

AnchorSeries heartbleed_ramp() {
  // Fraction of this (OpenSSL-1.0.1-based) segment still unpatched.
  // Anchored so population-wide vulnerable-host fractions match §5.4.
  return AnchorSeries{{Month(2014, 3), 0.66}, {Month(2014, 5), 0.155},
                      {Month(2014, 6), 0.048}, {Month(2015, 1), 0.024},
                      {Month(2016, 1), 0.015}, {Month(2018, 5), 0.009}};
}

}  // namespace

ServerPopulation ServerPopulation::standard() {
  ServerPopulation pop;

  // ---- general web segments ----
  {
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = legacy_rc4_first();
    c.groups = {};
    pop.add(make("web-legacy-rc4first", c,
                 AnchorSeries{{Month(2012, 1), 0.28}, {Month(2013, 6), 0.38},
                              {Month(2014, 1), 0.26}, {Month(2014, 8), 0.17},
                              {Month(2015, 3), 0.08}, {Month(2015, 8), 0.05},
                              {Month(2016, 3), 0.015}, {Month(2017, 1), 0.004},
                              {Month(2018, 4), 0.002}},
                 AnchorSeries{{Month(2013, 10), 0.20}, {Month(2015, 8), 0.058},
                              {Month(2016, 8), 0.045},
                              {Month(2017, 8), 0.030},
                              {Month(2018, 5), 0.020}}));
  }
  {
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = legacy_cbc_first();
    c.groups = {};
    pop.add(make("web-legacy-cbcfirst", c,
                 AnchorSeries{{Month(2012, 1), 0.48}, {Month(2013, 1), 0.26},
                              {Month(2013, 6), 0.15}, {Month(2014, 1), 0.13},
                              {Month(2014, 8), 0.15}, {Month(2015, 3), 0.11},
                              {Month(2015, 8), 0.08}, {Month(2016, 3), 0.05},
                              {Month(2017, 1), 0.025},
                              {Month(2018, 4), 0.012}},
                 AnchorSeries{{Month(2013, 10), 0.40}, {Month(2015, 8), 0.200},
                              {Month(2016, 8), 0.170},
                              {Month(2017, 8), 0.150},
                              {Month(2018, 5), 0.130}}));
  }
  {
    ServerConfig c;
    c.max_version = 0x0300;
    c.min_version = 0x0300;
    c.cipher_preference = ssl3_suites();
    c.version_intolerant = true;  // the fallback-dance-inducing population
    c.groups = {};
    pop.add(make("web-ssl3only", c,
                 AnchorSeries{{Month(2012, 1), 0.020}, {Month(2013, 1), 0.012},
                              {Month(2013, 10), 0.006},
                              {Month(2014, 6), 0.002},
                              {Month(2015, 3), 0.0008},
                              {Month(2016, 3), 0.0003},
                              {Month(2018, 4), 0.00004}},
                 AnchorSeries{{Month(2013, 10), 0.060}, {Month(2015, 8), 0.030},
                              {Month(2018, 5), 0.010}}));
  }
  {
    // BEAST-mitigation configs: RC4 pinned first (§5.2/§5.3); OpenSSL
    // 1.0.1-based, Heartbeat echoed, SSL3 still enabled.
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0300;
    c.cipher_preference = tls12_rc4_first();
    c.echo_heartbeat = true;
    pop.add(make("web-tls12-rc4first", c,
                 AnchorSeries{{Month(2012, 1), 0.08}, {Month(2013, 1), 0.26},
                              {Month(2013, 8), 0.40}, {Month(2014, 1), 0.30},
                              {Month(2014, 8), 0.20}, {Month(2015, 3), 0.12},
                              {Month(2015, 8), 0.07}, {Month(2016, 3), 0.02},
                              {Month(2017, 1), 0.005},
                              {Month(2018, 4), 0.001}},
                 AnchorSeries{{Month(2013, 10), 0.100}, {Month(2015, 8), 0.036},
                              {Month(2016, 8), 0.026},
                              {Month(2017, 8), 0.020},
                              {Month(2018, 5), 0.014}}))
        ;
    pop.segments_.back().heartbleed_unpatched = heartbleed_ramp();
  }
  {
    // TLS 1.2, CBC preferred, SSL3 never cleaned up.
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0300;
    c.cipher_preference = tls12_cbc_first();
    c.echo_heartbeat = true;
    pop.add(make("web-tls12-cbcfirst-ssl3", c,
                 AnchorSeries{{Month(2012, 1), 0.06}, {Month(2013, 1), 0.06},
                              {Month(2014, 1), 0.10}, {Month(2015, 3), 0.08},
                              {Month(2015, 8), 0.06}, {Month(2016, 3), 0.035},
                              {Month(2017, 1), 0.018}, {Month(2018, 4), 0.006}},
                 AnchorSeries{{Month(2013, 10), 0.140}, {Month(2015, 8), 0.120},
                              {Month(2016, 8), 0.080},
                              {Month(2017, 8), 0.055},
                              {Month(2018, 5), 0.040}}));
    pop.segments_.back().heartbleed_unpatched = heartbleed_ramp();
  }
  {
    // TLS 1.2, CBC preferred, SSL3 disabled post-POODLE, RC4 removed.
    // A slice of these upgraded to OpenSSL 1.1 (EtM-capable) while keeping
    // the CBC-first preference — the only place Encrypt-then-MAC actually
    // negotiates (§9: "very limited take up").
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = tls12_cbc_first_norc4();
    c.supports_etm = true;
    c.echo_heartbeat = true;
    pop.add(make("web-tls12-cbcfirst", c,
                 AnchorSeries{{Month(2012, 1), 0.04}, {Month(2013, 1), 0.05},
                              {Month(2014, 1), 0.11}, {Month(2014, 8), 0.14},
                              {Month(2015, 8), 0.12}, {Month(2016, 3), 0.09},
                              {Month(2017, 1), 0.045}, {Month(2018, 4), 0.018}},
                 AnchorSeries{{Month(2015, 8), 0.160}, {Month(2016, 8), 0.175},
                              {Month(2017, 8), 0.180},
                              {Month(2018, 5), 0.180}}));
    pop.segments_.back().heartbleed_unpatched = heartbleed_ramp();
  }
  {
    // Forward secrecy via DHE (the quick post-Snowden fix; Fig 8's bump).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = dhe_fs_first();
    c.echo_heartbeat = true;  // apache+openssl-1.0.x era configs
    c.groups = {};
    pop.add(make("web-dhe-fs", c,
                 AnchorSeries{{Month(2012, 1), 0.005}, {Month(2013, 6), 0.02},
                              {Month(2014, 1), 0.06}, {Month(2015, 3), 0.07},
                              {Month(2016, 3), 0.04}, {Month(2017, 1), 0.02},
                              {Month(2018, 4), 0.012}},
                 AnchorSeries{{Month(2015, 8), 0.040},
                              {Month(2018, 5), 0.020}}));
  }
  {
    // GCM enabled but ECDHE not: AES-256-GCM-first conservative configs.
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = rsa_gcm_first();
    c.groups = {};
    pop.add(make("web-rsa-gcm", c,
                 AnchorSeries{{Month(2012, 1), 0.0}, {Month(2013, 1), 0.01},
                              {Month(2014, 1), 0.04}, {Month(2015, 3), 0.06},
                              {Month(2016, 3), 0.05}, {Month(2017, 1), 0.04},
                              {Month(2018, 4), 0.035}},
                 AnchorSeries{{Month(2015, 8), 0.060},
                              {Month(2018, 5), 0.080}}));
  }
  {
    // The modern mainstream: ECDHE-GCM first. Traffic ramps steeply after
    // the 2013-06 Snowden disclosures (Fig 8).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = ecdhe_gcm_first();
    c.supports_ems = true;
    c.supports_etm = true;  // OpenSSL >= 1.1 based deployments
    pop.add(make("web-modern-ecdhe", c,
                 AnchorSeries{{Month(2012, 1), 0.02}, {Month(2013, 6), 0.05},
                              {Month(2014, 1), 0.13}, {Month(2014, 8), 0.17},
                              {Month(2015, 3), 0.22}, {Month(2015, 8), 0.26},
                              {Month(2016, 3), 0.33}, {Month(2017, 1), 0.37},
                              {Month(2018, 4), 0.36}},
                 AnchorSeries{{Month(2015, 8), 0.100},
                              {Month(2018, 5), 0.260}}));
  }
  {
    // Same, still echoing Heartbeat (OpenSSL 1.0.1/1.0.2-based builds).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = ecdhe_gcm_first();
    c.echo_heartbeat = true;
    c.supports_ems = true;
    pop.add(make("web-modern-ecdhe-hb", c,
                 AnchorSeries{{Month(2012, 1), 0.01}, {Month(2013, 6), 0.03},
                              {Month(2014, 1), 0.06}, {Month(2014, 8), 0.08},
                              {Month(2015, 8), 0.12}, {Month(2016, 3), 0.15},
                              {Month(2017, 1), 0.16}, {Month(2018, 4), 0.16}},
                 AnchorSeries{{Month(2015, 8), 0.080}, {Month(2017, 8), 0.100},
                              {Month(2018, 5), 0.105}}));
    pop.segments_.back().heartbleed_unpatched = heartbleed_ramp();
  }
  {
    // Large CDNs: x25519 + ChaCha, aggressive modern suites.
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = cdn_pref();
    c.groups = {29, 23, 24};
    c.supports_ems = true;
    pop.add(make("web-cdn-x25519", c,
                 AnchorSeries{{Month(2012, 1), 0.02}, {Month(2013, 6), 0.04},
                              {Month(2014, 1), 0.08}, {Month(2015, 3), 0.11},
                              {Month(2015, 8), 0.12}, {Month(2016, 3), 0.14},
                              {Month(2017, 1), 0.15}, {Month(2017, 8), 0.18},
                              {Month(2018, 4), 0.21}},
                 AnchorSeries{{Month(2015, 8), 0.012},
                              {Month(2018, 5), 0.025}}));
  }
  {
    // Mobile-optimized endpoints honoring the client's cipher order
    // (ChaCha20 for handsets without AES acceleration, §6.3.2).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = cdn_pref();
    c.prefer_server_order = false;
    c.groups = {29, 23};
    pop.add(make("web-mobile-clientorder", c,
                 AnchorSeries{{Month(2013, 6), 0.002}, {Month(2014, 1), 0.01},
                              {Month(2015, 3), 0.03}, {Month(2016, 3), 0.05},
                              {Month(2017, 1), 0.08}, {Month(2018, 4), 0.10}},
                 AnchorSeries{{Month(2015, 8), 0.004},
                              {Month(2018, 5), 0.008}}));
  }
  {
    // TLS 1.3 experimental deployments (Google variants + IETF drafts).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = [] {
      V v{0x1301, 0x1302, 0x1303};
      for (const auto id : cdn_pref()) v.push_back(id);
      return v;
    }();
    c.tls13_versions = {0x7e02, 0x7f1c, 0x7f17, 0x7f12, 0x0304};
    c.groups = {29, 23, 24};
    pop.add(make("web-tls13-exp", c,
                 AnchorSeries{{Month(2016, 9), 0.0}, {Month(2016, 10), 0.001},
                              {Month(2017, 6), 0.005}, {Month(2018, 1), 0.025},
                              {Month(2018, 3), 0.05},
                              {Month(2018, 5), 0.075}},
                 AnchorSeries{{Month(2016, 9), 0.0}, {Month(2016, 10), 0.0005},
                              {Month(2018, 5), 0.005}}));
  }
  {
    // secp384r1-preferring conservative deployments (§6.3.3's 8.6%).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = secp384_pref_suites();
    c.groups = {24, 23};
    pop.add(make("web-secp384", c,
                 AnchorSeries{{Month(2012, 1), 0.03}, {Month(2013, 6), 0.03},
                              {Month(2014, 6), 0.05}, {Month(2016, 3), 0.055},
                              {Month(2018, 4), 0.05}},
                 AnchorSeries{{Month(2015, 8), 0.030},
                              {Month(2018, 5), 0.030}}));
  }
  {
    // 3DES-preferring misconfigurations (§5.6: 0.54% -> 0.25% of hosts).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0300;
    c.cipher_preference = tdes_first();
    pop.add(make("web-3des-pref", c,
                 AnchorSeries{{Month(2012, 1), 0.014}, {Month(2013, 1), 0.012},
                              {Month(2015, 8), 0.004}, {Month(2016, 9), 0.003},
                              {Month(2018, 4), 0.0025}},
                 AnchorSeries{{Month(2015, 8), 0.0054},
                              {Month(2018, 5), 0.0025}}));
  }
  {
    // GOST-choosing custom stacks (§7.3): reply with an unoffered suite.
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = {0x0081, 0x0080, 0xff85};
    c.quirk = ServerQuirk::kChooseGostUnoffered;
    c.groups = {};
    pop.add(make("web-gost", c, AnchorSeries::constant(0.0005),
                 AnchorSeries::constant(0.001)));
  }

  // ---- special destinations (explicitly routed, §5/§6 case studies) ----
  {
    // GRID endpoints: mutual-auth-only TLS, NULL cipher accepted (§6.1),
    // sect571r1-preferring (the 0.2% curve tail of §6.3.3).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = {0xc010, 0x0002, 0x0001, 0x003b, 0x002f, 0x0035};
    c.echo_heartbeat = true;  // Globus / OpenSSL 1.0.x deployments
    c.groups = {14, 23};
    pop.add(make("grid-storage", c, AnchorSeries::constant(1.0),
                 AnchorSeries::constant(0.0005), /*special=*/true));
  }
  {
    // Nagios monitoring endpoints: anonymous DH with app-layer auth (§6.2).
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0002;  // the single university still speaking SSLv2
    c.cipher_preference = {0x0034, 0x003a, 0x0018, 0x001b, 0x006c};
    c.groups = {};
    pop.add(make("nagios-monitor", c, AnchorSeries::constant(0.90),
                 AnchorSeries::constant(0.0003), /*special=*/true));
  }
  {
    // University Nagios hosts preferring anonymous *export* suites even
    // when secure suites are offered (§5.5).
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = {0x0017, 0x0019, 0x0034, 0x0018};
    c.groups = {};
    pop.add(make("nagios-export", c, AnchorSeries::constant(0.06),
                 AnchorSeries::constant(0.0001), /*special=*/true));
  }
  {
    // Nagios hosts negotiating TLS_NULL_WITH_NULL_NULL (§6.1's 198.3K).
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = {0x0000, 0x0034};
    c.groups = {};
    pop.add(make("nagios-nullnull", c, AnchorSeries::constant(0.04),
                 AnchorSeries::constant(0.0001), /*special=*/true));
  }
  {
    // Interwise conferencing: answers EXP_RC4_40_MD5 never offered (§5.5).
    ServerConfig c;
    c.max_version = 0x0301;
    c.min_version = 0x0300;
    c.cipher_preference = {0x0003, 0x0005, 0x0004};
    c.quirk = ServerQuirk::kChooseExportRc4Unoffered;
    c.groups = {};
    pop.add(make("interwise-conf", c, AnchorSeries::constant(1.0),
                 AnchorSeries::constant(0.0001), /*special=*/true));
  }
  {
    // Splunk indexers on port 9997: static ECDH (§6.3.1's 0.27%), pinned
    // to secp521r1 (the 0.1% curve sliver of §6.3.3).
    ServerConfig c;
    c.max_version = 0x0303;
    c.min_version = 0x0301;
    c.cipher_preference = {0xc004, 0xc005, 0xc00e, 0xc00f, 0x002f, 0x0035};
    c.groups = {25, 23};
    pop.add(make("splunk-9997", c, AnchorSeries::constant(1.0),
                 AnchorSeries::constant(0.0002), /*special=*/true));
  }

  return pop;
}

const ServerSegment* ServerPopulation::find(std::string_view name) const {
  for (const auto& s : segments_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ServerSegment& ServerPopulation::sample_by_traffic(
    Month m, tls::core::Rng& rng) const {
  double total = 0;
  for (const auto& s : segments_) {
    if (!s.special_destination) total += s.traffic_share.at(m);
  }
  if (total <= 0) throw std::logic_error("no general-web traffic weight");
  double x = rng.uniform() * total;
  for (const auto& s : segments_) {
    if (s.special_destination) continue;
    x -= s.traffic_share.at(m);
    if (x <= 0) return s;
  }
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (!it->special_destination) return *it;
  }
  throw std::logic_error("unreachable");
}

}  // namespace tls::servers
