// The evolving server-side deployment. Each ServerSegment is one class of
// deployment (e.g. "TLS 1.2, CBC-first, SSL3 still on, OpenSSL 1.0.1") with
// TWO weight series:
//   traffic_share — share of *connections* terminating at this class
//                   (what the passive Notary sees; popularity-weighted);
//   host_share    — share of *IPv4 hosts* running this class
//                   (what Censys-style scans see; long-tail-weighted).
// Keeping both reproduces the paper's systematic passive-vs-active gaps
// (e.g. SSL3: ~25% of hosts but <0.01% of connections, §5.1).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "servers/config.hpp"
#include "tlscore/dates.hpp"
#include "tlscore/rng.hpp"
#include "tlscore/series.hpp"

namespace tls::servers {

struct ServerSegment {
  std::string name;
  ServerConfig config;
  tls::core::AnchorSeries traffic_share;
  tls::core::AnchorSeries host_share;
  /// Fraction of this segment's hosts still Heartbleed-unpatched at m
  /// (only meaningful for segments whose config.echo_heartbeat is true).
  tls::core::AnchorSeries heartbleed_unpatched;
  /// true: only reachable via explicit destination routing (GRID, Nagios,
  /// Interwise, Splunk); excluded from general web sampling.
  bool special_destination = false;
};

class ServerPopulation {
 public:
  /// The study's standard deployment model (general web + special
  /// destinations), with weights anchored to the paper's reported numbers.
  static ServerPopulation standard();

  [[nodiscard]] std::span<const ServerSegment> segments() const {
    return segments_;
  }
  [[nodiscard]] const ServerSegment* find(std::string_view name) const;

  /// Samples a general-web segment for one connection in month m,
  /// proportionally to traffic_share. Never returns special destinations.
  [[nodiscard]] const ServerSegment& sample_by_traffic(
      tls::core::Month m, tls::core::Rng& rng) const;

  /// Sum of host_share over segments satisfying `pred` divided by the
  /// total host_share — the "fraction of servers" measure of active scans.
  template <typename Pred>
  [[nodiscard]] double host_fraction(tls::core::Month m, Pred&& pred) const {
    double total = 0;
    double matching = 0;
    for (const auto& s : segments_) {
      const double w = s.host_share.at(m);
      total += w;
      if (pred(s)) matching += w;
    }
    return total > 0 ? matching / total : 0;
  }

  void add(ServerSegment segment) { segments_.push_back(std::move(segment)); }

 private:
  std::vector<ServerSegment> segments_;
};

}  // namespace tls::servers
