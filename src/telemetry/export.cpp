#include "telemetry/export.hpp"

#include <cctype>
#include <sstream>

#include "analysis/render.hpp"

namespace tls::telemetry {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::uint64_t metric_scalar(const Metric& m) {
  return m.kind == MetricKind::kCounter ? m.counter.value : m.gauge.value;
}

/// Unit inferred from the naming convention's trailing component (empty
/// when the name carries no unit). Drives the OpenMetrics-compatible
/// `# UNIT` metadata line; samples themselves stay exemplar-free plain
/// integers, so Prometheus 0.0.4 scrapers are unaffected.
std::string_view unit_suffix(std::string_view name) {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  if (ends_with("_us")) return "microseconds";
  if (ends_with("_ms")) return "milliseconds";
  if (ends_with("_seconds")) return "seconds";
  if (ends_with("_bytes")) return "bytes";
  return {};
}

}  // namespace

std::string to_metrics_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\n\"metrics\": [";
  bool first = true;
  for (const auto& [key, m] : registry.metrics()) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": ";
    append_json_string(out, m.name);
    out << ", \"kind\": \"" << kind_name(m.kind) << "\"";
    if (!m.labels.empty()) {
      out << ", \"labels\": ";
      append_json_string(out, m.labels);
    }
    if (!m.help.empty()) {
      out << ", \"help\": ";
      append_json_string(out, m.help);
    }
    if (m.timing) out << ", \"timing\": true";
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << ", \"value\": " << metric_scalar(m);
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = m.histogram;
        out << ", \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) out << ", ";
          out << h.bounds[i];
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) out << ", ";
          out << h.counts[i];
        }
        out << "], \"count\": " << h.count << ", \"sum\": " << h.sum
            << ", \"min\": " << h.min << ", \"max\": " << h.max;
        break;
      }
    }
    out << "}";
  }
  out << "\n]\n}\n";
  return out.str();
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  std::string open_family;  // family whose HELP/TYPE header was emitted last
  for (const auto& [key, m] : registry.metrics()) {
    if (m.name != open_family) {
      open_family = m.name;
      if (!m.help.empty()) {
        out << "# HELP " << m.name << ' ' << m.help << '\n';
      }
      const auto unit = unit_suffix(m.name);
      if (!unit.empty()) {
        out << "# UNIT " << m.name << ' ' << unit << '\n';
      }
      out << "# TYPE " << m.name << ' ' << kind_name(m.kind) << '\n';
    }
    const std::string label_body =
        m.labels.empty() ? std::string{} : "{" + m.labels + "}";
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << m.name << label_body << ' ' << metric_scalar(m) << '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += i < h.counts.size() ? h.counts[i] : 0;
          out << m.name << "_bucket{";
          if (!m.labels.empty()) out << m.labels << ',';
          out << "le=\"" << h.bounds[i] << "\"} " << cumulative << '\n';
        }
        out << m.name << "_bucket{";
        if (!m.labels.empty()) out << m.labels << ',';
        out << "le=\"+Inf\"} " << h.count << '\n';
        out << m.name << "_sum" << label_body << ' ' << h.sum << '\n';
        out << m.name << "_count" << label_body << ' ' << h.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string render_run_report(const MetricsRegistry& registry) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "kind", "value"});
  for (const auto& [key, m] : registry.metrics()) {
    std::string value;
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        value = std::to_string(metric_scalar(m));
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = m.histogram;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "n=%llu sum=%llu mean=%.1f max=%llu",
                      static_cast<unsigned long long>(h.count),
                      static_cast<unsigned long long>(h.sum), h.mean(),
                      static_cast<unsigned long long>(h.max));
        value = buf;
        break;
      }
    }
    rows.push_back({key, kind_name(m.kind), value});
  }
  return tls::analysis::render_table(rows);
}

std::string deterministic_digest(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const auto& [key, m] : registry.metrics()) {
    if (m.timing) continue;
    out << key << ' ' << kind_name(m.kind);
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << ' ' << metric_scalar(m);
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = m.histogram;
        for (const auto c : h.counts) out << ' ' << c;
        out << " n=" << h.count << " sum=" << h.sum << " min=" << h.min
            << " max=" << h.max;
        break;
      }
    }
    out << '\n';
  }
  return out.str();
}

// ---- Prometheus exposition lint ----

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!head(name[i]) && !std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

/// Parses `key="value",key="value"` starting after '{'; returns the index
/// one past the closing '}' or npos on malformed input.
std::size_t parse_label_body(const std::string& line, std::size_t pos,
                             bool* ok) {
  *ok = false;
  while (pos < line.size() && line[pos] != '}') {
    const auto eq = line.find('=', pos);
    if (eq == std::string::npos) return std::string::npos;
    if (!valid_label_name(
            std::string_view(line).substr(pos, eq - pos))) {
      return std::string::npos;
    }
    if (eq + 1 >= line.size() || line[eq + 1] != '"') {
      return std::string::npos;
    }
    pos = eq + 2;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\') ++pos;  // escaped char
      ++pos;
    }
    if (pos >= line.size()) return std::string::npos;
    ++pos;  // closing quote
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  if (pos >= line.size()) return std::string::npos;
  *ok = true;
  return pos + 1;  // past '}'
}

bool valid_sample_value(std::string_view v) {
  if (v.empty()) return false;
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  char* end = nullptr;
  std::string owned(v);
  std::strtod(owned.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::vector<std::string> lint_prometheus(const std::string& text) {
  std::vector<std::string> errors;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  std::string current_family;       // family of the last # TYPE line
  std::string current_type;         // its declared type
  std::vector<std::string> closed;  // families already left behind
  bool saw_inf_bucket = false, saw_sum = false, saw_count = false;

  const auto err = [&](const std::string& msg) {
    errors.push_back("line " + std::to_string(line_no) + ": " + msg);
  };
  const auto close_family = [&] {
    if (current_family.empty()) return;
    if (current_type == "histogram" &&
        !(saw_inf_bucket && saw_sum && saw_count)) {
      errors.push_back("family " + current_family +
                       ": histogram missing +Inf bucket, _sum, or _count");
    }
    closed.push_back(current_family);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, keyword, name;
      ls >> hash >> keyword >> name;
      if (keyword == "HELP") {
        if (!valid_metric_name(name)) err("bad metric name in HELP: " + name);
        continue;
      }
      if (keyword == "UNIT") {
        // OpenMetrics-compatible unit metadata: `# UNIT <name> <unit>`,
        // exactly one non-empty unit token.
        if (!valid_metric_name(name)) err("bad metric name in UNIT: " + name);
        std::string unit, extra;
        ls >> unit >> extra;
        if (unit.empty()) err("UNIT missing unit token for " + name);
        if (!extra.empty()) err("UNIT takes a single unit token, got trailing: " + extra);
        continue;
      }
      if (keyword != "TYPE") {
        err("unknown comment keyword (expected HELP, UNIT, or TYPE)");
        continue;
      }
      std::string type;
      ls >> type;
      if (!valid_metric_name(name)) err("bad metric name in TYPE: " + name);
      if (type != "counter" && type != "gauge" && type != "histogram") {
        err("bad TYPE value: " + type);
      }
      if (name != current_family) {
        close_family();
        for (const auto& f : closed) {
          if (f == name) {
            err("family " + name + " declared twice (interleaved)");
          }
        }
        current_family = name;
        current_type = type;
        saw_inf_bucket = saw_sum = saw_count = false;
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name)) {
      err("bad sample metric name: " + name);
      continue;
    }
    std::size_t pos = name_end;
    std::string labels;
    if (pos < line.size() && line[pos] == '{') {
      bool ok = false;
      const std::size_t body_start = pos + 1;
      const std::size_t after = parse_label_body(line, body_start, &ok);
      if (!ok) {
        err("malformed label body");
        continue;
      }
      labels = line.substr(body_start, after - 1 - body_start);
      pos = after;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      err("missing space before sample value");
      continue;
    }
    const std::string value = line.substr(pos + 1);
    if (!valid_sample_value(value)) err("bad sample value: " + value);

    if (current_family.empty()) {
      err("sample before any # TYPE declaration: " + name);
      continue;
    }
    bool belongs = name == current_family;
    if (current_type == "histogram") {
      if (name == current_family + "_bucket") {
        belongs = true;
        if (labels.find("le=\"+Inf\"") != std::string::npos) {
          saw_inf_bucket = true;
        }
      } else if (name == current_family + "_sum") {
        belongs = true;
        saw_sum = true;
      } else if (name == current_family + "_count") {
        belongs = true;
        saw_count = true;
      } else {
        belongs = false;
      }
    }
    if (!belongs) {
      err("sample " + name + " outside its family's TYPE block (current: " +
          current_family + ")");
    }
  }
  close_family();
  return errors;
}

// ---- minimal JSON syntax validator ----

namespace {

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool at(char c) const {
    return pos < text.size() && text[pos] == c;
  }
  bool eat(char c) {
    if (!at(c)) return false;
    ++pos;
    return true;
  }
};

bool parse_value(JsonCursor& c, int depth);

bool parse_string(JsonCursor& c) {
  if (!c.eat('"')) return false;
  while (c.pos < c.text.size() && c.text[c.pos] != '"') {
    if (c.text[c.pos] == '\\') {
      ++c.pos;
      if (c.pos >= c.text.size()) return false;
    }
    ++c.pos;
  }
  return c.eat('"');
}

bool parse_number(JsonCursor& c) {
  const std::size_t start = c.pos;
  if (c.at('-')) ++c.pos;
  while (c.pos < c.text.size() &&
         (std::isdigit(static_cast<unsigned char>(c.text[c.pos])) ||
          c.text[c.pos] == '.' || c.text[c.pos] == 'e' ||
          c.text[c.pos] == 'E' || c.text[c.pos] == '+' ||
          c.text[c.pos] == '-')) {
    ++c.pos;
  }
  return c.pos > start;
}

bool parse_literal(JsonCursor& c, std::string_view word) {
  if (c.text.compare(c.pos, word.size(), word) != 0) return false;
  c.pos += word.size();
  return true;
}

bool parse_value(JsonCursor& c, int depth) {
  if (depth > 64) return false;
  c.skip_ws();
  if (c.at('{')) {
    ++c.pos;
    c.skip_ws();
    if (c.eat('}')) return true;
    while (true) {
      c.skip_ws();
      if (!parse_string(c)) return false;
      c.skip_ws();
      if (!c.eat(':')) return false;
      if (!parse_value(c, depth + 1)) return false;
      c.skip_ws();
      if (c.eat(',')) continue;
      return c.eat('}');
    }
  }
  if (c.at('[')) {
    ++c.pos;
    c.skip_ws();
    if (c.eat(']')) return true;
    while (true) {
      if (!parse_value(c, depth + 1)) return false;
      c.skip_ws();
      if (c.eat(',')) continue;
      return c.eat(']');
    }
  }
  if (c.at('"')) return parse_string(c);
  if (c.at('t')) return parse_literal(c, "true");
  if (c.at('f')) return parse_literal(c, "false");
  if (c.at('n')) return parse_literal(c, "null");
  return parse_number(c);
}

}  // namespace

bool json_syntax_valid(const std::string& text) {
  JsonCursor c{text};
  if (!parse_value(c, 0)) return false;
  c.skip_ws();
  return c.pos == text.size();
}

}  // namespace tls::telemetry
