// Telemetry exports: the machine-readable METRICS.json, the Prometheus
// text exposition, the human run-report table, and the small validators
// (Prometheus format lint + JSON syntax check) that CI gates on. All
// output is a deterministic function of registry state: metrics are
// emitted in sorted key order and integers verbatim, so two registries
// with equal state always produce byte-identical artifacts.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace tls::telemetry {

/// METRICS.json: one object per metric with kind, labels, help and the
/// kind-specific value payload (histograms include bounds + buckets).
[[nodiscard]] std::string to_metrics_json(const MetricsRegistry& registry);

/// Prometheus text exposition (version 0.0.4): # HELP / # TYPE headers per
/// family, `_bucket{le=...}` / `_sum` / `_count` expansion for histograms.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// Human-readable run report: an aligned table of every metric (counters
/// and gauges by value; histograms by count/sum/mean/max).
[[nodiscard]] std::string render_run_report(const MetricsRegistry& registry);

/// Canonical text of the deterministic registry subset — every metric not
/// registered with timing=true. Equal digests across thread counts is the
/// registry's determinism contract (tested at threads {0,8}).
[[nodiscard]] std::string deterministic_digest(const MetricsRegistry& registry);

/// Prometheus exposition lint (no external deps): validates name/label
/// charsets, HELP/TYPE placement, sample syntax, non-interleaved families,
/// and histogram completeness (+Inf bucket, _sum, _count). Returns one
/// message per violation; empty means the text passes.
[[nodiscard]] std::vector<std::string> lint_prometheus(
    const std::string& text);

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// true/false/null) used by the trace/metrics schema tests.
[[nodiscard]] bool json_syntax_valid(const std::string& text);

}  // namespace tls::telemetry
